"""Raw DES-kernel throughput: events/sec, pooled vs unpooled vs seed.

The kernel fast path makes three claims this benchmark pins down:

* the handle-free ``post`` path beats the seed kernel's per-event
  allocating ``call_in`` loop on a pure timer chain;
* handle pooling never *loses* to fresh allocation (the refcount guard
  makes recycling safe, so it must also be at least cost-neutral);
* tombstone compaction bounds the heap under a cancel-heavy watchdog
  load where the seed kernel accumulates every tombstone.

Numbers are best-of-N (CI hosts throttle); the committed perf gate lives
in ``benchmarks/BENCH_baseline.json`` and is enforced by
``python -m repro bench --check`` (see ``.github/workflows/ci.yml``).
"""

from repro.exec.bench import (
    SeedSimulator,
    _cancel_heavy_eps,
    _chain_eps,
    _process_eps,
)
from repro.sim import Simulator


def test_post_chain_beats_seed_kernel(once, emit):
    seed_eps = _chain_eps(SeedSimulator, events=60_000)
    post_eps = _chain_eps(Simulator, schedule="post", events=60_000)
    once(_chain_eps, Simulator, schedule="post", events=60_000)
    emit(f"timer chain: seed {seed_eps:,.0f} ev/s, "
         f"post {post_eps:,.0f} ev/s ({post_eps / seed_eps:.2f}x)")
    # the fast path exists to be faster; allow jitter headroom on slow CI
    assert post_eps > seed_eps * 1.05


def test_pooled_handles_do_not_lose_to_unpooled(once, emit):
    unpooled = _chain_eps(lambda: Simulator(pooling=False), events=60_000)
    pooled = _chain_eps(lambda: Simulator(pooling=True), events=60_000)
    once(_chain_eps, lambda: Simulator(pooling=True), events=60_000)
    emit(f"call_in chain: unpooled {unpooled:,.0f} ev/s, "
         f"pooled {pooled:,.0f} ev/s ({pooled / unpooled:.2f}x)")
    # cost-neutral-or-better, with a wide noise band
    assert pooled > unpooled * 0.7


def test_cancel_heavy_compaction_bounds_heap(once, emit):
    seed_eps, seed_peak = _cancel_heavy_eps(SeedSimulator, events=20_000)
    eps, peak = _cancel_heavy_eps(Simulator, events=20_000)
    once(_cancel_heavy_eps, Simulator, events=20_000)
    emit(f"cancel-heavy: seed {seed_eps:,.0f} ev/s (peak heap {seed_peak}), "
         f"compacting {eps:,.0f} ev/s (peak heap {peak})")
    # the seed kernel keeps every tombstone; compaction caps the heap
    assert seed_peak >= 20_000
    assert peak < seed_peak / 10


def test_process_timeout_throughput(once, emit):
    eps = _process_eps(events=40_000)
    once(_process_eps, events=40_000)
    emit(f"generator-process Timeout loop: {eps:,.0f} ev/s")
    assert eps > 0
