"""Figure 17 (framework overhead) and Figure 18 (migration breakdown)."""

import pytest

from repro.experiments.applications import overhead_comparison
from repro.experiments.migration_study import (
    breakdown_rows,
    phase_share,
    run_migration_breakdown,
)
from repro.experiments.report import render_table


def test_fig17_overhead(once, emit):
    rows = once(overhead_comparison, (0.15, 0.25, 0.35), 512, 12_000.0, 16)
    table = [("load", "w/o iPipe (µs/op)", "w/ iPipe (µs/op)", "overhead")]
    overheads = []
    for load, dpdk_us, ipipe_us in rows:
        overheads.append(ipipe_us / dpdk_us - 1.0)
        table.append((f"{load:.2f}", f"{dpdk_us:.2f}", f"{ipipe_us:.2f}",
                      f"{(ipipe_us / max(dpdk_us, 1e-6) - 1) * 100:+.1f}%"))
    emit(render_table(table, title="Figure 17: host-only RKV leader CPU per "
                                   "op, with vs without the iPipe runtime "
                                   "(sub-saturation loads)"))
    # paper: iPipe consumes ~11-12% more host CPU at equal throughput
    mean_overhead = sum(overheads) / len(overheads)
    assert 0.02 < mean_overhead < 0.30


def test_fig18_migration_breakdown(once, emit):
    reports = once(run_migration_breakdown)
    table = [("actor", "phase1(µs)", "phase2(µs)", "phase3(µs)",
              "phase4(µs)", "total(ms)")]
    for row in breakdown_rows(reports):
        table.append((row.actor, f"{row.phase1_us:.0f}", f"{row.phase2_us:.0f}",
                      f"{row.phase3_us:.0f}", f"{row.phase4_us:.0f}",
                      f"{row.total_ms:.2f}"))
    emit(render_table(table, title="Figure 18: migration elapsed time "
                                   "breakdown (8 actors, 90% load)"))
    assert len(reports) == 8
    # phase 3 dominates (paper: ~68% on average), phase 4 second (~27%)
    assert phase_share(reports, 3) > 0.5
    assert phase_share(reports, 3) > phase_share(reports, 4) > \
        max(phase_share(reports, 1), phase_share(reports, 2))
    # the 32MB LSM memtable actor takes tens of ms, dominated by the move
    lsm = next(r for r in reports if r.actor == "lsmmem")
    assert 10_000 < lsm.phase_us[3] < 60_000
