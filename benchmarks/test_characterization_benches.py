"""Benches for the §2 characterization: Tables 1-3, Figures 2-10."""

import pytest

from repro.experiments.characterization import (
    bandwidth_vs_cores,
    computing_headroom_us,
    cores_to_saturate,
    figure2_series,
    figure6_series,
    figure7_series,
    figure8_series,
    figure9_series,
    figure10_series,
    table2_rows,
    table3_accel_rows,
    table3_rows,
    traffic_manager_experiment,
)
from repro.experiments.report import render_series, render_table
from repro.nic import LIQUIDIO_CN2350, STINGRAY_PS225, table1_rows
from repro.nic.calibration import FRAME_SIZES


def test_table1_specs(once, emit):
    rows = once(table1_rows)
    emit(render_table(rows, title="Table 1: SmartNIC specifications"))
    assert len(rows) == 5


def test_fig02_bw_cores_liquidio(once, emit):
    series = once(figure2_series, LIQUIDIO_CN2350)
    lines = ["Figure 2: bandwidth (Gbps) vs NIC cores, LiquidIOII CN2350 10GbE"]
    for size, points in series.items():
        lines.append(render_series(f"{size}B", *zip(*points)))
    emit(*lines)
    assert cores_to_saturate(LIQUIDIO_CN2350, 1500) == 3


def test_fig03_bw_cores_stingray(once, emit):
    series = once(figure2_series, STINGRAY_PS225)
    lines = ["Figure 3: bandwidth (Gbps) vs NIC cores, Stingray PS225 25GbE"]
    for size, points in series.items():
        lines.append(render_series(f"{size}B", *zip(*points)))
    emit(*lines)
    assert cores_to_saturate(STINGRAY_PS225, 1024) == 1


def test_fig04_headroom(once, emit):
    def run():
        return {
            (spec.model, size): computing_headroom_us(spec, size)
            for spec in (LIQUIDIO_CN2350, STINGRAY_PS225)
            for size in (256, 1024)
        }
    headrooms = once(run)
    lines = ["Figure 4: computing headroom (max tolerated per-packet latency, µs)"]
    for (model, size), headroom in headrooms.items():
        lines.append(f"  {model} {size}B: {headroom:.2f}µs")
    emit(*lines)
    # paper: 2.5/9.8µs (CN2350) and 0.7/2.6µs (Stingray)
    assert headrooms[(LIQUIDIO_CN2350.model, 256)] == pytest.approx(2.5, abs=0.15)
    assert headrooms[(STINGRAY_PS225.model, 1024)] == pytest.approx(2.6, abs=0.15)


def test_fig05_traffic_manager(once, emit):
    def run():
        return [traffic_manager_experiment(size, cores, duration_us=20_000)
                for size in (64, 512, 1024, 1500)
                for cores in (6, 12)]
    points = once(run)
    lines = ["Figure 5: avg/p99 latency at max throughput, 6 vs 12 cores (CN2350)"]
    for p in points:
        lines.append(f"  {p.frame_bytes}B {p.cores} cores: "
                     f"avg={p.avg_us:.1f}µs p99={p.p99_us:.1f}µs")
    emit(*lines)
    by_key = {(p.frame_bytes, p.cores): p for p in points}
    # doubling cores must not blow up latency (hardware shared queue)
    penalties = [by_key[(s, 12)].avg_us / by_key[(s, 6)].avg_us
                 for s in (64, 512, 1024, 1500)]
    assert max(penalties) < 1.4


def test_fig06_messaging(once, emit):
    series = once(figure6_series)
    lines = ["Figure 6: send/recv latency (µs): NIC-assisted vs host DPDK/RDMA"]
    for name, points in series.items():
        lines.append(render_series(name, *zip(*points)))
    emit(*lines)
    assert series["SmartNIC-send"][0][1] < series["DPDK-send"][0][1]


def test_fig07_dma_latency(once, emit):
    series = once(figure7_series)
    lines = ["Figure 7: per-core DMA read/write latency (µs)"]
    for name, points in series.items():
        lines.append(render_series(name, *zip(*points)))
    emit(*lines)
    blocking = dict(series["DMA blocking write"])
    assert blocking[2048] > blocking[4]


def test_fig08_dma_throughput(once, emit):
    series = once(figure8_series)
    lines = ["Figure 8: per-core DMA throughput (Mops)"]
    for name, points in series.items():
        lines.append(render_series(name, *zip(*points)))
    emit(*lines)
    nb = dict(series["DMA non-blocking write"])
    assert nb[4] == pytest.approx(11.0, rel=0.01)


def test_fig09_rdma_latency(once, emit):
    series = once(figure9_series)
    lines = ["Figure 9: RDMA one-sided read/write latency, BlueField (µs)"]
    for name, points in series.items():
        lines.append(render_series(name, *zip(*points)))
    emit(*lines)
    read = dict(series["RDMA one-sided read"])
    assert read[2048] > read[4]


def test_fig10_rdma_throughput(once, emit):
    series = once(figure10_series)
    lines = ["Figure 10: RDMA one-sided throughput (Mops)"]
    for name, points in series.items():
        lines.append(render_series(name, *zip(*points)))
    emit(*lines)
    write = dict(series["RDMA one-sided write"])
    assert write[64] < 2.0   # paper's figure tops out below 2 Mops


def test_table2_memory(once, emit):
    rows = once(table2_rows)
    emit(render_table(rows, title="Table 2: memory hierarchy access latency (ns)"))
    assert rows[1][1] == "8.3"


def test_table3_microbench(once, emit):
    rows = once(table3_rows)
    emit(render_table(rows, title="Table 3 (left): offloaded workloads on CN2350"))
    emit(render_table(table3_accel_rows(),
                      title="Table 3 (right): accelerators"))
    assert len(rows) == 12
