"""Real-operation benchmarks of the Table-3 workload implementations.

These time the *actual Python data-structure operations* (count-min
updates, TCAM lookups, LPM walks, quicksort ranking, …) — complementing
the calibrated virtual-time model with measured wall-clock numbers, and
giving pytest-benchmark something steady-state to chew on.
"""

import pytest

from repro.apps.microbench import (
    CountMinSketch,
    KvCache,
    LpmRouter,
    MaglevTable,
    NaiveBayesClassifier,
    PFabricScheduler,
    QueuedPacket,
    RateLimiter,
    ReplicationChain,
    SoftwareTcam,
    TopRanker,
    FEATURE_CARDINALITIES,
    ip,
    packet_features,
)
from repro.apps.nf import generate_ruleset
from repro.apps.rta import Regex
from repro.sim import Rng


def test_bench_countmin_update(benchmark):
    sketch = CountMinSketch(width=2048, depth=4)
    counter = iter(range(10**9))
    benchmark(lambda: sketch.update(next(counter) % 5000))
    assert sketch.updates > 0


def test_bench_kvcache_mixed(benchmark):
    cache = KvCache(capacity_bytes=1 << 20)
    rng = Rng(1)
    keys = [f"key{i}".encode() for i in range(2000)]
    for key in keys[:1000]:
        cache.write(key, b"v" * 64)

    def op():
        key = keys[rng.randint(0, 1999)]
        if rng.random() < 0.1:
            cache.write(key, b"v" * 64)
        else:
            cache.read(key)

    benchmark(op)
    assert cache.hits + cache.misses > 0


def test_bench_topranker_quicksort(benchmark):
    ranker = TopRanker(n=10)
    rng = Rng(2)
    data = [(i, rng.randint(0, 100_000)) for i in range(512)]
    result = benchmark(lambda: ranker.rank(list(data)))
    assert len(result) == 10


def test_bench_rate_limiter(benchmark):
    limiter = RateLimiter(rate_bytes_per_us=1250.0, burst_bytes=15_000.0)
    clock = iter(range(10**9))
    benchmark(lambda: limiter.admit(next(clock) % 64, 512,
                                    now=float(next(clock))))


def test_bench_tcam_8k_rules(benchmark):
    tcam = SoftwareTcam()
    tcam.install_many(generate_ruleset(8192, rng=Rng(3)))
    rng = Rng(4)

    def lookup():
        from repro.apps.microbench import pack_key
        return tcam.lookup(pack_key(rng.randint(0, (1 << 32) - 1),
                                    rng.randint(0, (1 << 32) - 1),
                                    rng.randint(0, 65535),
                                    rng.randint(0, 65535), 6))

    benchmark(lookup)
    assert tcam.lookups > 0


def test_bench_lpm_lookup(benchmark):
    router = LpmRouter()
    rng = Rng(5)
    for i in range(4096):
        router.add_route(rng.randint(0, (1 << 32) - 1),
                         rng.randint(8, 28), f"hop{i % 64}")
    benchmark(lambda: router.lookup(rng.randint(0, (1 << 32) - 1)))


def test_bench_maglev_pick(benchmark):
    table = MaglevTable([f"b{i}" for i in range(16)], table_size=2039)
    counter = iter(range(10**9))
    benchmark(lambda: table.pick(f"flow{next(counter) % 10_000}"))


def test_bench_pfabric_enqueue_dequeue(benchmark):
    sched = PFabricScheduler()
    rng = Rng(6)

    def op():
        sched.enqueue(QueuedPacket(flow_id=1,
                                   remaining_bytes=rng.randint(64, 100_000)))
        if len(sched) > 256:
            sched.dequeue()

    benchmark(op)


def test_bench_nbayes_classify(benchmark):
    clf = NaiveBayesClassifier(["web", "bulk", "voice"], FEATURE_CARDINALITIES)
    rng = Rng(7)
    for _ in range(300):
        clf.train(packet_features(rng.randint(64, 1500),
                                  rng.uniform(0.1, 100.0),
                                  rng.randint(1, 65535)),
                  str(rng.choice(["web", "bulk", "voice"])))
    benchmark(lambda: clf.classify(packet_features(
        rng.randint(64, 1500), rng.uniform(0.1, 100.0),
        rng.randint(1, 65535))))


def test_bench_chain_replication_write(benchmark):
    chain = ReplicationChain([f"r{i}" for i in range(3)])
    counter = iter(range(10**9))
    benchmark(lambda: chain.write(f"k{next(counter) % 1000}", "v"))
    assert chain.writes > 0


def test_bench_regex_filter(benchmark):
    regex = Regex("#[a-z]+")
    benchmark(lambda: regex.search("look at this #hashtag in the stream"))
