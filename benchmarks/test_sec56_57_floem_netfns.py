"""§5.6 (Floem comparison) and §5.7 (network functions on iPipe)."""

import pytest

from repro.experiments.netfns import (
    firewall_latency_vs_load,
    floem_vs_ipipe,
    ipsec_goodput_gbps,
)
from repro.experiments.report import render_table
from repro.nic import LIQUIDIO_CN2360


def test_sec56_floem_comparison(once, emit):
    def run():
        return {
            1024: floem_vs_ipipe(packet_size=1024, clients=96,
                                 duration_us=12_000.0),
            64: floem_vs_ipipe(packet_size=64, clients=96,
                               duration_us=12_000.0),
        }
    results = once(run)
    table = [("packet", "system", "Gbps", "busy cores", "Gbps/core")]
    for size, (floem, ipipe) in results.items():
        for r in (floem, ipipe):
            table.append((f"{size}B", r.system, f"{r.throughput_gbps:.2f}",
                          f"{r.busy_cores:.1f}", f"{r.gbps_per_core:.3f}"))
    emit(render_table(table, title="§5.6: Floem-RTA vs iPipe-RTA efficiency"))
    # iPipe wins per-core efficiency in both regimes
    for size, (floem, ipipe) in results.items():
        assert ipipe.gbps_per_core > floem.gbps_per_core, size


def test_sec57_firewall(once, emit):
    points = once(firewall_latency_vs_load, 8192, 1024,
                  (0.2, 0.5, 0.8, 0.95))
    table = [("load", "mean processing latency (µs)")]
    for load, latency in points:
        table.append((f"{load:.2f}", f"{latency:.2f}"))
    emit(render_table(table, title="§5.7: firewall, 8K wildcard rules, 1KB"))
    # paper: 3.65µs ... 19.41µs as load increases
    assert 2.0 < points[0][1] < 8.0
    assert points[-1][1] > points[0][1]
    assert points[-1][1] < 40.0


def test_sec57_ipsec(once, emit):
    def run():
        return (ipsec_goodput_gbps(duration_us=12_000.0),
                ipsec_goodput_gbps(spec=LIQUIDIO_CN2360,
                                   duration_us=12_000.0))
    g10, g25 = once(run)
    emit(f"§5.7: IPsec gateway goodput, 1KB packets: "
         f"10GbE={g10:.1f} Gbps (paper 8.6), 25GbE={g25:.1f} Gbps (paper 22.9)")
    assert g10 == pytest.approx(8.6, abs=1.6)
    assert g25 == pytest.approx(22.9, abs=3.5)
