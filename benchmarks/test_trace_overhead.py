"""TracePlane overhead: free when absent, cheap and invisible when on.

Two claims back the "zero-cost when disabled" design:

* with no TracePlane installed, the instrumented dataplane produces the
  exact virtual-time results of the seed code path (the hooks are one
  failed attribute lookup per event) and its wall-clock time stays
  within noise of itself across repeats;
* with tracing on, the simulated outcome is byte-identical (tracing
  charges zero virtual time) and the wall-clock slowdown stays within a
  generous bound.
"""

import statistics
import time

from repro.experiments.chaos_study import run_rkv_chaos
from repro.experiments.scheduler_study import run_point
from repro.nic import LIQUIDIO_CN2350

POINT = dict(policy="fcfs", dispersion="low", load=0.7,
             duration_us=20_000.0, seed=5)


def _run_untraced():
    return run_point(LIQUIDIO_CN2350, **POINT)


def _run_traced():
    return run_point(LIQUIDIO_CN2350, traced=True, **POINT)


def _timed(fn, repeats=3):
    times, result = [], None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - t0)
    return result, statistics.median(times)


def test_trace_overhead(once, emit):
    _run_untraced()                       # warm caches/imports
    (mean_off, p99_off), wall_off = _timed(_run_untraced)
    traced, wall_on = _timed(_run_traced)
    mean_on, p99_on, stages = traced
    once(_run_untraced)                   # the headline timed number

    # tracing charges no virtual time: identical simulated outcome
    assert mean_on == mean_off
    assert p99_on == p99_off
    assert stages["service"]["count"] > 0

    ratio = wall_on / wall_off
    emit(f"trace overhead: untraced {wall_off * 1e3:.0f}ms, "
         f"traced {wall_on * 1e3:.0f}ms ({ratio:.2f}x), "
         f"virtual-time results identical")
    # generous bound — this guards against accidental O(n^2) collection
    # or tracing work leaking into the disabled path, not CI jitter
    assert ratio < 4.0


def test_disabled_path_is_deterministic_across_repeats(emit):
    """The no-TracePlane run is the seed code path: repeat runs are
    byte-identical (no tracer residue, no hidden global state)."""
    a = run_rkv_chaos(seed=23, n_requests=12, duration_us=20_000.0)
    b = run_rkv_chaos(seed=23, n_requests=12, duration_us=20_000.0)
    assert a.telemetry_fingerprint() == b.telemetry_fingerprint()
    assert a.stage_latencies == {} and b.stage_latencies == {}
    emit("disabled-path determinism: fingerprints identical across repeats")
