"""Figure 13: host CPU cores used by DPDK vs iPipe per role and size.

The paper drives each application to max throughput and reports the host
CPU usage of every role.  Here both systems run closed-loop at their
natural maximum; see EXPERIMENTS.md for the methodology note (our DPDK
baseline is host-bound rather than line-rate bound, so absolute savings
exceed the paper's while the orderings match).
"""

import pytest

from repro.experiments.applications import ROLES, run_app
from repro.experiments.report import render_table
from repro.nic import LIQUIDIO_CN2350, LIQUIDIO_CN2360

SIZES = (64, 256, 512, 1024)


def _sweep(nic_spec, duration_us=10_000.0):
    cache = {}
    for system in ("dpdk", "ipipe"):
        for app in ("rta", "dt", "rkv"):
            for size in SIZES:
                clients = 192 if size == 64 else 96
                cache[(system, app, size)] = run_app(
                    system, app, nic_spec=nic_spec, packet_size=size,
                    clients=clients, duration_us=duration_us,
                    prefill_keys=4000)
    return cache


def _report(cache, nic_spec, emit, title):
    rows = [("role", "system") + tuple(f"{s}B" for s in SIZES)]
    for role, (app, idx) in ROLES.items():
        for system in ("dpdk", "ipipe"):
            cells = tuple(
                f"{cache[(system, app, size)].host_cores[f's{idx}']:.2f}"
                for size in SIZES)
            rows.append((role, system) + cells)
    emit(render_table(rows, title=title))


@pytest.mark.parametrize("nic_spec,label", [
    (LIQUIDIO_CN2350, "10GbE w/ LiquidIOII CN2350 (Figure 13a)"),
    (LIQUIDIO_CN2360, "25GbE w/ LiquidIOII CN2360 (Figure 13b)"),
])
def test_fig13_host_cores(once, emit, nic_spec, label):
    cache = once(_sweep, nic_spec)
    _report(cache, nic_spec, emit, f"Figure 13: host cores used, {label}")
    # iPipe saves host cores at 256B-1KB on every role
    for role, (app, idx) in ROLES.items():
        for size in (256, 512, 1024):
            dpdk = cache[("dpdk", app, size)].host_cores[f"s{idx}"]
            ipipe = cache[("ipipe", app, size)].host_cores[f"s{idx}"]
            assert ipipe <= dpdk + 0.25, (role, size, dpdk, ipipe)
