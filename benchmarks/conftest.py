"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables or figures and
prints the reproduced rows/series (through ``capsys.disabled`` so the
output survives pytest's capture).  ``once`` wraps ``benchmark.pedantic``
so each expensive simulation executes exactly one timed round.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the target exactly once under the benchmark timer."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _run


@pytest.fixture
def emit(capsys):
    """Print reproduction output past pytest's capture."""

    def _emit(*lines):
        with capsys.disabled():
            print()
            for line in lines:
                print(line)

    return _emit
