"""Figure 16: P99 tail latency under FCFS vs DRR vs the iPipe hybrid."""

import pytest

from repro.experiments.report import render_series
from repro.experiments.scheduler_study import sweep
from repro.nic import LIQUIDIO_CN2350, STINGRAY_PS225

LOADS = (0.3, 0.5, 0.7, 0.9)


@pytest.mark.parametrize("spec,panel", [
    (LIQUIDIO_CN2350, "a/b: 10GbE LiquidIOII CN2350"),
    (STINGRAY_PS225, "c/d: 25GbE Stingray PS225"),
])
@pytest.mark.parametrize("dispersion", ["low", "high"])
def test_fig16_scheduler(once, emit, spec, panel, dispersion):
    results = once(sweep, spec, dispersion, LOADS, 100_000.0)
    lines = [f"Figure 16 ({panel}, {dispersion} dispersion): p99 (µs) vs load"]
    for policy, series in results.items():
        lines.append(render_series(
            f"  {policy}", [l for l, _, _ in series], [p for _, _, p in series],
            xfmt="{:.1f}"))
    emit(*lines)

    p99 = {policy: {load: p for load, _, p in series}
           for policy, series in results.items()}
    if dispersion == "low":
        # hybrid tracks FCFS and beats DRR at high load
        assert p99["ipipe"][0.5] == pytest.approx(p99["fcfs"][0.5], rel=0.15)
        assert p99["ipipe"][0.9] < p99["drr"][0.9] * 1.05
    else:
        # hybrid beats FCFS clearly and at least matches DRR
        assert p99["ipipe"][0.9] < 0.8 * p99["fcfs"][0.9]
        assert p99["ipipe"][0.9] < p99["drr"][0.9] * 1.1
