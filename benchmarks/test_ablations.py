"""Ablation benches for iPipe's design choices (DESIGN.md §4).

* hybrid vs pure FCFS vs pure DRR (the central claim, cf. Figure 16);
* µ+3σ EWMA tail estimator vs the true P99;
* push-only vs push+pull migration under a load trough;
* hardware traffic manager vs software shared queue;
* DMA scatter/gather batching vs per-message transfers (implication I6).
"""

import pytest

from repro.core import Actor, Message, SchedulerConfig
from repro.core.actor import Location
from repro.core.channel import Ring
from repro.experiments.report import render_table
from repro.experiments.scheduler_study import run_point
from repro.experiments.testbed import make_testbed
from repro.nic import DmaEngine, LIQUIDIO_CN2350, STINGRAY_PS225, WorkloadProfile
from repro.sim import LatencyRecorder, LatencyTracker, Rng, Simulator


def test_ablation_hybrid_vs_standalone(once, emit):
    def run():
        return {policy: run_point(LIQUIDIO_CN2350, policy, "high", 0.8,
                                  duration_us=80_000.0)
                for policy in ("fcfs", "drr", "ipipe")}
    results = once(run)
    rows = [("policy", "mean (µs)", "p99 (µs)")]
    for policy, (mean, p99) in results.items():
        rows.append((policy, f"{mean:.1f}", f"{p99:.1f}"))
    emit(render_table(rows, title="Ablation: scheduler discipline at 0.8 "
                                  "load, high dispersion"))
    assert results["ipipe"][1] <= min(results["fcfs"][1],
                                      results["drr"][1]) * 1.15


def test_ablation_tail_estimator(once, emit):
    """µ+3σ EWMA (what firmware can afford) vs the exact P99."""
    def run():
        rng = Rng(12)
        tracker = LatencyTracker(alpha=0.05)
        recorder = LatencyRecorder()
        for _ in range(30_000):
            sample = rng.lognormal(30.0, sigma=0.4)
            tracker.record(sample)
            recorder.record(sample)
        return tracker.tail, recorder.p99
    estimate, true_p99 = once(run)
    emit(f"Ablation: tail estimator µ+3σ={estimate:.1f}µs vs true "
         f"P99={true_p99:.1f}µs (error {abs(estimate / true_p99 - 1) * 100:.1f}%)")
    assert estimate == pytest.approx(true_p99, rel=0.35)


def test_ablation_pull_migration(once, emit):
    """Push-only strands actors on the host after a burst; push+pull
    recovers the NIC's latency advantage."""

    def run_one(pull_enabled: bool) -> float:
        bed = make_testbed()
        config = SchedulerConfig(migration_enabled=True,
                                 migration_cooldown_us=500.0)
        server = bed.add_server("server", LIQUIDIO_CN2350, config=config)
        if not pull_enabled:
            server.runtime.nic_scheduler.on_pull_migration = None

        def handler(actor, msg, ctx):
            yield ctx.compute(us=3.0)
            ctx.reply(msg, size=msg.size)

        actor = Actor("svc", handler, concurrent=True,
                      profile=WorkloadProfile("svc", 3.0, 1.2, 0.8))
        server.runtime.register_actor(actor, steering_keys=["data"])
        client = bed.add_client("client")
        # burst phase: overload pushes the actor to the host
        burst = client.open_loop(dst="server", rate_mpps=3.5, size=512,
                                 rng=Rng(3))
        bed.sim.run(until=8_000.0)
        burst.stop()
        bed.sim.run(until=12_000.0)
        # trough phase: light traffic; pull should bring the actor home
        gen = client.closed_loop(dst="server", clients=2, size=512)
        bed.sim.run(until=60_000.0)
        gen.stop()
        server.runtime.stop()
        return gen.latency.mean, actor.location

    def run():
        return {"push-only": run_one(False), "push+pull": run_one(True)}

    results = once(run)
    rows = [("policy", "trough mean latency (µs)", "final location")]
    for name, (latency, location) in results.items():
        rows.append((name, f"{latency:.1f}", location.value))
    emit(render_table(rows, title="Ablation: push-only vs push+pull "
                                  "migration after a burst"))
    assert results["push+pull"][1] is Location.NIC
    assert results["push+pull"][0] <= results["push-only"][0] * 1.05


def test_ablation_traffic_manager(once, emit):
    """Hardware shared queue vs software spinlock queue (implication I2)."""
    from repro.experiments.characterization import traffic_manager_experiment
    from repro.nic.calibration import SW_SHARED_QUEUE_SYNC_US

    def run():
        hw = traffic_manager_experiment(512, cores=12, duration_us=20_000.0)
        # same experiment with the software queue's sync tax
        import repro.nic.traffic as traffic_mod
        from repro.nic import SmartNic, TrafficManager
        from repro.net import Packet, line_rate_pps
        from repro.sim import Simulator, Timeout, spawn
        sim = Simulator()
        tm = TrafficManager(sim, hardware=False)
        recorder = LatencyRecorder()
        cost = 2.34  # echo cost for 512B
        rate = 0.95 * min(12 * 1e6 / cost, line_rate_pps(10, 512)) / 1e6
        rng = Rng(3)

        def worker():
            while True:
                pkt = yield tm.pop()
                yield Timeout(tm.dequeue_sync_us)
                yield Timeout(cost)
                recorder.record(sim.now - pkt.created_at)

        for _ in range(12):
            spawn(sim, worker())

        def generator():
            while True:
                yield Timeout(rng.poisson_interarrival(rate))
                tm.push(Packet("g", "n", 512, created_at=sim.now))

        spawn(sim, generator())
        sim.run(until=20_000.0)
        sw_rec = LatencyRecorder()
        sw_rec.samples = recorder.samples[len(recorder.samples) // 5:]
        return hw, sw_rec

    hw, sw = once(run)
    emit(render_table(
        [("queue", "avg (µs)", "p99 (µs)"),
         ("hardware TM", f"{hw.avg_us:.2f}", f"{hw.p99_us:.2f}"),
         ("software spinlock", f"{sw.mean:.2f}", f"{sw.p99:.2f}")],
        title="Ablation: hardware traffic manager vs software shared queue"))
    assert sw.mean > hw.avg_us


def test_ablation_dma_batching(once, emit):
    """Scatter/gather aggregation vs per-message DMA (implication I6)."""
    def run():
        dma = DmaEngine(Simulator())
        chunks = [128] * 16
        separate = sum(dma.write_latency_us(c) for c in chunks)
        gathered = dma.write_latency_us(sum(chunks))
        return separate, gathered
    separate, gathered = once(run)
    emit(f"Ablation: 16x128B DMA — per-message {separate:.2f}µs vs "
         f"scatter/gather {gathered:.2f}µs ({separate / gathered:.1f}x)")
    assert gathered < separate / 3
