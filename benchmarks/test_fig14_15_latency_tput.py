"""Figures 14/15: latency vs per-core throughput, DPDK vs iPipe, 512B.

Per-core throughput divides completed operations by the measured role's
host-core usage (RTA worker / DT coordinator / RKV leader), exactly the
paper's accounting.  iPipe's curves sit below-and-right of DPDK's: lower
latency at a higher per-core rate.
"""

import pytest

from repro.experiments.applications import latency_throughput_curve
from repro.experiments.report import render_series
from repro.nic import LIQUIDIO_CN2350, LIQUIDIO_CN2360

CLIENTS = (2, 8, 32)


def _curves(nic_spec):
    out = {}
    for system in ("dpdk", "ipipe"):
        for app in ("rta", "dt", "rkv"):
            out[(system, app)] = latency_throughput_curve(
                system, app, nic_spec=nic_spec, packet_size=512,
                client_counts=CLIENTS, duration_us=12_000.0,
                prefill_keys=4000)
    return out


@pytest.mark.parametrize("nic_spec,label", [
    (LIQUIDIO_CN2350, "Figure 14 (10GbE, 512B)"),
    (LIQUIDIO_CN2360, "Figure 15 (25GbE, 512B)"),
])
def test_latency_vs_per_core_throughput(once, emit, nic_spec, label):
    curves = once(_curves, nic_spec)
    lines = [f"{label}: mean latency (µs) at per-core throughput (Mop/s)"]
    for (system, app), points in curves.items():
        lines.append(render_series(
            f"  {app}-{system}",
            [f"{t:.2f}" for t, _ in points],
            [lat for _, lat in points],
            xfmt="{}", yfmt="{:.1f}"))
    emit(*lines)
    # iPipe's best per-core throughput beats DPDK's for every app
    for app in ("rta", "dt", "rkv"):
        best_dpdk = max(t for t, _ in curves[("dpdk", app)])
        best_ipipe = max(t for t, _ in curves[("ipipe", app)])
        assert best_ipipe > best_dpdk, app
    # and latency at low load is no worse with iPipe
    for app in ("dt", "rkv"):
        assert curves[("ipipe", app)][0][1] < curves[("dpdk", app)][0][1] * 1.1, app
