"""Unit tests for the DES engine."""

import pytest

from repro.sim import SimulationError, Simulator


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.call_at(10.0, order.append, "late")
    sim.call_at(1.0, order.append, "early")
    sim.call_at(5.0, order.append, "middle")
    sim.run()
    assert order == ["early", "middle", "late"]


def test_ties_broken_by_insertion_order():
    sim = Simulator()
    order = []
    for tag in "abc":
        sim.call_at(3.0, order.append, tag)
    sim.run()
    assert order == ["a", "b", "c"]


def test_now_reflects_current_event_time():
    sim = Simulator()
    seen = []
    sim.call_at(7.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [7.5]


def test_call_in_is_relative():
    sim = Simulator()
    times = []
    def chain():
        times.append(sim.now)
        if sim.now < 4:
            sim.call_in(2.0, chain)
    sim.call_in(2.0, chain)
    sim.run()
    assert times == [2.0, 4.0]


def test_run_until_stops_before_future_events():
    sim = Simulator()
    fired = []
    sim.call_at(100.0, fired.append, "x")
    sim.run(until=50.0)
    assert fired == []
    assert sim.now == 50.0
    sim.run()
    assert fired == ["x"]


def test_run_until_advances_time_with_empty_heap():
    sim = Simulator()
    sim.run(until=123.0)
    assert sim.now == 123.0


def test_scheduling_into_the_past_is_an_error():
    sim = Simulator()
    sim.call_at(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(5.0, lambda: None)


def test_negative_delay_is_an_error():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_in(-1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.call_at(1.0, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []
    assert not handle.fired


def test_events_scheduled_during_run_are_executed():
    sim = Simulator()
    fired = []
    sim.call_at(1.0, lambda: sim.call_in(1.0, fired.append, sim.now + 1.0))
    sim.run()
    assert fired == [2.0]


def test_pending_counts_live_events():
    sim = Simulator()
    h1 = sim.call_at(1.0, lambda: None)
    sim.call_at(2.0, lambda: None)
    assert sim.pending() == 2
    h1.cancel()
    assert sim.pending() == 1


def test_step_executes_one_event():
    sim = Simulator()
    fired = []
    sim.call_at(1.0, fired.append, 1)
    sim.call_at(2.0, fired.append, 2)
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert not sim.step()
