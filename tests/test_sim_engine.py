"""Unit tests for the DES engine."""

import pytest

from repro.sim import SimulationError, Simulator


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.call_at(10.0, order.append, "late")
    sim.call_at(1.0, order.append, "early")
    sim.call_at(5.0, order.append, "middle")
    sim.run()
    assert order == ["early", "middle", "late"]


def test_ties_broken_by_insertion_order():
    sim = Simulator()
    order = []
    for tag in "abc":
        sim.call_at(3.0, order.append, tag)
    sim.run()
    assert order == ["a", "b", "c"]


def test_now_reflects_current_event_time():
    sim = Simulator()
    seen = []
    sim.call_at(7.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [7.5]


def test_call_in_is_relative():
    sim = Simulator()
    times = []
    def chain():
        times.append(sim.now)
        if sim.now < 4:
            sim.call_in(2.0, chain)
    sim.call_in(2.0, chain)
    sim.run()
    assert times == [2.0, 4.0]


def test_run_until_stops_before_future_events():
    sim = Simulator()
    fired = []
    sim.call_at(100.0, fired.append, "x")
    sim.run(until=50.0)
    assert fired == []
    assert sim.now == 50.0
    sim.run()
    assert fired == ["x"]


def test_run_until_advances_time_with_empty_heap():
    sim = Simulator()
    sim.run(until=123.0)
    assert sim.now == 123.0


def test_scheduling_into_the_past_is_an_error():
    sim = Simulator()
    sim.call_at(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(5.0, lambda: None)


def test_negative_delay_is_an_error():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_in(-1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.call_at(1.0, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []
    assert not handle.fired


def test_events_scheduled_during_run_are_executed():
    sim = Simulator()
    fired = []
    sim.call_at(1.0, lambda: sim.call_in(1.0, fired.append, sim.now + 1.0))
    sim.run()
    assert fired == [2.0]


def test_pending_counts_live_events():
    sim = Simulator()
    h1 = sim.call_at(1.0, lambda: None)
    sim.call_at(2.0, lambda: None)
    assert sim.pending() == 2
    h1.cancel()
    assert sim.pending() == 1


def test_step_executes_one_event():
    sim = Simulator()
    fired = []
    sim.call_at(1.0, fired.append, 1)
    sim.call_at(2.0, fired.append, 2)
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert not sim.step()


# -- fast path: post / post_at ----------------------------------------------

def test_post_fires_in_time_order_with_args():
    sim = Simulator()
    order = []
    sim.post(10.0, order.append, "late")
    sim.post(1.0, order.append, "early")
    sim.post_at(5.0, order.append, "middle")
    sim.run()
    assert order == ["early", "middle", "late"]


def test_post_and_call_at_share_the_tie_break_sequence():
    # Same-time events must fire in scheduling order regardless of which
    # API scheduled them: the two entry shapes share one seq counter.
    sim = Simulator()
    order = []
    sim.post_at(5.0, order.append, "post-1")
    sim.call_at(5.0, order.append, "call-2")
    sim.post_at(5.0, order.append, "post-3")
    sim.call_at(5.0, order.append, "call-4")
    sim.run()
    assert order == ["post-1", "call-2", "post-3", "call-4"]


def test_post_into_the_past_is_an_error():
    sim = Simulator()
    sim.post(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.post_at(5.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.post(-1.0, lambda: None)


def test_post_counts_toward_pending():
    sim = Simulator()
    sim.post(1.0, lambda: None)
    sim.call_in(2.0, lambda: None)
    assert sim.pending() == 2
    sim.run()
    assert sim.pending() == 0


def test_run_until_stops_before_posted_event():
    sim = Simulator()
    fired = []
    sim.post(10.0, fired.append, "x")
    sim.run(until=5.0)
    assert fired == [] and sim.now == 5.0 and sim.pending() == 1
    sim.run()
    assert fired == ["x"]


# -- pending() counter bookkeeping ------------------------------------------

def test_pending_is_consistent_through_cancel_and_run():
    sim = Simulator()
    handles = [sim.call_at(float(i + 1), lambda: None) for i in range(10)]
    assert sim.pending() == 10
    for h in handles[:4]:
        h.cancel()
    assert sim.pending() == 6
    sim.run(until=5.0)   # events at t=5,6,...,10 minus the cancelled ones
    assert sim.pending() == sum(
        1 for h in handles if not h.cancelled and not h.fired)
    sim.run()
    assert sim.pending() == 0


def test_double_cancel_counts_once():
    sim = Simulator()
    handle = sim.call_at(1.0, lambda: None)
    sim.call_at(2.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert sim.pending() == 1


def test_cancel_after_fire_is_a_noop():
    sim = Simulator()
    handle = sim.call_at(1.0, lambda: None)
    keep = handle            # keep a reference so the pool can't recycle it
    sim.call_at(2.0, lambda: None)
    sim.run()
    assert keep.fired
    keep.cancel()            # must not corrupt the live counter
    assert not keep.cancelled
    assert sim.pending() == 0


# -- tombstone compaction ----------------------------------------------------

def test_compaction_bounds_the_heap_under_watchdog_load():
    from repro.sim.engine import _COMPACT_MIN_DEAD
    sim = Simulator()
    peak = [0]
    count = [0]

    def work():
        count[0] += 1
        watchdog = sim.call_in(1e9, lambda: None)
        watchdog.cancel()
        peak[0] = max(peak[0], len(sim._heap))
        if count[0] < 10_000:
            sim.call_in(1.0, work)

    sim.call_in(1.0, work)
    sim.run()
    # without compaction the heap would hold ~10k tombstones
    assert peak[0] <= 4 * _COMPACT_MIN_DEAD
    assert count[0] == 10_000


def test_compaction_preserves_event_order():
    from repro.sim.engine import _COMPACT_MIN_DEAD
    sim = Simulator()
    order = []
    doomed = [sim.call_at(500.0 + i, lambda: None)
              for i in range(2 * _COMPACT_MIN_DEAD)]
    sim.call_at(3.0, order.append, "c")
    sim.post_at(1.0, order.append, "a")
    sim.call_at(2.0, order.append, "b")
    for h in doomed:
        h.cancel()           # triggers in-place compaction
    assert sim.pending() == 3
    sim.run()
    assert order == ["a", "b", "c"]


def test_compaction_inside_run_keeps_loop_alive():
    from repro.sim.engine import _COMPACT_MIN_DEAD
    sim = Simulator()
    fired = []

    def arm_and_cancel():
        doomed = [sim.call_in(1e6, lambda: None)
                  for _ in range(2 * _COMPACT_MIN_DEAD)]
        for h in doomed:
            h.cancel()       # compacts self._heap while run() iterates it
        sim.post(1.0, fired.append, "after")

    sim.post(1.0, arm_and_cancel)
    sim.run()
    assert fired == ["after"]


# -- handle pooling ----------------------------------------------------------

def test_retained_handle_is_never_recycled():
    sim = Simulator()
    kept = sim.call_at(1.0, lambda: None)
    sim.call_at(2.0, lambda: None)   # discarded: eligible for the pool
    sim.run()
    assert kept.fired
    # schedule many more events; none may alias the retained handle
    fresh = [sim.call_at(10.0 + i, lambda: None) for i in range(8)]
    assert all(h is not kept for h in fresh)
    assert kept.fired        # untouched by later scheduling


def test_pool_reuses_discarded_handles():
    sim = Simulator(pooling=True)
    for i in range(100):
        sim.call_at(float(i), lambda: None)
    sim.run()
    assert len(sim._pool) > 0
    pooled = sim._pool[-1]
    handle = sim.call_at(200.0, lambda: None)
    assert handle is pooled          # recycled, not allocated
    assert not handle.fired and not handle.cancelled


def test_pooling_disabled_allocates_fresh_handles():
    sim = Simulator(pooling=False)
    for i in range(10):
        sim.call_at(float(i), lambda: None)
    sim.run()
    assert sim._pool == []
