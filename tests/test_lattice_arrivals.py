"""Lattice-batched arrival scheduling must be emission-identical to the
per-packet re-arm chain (``OpenLoopGenerator(lattice_us=...)``).

The batched path draws and schedules a whole window of arrivals in one
bookkeeping event; the contract is that emission *timestamps*, packet
count, and RNG draw order are bit-identical to the classic chain —
only internal event sequence numbers differ.
"""

from repro.net.pktgen import OpenLoopGenerator
from repro.sim import Rng, Simulator


def _emissions(lattice_us, until=400.0, poisson=True, rate=0.5, seed=99):
    sim = Simulator()
    record = []
    gen = OpenLoopGenerator(
        sim, send=lambda pkt: record.append((sim.now, pkt.src, pkt.dst)),
        src="c0", dst="s0", rate_mpps=rate, size=128,
        rng=Rng(seed), poisson=poisson, lattice_us=lattice_us)
    sim.run(until=until)
    gen.stop()
    return gen, record


def test_lattice_matches_per_packet_timestamps_poisson():
    chain_gen, chain = _emissions(lattice_us=0.0)
    lattice_gen, lattice = _emissions(lattice_us=8.0)
    assert lattice_gen.sent == chain_gen.sent > 0
    assert lattice == chain


def test_lattice_matches_per_packet_timestamps_deterministic():
    _, chain = _emissions(lattice_us=0.0, poisson=False)
    _, lattice = _emissions(lattice_us=16.0, poisson=False)
    assert lattice == chain


def test_lattice_window_size_does_not_change_emissions():
    _, narrow = _emissions(lattice_us=2.0)
    _, wide = _emissions(lattice_us=64.0)
    assert narrow == wide


def test_stop_halts_mid_window():
    sim = Simulator()
    sent_at = []
    gen = OpenLoopGenerator(
        sim, send=lambda pkt: sent_at.append(sim.now),
        src="c", dst="s", rate_mpps=1.0, size=64,
        rng=Rng(5), lattice_us=50.0)
    sim.post_at(20.0, gen.stop)
    sim.run(until=200.0)
    assert sent_at
    assert max(sent_at) <= 20.0
    assert gen.sent == len(sent_at)
