"""Tests for the calendar-wheel event queue (``Simulator(queue="auto")``).

The wheel is a perf substitution, not a semantic change: every test
here drives the same pre-drawn event plan through an ``auto`` simulator
(which upgrades past the threshold) and a ``heap``-pinned one, and
asserts the observable firing order is identical.  Plans are drawn
*before* the runs so the comparison never depends on RNG call order.
"""

import random

import pytest

from repro.sim import SimulationError, Simulator
from repro.sim.engine import _WHEEL_THRESHOLD


def _fill(sim, count, horizon=1_000.0):
    """Post enough far-future ballast to cross the upgrade threshold."""
    for i in range(count):
        sim.post_at(horizon + i * 0.25, lambda: None)


def test_queue_mode_is_validated():
    with pytest.raises(SimulationError, match="queue mode"):
        Simulator(queue="bogus")


def test_upgrade_is_automatic_and_one_way():
    auto = Simulator(queue="auto")
    pinned = Simulator(queue="heap")
    _fill(auto, _WHEEL_THRESHOLD + 1)
    _fill(pinned, _WHEEL_THRESHOLD + 1)
    assert auto._wheel is not None
    assert pinned._wheel is None
    auto.run(until=10.0)          # draining below threshold stays wheeled
    assert auto._wheel is not None


def test_wheel_and_heap_fire_identical_order():
    rng = random.Random(20260808)
    plan = [(rng.uniform(0.0, 500.0), tag) for tag in range(6_000)]

    def run(queue):
        sim = Simulator(queue=queue)
        fired = []
        for when, tag in plan:
            sim.post_at(when, lambda w=when, t=tag: fired.append((w, t)))
        sim.run()
        return fired, sim.now

    wheel_fired, wheel_now = run("auto")
    heap_fired, heap_now = run("heap")
    assert len(wheel_fired) == len(plan)
    assert wheel_fired == heap_fired
    assert wheel_now == heap_now


def test_cancel_and_reschedule_survive_the_upgrade():
    rng = random.Random(7)
    plan = [(rng.uniform(0.0, 200.0), rng.random() < 0.3, tag)
            for tag in range(5_500)]

    def run(queue):
        sim = Simulator(queue=queue)
        fired = []
        handles = []
        for when, doomed, tag in plan:
            handles.append(
                (sim.call_at(when, lambda t=tag: fired.append(t)), doomed))
        for handle, doomed in handles:
            if doomed:
                handle.cancel()
        sim.run()
        return fired

    assert run("auto") == run("heap")


def test_events_posted_during_wheel_run_fire_in_order():
    def run(queue):
        sim = Simulator(queue=queue)
        fired = []

        def chain(depth):
            fired.append((sim.now, depth))
            if depth:
                sim.post(0.5, chain, depth - 1)

        _fill(sim, _WHEEL_THRESHOLD + 1)
        sim.post_at(1.0, chain, 64)
        sim.run(until=100.0)
        return fired

    assert run("auto") == run("heap")


def test_next_event_time_and_bounded_run_in_wheel_mode():
    sim = Simulator(queue="auto")
    _fill(sim, _WHEEL_THRESHOLD + 1, horizon=50.0)
    sim.post_at(7.25, lambda: None)
    assert sim.next_event_time() == 7.25
    sim.run(until=5.0)
    assert sim.now == 5.0
    assert sim.next_event_time() == 7.25


def test_step_executes_one_event_in_wheel_mode():
    sim = Simulator(queue="auto")
    fired = []
    _fill(sim, _WHEEL_THRESHOLD + 1, horizon=90.0)
    sim.post_at(1.0, lambda: fired.append("a"))
    sim.post_at(2.0, lambda: fired.append("b"))
    assert sim._wheel is not None
    assert sim.step()
    assert fired == ["a"]
    assert sim.now == 1.0
