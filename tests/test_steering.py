"""SteerPlane: Maglev increments, epoch steering, cross-rack migration.

Covers the steering layer end to end: incremental MaglevTable changes
(minimal disruption, property-tested), the epoch-versioned
SteeringController, rack_down fault expansion, the CrossRackMigrator's
four-phase protocol (buffered phase-3 arrivals, duplicate suppression,
idempotent restart after a destination failure), the SteeringMonitor,
spec round-trips, and the shipped ``multi-rack-rebalance`` scenario.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import CheckPlane
from repro.core.migration import CrossRackMigrator, MigrationInterrupted
from repro.experiments.steering_study import (
    SteeredChaosClient,
    rebalance_spec,
    run_rebalance_chaos,
)
from repro.net import MaglevTable, Packet, SteeringController
from repro.scenario import (
    RebalanceSpec,
    ScenarioError,
    SteeringSpec,
    build,
    from_dict,
    load_shipped,
    run_scenario,
    to_dict,
)
from repro.sim import FaultKind, FaultSpec, Simulator, Timeout, spawn

TABLE = 251

backend_lists = st.integers(min_value=2, max_value=8).map(
    lambda n: [f"b{i}" for i in range(n)])


# -- Maglev incremental updates ------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(backend_lists, st.integers(min_value=0, max_value=7))
def test_maglev_remove_touches_only_freed_slots(backends, victim_idx):
    victim = backends[victim_idx % len(backends)]
    table = MaglevTable(backends, table_size=TABLE)
    before = list(table.lookup_table)
    table.remove_backend(victim)
    moved = sum(1 for old, new in zip(before, table.lookup_table)
                if old != new)
    # only the victim's slots are remapped: disruption is exactly the
    # victim's share (~T/M), comfortably under the 2T/M bound
    assert moved == sum(1 for owner in before if owner == victim)
    assert moved <= 2 * TABLE // len(backends) + 1
    for old, new in zip(before, table.lookup_table):
        if old != victim:
            assert new == old
    assert all(owner is not None for owner in table.lookup_table)


@settings(max_examples=30, deadline=None)
@given(backend_lists)
def test_maglev_add_steals_at_most_fair_share(backends):
    table = MaglevTable(backends, table_size=TABLE)
    before = list(table.lookup_table)
    table.add_backend("newcomer")
    moved = [i for i, (old, new) in enumerate(zip(before, table.lookup_table))
             if old != new]
    fair = TABLE // (len(backends) + 1)
    assert len(moved) <= 2 * TABLE // (len(backends) + 1) + 1
    # every remapped slot went to the newcomer, nothing shuffled sideways
    for i in moved:
        assert table.lookup_table[i] == "newcomer"
    assert sum(1 for b in table.lookup_table if b == "newcomer") == fair


@settings(max_examples=30, deadline=None)
@given(backend_lists, st.integers(min_value=0, max_value=7))
def test_maglev_replace_is_zero_disruption(backends, victim_idx):
    old = backends[victim_idx % len(backends)]
    table = MaglevTable(backends, table_size=TABLE)
    before = list(table.lookup_table)
    table.replace_backend(old, "replacement")
    for prev, now in zip(before, table.lookup_table):
        assert now == ("replacement" if prev == old else prev)


def test_maglev_remove_rebalances_share():
    table = MaglevTable([f"b{i}" for i in range(5)], table_size=TABLE)
    table.remove_backend("b2")
    for b in table.backends:
        assert table.share(b) == pytest.approx(1 / 4, abs=0.05)


def test_maglev_replace_rejects_duplicate():
    table = MaglevTable(["a", "b"], table_size=TABLE)
    with pytest.raises(ValueError):
        table.replace_backend("a", "b")
    with pytest.raises(ValueError):
        table.add_backend("b")


def test_maglev_reexported_from_microbench():
    from repro.apps.microbench import MaglevTable as Shim
    assert Shim is MaglevTable


# -- SteeringController --------------------------------------------------------

def _controller():
    sim = Simulator()
    ctrl = SteeringController(sim)
    ctrl.add_service("kv", ["s0", "s1", "s2"], table_size=TABLE)
    return sim, ctrl


def _vip_packet(flow: str, uid=None) -> Packet:
    pkt = Packet("client", "svc:kv", 128)
    pkt.meta["steer_key"] = flow
    if uid is not None:
        pkt.meta["req_uid"] = uid
    return pkt


def test_route_rewrites_and_pins():
    _, ctrl = _controller()
    pkt = _vip_packet("conn0")
    assert ctrl.route(pkt)
    backend = pkt.dst
    assert backend in ("s0", "s1", "s2")
    assert pkt.meta["steer_epoch"] == 0
    # second packet of the flow sticks to the pin
    pkt2 = _vip_packet("conn0")
    ctrl.route(pkt2)
    assert pkt2.dst == backend
    assert ctrl.pinned_hits == 1
    # non-VIP traffic passes through untouched
    plain = Packet("client", "s1", 64)
    assert not ctrl.route(plain)


def test_repoint_bumps_epoch_and_keeps_window_pins():
    _, ctrl = _controller()
    pkt = _vip_packet("conn0")
    ctrl.route(pkt)
    old = pkt.dst
    new_epoch = ctrl.replace_backend("kv", old, "s9")
    assert new_epoch == 1
    # the pin survives the repoint (it IS the forwarding window) ...
    again = _vip_packet("conn0")
    ctrl.route(again)
    assert again.dst == old and again.meta["steer_epoch"] == 0
    # ... until the flush closes it; then the flow re-steers to the
    # renamed backend in the new epoch
    assert ctrl.flush("kv", old) == 1
    fresh = _vip_packet("conn0")
    ctrl.route(fresh)
    assert fresh.dst == "s9" and fresh.meta["steer_epoch"] == 1


def test_owner_at_answers_per_epoch():
    _, ctrl = _controller()
    pkt = _vip_packet("conn0")
    ctrl.route(pkt)
    old = pkt.dst
    ctrl.replace_backend("kv", old, "s9")
    assert ctrl.owner_at("kv", 0, "conn0") == old
    assert ctrl.owner_at("kv", 1, "conn0") == "s9"
    assert ctrl.owner_at("kv", 7, "conn0") is None
    assert ctrl.owner_at("nope", 0, "conn0") is None


def test_note_delivery_ledger():
    _, ctrl = _controller()
    pkt = _vip_packet("conn0", uid=("req", 4))
    ctrl.route(pkt)
    ctrl.note_delivery(pkt.dst, pkt)
    ((_, svc, uid, backend, epoch, flow),) = ctrl.deliveries
    assert (svc, uid, backend, epoch, flow) == (
        "kv", ("req", 4), pkt.dst, 0, "conn0")
    # unsteered packets are not noted
    ctrl.note_delivery("s0", Packet("client", "s0", 64))
    assert len(ctrl.deliveries) == 1


# -- SteeringMonitor -----------------------------------------------------------

def test_steering_monitor_flags_wrong_owner_and_double_delivery():
    sim = Simulator()
    plane = CheckPlane(sim, strict=False, every=1)
    ctrl = SteeringController(sim)
    ctrl.add_service("kv", ["s0", "s1", "s2"], table_size=TABLE)
    monitor = plane.watch_steering(ctrl)
    assert plane.watch_steering(ctrl) is monitor  # singleton
    pkt = _vip_packet("conn0", uid=("req", 0))
    ctrl.route(pkt)
    owner = pkt.dst
    wrong = next(b for b in ("s0", "s1", "s2") if b != owner)
    # planted: a delivery on a backend that does not own the flow's key
    ctrl.deliveries.append((sim.now, "kv", ("req", 1), wrong, 0, "conn0"))
    # planted: the same uid handed to two different backends in one epoch
    ctrl.deliveries.append((sim.now, "kv", ("req", 2), owner, 0, "conn0"))
    ctrl.deliveries.append((sim.now, "kv", ("req", 2), wrong, 0, "conn0"))
    plane.check_now()
    messages = [v.message for v in plane.violations
                if v.monitor == "steering"]
    assert any("epoch owner" in m for m in messages)
    assert any("exactly-once" in m for m in messages)


def test_steering_monitor_accepts_clean_ledgers():
    sim = Simulator()
    plane = CheckPlane(sim, strict=False, every=1)
    ctrl = SteeringController(sim)
    ctrl.add_service("kv", ["s0", "s1"], table_size=TABLE)
    plane.watch_steering(ctrl)
    for i in range(8):
        pkt = _vip_packet(f"conn{i % 3}", uid=("req", i))
        ctrl.route(pkt)
        ctrl.note_delivery(pkt.dst, pkt)
    # a same-backend retransmit is the retry path, not a violation
    pkt = _vip_packet("conn0", uid=("req", 0))
    ctrl.route(pkt)
    ctrl.note_delivery(pkt.dst, pkt)
    plane.check_now()
    assert not plane.violations


# -- rack_down faults ----------------------------------------------------------

def test_rack_down_expands_to_rack_links():
    spec = rebalance_spec(seed=7, duration_us=6_000.0, notice_us=500.0)
    sim = Simulator()
    bed = build(spec, sim=sim)
    plane = bed.fault_plane
    assert plane.rack_schedule() == [("rack1", 2_700.0, 1_500.0)]
    events = []
    plane.rack_listeners.append(lambda kind, rack: events.append((kind, rack)))
    n_specs = len(plane.specs)
    bed.sim.run(until=6_000.0)
    # 2 server uplinks + 2 ToR downlinks + ToR uplink + spine downlink
    assert len(plane.specs) == n_specs + 6
    added = plane.specs[n_specs:]
    assert all(s.kind == FaultKind.LINK_LOSS and s.probability == 1.0
               for s in added)
    names = {s.target for s in added}
    assert {"r1s0.up", "r1s1.up", "rack1.spine-up",
            "rack1.spine-down"} <= names
    assert ("down", "rack1") in events and ("up", "rack1") in events
    log_kinds = [(kind, comp) for _, kind, comp in plane.schedule_log]
    assert ("rack_down", "rack1") in log_kinds
    assert ("rack_up", "rack1") in log_kinds


def test_rack_down_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec(kind=FaultKind.RACK_DOWN, target="rack0",
                  at_us=(100.0,))                       # no duration
    with pytest.raises(ValueError):
        FaultSpec(kind=FaultKind.RACK_DOWN, target="rack0",
                  probability=0.5, duration_us=10.0)    # not probabilistic
    FaultSpec(kind=FaultKind.RACK_DOWN, target="rack0",
              at_us=(100.0,), duration_us=10.0)


def test_fault_plane_rack_down_convenience():
    spec = rebalance_spec(seed=7, duration_us=6_000.0)
    bed = build(spec)
    bed.fault_plane.rack_down("rack2", at_us=1_000.0, duration_us=200.0)
    assert ("rack2", 1_000.0, 200.0) in bed.fault_plane.rack_schedule()


# -- cross-rack migration ------------------------------------------------------

def _steered_bed(seed=11):
    """A steered 3-rack deployment with no scheduled faults/rebalance."""
    spec = rebalance_spec(seed=seed, duration_us=60_000.0)
    spec = from_dict({**to_dict(spec), "faults": [], "rebalance": None})
    sim = Simulator()
    CheckPlane(sim, strict=False)
    bed = build(spec, sim=sim)
    client = SteeredChaosClient(bed.sim, bed.network, name="client0",
                                timeout_us=2_500.0,
                                port=bed.clients["client0"],
                                connections=1)
    return bed, client


def _flow_on(bed, backend: str) -> str:
    table = bed.steering.service("rkv").table
    for i in range(1000):
        if table.pick(f"client0:conn{i}") == backend:
            return f"conn{i}"
    raise AssertionError(f"no flow hashing to {backend}")


def _movable(bed, node_name: str):
    node = bed.app("rkv").nodes[node_name]
    return (["consensus", "memtable", "sst_read", "compaction"],
            node.detach, node.attach)


def test_cross_rack_migration_zero_loss_and_handoff():
    bed, client = _steered_bed()
    migrator = CrossRackMigrator(bed.sim, steering=bed.steering)
    flow = _flow_on(bed, "r1s0")
    client.decorate = lambda pkt, rid: pkt.meta.update(
        req_uid=("req", rid), steer_key=f"client0:{flow}")
    actors, detach, attach = _movable(bed, "r1s0")
    src = bed.server("r1s0").runtime
    dst = bed.server("r0s1").runtime

    def driver():
        for i in range(4):
            client.request("svc:rkv", "rkv-put",
                           {"key": f"k{i}", "value": b"x" * 32}, size=160)
            yield Timeout(300.0)
        yield from migrator.migrate(src, dst, actors, service="rkv",
                                    detach=detach, attach=attach,
                                    window_us=1_000.0)
        for i in range(4, 8):
            client.request("svc:rkv", "rkv-put",
                           {"key": f"k{i}", "value": b"x" * 32}, size=160)
            yield Timeout(300.0)

    spawn(bed.sim, driver(), name="driver")
    bed.sim.run(until=30_000.0)
    assert client.lost == 0 and client.answered == 8
    assert client.duplicate_replies == 0
    # the backend now lives on the destination
    assert src.actors.lookup("consensus") is None
    assert dst.actors.lookup("consensus") is not None
    assert bed.steering.service("rkv").epoch == 1
    # post-flush requests steered straight to the new home, and the
    # monitor saw nothing illegal
    assert not [v for v in bed.sim.checker.violations
                if v.monitor == "steering"]
    # migrated state survived: the keys written pre-move are readable
    node = bed.app("rkv").nodes["r1s0"]
    assert node.memtable.get("k0") == b"x" * 32


def test_phase3_arrival_is_buffered_then_forwarded():
    bed, client = _steered_bed()
    migrator = CrossRackMigrator(bed.sim, steering=bed.steering)
    flow = _flow_on(bed, "r1s0")
    client.decorate = lambda pkt, rid: pkt.meta.update(
        req_uid=("req", rid), steer_key=f"client0:{flow}")
    node = bed.app("rkv").nodes["r1s0"]
    node.prefill(2_000, 64)  # fatten the checkpoint: long phase 3
    actors, detach, attach = _movable(bed, "r1s0")
    src = bed.server("r1s0").runtime
    dst = bed.server("r2s1").runtime
    assert migrator.wire_transfer_us(
        src, len(node.detach()["memtable"]) * 80) > 40.0

    def mover():
        yield from migrator.migrate(src, dst, actors, service="rkv",
                                    detach=detach, attach=attach,
                                    window_us=1_500.0)

    t0 = 1_000.0
    bed.sim.call_at(t0, lambda: spawn(bed.sim, mover(), name="mover"))
    # lands mid-transfer: after drain, before the phase-4 hand-over
    bed.sim.call_at(t0 + 45.0, client.request, "svc:rkv", "rkv-get",
                    {"key": "key0000000000001"})
    bed.sim.run(until=20_000.0)
    assert client.lost == 0 and client.answered == 1
    report = migrator.reports[0]
    assert report.forwarded_requests >= 1
    assert report.moved_bytes > 100_000
    assert client.replies[0].payload["value"] is not None


def test_retransmit_racing_repoint_is_suppressed():
    bed, client = _steered_bed()
    client.timeout_us = 40.0  # retransmit while the move is in flight
    migrator = CrossRackMigrator(bed.sim, steering=bed.steering)
    flow = _flow_on(bed, "r1s0")
    client.decorate = lambda pkt, rid: pkt.meta.update(
        req_uid=("req", rid), steer_key=f"client0:{flow}")
    node = bed.app("rkv").nodes["r1s0"]
    node.prefill(2_000, 64)
    actors, detach, attach = _movable(bed, "r1s0")
    src = bed.server("r1s0").runtime
    dst = bed.server("r2s1").runtime

    def mover():
        yield from migrator.migrate(src, dst, actors, service="rkv",
                                    detach=detach, attach=attach,
                                    window_us=1_500.0)

    t0 = 1_000.0
    bed.sim.call_at(t0, lambda: spawn(bed.sim, mover(), name="mover"))
    bed.sim.call_at(t0 + 30.0, client.request, "svc:rkv", "rkv-put",
                    {"key": "kk", "value": b"v" * 16}, 140)
    bed.sim.run(until=20_000.0)
    assert client.answered == 1 and client.lost == 0
    assert client.retransmits >= 1
    # both copies reached the wire; exactly one was delivered
    assert src.steer_suppressed + dst.steer_suppressed >= 1
    assert client.duplicate_replies == 0
    assert not [v for v in bed.sim.checker.violations
                if v.monitor == "steering"]


def test_interrupted_migration_restarts_idempotently():
    bed, client = _steered_bed()
    migrator = CrossRackMigrator(bed.sim, steering=bed.steering)
    node = bed.app("rkv").nodes["r1s0"]
    node.prefill(2_000, 64)
    detach_calls = []
    actors, detach, attach = _movable(bed, "r1s0")

    def counting_detach():
        detach_calls.append(bed.sim.now)
        return detach()

    src = bed.server("r1s0").runtime
    dst_a = bed.server("r2s1").runtime
    dst_b = bed.server("r0s1").runtime
    outcome = {}

    def mover():
        try:
            yield from migrator.migrate(src, dst_a, actors, service="rkv",
                                        detach=counting_detach,
                                        attach=attach, window_us=1_000.0)
        except MigrationInterrupted as exc:
            outcome["interrupted"] = exc.dst_node
        report = yield from migrator.migrate(
            src, dst_b, actors, service="rkv",
            detach=counting_detach, attach=attach, window_us=1_000.0)
        outcome["report"] = report

    bed.sim.call_at(100.0, lambda: spawn(bed.sim, mover(), name="mover"))
    bed.sim.call_at(160.0, dst_a.stop)  # dies mid-transfer
    bed.sim.run(until=20_000.0)
    assert outcome["interrupted"] == "r2s1"
    # the checkpoint was taken exactly once: the retry resumed from the
    # recorded milestone instead of re-draining a deleted source
    assert len(detach_calls) == 1
    assert outcome["report"].direction == "xrack:r1s0->r0s1"
    assert src.actors.lookup("consensus") is None
    assert dst_b.actors.lookup("consensus") is not None
    assert bed.steering.service("rkv").table.pick("anything") != "r1s0"


# -- scenario spec plumbing ----------------------------------------------------

def test_steering_spec_roundtrip():
    spec = rebalance_spec(seed=5)
    again = from_dict(to_dict(spec))
    assert again == spec
    assert again.steering[0].window_us == 1_500.0
    assert again.rebalance.notice_us == 6_000.0


def test_steering_spec_validation_errors():
    base = to_dict(rebalance_spec(seed=5))
    bad = {**base, "steering": [{"service": "kv", "app": "nope"}]}
    with pytest.raises(ScenarioError, match="app 'nope' not"):
        from_dict(bad).validate()
    bad = {**base, "steering": [], "rebalance": None, "fleets": [
        {"client": "client0", "dst": "svc:rkv"}]}
    with pytest.raises(ScenarioError, match="steering service"):
        from_dict(bad).validate()
    bad = {**base, "steering": []}
    with pytest.raises(ScenarioError, match="rebalance: needs a steering"):
        from_dict(bad).validate()
    bad = {**base, "faults": [{"kind": "rack_down", "target": "rack9",
                               "at_us": [10.0], "duration_us": 5.0}]}
    with pytest.raises(ScenarioError, match="rack9"):
        from_dict(bad).validate()


def test_shipped_rebalance_spec_runs_deterministically():
    spec = load_shipped("multi-rack-rebalance")
    spec.validate()
    a = run_scenario(spec).fingerprint()
    b = run_scenario(spec).fingerprint()
    assert a == b
    assert a[2] > 0  # traffic actually flowed


# -- the acceptance study ------------------------------------------------------

QUICK = dict(seed=42, duration_us=20_000.0, n_requests=40,
             send_gap_us=300.0, notice_us=3_000.0)


def test_rebalance_chaos_quick_invariants():
    report = run_rebalance_chaos(**QUICK)
    assert report.ok, report.invariants
    assert report.invariants == {"zero_loss": True, "steering_safety": True,
                                 "evacuated": True, "returned": True}
    assert report.answered == report.requests == 40
    assert report.duplicate_replies == 0
    moves = report.steering["moves"]
    assert len(moves) == 2
    assert moves[0][3:] == ("r1s0", "r0s1")   # evacuation
    assert moves[1][3:] == ("r0s1", "r1s0")   # repatriation
    assert report.steering["epochs"] == 2


def test_rebalance_chaos_replays_bit_identically():
    a = run_rebalance_chaos(**QUICK)
    b = run_rebalance_chaos(**QUICK)
    assert a.telemetry_fingerprint() == b.telemetry_fingerprint()
    # the steering telemetry is folded into the fingerprint
    assert any("epochs" in str(part) for part in a.telemetry_fingerprint())


def test_cli_exposes_steering_chaos_target():
    from repro.cli import CHECK_TARGETS, _check_run_fn
    assert "steering-chaos" in CHECK_TARGETS
    assert "scenario-multi-rack-rebalance" in CHECK_TARGETS
    point = _check_run_fn("steering-chaos", quick=True, seed=42)()
    assert point["ok"] and point["invariants"]["zero_loss"]
