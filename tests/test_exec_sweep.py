"""Determinism and caching tests for the sweep executor.

The executor's contract is strict: a parallel run and a cached replay
must be *byte-identical* (pickle-equal) to the serial reference run —
including traced scheduler points and seeded FaultPlane chaos schedules.
"""

import dataclasses
import pickle

import pytest

from repro.exec import (
    ParallelSweep,
    ResultCache,
    SweepPoint,
    canonical,
    code_fingerprint,
    result_fingerprint,
    run_grid,
)
from repro.exec.grids import chaos_point
from repro.experiments.scheduler_study import run_point
from repro.nic import LIQUIDIO_CN2350


def square(x):
    return x * x


def pair(a, b=0):
    return (a, b)


# -- canonical / keys ---------------------------------------------------------

def test_canonical_is_order_independent_for_mappings():
    assert canonical({"b": 2, "a": 1}) == canonical({"a": 1, "b": 2})
    assert canonical({1: "x", 2: "y"}) == canonical({2: "y", 1: "x"})


def test_canonical_distinguishes_container_types():
    assert canonical([1, 2]) != canonical((1, 2))
    assert canonical({1, 2}) == canonical({2, 1})


def test_canonical_handles_dataclasses_by_field():
    @dataclasses.dataclass
    class Cfg:
        rate: float
        name: str

    assert canonical(Cfg(1.5, "a")) == canonical(Cfg(1.5, "a"))
    assert canonical(Cfg(1.5, "a")) != canonical(Cfg(2.5, "a"))
    assert "Cfg" in canonical(Cfg(1.5, "a"))


def test_canonical_rejects_objects_with_address_reprs():
    class Opaque:
        pass

    with pytest.raises(TypeError):
        canonical(Opaque())


def test_cache_key_depends_on_kwargs_and_code_fingerprint(tmp_path):
    cache = ResultCache(tmp_path / "c")
    k1 = cache.key_for(square, {"x": 1})
    k2 = cache.key_for(square, {"x": 2})
    assert k1 != k2
    other = ResultCache(tmp_path / "c", code_fp="0" * 64)
    assert other.key_for(square, {"x": 1}) != k1


def test_nic_spec_kwargs_produce_stable_keys(tmp_path):
    # NicSpec is a dataclass: the exact kwargs the figure grids pass must
    # canonicalise without tripping the address-repr guard.
    cache = ResultCache(tmp_path / "c")
    key = cache.key_for(run_point, {"spec": LIQUIDIO_CN2350, "policy": "fcfs",
                                    "dispersion": "low", "load": 0.5})
    assert key == cache.key_for(run_point,
                                {"load": 0.5, "dispersion": "low",
                                 "policy": "fcfs", "spec": LIQUIDIO_CN2350})


# -- ResultCache --------------------------------------------------------------

def test_cache_roundtrip_and_miss_stats(tmp_path):
    cache = ResultCache(tmp_path / "c")
    key = cache.key_for(square, {"x": 3})
    hit, _ = cache.get(key)
    assert not hit
    cache.put(key, 9)
    hit, value = cache.get(key)
    assert hit and value == 9
    assert (cache.hits, cache.misses, cache.puts) == (1, 1, 1)


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path / "c")
    key = cache.key_for(square, {"x": 3})
    cache.put(key, 9)
    path = cache._path(key)
    path.write_bytes(b"not a pickle")
    hit, _ = cache.get(key)
    assert not hit


def test_cache_clear_removes_entries(tmp_path):
    cache = ResultCache(tmp_path / "c")
    for x in range(3):
        cache.put(cache.key_for(square, {"x": x}), x * x)
    assert cache.clear() == 3
    hit, _ = cache.get(cache.key_for(square, {"x": 0}))
    assert not hit


# -- ParallelSweep mechanics --------------------------------------------------

def test_merge_order_is_sorted_key_order_not_input_order():
    points = [SweepPoint(("b", 2), square, {"x": 2}),
              SweepPoint(("a", 9), square, {"x": 3}),
              SweepPoint(("b", 1), square, {"x": 4})]
    report = ParallelSweep(jobs=1).run(points)
    assert list(report.results) == [("a", 9), ("b", 1), ("b", 2)]
    assert report.results[("a", 9)] == 9


def test_duplicate_point_keys_are_rejected():
    points = [SweepPoint(("a",), square, {"x": 1}),
              SweepPoint(("a",), square, {"x": 2})]
    with pytest.raises(ValueError, match="duplicate"):
        ParallelSweep(jobs=1).run(points)


def test_run_grid_reports_executed_and_hits(tmp_path):
    cache = ResultCache(tmp_path / "c")
    points = [SweepPoint((x,), square, {"x": x}) for x in range(4)]
    first = run_grid(points, cache=cache)
    assert (first.executed, first.cache_hits) == (4, 0)
    replay = run_grid(points, cache=ResultCache(tmp_path / "c"))
    assert (replay.executed, replay.cache_hits) == (0, 4)
    assert replay.hit_rate == 1.0
    assert pickle.dumps(replay.results) == pickle.dumps(first.results)


# -- byte-identity: parallel and cached vs serial -----------------------------

def _tiny_fig16_points(traced=False):
    points = []
    for policy in ("fcfs", "ipipe"):
        for load in (0.5, 0.8):
            points.append(SweepPoint(
                (policy, load, traced), run_point,
                dict(spec=LIQUIDIO_CN2350, policy=policy, dispersion="high",
                     load=load, duration_us=4_000.0, seed=1, traced=traced)))
    return points


def test_parallel_sweep_is_byte_identical_to_serial():
    serial = ParallelSweep(jobs=1).run(_tiny_fig16_points())
    pooled = ParallelSweep(jobs=2).run(_tiny_fig16_points())
    assert pickle.dumps(pooled.results) == pickle.dumps(serial.results)


def test_traced_points_survive_the_pool_byte_identically():
    # traced=True attaches a TracePlane and returns its per-stage table;
    # the pool path must reproduce the serial stage report exactly.
    # (Compared per point: whole-dict pickles additionally encode string
    # interning accidents across points — see result_fingerprint.)
    serial = ParallelSweep(jobs=1).run(_tiny_fig16_points(traced=True))
    pooled = ParallelSweep(jobs=2).run(_tiny_fig16_points(traced=True))
    assert list(pooled.results) == list(serial.results)
    assert result_fingerprint(pooled.results) == result_fingerprint(serial.results)
    sample = next(iter(serial.results.values()))
    assert len(sample) == 3 and isinstance(sample[2], dict)


def test_cached_replay_is_byte_identical_to_serial(tmp_path):
    points = _tiny_fig16_points()
    serial = ParallelSweep(jobs=1).run(points)
    cold = ParallelSweep(jobs=1, cache=ResultCache(tmp_path / "c")).run(points)
    warm = ParallelSweep(jobs=1, cache=ResultCache(tmp_path / "c")).run(points)
    assert warm.cache_hits == len(points) and warm.executed == 0
    for report in (cold, warm):
        assert pickle.dumps(report.results) == pickle.dumps(serial.results)


def test_stale_code_fingerprint_invalidates_the_cache(tmp_path):
    points = _tiny_fig16_points()[:1]
    ParallelSweep(jobs=1, cache=ResultCache(tmp_path / "c")).run(points)
    stale = ResultCache(tmp_path / "c", code_fp="f" * 64)
    report = ParallelSweep(jobs=1, cache=stale).run(points)
    assert report.cache_hits == 0 and report.executed == 1


def test_chaos_fingerprint_identical_across_pool_and_cache(tmp_path):
    # Seeded FaultPlane schedules: the chaos telemetry fingerprint (fault
    # schedule + recovery counters) must replay byte-identically through
    # every execution path.
    points = [SweepPoint(("chaos", "rkv", 42), chaos_point,
                         dict(workload="rkv", seed=42,
                              duration_us=20_000.0))]
    serial = ParallelSweep(jobs=1).run(points)
    cold = ParallelSweep(jobs=2, cache=ResultCache(tmp_path / "c")).run(points)
    warm = ParallelSweep(jobs=2, cache=ResultCache(tmp_path / "c")).run(points)
    fp = result_fingerprint(serial.results)
    assert result_fingerprint(cold.results) == fp
    assert result_fingerprint(warm.results) == fp
    assert warm.cache_hits == 1
    result = serial.results[("chaos", "rkv", 42)]
    assert result["fingerprint"] == cold.results[("chaos", "rkv", 42)]["fingerprint"]
    assert isinstance(result["fingerprint"], tuple)


def test_result_fingerprint_detects_any_content_change():
    base = {("a",): (1.0, 2.0), ("b",): (3.0, 4.0)}
    assert result_fingerprint(base) == result_fingerprint(dict(base))
    changed = {("a",): (1.0, 2.0), ("b",): (3.0, 4.5)}
    reordered = {("b",): (3.0, 4.0), ("a",): (1.0, 2.0)}
    assert result_fingerprint(changed) != result_fingerprint(base)
    assert result_fingerprint(reordered) != result_fingerprint(base)


def test_code_fingerprint_is_stable_within_a_process():
    assert code_fingerprint() == code_fingerprint()
    assert len(code_fingerprint()) == 64
