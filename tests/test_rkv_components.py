"""Unit tests for the RKV building blocks: skip list, LSM tree, Multi-Paxos."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.rkv import DmoSkipList, LsmTree, MultiPaxosNode
from repro.core import DmoManager, Location
from repro.sim import Rng


# -- skip list ------------------------------------------------------------------

@pytest.fixture
def dmo():
    mgr = DmoManager(region_bytes=32 << 20)
    mgr.create_region("memtable")
    return mgr


def test_skiplist_insert_get(dmo):
    sl = DmoSkipList(dmo, "memtable", rng=Rng(1))
    sl.insert("b", b"2")
    sl.insert("a", b"1")
    sl.insert("c", b"3")
    assert sl.get("a") == b"1"
    assert sl.get("b") == b"2"
    assert sl.get("missing") is None
    assert len(sl) == 3


def test_skiplist_overwrite_frees_old_value(dmo):
    sl = DmoSkipList(dmo, "memtable", rng=Rng(1))
    sl.insert("k", b"old-value")
    sl.insert("k", b"new")
    assert sl.get("k") == b"new"
    assert len(sl) == 1


def test_skiplist_tombstone(dmo):
    sl = DmoSkipList(dmo, "memtable", rng=Rng(1))
    sl.insert("k", b"v")
    sl.delete("k")
    assert sl.get("k") is None
    assert sl.is_tombstoned("k")


def test_skiplist_items_sorted(dmo):
    sl = DmoSkipList(dmo, "memtable", rng=Rng(1))
    for key in ("delta", "alpha", "charlie", "bravo"):
        sl.insert(key, key.encode())
    assert [k for k, _, _ in sl.items()] == ["alpha", "bravo", "charlie", "delta"]


def test_skiplist_nodes_are_dmos(dmo):
    sl = DmoSkipList(dmo, "memtable", rng=Rng(1))
    sl.insert("k", b"v")
    # head + node + value objects all live in the NIC object table
    assert len(dmo.tables[Location.NIC]) >= 3


@given(st.dictionaries(st.text(alphabet="abcdefgh", min_size=1, max_size=6),
                       st.binary(min_size=0, max_size=20), max_size=40))
@settings(max_examples=40, deadline=None)
def test_skiplist_matches_dict_semantics(mapping):
    mgr = DmoManager(region_bytes=32 << 20)
    mgr.create_region("m")
    sl = DmoSkipList(mgr, "m", rng=Rng(5))
    for k, v in mapping.items():
        sl.insert(k, v)
    for k, v in mapping.items():
        assert sl.get(k) == v
    assert [k for k, _, _ in sl.items()] == sorted(mapping)


# -- LSM tree ----------------------------------------------------------------------

def test_lsm_flush_and_get():
    lsm = LsmTree()
    lsm.flush_run([("a", b"1", False), ("b", b"2", False)])
    assert lsm.get("a") == (True, b"1")
    assert lsm.get("z") == (False, None)


def test_lsm_newer_run_shadows_older():
    lsm = LsmTree()
    lsm.flush_run([("k", b"old", False)])
    lsm.flush_run([("k", b"new", False)])
    assert lsm.get("k") == (True, b"new")


def test_lsm_tombstone_shadows_value():
    lsm = LsmTree()
    lsm.flush_run([("k", b"v", False)])
    lsm.flush_run([("k", None, True)])
    found, value = lsm.get("k")
    assert found and value is None


def test_lsm_l0_compaction_trigger_and_merge():
    lsm = LsmTree(l0_table_limit=2)
    for i in range(4):
        lsm.flush_run([(f"k{i}", str(i).encode(), False)])
    assert lsm.needs_compaction() == 0
    lsm.compact(0)
    assert len(lsm.levels[0]) == 0
    assert len(lsm.levels[1]) == 1
    for i in range(4):
        assert lsm.get(f"k{i}") == (True, str(i).encode())


def test_lsm_compaction_preserves_newest_value():
    lsm = LsmTree(l0_table_limit=1)
    lsm.flush_run([("k", b"v1", False)])
    lsm.flush_run([("k", b"v2", False)])
    lsm.compact_until_stable()
    assert lsm.get("k") == (True, b"v2")


def test_lsm_tombstones_dropped_at_bottom():
    lsm = LsmTree(l0_table_limit=1, max_levels=2)
    lsm.flush_run([("k", b"v", False)])
    lsm.compact(0)
    lsm.flush_run([("k", None, True)])
    lsm.compact(0)
    assert lsm.stats.tombstones_dropped == 1
    assert lsm.get("k") == (False, None)
    assert "k" not in lsm.all_keys()


@given(st.lists(st.tuples(st.text(alphabet="abcd", min_size=1, max_size=4),
                          st.binary(min_size=1, max_size=8)),
                min_size=1, max_size=60))
@settings(max_examples=40, deadline=None)
def test_lsm_equals_dict_after_compactions(writes):
    lsm = LsmTree(l0_table_limit=2, l1_byte_limit=256)
    expected = {}
    batch = []
    for key, value in writes:
        batch.append((key, value, False))
        expected[key] = value
        if len(batch) >= 5:
            batch.sort(key=lambda t: t[0])
            dedup = {k: (v, d) for k, v, d in batch}
            lsm.flush_run([(k, v, d) for k, (v, d) in sorted(dedup.items())])
            batch = []
            lsm.compact_until_stable()
    if batch:
        dedup = {k: (v, d) for k, v, d in batch}
        lsm.flush_run([(k, v, d) for k, (v, d) in sorted(dedup.items())])
    lsm.compact_until_stable()
    for key, value in expected.items():
        assert lsm.get(key) == (True, value)


# -- Multi-Paxos ---------------------------------------------------------------------

class Cluster:
    """Direct-wired Paxos cluster with controllable message delivery."""

    def __init__(self, n=3, initial_leader="n0"):
        self.names = [f"n{i}" for i in range(n)]
        self.queue = []
        self.dropped = set()
        self.applied = {name: [] for name in self.names}
        self.nodes = {}
        for name in self.names:
            peers = [p for p in self.names if p != name]
            self.nodes[name] = MultiPaxosNode(
                name, peers,
                send=lambda dst, m, src=name: self.queue.append((src, dst, m)),
                on_commit=lambda i, v, n=name: self.applied[n].append((i, v)),
                initial_leader=initial_leader)

    def deliver_all(self, max_rounds=100):
        rounds = 0
        while self.queue and rounds < max_rounds:
            batch, self.queue = self.queue, []
            for src, dst, msg in batch:
                if dst in self.dropped or src in self.dropped:
                    continue
                self.nodes[dst].handle(msg)
            rounds += 1


def test_paxos_single_command_commits_everywhere():
    cluster = Cluster()
    cluster.nodes["n0"].client_request({"op": "put", "key": "a"})
    cluster.deliver_all()
    for name in cluster.names:
        assert cluster.applied[name] == [(0, {"op": "put", "key": "a"})]


def test_paxos_commands_applied_in_order():
    cluster = Cluster()
    for i in range(5):
        cluster.nodes["n0"].client_request(i)
    cluster.deliver_all()
    for name in cluster.names:
        assert [v for _, v in cluster.applied[name]] == [0, 1, 2, 3, 4]


def test_paxos_commits_with_one_replica_down():
    cluster = Cluster()
    cluster.dropped.add("n2")
    cluster.nodes["n0"].client_request("x")
    cluster.deliver_all()
    assert cluster.applied["n0"] == [(0, "x")]
    assert cluster.applied["n1"] == [(0, "x")]
    assert cluster.applied["n2"] == []


def test_paxos_no_commit_without_quorum():
    cluster = Cluster()
    cluster.dropped.update({"n1", "n2"})
    cluster.nodes["n0"].client_request("x")
    cluster.deliver_all()
    assert cluster.applied["n0"] == []


def test_paxos_leader_election_after_failure():
    cluster = Cluster()
    cluster.nodes["n0"].client_request("committed-before-crash")
    cluster.deliver_all()
    cluster.dropped.add("n0")
    cluster.nodes["n1"].start_election()
    cluster.deliver_all()
    assert cluster.nodes["n1"].is_leader
    # the new leader can commit new commands
    cluster.nodes["n1"].client_request("after-crash")
    cluster.deliver_all()
    assert ("after-crash" in [v for _, v in cluster.applied["n1"]])


def test_paxos_election_preserves_accepted_values():
    # n0 gets a value accepted at n1 but crashes before LEARN spreads.
    cluster = Cluster()
    node0 = cluster.nodes["n0"]
    node0.client_request("maybe-lost")
    # deliver only the accept to n1, drop everything else
    accepts = [(s, d, m) for (s, d, m) in cluster.queue
               if m.kind == "accept" and d == "n1"]
    cluster.queue = []
    for src, dst, msg in accepts:
        cluster.nodes[dst].handle(msg)
    cluster.queue = []          # drop the accepted-replies: n0 never learns
    cluster.dropped.add("n0")
    cluster.nodes["n1"].start_election()
    cluster.deliver_all()
    # safety: the possibly-chosen value must be re-proposed, not lost
    assert [v for _, v in cluster.applied["n1"]] == ["maybe-lost"]
    assert [v for _, v in cluster.applied["n2"]] == ["maybe-lost"]


def test_paxos_nonleader_queues_until_elected():
    cluster = Cluster()
    cluster.nodes["n1"].client_request("queued")
    cluster.deliver_all()
    assert cluster.applied["n1"] == []   # not leader yet
    cluster.nodes["n1"].start_election()
    cluster.deliver_all()
    assert [v for _, v in cluster.applied["n1"]] == ["queued"]


def test_paxos_stale_ballot_rejected():
    cluster = Cluster()
    cluster.nodes["n1"].start_election()
    cluster.deliver_all()
    # old leader n0 tries to commit with its stale ballot
    cluster.nodes["n0"].client_request("stale")
    cluster.deliver_all()
    # value must not commit anywhere under the old ballot
    assert all("stale" not in [v for _, v in cluster.applied[n]]
               for n in ("n1", "n2"))
