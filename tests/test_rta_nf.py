"""Tests for the analytics pipeline and the network functions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.nf import Firewall, FirewallNode, IpsecGateway, IpsecNode, generate_ruleset
from repro.apps.rta import (
    CounterWorker,
    PatternFilter,
    Regex,
    RegexError,
    RtaWorkerNode,
    SlidingWindowCounter,
)
from repro.core import SchedulerConfig
from repro.experiments.testbed import make_testbed
from repro.net import Packet
from repro.nic import LIQUIDIO_CN2350


# -- regex engine ---------------------------------------------------------------

@pytest.mark.parametrize("pattern,text,expect", [
    ("abc", "xxabcxx", True),
    ("abc", "ab", False),
    ("a.c", "azc", True),
    ("a*", "", True),
    ("ab*c", "ac", True),
    ("ab*c", "abbbc", True),
    ("ab+c", "ac", False),
    ("ab+c", "abbc", True),
    ("ab?c", "abc", True),
    ("ab?c", "ac", True),
    ("a|b", "zzbzz", True),
    ("(ab)+", "abab", True),
    ("[abc]+", "cab", True),
    ("[a-z]+", "HELLO", False),
    ("[^0-9]", "5a", True),
    ("#[a-z]+", "look #tag here", True),
    ("#[a-z]+", "no tags", False),
])
def test_regex_search(pattern, text, expect):
    assert Regex(pattern).search(text) is expect


def test_regex_rejects_malformed():
    for bad in ("(", "[abc", "*a", "a\\"):
        with pytest.raises(RegexError):
            Regex(bad)


def test_regex_no_backtracking_blowup():
    # classic pathological case for backtrackers: linear here
    pattern = "a?" * 15 + "a" * 15
    assert Regex(pattern).search("a" * 15)


def test_pattern_filter_counts():
    f = PatternFilter(["#[a-z]+", "http"])
    assert f.interesting("see http://x")
    assert not f.interesting("boring tuple")
    assert f.passed == 1 and f.discarded == 1


# -- sliding window counter ------------------------------------------------------------

def test_window_counts_within_window():
    window = SlidingWindowCounter(window_us=1000.0, slots=10)
    window.observe("x", now=0.0)
    window.observe("x", now=50.0)
    assert window.count("x", now=100.0) == 2


def test_window_expires_old_observations():
    window = SlidingWindowCounter(window_us=1000.0, slots=10)
    window.observe("x", now=0.0)
    assert window.count("x", now=500.0) == 1
    assert window.count("x", now=1500.0) == 0


def test_window_snapshot_sorted_by_count():
    window = SlidingWindowCounter(window_us=1000.0)
    for _ in range(3):
        window.observe("hot", now=10.0)
    window.observe("cold", now=10.0)
    snap = window.snapshot(now=20.0)
    assert snap[0] == ("hot", 3)


def test_counter_worker_emits_periodically():
    worker = CounterWorker(emit_every_us=100.0)
    assert worker.observe("a", now=0.0) is False  # first sets the epoch...
    emitted = worker.observe("a", now=150.0)
    assert emitted
    assert worker.emit(now=150.0)[0][0] == "a"


# -- RTA pipeline over the testbed ------------------------------------------------------

def test_rta_pipeline_end_to_end():
    bed = make_testbed()
    replies = []
    bed.network.attach("client", lambda p: replies.append(p))
    server = bed.add_server("w0", LIQUIDIO_CN2350,
                            config=SchedulerConfig(migration_enabled=False))
    worker = RtaWorkerNode(server.runtime, emit_every_us=200.0)

    for i in range(30):
        pkt = Packet("client", "w0", 512, kind="rta-tuple",
                     payload={"tuples": [f"tweet #topic{i % 3}", "noise"]},
                     created_at=bed.sim.now)
        bed.network.send(pkt)
        bed.sim.run(until=bed.sim.now + 100.0)
    bed.sim.run(until=bed.sim.now + 2_000.0)

    assert worker.tuples_in == 60
    assert worker.filter.passed == 30      # hashtag tuples pass
    assert worker.filter.discarded == 30   # noise dropped
    assert worker.counter.emissions >= 1
    assert worker.top                      # aggregated ranking produced
    names = [item for item, _ in worker.top]
    assert any(name.startswith("tweet #topic") for name in names)


# -- firewall ----------------------------------------------------------------------------

def test_ruleset_generation_size_and_priorities():
    rules = generate_ruleset(count=100)
    assert len(rules) == 100
    priorities = [r.priority for r in rules]
    assert len(set(priorities)) == 100


def test_firewall_default_deny():
    fw = Firewall(rules=[])
    assert fw.process(1, 2, 3, 4, 6) == "deny"
    assert fw.denied == 1


def test_firewall_matches_installed_rule():
    from repro.apps.microbench import TcamRule, field_mask, pack_key
    rule = TcamRule(
        value=pack_key(0x0A000001, 0, 0, 80, 6),
        mask=field_mask((False, True, True, False, False)),
        priority=99, action="allow")
    fw = Firewall(rules=[rule])
    assert fw.process(0x0A000001, 0x01020304, 5555, 80, 6) == "allow"
    assert fw.process(0x0B000001, 0x01020304, 5555, 80, 6) == "deny"


def test_firewall_actor_replies():
    bed = make_testbed()
    replies = []
    bed.network.attach("client", lambda p: replies.append(p))
    server = bed.add_server("fw", LIQUIDIO_CN2350,
                            config=SchedulerConfig(migration_enabled=False))
    FirewallNode(server.runtime, rules=generate_ruleset(256))
    pkt = Packet("client", "fw", 1024, kind="fw-pkt",
                 payload={"src_ip": 1, "dst_ip": 2, "src_port": 3,
                          "dst_port": 4, "proto": 6},
                 created_at=bed.sim.now)
    bed.network.send(pkt)
    bed.sim.run(until=1_000.0)
    assert len(replies) == 1
    assert replies[0].payload["action"] in ("allow", "deny")


# -- IPsec -----------------------------------------------------------------------------------

def test_ipsec_roundtrip():
    tx = IpsecGateway()
    rx = IpsecGateway()
    esp = tx.encapsulate(b"secret payload")
    assert esp.ciphertext != b"secret payload"
    assert rx.decapsulate(esp) == b"secret payload"


def test_ipsec_detects_tampering():
    tx, rx = IpsecGateway(), IpsecGateway()
    esp = tx.encapsulate(b"data")
    esp.ciphertext = b"X" + esp.ciphertext[1:]
    assert rx.decapsulate(esp) is None
    assert rx.auth_failures == 1


def test_ipsec_replay_protection():
    tx, rx = IpsecGateway(), IpsecGateway()
    esp = tx.encapsulate(b"data")
    assert rx.decapsulate(esp) == b"data"
    assert rx.decapsulate(esp) is None
    assert rx.replay_drops == 1


def test_ipsec_wrong_key_fails_auth():
    tx = IpsecGateway(auth_key=b"\x02" * 20)
    rx = IpsecGateway(auth_key=b"\x03" * 20)
    assert rx.decapsulate(tx.encapsulate(b"data")) is None


@given(st.binary(min_size=0, max_size=512))
@settings(max_examples=40, deadline=None)
def test_ipsec_roundtrip_any_payload(payload):
    tx, rx = IpsecGateway(), IpsecGateway()
    assert rx.decapsulate(tx.encapsulate(payload)) == payload


def test_ipsec_rejects_short_key():
    with pytest.raises(ValueError):
        IpsecGateway(key=b"short")


def test_ipsec_actor_uses_accelerators():
    bed = make_testbed()
    replies = []
    bed.network.attach("client", lambda p: replies.append(p))
    server = bed.add_server("gw", LIQUIDIO_CN2350,
                            config=SchedulerConfig(migration_enabled=False))
    IpsecNode(server.runtime)
    pkt = Packet("client", "gw", 1024, kind="esp-pkt",
                 payload={"data": b"x" * 1024}, created_at=bed.sim.now)
    bed.network.send(pkt)
    bed.sim.run(until=1_000.0)
    assert len(replies) == 1
    assert replies[0].payload["esp"].ciphertext
    accel = server.nic.accelerators
    assert accel.invocations["aes"] == 1
    assert accel.invocations["sha1"] == 1
