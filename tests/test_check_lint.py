"""The ``repro lint`` static pass: rules, allowlists, and a clean tree."""

import os
import textwrap

import repro
from repro.check import RULES, LintFinding, lint_file, lint_source, lint_tree


def _rules(source):
    return [(f.rule, f.line) for f in lint_source(textwrap.dedent(source))]


# -- wall-clock ------------------------------------------------------------------

def test_wall_clock_calls_flagged():
    findings = _rules("""\
        import time
        def f(sim):
            start = time.time()
            time.monotonic_ns()
            return time.perf_counter()
    """)
    assert findings == [("wall-clock", 3), ("wall-clock", 4),
                        ("wall-clock", 5)]


def test_wall_clock_through_alias_and_from_import():
    findings = _rules("""\
        import time as t
        from time import monotonic as mono
        def f():
            return t.time() + mono()
    """)
    assert findings == [("wall-clock", 4), ("wall-clock", 4)]


def test_datetime_now_flagged():
    findings = _rules("""\
        import datetime
        from datetime import datetime as dt
        def f():
            return datetime.datetime.now(), dt.utcnow()
    """)
    assert [rule for rule, _ in findings] == ["wall-clock", "wall-clock"]


def test_sim_now_not_flagged():
    assert _rules("""\
        def f(sim):
            return sim.now
    """) == []


# -- module-random ---------------------------------------------------------------

def test_module_random_calls_flagged():
    findings = _rules("""\
        import random
        def f():
            random.shuffle([1, 2])
            return random.random()
    """)
    assert findings == [("module-random", 3), ("module-random", 4)]


def test_seeded_random_instances_allowed():
    assert _rules("""\
        import random
        def f(seed):
            rng = random.Random(seed)
            return rng.random()
    """) == []


def test_from_random_import_flagged():
    findings = _rules("""\
        from random import choice, Random
        def f():
            Random(1)
            return choice([1, 2])
    """)
    assert findings == [("module-random", 4)]


# -- unordered-iter --------------------------------------------------------------

def test_set_iteration_feeding_scheduler_flagged():
    findings = _rules("""\
        def f(sim, names):
            pending = set(names)
            for name in pending:
                sim.post(1.0, print, name)
    """)
    assert findings == [("unordered-iter", 3)]


def test_set_literal_and_comprehension_flagged():
    findings = _rules("""\
        def f(sim):
            for x in {1, 2, 3}:
                sim.call_at(1.0, print, x)
        def g(sim, xs):
            for x in {x for x in xs}:
                sim.post(1.0, print, x)
    """)
    assert [rule for rule, _ in findings] == ["unordered-iter"] * 2


def test_sorted_set_iteration_not_flagged():
    assert _rules("""\
        def f(sim, names):
            for name in sorted(set(names)):
                sim.post(1.0, print, name)
    """) == []


def test_set_iteration_without_scheduling_not_flagged():
    assert _rules("""\
        def f(names):
            total = 0
            for name in set(names):
                total += len(name)
            return total
    """) == []


def test_dict_iteration_not_flagged():
    # dicts are insertion-ordered in CPython: deliberately exempt
    assert _rules("""\
        def f(sim, table):
            for name in table:
                sim.post(1.0, print, name)
    """) == []


# -- allowlists ------------------------------------------------------------------

def test_inline_allow_suppresses_named_rule(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(textwrap.dedent("""\
        import time
        def f():
            a = time.time()  # lint: allow[wall-clock]
            b = time.time()  # lint: allow
            return time.time()
    """))
    findings = lint_file(str(path), rel_path="mod.py")
    assert [(f.rule, f.line) for f in findings] == [("wall-clock", 5)]


def test_inline_allow_for_other_rule_does_not_suppress(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(textwrap.dedent("""\
        import time
        def f():
            return time.time()  # lint: allow[module-random]
    """))
    findings = lint_file(str(path), rel_path="mod.py")
    assert [f.rule for f in findings] == ["wall-clock"]


def test_path_allowlist_exempts_exec_wall_clock(tmp_path):
    source = textwrap.dedent("""\
        import time
        import random
        def f():
            random.random()
            return time.perf_counter()
    """)
    exec_dir = tmp_path / "exec"
    exec_dir.mkdir()
    (exec_dir / "bench.py").write_text(source)
    findings = lint_file(str(exec_dir / "bench.py"),
                         rel_path="exec/bench.py")
    # wall-clock is exempt under exec/ (benchmarking); module-random never
    assert [f.rule for f in findings] == ["module-random"]
    findings = lint_file(str(exec_dir / "bench.py"), rel_path="other/bench.py")
    assert sorted(f.rule for f in findings) == ["module-random", "wall-clock"]


def test_syntax_error_reported_as_parse_finding(tmp_path):
    findings = lint_source("def f(:\n")
    assert [f.rule for f in findings] == ["parse"]


# -- the tree gate ---------------------------------------------------------------

def test_src_repro_is_lint_clean():
    root = os.path.dirname(os.path.abspath(repro.__file__))
    findings = lint_tree(root)
    assert findings == [], "\n".join(str(f) for f in findings)


def test_findings_are_ordered_and_printable():
    findings = lint_source(textwrap.dedent("""\
        import time
        def f():
            time.monotonic()
            time.time()
    """), path="x.py")
    assert [f.line for f in findings] == [3, 4]
    rendered = str(findings[0])
    assert "x.py:3" in rendered and "[wall-clock]" in rendered
    assert set(f.rule for f in findings) <= set(RULES)
