"""Deeper application-behaviour tests: failover, caching, checkpointing."""

import pytest

from repro.apps.dt import DtCoordinatorNode, DtParticipantNode
from repro.apps.rkv import RkvNode
from repro.core import SchedulerConfig
from repro.experiments.testbed import make_testbed
from repro.net import Packet
from repro.nic import LIQUIDIO_CN2350


def _cluster(bed, nodes=("s0", "s1", "s2")):
    rkv = {}
    for name in nodes:
        server = bed.add_server(name, LIQUIDIO_CN2350,
                                config=SchedulerConfig(migration_enabled=False))
        rkv[name] = RkvNode(server.runtime, [n for n in nodes if n != name],
                            initial_leader=nodes[0])
    return rkv


def test_rkv_leader_failover_preserves_data():
    bed = make_testbed()
    replies = []
    bed.network.attach("client", lambda p: replies.append(p))
    rkv = _cluster(bed)

    def put(key, value, seq):
        pkt = Packet("client", "s0", 256, kind="rkv-put",
                     payload={"key": key, "value": value},
                     created_at=bed.sim.now)
        pkt.meta["client"] = ("client", seq)
        bed.network.send(pkt)

    for i in range(5):
        put(f"k{i}", b"v", seq=i)
        bed.sim.run(until=bed.sim.now + 400.0)
    bed.sim.run(until=bed.sim.now + 1_000.0)
    assert len(replies) == 5

    # the leader "fails": s1 runs an election and takes over
    rkv["s1"].paxos.start_election()
    # elections run over the wire via the consensus actors; drive them by
    # triggering a paxos exchange (the election messages were sent through
    # the last execution context, which is live)
    bed.sim.run(until=bed.sim.now + 2_000.0)
    assert rkv["s1"].paxos.is_leader

    # new writes through the new leader commit and old data survives
    pkt = Packet("client", "s1", 256, kind="rkv-put",
                 payload={"key": "after", "value": b"failover"},
                 created_at=bed.sim.now)
    pkt.meta["client"] = ("client", 99)
    bed.network.send(pkt)
    bed.sim.run(until=bed.sim.now + 2_000.0)
    assert rkv["s1"].memtable.get("after") == b"failover"
    for i in range(5):
        assert rkv["s1"].memtable.get(f"k{i}") == b"v"


def test_dt_response_cache_records_outcomes():
    bed = make_testbed()
    replies = []
    bed.network.attach("client", lambda p: replies.append(p))
    coord_srv = bed.add_server("c0", LIQUIDIO_CN2350,
                               config=SchedulerConfig(migration_enabled=False))
    for name in ("p0", "p1"):
        server = bed.add_server(name, LIQUIDIO_CN2350,
                                config=SchedulerConfig(migration_enabled=False))
        DtParticipantNode(server.runtime)
    coord = DtCoordinatorNode(coord_srv.runtime, ["p0", "p1"])

    pkt = Packet("client", "c0", 256, kind="dt-txn",
                 payload={"reads": [], "writes": {"x": b"1"}},
                 created_at=bed.sim.now)
    pkt.meta["client"] = ("client", 0)
    bed.network.send(pkt)
    bed.sim.run(until=3_000.0)
    assert replies and replies[0].payload["status"] == "committed"
    # §4: responses of outstanding transactions are cached for retries
    assert len(coord.coordinator.response_cache) == 1
    (txn_id, (committed, _values)), = coord.coordinator.response_cache.items()
    assert committed


def test_dt_log_checkpoint_reaches_host_logger():
    bed = make_testbed()
    replies = []
    bed.network.attach("client", lambda p: replies.append(p))
    coord_srv = bed.add_server("c0", LIQUIDIO_CN2350,
                               config=SchedulerConfig(migration_enabled=False))
    for name in ("p0", "p1"):
        server = bed.add_server(name, LIQUIDIO_CN2350,
                                config=SchedulerConfig(migration_enabled=False))
        DtParticipantNode(server.runtime)
    # tiny log segment → checkpoint after a couple of transactions
    coord = DtCoordinatorNode(coord_srv.runtime, ["p0", "p1"],
                              log_segment_bytes=100)

    for i in range(6):
        pkt = Packet("client", "c0", 256, kind="dt-txn",
                     payload={"reads": [], "writes": {f"k{i}": b"v" * 16}},
                     created_at=bed.sim.now)
        pkt.meta["client"] = ("client", i)
        bed.network.send(pkt)
        bed.sim.run(until=bed.sim.now + 500.0)
    bed.sim.run(until=bed.sim.now + 3_000.0)

    assert coord.log.checkpointed_segments >= 1
    # the host-pinned logging actor persisted the sealed segments
    assert coord_srv.runtime.storage.writes >= 1
    assert len(replies) == 6


def test_rkv_reads_after_flush_served_from_frozen_runs():
    bed = make_testbed()
    replies = []
    bed.network.attach("client", lambda p: replies.append(p))
    # small memtable: every few writes trigger a freeze
    nodes = ("s0", "s1", "s2")
    rkv = {}
    for name in nodes:
        server = bed.add_server(name, LIQUIDIO_CN2350,
                                config=SchedulerConfig(migration_enabled=False))
        rkv[name] = RkvNode(server.runtime, [n for n in nodes if n != name],
                            initial_leader="s0", memtable_limit=1_500)

    for i in range(12):
        pkt = Packet("client", "s0", 256, kind="rkv-put",
                     payload={"key": f"key{i:02d}", "value": b"x" * 80},
                     created_at=bed.sim.now)
        pkt.meta["client"] = ("client", i)
        bed.network.send(pkt)
        bed.sim.run(until=bed.sim.now + 400.0)
    bed.sim.run(until=bed.sim.now + 10_000.0)
    leader = rkv["s0"]
    assert leader.storage.lsm.stats.flushes >= 1

    replies.clear()
    for i in range(12):
        pkt = Packet("client", "s0", 256, kind="rkv-get",
                     payload={"key": f"key{i:02d}"}, created_at=bed.sim.now)
        pkt.meta["client"] = ("client", 100 + i)
        bed.network.send(pkt)
        bed.sim.run(until=bed.sim.now + 400.0)
    bed.sim.run(until=bed.sim.now + 5_000.0)
    assert len(replies) == 12
    assert all(r.payload["status"] == "ok" and r.payload["value"] == b"x" * 80
               for r in replies)
