"""Off-path NIC-switch steering: host actors bypass NIC cores (§2.1)."""

import pytest

from repro.core import Actor, Location, SchedulerConfig
from repro.experiments.testbed import make_testbed
from repro.nic import STINGRAY_PS225, WorkloadProfile
from repro.sim import spawn


def _echo(actor, msg, ctx):
    yield ctx.compute(us=2.0)
    if msg.packet is not None:
        ctx.reply(msg, size=msg.size)


def _stingray_server(bed):
    return bed.add_server("server", STINGRAY_PS225,
                          config=SchedulerConfig(migration_enabled=False))


def test_offpath_nic_has_switch():
    bed = make_testbed(bandwidth_gbps=25)
    server = _stingray_server(bed)
    assert server.nic.nic_switch is not None


def test_host_pinned_actor_gets_bypass_rule():
    bed = make_testbed(bandwidth_gbps=25)
    server = _stingray_server(bed)
    actor = Actor("hosty", _echo, location=Location.HOST, pinned=True,
                  profile=WorkloadProfile("h", 2.0, 1.2, 0.5))
    server.runtime.register_actor(actor, steering_keys=["data"])
    assert server.nic.nic_switch.rules.get("data") == "host"


def test_bypass_traffic_skips_nic_cores():
    bed = make_testbed(bandwidth_gbps=25)
    server = _stingray_server(bed)
    actor = Actor("hosty", _echo, location=Location.HOST, pinned=True,
                  profile=WorkloadProfile("h", 2.0, 1.2, 0.5))
    server.runtime.register_actor(actor, steering_keys=["data"])
    client = bed.add_client("client")
    gen = client.closed_loop(dst="server", clients=4, size=256)
    bed.sim.run(until=5_000.0)
    gen.stop()
    server.runtime.stop()
    assert gen.completed > 50
    assert server.nic.nic_switch.steered_host > 50
    # requests never consumed NIC-core time on arrival (only host→wire TX
    # forwarding items touch the NIC)
    assert server.runtime.nic_scheduler.ops_completed == 0


def test_nic_actor_traffic_still_reaches_scheduler():
    bed = make_testbed(bandwidth_gbps=25)
    server = _stingray_server(bed)
    actor = Actor("nicky", _echo, concurrent=True,
                  profile=WorkloadProfile("n", 2.0, 1.2, 0.5))
    server.runtime.register_actor(actor, steering_keys=["data"])
    client = bed.add_client("client")
    gen = client.closed_loop(dst="server", clients=4, size=256)
    bed.sim.run(until=5_000.0)
    gen.stop()
    server.runtime.stop()
    assert gen.completed > 50
    assert server.runtime.nic_scheduler.ops_completed > 50
    assert server.nic.nic_switch.rules.get("data") is None


def test_migration_updates_switch_rules():
    bed = make_testbed(bandwidth_gbps=25)
    server = bed.add_server("server", STINGRAY_PS225,
                            config=SchedulerConfig(migration_enabled=False))
    actor = Actor("svc", _echo, concurrent=True,
                  profile=WorkloadProfile("s", 2.0, 1.2, 0.5))
    rt = server.runtime
    rt.register_actor(actor, steering_keys=["data"])
    assert rt.nic.nic_switch.rules.get("data") is None

    def roundtrip():
        yield from rt.migrator.migrate_to_host(actor)
        assert rt.nic.nic_switch.rules.get("data") == "host"
        yield from rt.migrator.migrate_to_nic(actor)

    spawn(bed.sim, roundtrip())
    bed.sim.run(until=5_000.0)
    assert actor.location is Location.NIC
    assert rt.nic.nic_switch.rules.get("data") is None
