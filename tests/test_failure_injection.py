"""Failure injection: torn DMA writes, hostile actors, overload drops.

Fault injection goes through the FaultPlane (declarative, seeded specs
wired into the dataplane) rather than monkeypatched send paths — the same
mechanism the chaos experiments use.
"""

import pytest

from repro.core import Actor, IsolationPolicy, Message, SchedulerConfig
from repro.core.actor import Location
from repro.experiments.testbed import make_testbed
from repro.net import Packet
from repro.nic import LIQUIDIO_CN2350, WorkloadProfile
from repro.sim import FaultKind, FaultPlane, FaultSpec, Rng, Timeout


def _echo(actor, msg, ctx):
    yield ctx.compute(us=2.0)
    if msg.packet is not None:
        ctx.reply(msg, size=msg.size)


def test_corrupted_ring_messages_dropped_but_service_survives():
    """Torn DMA writes (bad checksum) lose individual messages without
    wedging the host workers or the channel."""
    bed = make_testbed()
    # corrupt every 5th NIC→host ring write
    plane = FaultPlane(bed.sim, seed=1)
    plane.add(FaultSpec(FaultKind.DMA_TORN, target="server.chan.to_host",
                        every_nth=5))
    server = bed.add_server("server", LIQUIDIO_CN2350,
                            config=SchedulerConfig(migration_enabled=False),
                            fault_plane=plane)
    actor = Actor("hosty", _echo, location=Location.HOST, pinned=True,
                  concurrent=True,
                  profile=WorkloadProfile("h", 2.0, 1.2, 0.5))
    rt = server.runtime
    rt.register_actor(actor, steering_keys=["data"])

    replies = []
    bed.network.attach("client", lambda p: replies.append(p))
    for i in range(50):
        bed.sim.call_at(i * 20.0, bed.network.send,
                        Packet("client", "server", 256, created_at=i * 20.0))
    bed.sim.run(until=5_000.0)
    rt.stop()

    failures = rt.channel.to_host.checksum_failures
    assert failures == 10                     # exactly the injected ones
    assert plane.counts[FaultKind.DMA_TORN] == 10
    assert rt.channel.to_host.dma.torn_writes == 10
    assert rt.channel.to_host.nacks == 10     # poll reported each corruption
    assert len(replies) == 50 - failures      # the rest were served


def test_hostile_actor_cannot_steal_other_actors_objects():
    bed = make_testbed()
    server = bed.add_server("server", LIQUIDIO_CN2350,
                            config=SchedulerConfig(migration_enabled=False))
    rt = server.runtime
    victim = Actor("victim", _echo, profile=WorkloadProfile("v", 2.0, 1.2, 0.5))
    rt.register_actor(victim)
    secret = rt.dmo.malloc("victim", 64, data="secret")
    stolen = []

    def thief_handler(actor, msg, ctx):
        yield ctx.compute(us=1.0)
        try:
            stolen.append(ctx.dmo_read(secret.object_id))
        except Exception as exc:
            stolen.append(type(exc).__name__)

    thief = Actor("thief", thief_handler,
                  profile=WorkloadProfile("t", 1.0, 1.2, 0.5))
    rt.register_actor(thief, steering_keys=["attack"])
    bed.network.attach("client", lambda p: None)
    bed.network.send(Packet("client", "server", 64, kind="attack"))
    bed.sim.run(until=100.0)
    rt.stop()
    assert stolen == ["DmoError"]
    assert rt.dmo.denied_accesses == 1
    assert rt.dmo.read("victim", secret.object_id) == "secret"


def test_runaway_actor_killed_while_victims_keep_service():
    bed = make_testbed()
    server = bed.add_server(
        "server", LIQUIDIO_CN2350,
        config=SchedulerConfig(
            migration_enabled=False,
            isolation=IsolationPolicy(timeout_us=30.0)))
    rt = server.runtime

    def runaway(actor, msg, ctx):
        while True:
            yield Timeout(5.0)

    rt.register_actor(Actor("runaway", runaway), steering_keys=["attack"])
    rt.register_actor(Actor("good", _echo, concurrent=True,
                            profile=WorkloadProfile("g", 2.0, 1.2, 0.5)),
                      steering_keys=["data"])
    replies = []
    bed.network.attach("client", lambda p: replies.append(p))
    # hostile traffic first, then honest traffic
    for i in range(3):
        bed.sim.call_at(10.0 + i, bed.network.send,
                        Packet("client", "server", 64, kind="attack"))
    for i in range(40):
        bed.sim.call_at(50.0 + i * 10.0, bed.network.send,
                        Packet("client", "server", 256,
                               created_at=50.0 + i * 10.0, kind="data"))
    bed.sim.run(until=2_000.0)
    rt.stop()
    assert rt.config.isolation.kills == ["runaway"]
    assert len(replies) == 40


def test_overloaded_channel_drops_are_counted_not_fatal():
    bed = make_testbed()
    server = bed.add_server("server", LIQUIDIO_CN2350,
                            config=SchedulerConfig(migration_enabled=False))
    rt = server.runtime
    # a host actor whose channel has almost no slots
    from repro.core.channel import Channel
    rt.channel = Channel(bed.sim, rt._channel_dma, slots=4,
                         name="tiny-chan")
    actor = Actor("hosty", _echo, location=Location.HOST, pinned=True,
                  concurrent=True,
                  profile=WorkloadProfile("h", 2.0, 1.2, 0.5))
    rt.register_actor(actor, steering_keys=["data"])
    gen_replies = []
    bed.network.attach("client", lambda p: gen_replies.append(p))
    # burst far beyond 4 ring slots
    for i in range(64):
        bed.sim.call_at(1.0 + i * 0.05, bed.network.send,
                        Packet("client", "server", 256,
                               created_at=1.0 + i * 0.05, kind="data"))
    bed.sim.run(until=5_000.0)
    rt.stop()
    assert rt.channel_drops > 0
    assert len(gen_replies) + rt.channel_drops == 64


def test_storage_burst_slows_but_completes():
    """A flood of cache-missing reads (slow storage) must not lose requests."""
    bed = make_testbed()
    server = bed.add_server("server", LIQUIDIO_CN2350,
                            config=SchedulerConfig(migration_enabled=False))
    rt = server.runtime
    rt.storage.cache_hit_ratio = 0.0      # every read pays the device

    def reader(actor, msg, ctx):
        yield ctx.compute(us=1.0)
        yield from ctx.storage_read()
        ctx.reply(msg, size=64)

    rt.register_actor(Actor("reader", reader, location=Location.HOST,
                            pinned=True, concurrent=True,
                            profile=WorkloadProfile("r", 1.0, 1.0, 2.0)),
                      steering_keys=["data"])
    replies = []
    bed.network.attach("client", lambda p: replies.append(p))
    for i in range(30):
        bed.sim.call_at(i * 5.0, bed.network.send,
                        Packet("client", "server", 128,
                               created_at=i * 5.0, kind="data"))
    bed.sim.run(until=60_000.0)
    rt.stop()
    assert len(replies) == 30
    assert rt.storage.reads == 30
