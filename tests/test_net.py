"""Tests for the network substrate: framing math, links, switch, pktgen."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (
    MIN_FRAME,
    Link,
    Network,
    OpenLoopGenerator,
    Packet,
    ClosedLoopGenerator,
    line_rate_pps,
    serialization_delay_us,
    wire_bits,
)
from repro.sim import Rng, Simulator


# -- framing arithmetic -----------------------------------------------------

def test_wire_bits_includes_overhead():
    assert wire_bits(64) == (64 + 20) * 8


def test_line_rate_64b_10gbe_is_14_88_mpps():
    # The canonical small-packet line rate everybody quotes.
    assert line_rate_pps(10, 64) == pytest.approx(14.88e6, rel=0.01)


def test_line_rate_1500b_10gbe():
    assert line_rate_pps(10, 1500) == pytest.approx(822_368, rel=0.01)


def test_serialization_delay_scales_with_size():
    assert serialization_delay_us(10, 1500) > serialization_delay_us(10, 64)
    # 1500B + 24B overhead at 10 Gbps = 1.2192 µs
    assert serialization_delay_us(10, 1500) == pytest.approx(1.216, rel=1e-3)


@given(st.integers(min_value=1, max_value=9000))
@settings(max_examples=50, deadline=None)
def test_rate_times_delay_is_unity(size):
    # pps × per-packet serialization time ≡ 1 second.
    pps = line_rate_pps(25, size)
    delay_s = serialization_delay_us(25, size) / 1e6
    assert pps * delay_s == pytest.approx(1.0, rel=1e-9)


# -- packets ----------------------------------------------------------------

def test_packet_padded_to_minimum_frame():
    assert Packet("a", "b", size=20).size == MIN_FRAME


def test_packet_reply_swaps_endpoints_and_keeps_timestamp():
    req = Packet("client", "server", size=128, created_at=5.0, flow_id=3)
    rep = req.reply(size=200, payload="v")
    assert (rep.src, rep.dst) == ("server", "client")
    assert rep.created_at == 5.0
    assert rep.flow_id == 3
    assert rep.payload == "v"


def test_packet_ids_unique():
    ids = {Packet("a", "b", 64).packet_id for _ in range(10)}
    assert len(ids) == 10


# -- links --------------------------------------------------------------------

def test_link_delivers_after_serialization_and_propagation():
    sim = Simulator()
    arrivals = []
    link = Link(sim, 10, receiver=lambda p: arrivals.append(sim.now),
                propagation_us=0.3)
    link.transmit(Packet("a", "b", 1500))
    sim.run()
    assert arrivals == [pytest.approx(1.216 + 0.3, rel=1e-3)]


def test_link_serializes_back_to_back():
    sim = Simulator()
    arrivals = []
    link = Link(sim, 10, receiver=lambda p: arrivals.append(sim.now),
                propagation_us=0.0)
    for _ in range(3):
        link.transmit(Packet("a", "b", 1500))
    sim.run()
    ser = serialization_delay_us(10, 1500)
    assert arrivals == [pytest.approx(ser * k, rel=1e-3) for k in (1, 2, 3)]


def test_link_backlog_grows_under_burst():
    sim = Simulator()
    link = Link(sim, 10, receiver=lambda p: None)
    for _ in range(100):
        link.transmit(Packet("a", "b", 1500))
    assert link.backlog_us == pytest.approx(100 * 1.216, rel=1e-3)


def test_link_utilization():
    sim = Simulator()
    link = Link(sim, 10, receiver=lambda p: None, propagation_us=0.0)
    link.transmit(Packet("a", "b", 1250))  # 10_000 bits of frame
    sim.run()
    # 1250B frame = 10192 wire bits... utilization over 10 µs window:
    util = link.utilization(elapsed_us=10.0)
    assert util == pytest.approx(1250 * 8 / (10e9 * 10e-6), rel=1e-6)


def test_link_requires_receiver():
    sim = Simulator()
    link = Link(sim, 10)
    with pytest.raises(RuntimeError):
        link.transmit(Packet("a", "b", 64))


def test_link_rejects_zero_bandwidth():
    with pytest.raises(ValueError):
        Link(Simulator(), 0)


# -- switch / network ----------------------------------------------------------

def test_network_routes_between_nodes():
    sim = Simulator()
    net = Network(sim, bandwidth_gbps=10)
    received = []
    net.attach("a", lambda p: received.append(("a", p.payload, sim.now)))
    net.attach("b", lambda p: received.append(("b", p.payload, sim.now)))
    net.send(Packet("a", "b", 256, payload="hello"))
    sim.run()
    assert len(received) == 1
    node, payload, when = received[0]
    assert node == "b" and payload == "hello"
    assert when > 0.9  # two links + switch latency


def test_switch_drops_unknown_destination():
    sim = Simulator()
    net = Network(sim, bandwidth_gbps=10)
    net.attach("a", lambda p: None)
    net.send(Packet("a", "ghost", 64))
    sim.run()
    assert net.switch.dropped == 1


def test_open_loop_generator_rate():
    sim = Simulator()
    count = []
    gen = OpenLoopGenerator(sim, send=lambda p: count.append(p), src="c",
                            dst="s", rate_mpps=1.0, size=64, rng=Rng(3))
    sim.run(until=10_000.0)
    gen.stop()
    # 1 Mpps for 10 ms → ~10k packets (Poisson, ±5%)
    assert 9_000 < len(count) < 11_000


def test_open_loop_deterministic_spacing():
    sim = Simulator()
    times = []
    OpenLoopGenerator(sim, send=lambda p: times.append(sim.now), src="c",
                      dst="s", rate_mpps=0.5, size=64, poisson=False)
    sim.run(until=10.0)
    assert times == [pytest.approx(2.0 * k) for k in range(1, 6)]


def test_closed_loop_generator_measures_latency():
    sim = Simulator()
    net = Network(sim, bandwidth_gbps=10)

    gen_holder = {}

    def server_receive(packet):
        # echo back after 5 µs of "processing"
        sim.call_in(5.0, net.send, packet.reply())

    net.attach("server", server_receive)
    gen = ClosedLoopGenerator(
        sim, send=net.send, src="client", dst="server", clients=4, size=256)
    net.attach("client", gen.on_reply)
    gen_holder["gen"] = gen
    sim.run(until=5_000.0)
    gen.stop()
    assert gen.completed > 100
    # round trip = 2 × (two link hops + switch) + 5 µs service
    assert 6.0 < gen.latency.mean < 12.0
    # closed loop: in-flight never exceeds client count
    assert gen.sent - gen.completed <= 4
