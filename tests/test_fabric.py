"""Tests for the multi-rack fabric: routing, latency ordering, drops."""

import pytest

from repro.net import Fabric, Network, Packet
from repro.sim import Simulator


def _collector(sim, log, name):
    def receive(packet):
        log.append((name, packet.dst, sim.now))
    return receive


# -- single-rack compatibility ----------------------------------------------

def test_single_rack_network_is_the_seed_star():
    sim = Simulator()
    net = Network(sim, bandwidth_gbps=10)
    log = []
    a_up = net.attach("a", _collector(sim, log, "a"))
    net.attach("b", _collector(sim, log, "b"))
    # seed link naming and the sole-ToR compatibility surface
    assert a_up.name == "a.up"
    assert net.egress("a").name == "a.down"
    assert net.switch.name == "tor"
    assert net.spine is None
    net.send(Packet("a", "b", 256, created_at=sim.now))
    sim.run(until=100.0)
    assert [entry[:2] for entry in log] == [("b", "b")]
    assert net.switch.forwarded == 1
    assert net.switch.dropped == 0


def test_single_rack_unknown_dst_drops_at_tor():
    sim = Simulator()
    net = Network(sim, bandwidth_gbps=10)
    net.attach("a", lambda p: None)
    net.send(Packet("a", "ghost", 256, created_at=sim.now))
    sim.run(until=100.0)
    assert net.switch.dropped == 1
    assert net.switch.forwarded == 0


# -- multi-rack routing ------------------------------------------------------

def _two_racks():
    sim = Simulator()
    fabric = Fabric(sim, bandwidth_gbps=10, racks=("r0", "r1"))
    log = []
    fabric.attach("a", _collector(sim, log, "a"), rack="r0")
    fabric.attach("b", _collector(sim, log, "b"), rack="r0")
    fabric.attach("c", _collector(sim, log, "c"), rack="r1")
    return sim, fabric, log


def test_cross_rack_delivery_routes_through_spine():
    sim, fabric, log = _two_racks()
    fabric.send(Packet("a", "c", 256, created_at=sim.now))
    sim.run(until=100.0)
    assert [entry[:2] for entry in log] == [("c", "c")]
    assert fabric.switches["r0"].forwarded == 1   # up toward the spine
    assert fabric.spine.forwarded == 1
    assert fabric.switches["r1"].forwarded == 1   # down to the node


def test_cross_rack_rtt_strictly_longer_than_intra_rack():
    sim, fabric, log = _two_racks()
    fabric.send(Packet("a", "b", 256, created_at=sim.now))
    fabric.send(Packet("a", "c", 256, created_at=sim.now))
    sim.run(until=100.0)
    arrivals = {name: t for name, _dst, t in log}
    assert set(arrivals) == {"b", "c"}
    # the spine hop adds two longer propagation runs plus a forwarding
    # delay: strictly, not marginally, slower
    assert arrivals["c"] > arrivals["b"] + 2 * fabric.inter_rack_propagation_us


def test_spine_drop_accounting_for_unknown_destination():
    sim, fabric, _log = _two_racks()
    fabric.send(Packet("a", "ghost", 256, created_at=sim.now))
    sim.run(until=100.0)
    # the local ToR optimistically forwards up; the spine owns the drop
    assert fabric.switches["r0"].forwarded == 1
    assert fabric.switches["r0"].dropped == 0
    assert fabric.spine.dropped == 1
    assert fabric.spine.forwarded == 0


def test_tor_never_reascends_spine_traffic():
    sim, fabric, _log = _two_racks()
    # a frame the spine (wrongly) hands to r1 for a node that is not
    # there must die at the ToR, not loop back up
    fabric.switches["r1"].deliver_local(Packet("a", "ghost", 64,
                                               created_at=sim.now))
    sim.run(until=100.0)
    assert fabric.switches["r1"].dropped == 1
    assert fabric.spine.forwarded == 0


def test_placement_and_rack_of():
    sim = Simulator()
    fabric = Fabric(sim, bandwidth_gbps=10, racks=("r0", "r1"))
    fabric.place("n", "r1")
    fabric.attach("n", lambda p: None)
    assert fabric.rack_of("n") == "r1"
    with pytest.raises(ValueError):
        fabric.place("m", "nope")
    with pytest.raises(ValueError):
        fabric.attach("m", lambda p: None, rack="nope")
    with pytest.raises(AttributeError):
        fabric.switch  # multi-rack fabrics have no sole ToR


def test_links_enumerates_every_link_once():
    sim, fabric, _log = _two_racks()
    links = list(fabric.links())
    # 3 node uplinks + 3 ToR downlinks + 2 racks x (spine-up, spine-down)
    assert len(links) == 3 + 3 + 4
    assert len({link.name for link in links}) == len(links)


def test_duplicate_rack_names_rejected():
    with pytest.raises(ValueError):
        Fabric(Simulator(), bandwidth_gbps=10, racks=("r0", "r0"))
