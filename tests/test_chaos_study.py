"""Chaos harness acceptance tests: zero loss + deterministic replay."""

import pytest

from repro.experiments.chaos_study import (
    run_dt_chaos,
    run_rkv_chaos,
    run_rta_chaos,
)


@pytest.fixture(scope="module")
def rkv_report():
    # the acceptance scenario: ≥1% link loss + periodic torn DMA writes
    # + a crash of the leader's memtable actor
    return run_rkv_chaos(seed=42, loss=0.02)


def test_rkv_zero_client_visible_loss(rkv_report):
    assert rkv_report.lost == 0
    assert rkv_report.answered == rkv_report.requests
    assert rkv_report.invariants["zero_loss"]


def test_rkv_paxos_safety_holds(rkv_report):
    assert rkv_report.invariants["paxos_safety"]


def test_rkv_faults_actually_injected(rkv_report):
    """The pass is meaningful only if the planned faults really fired."""
    assert rkv_report.faults_injected.get("link_loss", 0) > 0
    assert rkv_report.faults_injected.get("dma_torn", 0) > 0
    assert rkv_report.faults_injected.get("actor_crash", 0) == 1
    assert len(rkv_report.fault_schedule) > 0


def test_rkv_recovery_telemetry_populated(rkv_report):
    retransmits = sum(s.retransmits for s in rkv_report.recovery.values())
    restarts = sum(s.restarts for s in rkv_report.recovery.values())
    assert retransmits > 0                      # torn writes were recovered
    assert restarts == 1                        # the crashed actor came back
    s0 = rkv_report.recovery["s0"]
    assert s0.mttr_mean_us > 0.0
    assert s0.mttr_max_us >= s0.mttr_mean_us


def test_rkv_deterministic_replay(rkv_report):
    """Identical fault seed ⇒ identical fault schedule and identical
    recovery telemetry."""
    again = run_rkv_chaos(seed=42, loss=0.02)
    assert again.fault_schedule == rkv_report.fault_schedule
    assert again.telemetry_fingerprint() == rkv_report.telemetry_fingerprint()


def test_rkv_seed_changes_schedule(rkv_report):
    other = run_rkv_chaos(seed=1234, loss=0.02)
    assert other.ok
    assert other.telemetry_fingerprint() != rkv_report.telemetry_fingerprint()


def test_dt_chaos_commits_safely():
    report = run_dt_chaos(seed=42)
    assert report.ok, report.summary()
    assert report.invariants["occ_provenance"]


def test_rta_chaos_survives_core_and_actor_faults():
    report = run_rta_chaos(seed=42)
    assert report.ok, report.summary()
    assert report.faults_injected.get("core_fail", 0) == 1
    assert report.faults_injected.get("actor_crash", 0) == 1
    restarts = sum(s.restarts for s in report.recovery.values())
    assert restarts >= 1
