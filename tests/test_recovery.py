"""Recovery-path tests: reliable delivery, retransmit ordering, restarts.

Property tests (hypothesis, seeded) pin the two guarantees the chaos
experiments lean on: per-steering-key delivery *order* survives random
torn-write loss, and actor restart is idempotent w.r.t. DMO state.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Actor,
    IsolationPolicy,
    Message,
    ReliableChannel,
    SchedulerConfig,
)
from repro.core.channel import Channel
from repro.experiments.testbed import make_testbed
from repro.net import Packet
from repro.nic import LIQUIDIO_CN2350, DmaEngine, WorkloadProfile
from repro.sim import (
    FaultKind,
    FaultPlane,
    FaultSpec,
    RecoveryPolicy,
    Simulator,
    Timeout,
    spawn,
)


# -- reliable channel unit behavior ------------------------------------------

def _reliable_fixture(slots=64, torn_probability=0.0, torn_every_nth=0,
                      seed=7):
    sim = Simulator()
    chan = Channel(sim, DmaEngine(sim), slots=slots, name="c")
    if torn_probability or torn_every_nth:
        plane = FaultPlane(sim, seed=seed)
        plane.add(FaultSpec(FaultKind.DMA_TORN, target="c.to_host",
                            probability=torn_probability,
                            every_nth=torn_every_nth))
        plane.wire_channel(chan)
    rc = ReliableChannel(chan, sim)
    return sim, chan, rc


def _drive(sim, rc, expect, until=50_000.0, poll_us=1.0):
    """Poll the host side until ``expect`` messages arrive (or timeout)."""
    got = []

    def consumer():
        while len(got) < expect and sim.now < until:
            msg = rc.host_poll()
            if msg is not None:
                got.append(msg)
            else:
                yield Timeout(poll_us)

    spawn(sim, consumer(), name="consumer")
    sim.run(until=until)
    return got


def test_reliable_channel_recovers_torn_writes():
    sim, chan, rc = _reliable_fixture(torn_every_nth=3)
    for i in range(9):
        rc.nic_send(Message(target="a", payload=i, size=64))
    got = _drive(sim, rc, expect=9)
    assert [m.payload for m in got] == list(range(9))
    # every 3rd produce is torn — retransmitted writes count too, so a
    # message can tear more than once before it finally lands
    assert chan.to_host.checksum_failures >= 3
    assert rc.retransmits == chan.to_host.checksum_failures
    assert rc.recovered == 3                    # three distinct messages
    assert len(rc.mttr_samples) == 3
    assert rc.mttr_mean_us > 0.0
    assert rc.pending("to_host") == 0


def test_reliable_channel_ring_full_backoff():
    """A burst far past the ring size goes through without an exception
    reaching the sender (the event-level wait_not_full)."""
    sim, chan, rc = _reliable_fixture(slots=4)
    for i in range(40):
        rc.nic_send(Message(target="a", payload=i, size=64))
    got = _drive(sim, rc, expect=40)
    assert [m.payload for m in got] == list(range(40))
    assert rc.ring_full_backoffs > 0
    assert rc.pending("to_host") == 0


def test_unsequenced_traffic_passes_through():
    """Messages produced directly on the raw channel (no rel_* metadata)
    still come out of the reliable poll."""
    sim, chan, rc = _reliable_fixture()
    chan.nic_send(Message(target="a", payload="raw", size=64))
    got = _drive(sim, rc, expect=1)
    assert got[0].payload == "raw"


@given(seed=st.integers(min_value=0, max_value=10_000),
       n_keys=st.integers(min_value=1, max_value=4),
       n_msgs=st.integers(min_value=4, max_value=40),
       torn=st.floats(min_value=0.05, max_value=0.45))
@settings(max_examples=25, deadline=None)
def test_per_key_order_preserved_under_random_loss(seed, n_keys, n_msgs,
                                                   torn):
    """Property: whatever the loss pattern, released messages per steering
    key are exactly 0,1,2,... in send order — no gap, no dup, no swap."""
    sim, chan, rc = _reliable_fixture(torn_probability=torn, seed=seed)
    keys = [f"actor{k}" for k in range(n_keys)]
    sent = {key: 0 for key in keys}
    for i in range(n_msgs):
        key = keys[i % n_keys]
        rc.nic_send(Message(target=key, payload=(key, sent[key]), size=64))
        sent[key] += 1
    got = _drive(sim, rc, expect=n_msgs)
    assert len(got) == n_msgs                   # nothing lost
    per_key = {key: [] for key in keys}
    for msg in got:
        key, idx = msg.payload
        per_key[key].append(idx)
    for key in keys:
        assert per_key[key] == list(range(sent[key]))
    assert rc.pending("to_host") == 0


# -- actor crash / restart ---------------------------------------------------

def _counting_actor(counts):
    def handler(actor, msg, ctx):
        yield ctx.compute(us=2.0)
        counts.append(msg.payload)
        if msg.packet is not None:
            ctx.reply(msg, size=64)
    return handler


def _crash_bed(policy=None):
    bed = make_testbed()
    server = bed.add_server("server", LIQUIDIO_CN2350,
                            config=SchedulerConfig(migration_enabled=False),
                            recovery=policy)
    return bed, server.runtime


def test_crash_buffers_messages_and_restart_redelivers():
    bed, rt = _crash_bed(RecoveryPolicy(restart_delay_us=50.0))
    counts = []
    rt.register_actor(
        Actor("worker", _counting_actor(counts), concurrent=True,
              profile=WorkloadProfile("w", 2.0, 1.2, 0.5)),
        steering_keys=["data"])
    replies = []
    bed.network.attach("client", lambda p: replies.append(p))
    for i in range(10):
        bed.sim.call_at(i * 10.0, bed.network.send,
                        Packet("client", "server", 64, kind="data",
                               payload=i, created_at=i * 10.0))
    bed.sim.call_at(34.0, rt.crash_actor, "worker")
    bed.sim.run(until=5_000.0)
    rt.stop()
    assert rt.crashes == 1
    assert rt.restarts == 1
    assert len(replies) == 10                   # nothing lost
    assert sorted(counts) == list(range(10))
    assert len(rt.recovery_mttr) == 1
    assert rt.recovery_mttr[0] >= 50.0          # at least the restart delay


def test_crash_without_policy_stays_down():
    bed, rt = _crash_bed(policy=None)
    counts = []
    rt.register_actor(
        Actor("worker", _counting_actor(counts), concurrent=True,
              profile=WorkloadProfile("w", 2.0, 1.2, 0.5)),
        steering_keys=["data"])
    bed.network.attach("client", lambda p: None)
    assert rt.crash_actor("worker")
    bed.sim.run(until=1_000.0)
    rt.stop()
    assert rt.restarts == 0
    assert rt.actors.lookup("worker") is None


def test_watchdog_kill_restarts_when_policy_allows():
    bed = make_testbed()
    server = bed.add_server(
        "server", LIQUIDIO_CN2350,
        config=SchedulerConfig(
            migration_enabled=False,
            isolation=IsolationPolicy(timeout_us=30.0)),
        recovery=RecoveryPolicy(restart_delay_us=50.0))
    rt = server.runtime

    calls = []

    def misbehaves_once(actor, msg, ctx):
        calls.append(msg.payload)
        if len(calls) == 1:
            for _ in range(100):               # first request: runaway
                yield Timeout(5.0)
        else:
            yield ctx.compute(us=2.0)
            if msg.packet is not None:
                ctx.reply(msg, size=64)

    rt.register_actor(Actor("flaky", misbehaves_once), steering_keys=["data"])
    replies = []
    bed.network.attach("client", lambda p: replies.append(p))
    for i in range(3):
        bed.sim.call_at(10.0 + i * 100.0, bed.network.send,
                        Packet("client", "server", 64, kind="data",
                               payload=i, created_at=10.0 + i * 100.0))
    bed.sim.run(until=5_000.0)
    rt.stop()
    assert rt.config.isolation.kills == ["flaky"]
    assert rt.restarts >= 1
    # the two post-runaway requests were answered after the restart
    assert len(replies) == 2


@given(seed=st.integers(min_value=0, max_value=1_000))
@settings(max_examples=15, deadline=None)
def test_restart_idempotent_wrt_dmo_state(seed):
    """Property: crash + restart (and spurious extra restarts) never
    change the actor's DMO contents, and double-restart is a no-op."""
    bed, rt = _crash_bed(RecoveryPolicy(restart_delay_us=25.0))
    counts = []
    rt.register_actor(
        Actor("worker", _counting_actor(counts), concurrent=True,
              profile=WorkloadProfile("w", 2.0, 1.2, 0.5)),
        steering_keys=["data"])
    obj = rt.dmo.malloc("worker", 128, data={"seed": seed, "n": seed * 3})
    before = dict(rt.dmo.read("worker", obj.object_id))

    assert rt.crash_actor("worker")
    # crash keeps the DMO region: readable even while the actor is down
    assert rt.dmo.read("worker", obj.object_id) == before
    bed.sim.run(until=100.0)                    # restart fires at 25µs
    assert rt.actors.lookup("worker") is not None
    assert rt.dmo.read("worker", obj.object_id) == before
    # restarting a live actor is a no-op, not a second registration
    assert rt.restart_actor("worker") is False
    assert rt.restarts == 1
    assert rt.dmo.read("worker", obj.object_id) == before
    rt.stop()
