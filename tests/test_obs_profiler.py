"""Profiler: folds, stage tables, Chrome trace_event export."""

import json

import pytest

from repro.obs import (
    Tracer,
    fold,
    render_flame,
    render_stages,
    stage_breakdown,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.profiler import STAGE_ORDER


class _Sim:
    now = 0.0


def _sample_spans():
    tracer = Tracer(_Sim())
    trace = (tracer.new_trace(), 0)
    tracer.record_span("rx", "ingress", 0.0, 0.0, trace=trace,
                       node="s0", track="nic-rx")
    tracer.record_span("queue-wait", "sched.wait", 0.0, 4.0, trace=trace,
                       node="s0", track="core0", actor="kv")
    svc = tracer.record_span("exec:kv", "service", 4.0, 16.0, trace=trace,
                             node="s0", track="core0", actor="kv")
    tracer.record_span("crc", "accel", 6.0, 8.0, parent=svc,
                       node="s0", track="core0", engine="crc")
    tracer.record_span("cross", "channel", 16.0, 18.0, trace=trace,
                       node="s0", track="s0.chan.to_host")
    tracer.record_span("host:sst", "host", 18.0, 40.0, trace=trace,
                       node="s0", track="hostw0", actor="sst")
    return list(tracer.spans)


def test_stage_breakdown_orders_stages():
    stages = stage_breakdown(_sample_spans())
    names = list(stages)
    assert names == sorted(names, key=lambda n: STAGE_ORDER.index(n))
    assert stages["service"].count == 1
    assert stages["service"].p50_us == pytest.approx(12.0)
    assert stages["service"].total_us == pytest.approx(12.0)
    assert stages["host"].mean_us == pytest.approx(22.0)


def test_fold_by_node_cat_actor():
    rows = fold(_sample_spans(), by=("node", "cat", "actor"))
    # sorted by descending total time: the 22µs host span leads
    assert rows[0]["cat"] == "host"
    assert rows[0]["actor"] == "sst"
    assert rows[0]["total_us"] == pytest.approx(22.0)
    svc = next(r for r in rows if r["cat"] == "service")
    assert svc["actor"] == "kv"
    assert svc["count"] == 1


def test_fold_skips_open_spans():
    tracer = Tracer(_Sim())
    tracer.start_span("never-ends", "service")
    assert fold(tracer.spans) == []
    assert stage_breakdown(tracer.spans) == {}


def test_render_flame_and_stages_are_textual():
    spans = _sample_spans()
    flame = render_flame(fold(spans), by=("node", "cat", "actor"))
    assert "host" in flame and "share" in flame
    table = render_stages(stage_breakdown(spans))
    assert "p99(µs)" in table and "service" in table
    assert render_flame([], by=("cat",)) == "(no spans recorded)"
    assert render_stages({}) == "(no spans recorded)"


def test_chrome_trace_structure():
    doc = to_chrome_trace(_sample_spans())
    events = doc["traceEvents"]
    xs = [e for e in events if e["ph"] == "X"]
    metas = [e for e in events if e["ph"] == "M"]
    assert len(xs) == 6
    assert any(m["name"] == "process_name"
               and m["args"]["name"] == "s0" for m in metas)
    assert any(m["name"] == "thread_name"
               and m["args"]["name"] == "core0" for m in metas)
    for e in xs:
        assert e["dur"] > 0.0
        assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
        assert "trace_id" in e["args"]
    accel = next(e for e in xs if e["cat"] == "accel")
    assert "parent_id" in accel["args"]
    # same node → same pid; distinct tracks → distinct tids
    pids = {e["pid"] for e in xs}
    assert len(pids) == 1
    assert len({e["tid"] for e in xs}) == 4
    json.dumps(doc)        # must be serializable as-is


def test_write_chrome_trace_roundtrip(tmp_path):
    path = tmp_path / "trace.json"
    count = write_chrome_trace(_sample_spans(), str(path))
    doc = json.loads(path.read_text())
    assert len(doc["traceEvents"]) == count
    assert doc["otherData"]["clock"] == "virtual-us"


def test_non_scalar_attrs_are_stringified():
    tracer = Tracer(_Sim())
    tracer.record_span("s", "service", 0.0, 1.0, payload={"k": 1})
    doc = to_chrome_trace(tracer.spans)
    ev = next(e for e in doc["traceEvents"] if e["ph"] == "X")
    assert isinstance(ev["args"]["payload"], str)
    json.dumps(doc)
