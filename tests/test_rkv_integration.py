"""End-to-end RKV: 3 replicated servers + client over the simulated rack."""

import pytest

from repro.apps.rkv import RkvNode
from repro.core import SchedulerConfig
from repro.experiments.testbed import make_testbed
from repro.nic import LIQUIDIO_CN2350
from repro.net import Packet


def build_cluster(bed, nodes=("s0", "s1", "s2"), memtable_limit=256 * 1024):
    rkv = {}
    for name in nodes:
        server = bed.add_server(
            name, LIQUIDIO_CN2350,
            config=SchedulerConfig(migration_enabled=False))
        peers = [n for n in nodes if n != name]
        rkv[name] = RkvNode(server.runtime, peers, initial_leader=nodes[0],
                            memtable_limit=memtable_limit)
    return rkv


def put(bed, key, value, seq=0):
    pkt = Packet("client", "s0", 128 + len(value), kind="rkv-put",
                 payload={"key": key, "value": value}, created_at=bed.sim.now)
    pkt.meta["client"] = ("client", seq)
    bed.network.send(pkt)
    return pkt


def get(bed, key, seq=0):
    pkt = Packet("client", "s0", 128, kind="rkv-get",
                 payload={"key": key}, created_at=bed.sim.now)
    pkt.meta["client"] = ("client", seq)
    bed.network.send(pkt)
    return pkt


@pytest.fixture
def cluster():
    bed = make_testbed()
    replies = []
    bed.network.attach("client", lambda p: replies.append(p))
    rkv = build_cluster(bed)
    return bed, rkv, replies


def test_put_commits_and_acks(cluster):
    bed, rkv, replies = cluster
    put(bed, "alpha", b"one")
    bed.sim.run(until=2_000.0)
    assert len(replies) == 1
    assert replies[0].payload["status"] == "ok"
    # the command is replicated: every node applied it to its memtable
    leader = rkv["s0"]
    assert leader.memtable.get("alpha") == b"one"
    assert rkv["s1"].memtable.get("alpha") == b"one"
    assert rkv["s2"].memtable.get("alpha") == b"one"


def test_get_served_from_memtable(cluster):
    bed, rkv, replies = cluster
    put(bed, "k", b"v")
    bed.sim.run(until=2_000.0)
    replies.clear()
    get(bed, "k")
    bed.sim.run(until=4_000.0)
    assert len(replies) == 1
    assert replies[0].payload == {"status": "ok", "value": b"v"}
    assert rkv["s0"].reads_served_memtable == 1


def test_get_miss_falls_to_sstable_path(cluster):
    bed, rkv, replies = cluster
    get(bed, "missing")
    bed.sim.run(until=4_000.0)
    assert len(replies) == 1
    assert replies[0].payload["status"] == "not_found"
    assert rkv["s0"].not_found == 1


def test_memtable_freeze_flushes_to_lsm():
    bed = make_testbed()
    replies = []
    bed.network.attach("client", lambda p: replies.append(p))
    rkv = build_cluster(bed, memtable_limit=2_000)
    for i in range(30):
        put(bed, f"key{i:03d}", b"x" * 100, seq=i)
        bed.sim.run(until=bed.sim.now + 300.0)
    bed.sim.run(until=bed.sim.now + 20_000.0)
    leader = rkv["s0"]
    assert leader.storage.lsm.stats.flushes >= 1
    # reads still see flushed keys (via frozen runs or SSTables)
    replies.clear()
    get(bed, "key000", seq=999)
    bed.sim.run(until=bed.sim.now + 5_000.0)
    assert replies and replies[0].payload["status"] == "ok"
    assert replies[0].payload["value"] == b"x" * 100


def test_paxos_traffic_flows_between_servers(cluster):
    bed, rkv, replies = cluster
    for i in range(5):
        put(bed, f"k{i}", b"v", seq=i)
        bed.sim.run(until=bed.sim.now + 500.0)
    bed.sim.run(until=bed.sim.now + 2_000.0)
    assert len(replies) == 5
    # followers saw accept+learn traffic
    assert rkv["s1"].paxos.committed_count == 5
    assert rkv["s2"].paxos.committed_count == 5


def test_write_then_read_your_write_latency(cluster):
    bed, rkv, replies = cluster
    put(bed, "rw", b"val")
    bed.sim.run(until=3_000.0)
    write_reply = replies[0]
    # commit needs one accept round trip: ≥ 2 wire crossings
    assert bed.sim.now >= 2.0
    replies.clear()
    get(bed, "rw", seq=1)
    start = bed.sim.now
    bed.sim.run(until=start + 2_000.0)
    assert replies[0].payload["value"] == b"val"
