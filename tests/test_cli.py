"""Tests for the ``python -m repro`` command-line interface."""

import json
import textwrap

import pytest

from repro.cli import CHECK_TARGETS, EXPERIMENTS, main


def test_list_prints_every_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out.splitlines()
    assert set(out) == set(EXPERIMENTS)


def test_unknown_experiment_errors(capsys):
    assert main(["fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_table_experiments_print(capsys):
    assert main(["table1", "table2", "table3"]) == 0
    out = capsys.readouterr().out
    assert "LiquidIOII CN2350" in out
    assert "8.3" in out               # Table 2 L1 latency
    assert "flow_classifier" in out   # Table 3 workload


def test_fig2_fig4_print_series(capsys):
    assert main(["fig2", "fig4"]) == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out and "1500B" in out
    assert "Figure 4" in out


def test_fig6_to_10_print(capsys):
    assert main(["fig6", "fig7-10"]) == 0
    out = capsys.readouterr().out
    assert "DPDK-send" in out
    assert "RDMA one-sided read" in out


def test_quick_fig17_runs(capsys):
    assert main(["fig17", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "w/o iPipe" in out


# -- repro lint -----------------------------------------------------------------

def test_lint_clean_on_package_exits_zero(capsys):
    assert main(["lint"]) == 0
    assert "clean" in capsys.readouterr().out


def test_lint_findings_exit_one(capsys, tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text(textwrap.dedent("""\
        import random
        def f():
            return random.random()
    """))
    assert main(["lint", str(path)]) == 1
    out = capsys.readouterr().out
    assert "[module-random]" in out and "1 finding(s)" in out


def test_lint_missing_path_exits_two(capsys, tmp_path):
    assert main(["lint", str(tmp_path / "nope")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_lint_rules_listing(capsys):
    assert main(["lint", "--rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("wall-clock", "module-random", "unordered-iter"):
        assert rule in out


# -- repro check ----------------------------------------------------------------

def test_check_quick_fig16_exits_zero(capsys):
    assert main(["check", "fig16", "--quick", "--replay", "2"]) == 0
    out = capsys.readouterr().out
    assert "determinism: OK" in out


def test_check_rejects_single_replay(capsys):
    with pytest.raises(SystemExit):
        main(["check", "fig16", "--quick", "--replay", "1"])


def test_check_targets_cover_scheduler_dataplane_chaos_and_scenarios():
    assert {"fig5", "fig16", "chaos-rkv", "chaos-dt",
            "chaos-rta"} <= set(CHECK_TARGETS)
    # every shipped scenario spec is a check target
    from repro.scenario import shipped_specs
    names = shipped_specs()
    assert names  # the package ships specs
    for name in names:
        assert f"scenario-{name}" in CHECK_TARGETS
    assert "slo-study" in CHECK_TARGETS
    assert "steering-chaos" in CHECK_TARGETS


def test_pulse_without_export_paths_is_a_usage_error(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["pulse"])
    assert exc.value.code == 2
    assert "nothing to export" in capsys.readouterr().err


def test_slo_quick_prints_the_burn_rate_report(capsys):
    assert main(["slo", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "[slo:rkv-p99]" in out
    assert "breach @" in out and "recover @" in out


# -- repro bench --check --------------------------------------------------------

_CANNED_BENCH = {
    "meta": {},
    "kernel": {
        "post_chain_eps": 1_000_000.0,
        "seed_chain_eps": 800_000.0,
        "speedup_post_vs_seed": 1.25,
        "speedup_cancel_vs_seed": 1.5,
        "cancel_heavy_peak_heap": 100.0,
        "cancel_heavy_seed_peak_heap": 200.0,
    },
    "sweep": {
        "points": 4, "pool": 2, "pool_speedup": 1.8,
        "cached_speedup": 5.0, "cache_hit_rate": 1.0, "identical": True,
    },
}


def test_bench_check_regression_gate_failure_path(capsys, tmp_path,
                                                  monkeypatch):
    import repro.exec.bench as bench_mod
    monkeypatch.setattr(bench_mod, "run_bench",
                        lambda **kwargs: _CANNED_BENCH)
    baseline = tmp_path / "baseline.json"
    # baseline far above the canned result: the 30% gate must trip
    inflated = {"kernel": {"post_chain_eps": 10_000_000.0,
                           "seed_chain_eps": 800_000.0}}
    baseline.write_text(json.dumps(inflated))
    out_path = tmp_path / "BENCH_sweep.json"
    code = main(["bench", "--out", str(out_path),
                 "--check", str(baseline)])
    assert code == 1
    out = capsys.readouterr().out
    assert "PERF REGRESSION" in out and "post_chain_eps" in out
    # fresh results are still written even when the gate fails
    assert json.loads(out_path.read_text())["kernel"]["post_chain_eps"] == (
        1_000_000.0)


def test_bench_check_passing_gate_exits_zero(capsys, tmp_path, monkeypatch):
    import repro.exec.bench as bench_mod
    monkeypatch.setattr(bench_mod, "run_bench",
                        lambda **kwargs: _CANNED_BENCH)
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(
        {"kernel": {"post_chain_eps": 1_000_000.0}}))
    code = main(["bench", "--out", str(tmp_path / "out.json"),
                 "--check", str(baseline)])
    assert code == 0
    assert "no regression" in capsys.readouterr().out


def test_bench_check_help_states_exit_codes(capsys):
    with pytest.raises(SystemExit):
        main(["bench", "--help"])
    out = " ".join(capsys.readouterr().out.split())   # undo help wrapping
    assert "Exit code 0" in out and "Exit code 1" in out
