"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


def test_list_prints_every_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out.splitlines()
    assert set(out) == set(EXPERIMENTS)


def test_unknown_experiment_errors(capsys):
    assert main(["fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_table_experiments_print(capsys):
    assert main(["table1", "table2", "table3"]) == 0
    out = capsys.readouterr().out
    assert "LiquidIOII CN2350" in out
    assert "8.3" in out               # Table 2 L1 latency
    assert "flow_classifier" in out   # Table 3 workload


def test_fig2_fig4_print_series(capsys):
    assert main(["fig2", "fig4"]) == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out and "1500B" in out
    assert "Figure 4" in out


def test_fig6_to_10_print(capsys):
    assert main(["fig6", "fig7-10"]) == 0
    out = capsys.readouterr().out
    assert "DPDK-send" in out
    assert "RDMA one-sided read" in out


def test_quick_fig17_runs(capsys):
    assert main(["fig17", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "w/o iPipe" in out
