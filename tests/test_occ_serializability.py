"""Serializability property tests for the OCC + 2PC transaction system.

The coordinator/participant machines run with interleaved message
delivery; committed transactions must admit a serial order producing the
same final store state, and reads must return values some committed
transaction wrote.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.dt import TxnCoordinator, TxnParticipant


class InterleavedCluster:
    """Cluster whose message delivery interleaves across live txns."""

    def __init__(self, participants=("p0", "p1")):
        self.queue = []
        self.parts = {name: TxnParticipant(name, send=self._enq)
                      for name in participants}
        self.coord = TxnCoordinator("coord", list(participants),
                                    send=self._enq)
        self.results = {}

    def _enq(self, dst, msg):
        self.queue.append((dst, msg))

    def start(self, txn_spec):
        reads, writes = txn_spec
        txn_id = self.coord.begin(
            list(reads), dict(writes),
            lambda ok, vals, s=txn_spec: self.results.setdefault(id(s), (ok, vals)))
        return txn_id

    def drive(self, rnd, max_steps=10_000):
        steps = 0
        while self.queue and steps < max_steps:
            idx = rnd.randrange(len(self.queue))
            dst, msg = self.queue.pop(idx)
            (self.coord if dst == "coord" else self.parts[dst]).handle(msg)
            steps += 1

    def store_state(self):
        state = {}
        for part in self.parts.values():
            for bucket in part.store._buckets:
                for entry in bucket:
                    if entry.version > 0:
                        state[entry.key] = entry.value
        return state


KEYS = ["a", "b", "c", "d"]
txn_strategy = st.tuples(
    st.lists(st.sampled_from(KEYS), max_size=2, unique=True),
    st.dictionaries(st.sampled_from(KEYS), st.binary(min_size=1, max_size=4),
                    max_size=2),
)


@given(st.lists(txn_strategy, min_size=1, max_size=8),
       st.randoms(use_true_random=False))
@settings(max_examples=60, deadline=None)
def test_concurrent_txns_produce_serializable_state(txns, rnd):
    cluster = InterleavedCluster()
    # launch all transactions before delivering anything → full interleaving
    specs = []
    for spec in txns:
        specs.append(spec)
        cluster.start(spec)
    cluster.drive(rnd)

    # every transaction finished one way or the other
    assert len(cluster.results) == len(set(id(s) for s in specs))

    committed = [spec for spec in specs
                 if cluster.results[id(spec)][0]]
    final = cluster.store_state()
    # every key in the store was written by some committed transaction
    for key, value in final.items():
        assert any(w.get(key) == value for _, w in committed), (key, value)
    # every committed write-set key exists in the store
    for _reads, writes in committed:
        for key in writes:
            assert key in final

    # no locks leak after quiescence
    for part in cluster.parts.values():
        for bucket in part.store._buckets:
            for entry in bucket:
                assert entry.locked_by is None


@given(st.lists(txn_strategy, min_size=2, max_size=6),
       st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_aborted_txns_leave_no_trace(txns, rnd):
    cluster = InterleavedCluster()
    for spec in txns:
        cluster.start(spec)
    cluster.drive(rnd)
    aborted = [spec for spec in txns if not cluster.results[id(spec)][0]]
    committed = [spec for spec in txns if cluster.results[id(spec)][0]]
    final = cluster.store_state()
    for _reads, writes in aborted:
        for key, value in writes.items():
            if key in final:
                # the value must come from a committed txn, not this abort
                assert any(w.get(key) == final[key] for _, w in committed)
