"""Tests for the host machine model and stack cost accounting."""

import pytest

from repro.host import HostCorePool, HostMachine, Job, StorageService, dpdk_stack, ipipe_host_stack
from repro.nic import HOST_XEON_E5_2680
from repro.sim import Simulator


def test_pool_executes_jobs_and_counts_completions():
    sim = Simulator()
    pool = HostCorePool(sim, HOST_XEON_E5_2680, cores=2)
    done = []
    for i in range(4):
        pool.submit_work(10.0, on_done=lambda i=i: done.append((i, sim.now)))
    sim.run()
    assert pool.completed == 4
    # 2 cores, 4 jobs of 10 µs → makespan 20 µs
    assert max(t for _, t in done) == pytest.approx(20.0)


def test_pool_utilization_accounts_busy_cores():
    sim = Simulator()
    pool = HostCorePool(sim, HOST_XEON_E5_2680, cores=4)
    for _ in range(8):
        pool.submit_work(25.0)
    sim.run(until=100.0)
    # 8 × 25 µs = 200 µs of work over a 100 µs window on 4 cores → 2 cores
    assert pool.cores_used(100.0) == pytest.approx(2.0, abs=0.1)


def test_pool_queue_delay_under_overload():
    sim = Simulator()
    pool = HostCorePool(sim, HOST_XEON_E5_2680, cores=1)
    for _ in range(10):
        pool.submit_work(10.0)
    sim.run()
    assert pool.mean_queue_delay_us() > 0


def test_storage_hit_miss_interleave_matches_ratio():
    sim = Simulator()
    storage = StorageService(sim, cache_hit_ratio=0.8, cache_hit_us=5.0,
                             miss_us=100.0)
    costs = [storage.read_cost_us() for _ in range(100)]
    misses = sum(1 for c in costs if c == 100.0)
    assert misses == 20


def test_storage_write_cost_scales():
    storage = StorageService(Simulator())
    assert storage.write_cost_us(64 * 1024) > storage.write_cost_us(1024)
    assert storage.write_cost_us(0) == 1.0  # floor


def test_storage_validates_ratio():
    with pytest.raises(ValueError):
        StorageService(Simulator(), cache_hit_ratio=1.5)


def test_machine_composition():
    sim = Simulator()
    box = HostMachine(sim, HOST_XEON_E5_2680, cores=4)
    assert box.pool.num_cores == 4
    assert box.storage.reads == 0


def test_dpdk_stack_costs_scale_with_size():
    stack = dpdk_stack()
    assert stack.round_trip_cost(1024) > stack.round_trip_cost(64)


def test_ipipe_host_stack_cheaper_than_dpdk():
    # iPipe host messages arrive pre-parsed over the ring: less per-packet
    # work than full DPDK descriptor processing.
    assert ipipe_host_stack().round_trip_cost(512) < dpdk_stack().round_trip_cost(512)
