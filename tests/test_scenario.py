"""Tests for the declarative scenario layer: spec validation,
serialisation round-trips, build equivalence with hand-wired testbeds,
and the shipped spec registry."""

import pytest

from repro.net import Packet
from repro.nic import LIQUIDIO_CN2350
from repro.scenario import (
    AppSpec,
    ClientSpec,
    FabricSpec,
    FaultDecl,
    FleetSpec,
    RackSpec,
    ScenarioError,
    ScenarioSpec,
    ServerSpec,
    build,
    from_json,
    load_shipped,
    run_scenario,
    shipped_specs,
    single_rack,
    three_servers,
    to_json,
)
from repro.sim import Rng, Simulator


def _rkv_spec(**kwargs):
    defaults = dict(
        name="t", seed=7, duration_us=3_000.0,
        racks=(RackSpec(name="rack0",
                        servers=(ServerSpec(name="s0", host_workers=4),),
                        clients=(ClientSpec("client"),)),),
        fabric=FabricSpec(),
        apps=(AppSpec(kind="rkv", servers=("s0",)),),
        fleets=(FleetSpec(client="client", dst="s0", mode="closed",
                          clients=4, size=256, workload="kv", seed=9),))
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


# -- validation --------------------------------------------------------------

def test_validate_accepts_the_paper_shapes():
    single_rack("ok", three_servers()).validate()
    _rkv_spec().validate()


@pytest.mark.parametrize("mutation, fragment", [
    (dict(racks=()), "no racks"),
    (dict(racks=(RackSpec(name="r",
                          servers=(ServerSpec(name="x", nic="nope"),)),),
          apps=(), fleets=()), "unknown NIC"),
    (dict(apps=(AppSpec(kind="rkv", servers=("ghost",)),)), "unknown server"),
    (dict(apps=(AppSpec(kind="warp", servers=("s0",)),)), "unknown kind"),
    (dict(fleets=(FleetSpec(client="ghost", dst="s0"),)), "unknown client"),
    (dict(fleets=(FleetSpec(client="client", dst="ghost"),)), "unknown dst"),
    (dict(fleets=(FleetSpec(client="client", dst="shard:dt"),)),
     "names no declared app"),
    (dict(faults=(FaultDecl(kind="meteor", target="*"),)), "unknown kind"),
    (dict(duration_us=0.0), "duration_us"),
])
def test_validate_rejects(mutation, fragment):
    with pytest.raises(ScenarioError) as exc:
        _rkv_spec(**mutation).validate()
    assert fragment in str(exc.value)


def test_sharded_app_needs_enough_servers():
    spec = _rkv_spec(apps=(AppSpec(kind="rkv", servers=("s0",), shards=2),),
                     fleets=())
    with pytest.raises(ScenarioError):
        spec.validate()


# -- serialisation -----------------------------------------------------------

def test_json_round_trip_preserves_the_spec():
    spec = ScenarioSpec(
        name="rt", seed=3, duration_us=5_000.0,
        racks=(
            RackSpec(name="r0",
                     servers=(ServerSpec(name="a", host_workers=2,
                                         reliable=True,
                                         scheduler=(("migration_enabled",
                                                     False),)),),
                     clients=(ClientSpec("c0"),)),
            RackSpec(name="r1",
                     servers=(ServerSpec(name="b", system="dpdk"),)),
        ),
        fabric=FabricSpec(inter_rack_propagation_us=2.5),
        apps=(AppSpec(kind="rkv", servers=("a", "b"), shards=2,
                      options=(("prefill_keys", 10),)),),
        fleets=(FleetSpec(client="c0", dst="shard:rkv", mode="open",
                          rate_mpps=0.05, workload="kv",
                          connections=1_000_000),),
        faults=(FaultDecl(kind="link_loss", target="*", probability=0.01),))
    assert from_json(to_json(spec)) == spec


def test_from_dict_rejects_unknown_fields():
    text = to_json(_rkv_spec()).replace('"seed"', '"sede"')
    with pytest.raises(ScenarioError) as exc:
        from_json(text)
    assert "unknown field" in str(exc.value)


def test_shipped_specs_load_and_validate():
    names = shipped_specs()
    assert "paper-testbed" in names
    assert "multi-rack-rkv" in names
    for name in names:
        spec = load_shipped(name)
        spec.validate()
        assert spec.name == name
    multi = load_shipped("multi-rack-rkv")
    assert len(multi.racks) >= 3
    assert any(app.shards > 1 for app in multi.apps)
    with pytest.raises(KeyError):
        load_shipped("no-such-scenario")


# -- build + run -------------------------------------------------------------

def test_build_wires_servers_apps_and_fleets():
    scenario = build(_rkv_spec())
    assert set(scenario.servers) == {"s0"}
    assert set(scenario.clients) == {"client"}
    assert scenario.app("rkv").nodes.keys() == {"s0"}
    assert len(scenario.generators) == 1
    scenario.run(until=2_000.0)
    scenario.stop()
    gen = scenario.generators[0]
    assert gen.sent > 0
    assert gen.completed > 0


def test_sharded_placement_interleaves_across_racks():
    spec = ScenarioSpec(
        name="shards", duration_us=1_000.0,
        racks=tuple(RackSpec(name=f"rack{i}",
                             servers=(ServerSpec(name=f"r{i}s0"),))
                    for i in range(3)),
        apps=(AppSpec(kind="rkv",
                      servers=("r0s0", "r1s0", "r2s0"), shards=3),))
    scenario = build(spec)
    app = scenario.app("rkv")
    # rack-ordered dealing: each replica group seeds from a distinct rack
    assert app.groups == [["r0s0"], ["r1s0"], ["r2s0"]]
    assert app.leaders == ["r0s0", "r1s0", "r2s0"]


def test_multi_rack_run_crosses_the_spine():
    result = run_scenario(load_shipped("multi-rack-rkv"),
                          duration_us=2_000.0)
    assert result.sent > 0
    assert result.switch_counters["spine"][0] > 0          # forwarded
    assert all(result.switch_counters[f"rack{i}.tor"][0] > 0
               for i in range(3))


def test_run_scenario_fingerprint_is_deterministic():
    spec = load_shipped("paper-testbed")
    first = run_scenario(spec, duration_us=1_500.0)
    again = run_scenario(spec, duration_us=1_500.0)
    assert first.fingerprint() == again.fingerprint()


# -- spec-built vs hand-wired equivalence ------------------------------------

def test_spec_build_matches_hand_wired_testbed():
    """build(spec) and the imperative Testbed surface must produce the
    same simulation: identical traffic, latency, and switch counters."""
    from repro.apps.rkv import RkvNode
    from repro.experiments.testbed import make_testbed
    from repro.workloads import KvWorkload

    spec_result = run_scenario(_rkv_spec(), duration_us=3_000.0)

    bed = make_testbed(bandwidth_gbps=10)
    server = bed.add_server("s0", host_workers=4)
    RkvNode(server.runtime, [], initial_leader="s0")
    runtime = server.runtime
    original = runtime.on_packet

    def routed(packet, original=original):
        if isinstance(packet.payload, dict) and "kind" in packet.payload \
                and "payload" not in packet.payload:
            packet.kind = packet.payload["kind"]
        original(packet)

    runtime.nic.packet_handler = routed
    port = bed.add_client("client")
    wl = KvWorkload(packet_size=256)
    gen = port.closed_loop(dst="s0", clients=4, size=256,
                           payload_factory=wl.next_request, rng=Rng(9))
    bed.sim.run(until=3_000.0)
    gen.stop()
    runtime.stop()

    assert (gen.sent, gen.completed) == (spec_result.sent,
                                         spec_result.completed)
    assert port.received == spec_result.client_received["client"]
    tor = bed.network.switch
    assert (tor.forwarded, tor.dropped) == spec_result.switch_counters["tor"]
    assert gen.latency.mean == pytest.approx(spec_result.mean_latency_us,
                                             rel=1e-12)


def test_fig16_point_matches_pre_refactor_fingerprint():
    """The scheduler study built through ScenarioSpec reproduces the
    hand-wired seed implementation bit-for-bit (golden captured before
    the scenario refactor)."""
    from repro.experiments.scheduler_study import run_point
    mean, p99 = run_point(LIQUIDIO_CN2350, "ipipe", "high", 0.9,
                          duration_us=4_000.0, seed=1)
    assert mean == pytest.approx(46.639209659452774, rel=1e-12)
    assert p99 == pytest.approx(77.48686991602294, rel=1e-12)


def test_chaos_point_matches_pre_refactor_fingerprint():
    """One chaos point through the spec-built path keeps the pre-refactor
    fault schedule and recovery telemetry."""
    from repro.exec.grids import chaos_point
    point = chaos_point("rkv", seed=42, duration_us=10_000.0)
    assert (point["answered"], point["lost"],
            point["client_retransmits"]) == (45, 0, 3)
    schedule = point["fingerprint"][0]
    assert schedule[0] == (9.7228, "link_loss", "s0.up")
    assert schedule[-1] == (7005.481183, "dma_torn", "s0.chan.to_host")


# -- client port demux -------------------------------------------------------

def test_client_port_demuxes_replies_to_owning_generator():
    scenario = build(ScenarioSpec(
        name="demux", seed=5, duration_us=2_000.0,
        racks=(RackSpec(name="rack0",
                        servers=(ServerSpec(name="s0", host_workers=2),),
                        clients=(ClientSpec("client"),)),),
        apps=(AppSpec(kind="rkv", servers=("s0",)),),
        fleets=(FleetSpec(client="client", dst="s0", mode="closed",
                          clients=2, size=256, workload="kv", seed=1),
                FleetSpec(client="client", dst="s0", mode="closed",
                          clients=2, size=256, workload="kv", seed=2))))
    port = scenario.clients["client"]
    stray = []
    port.add_sink(stray.append)
    scenario.run(until=2_000.0)
    scenario.stop()
    first, second = scenario.generators
    # both loops make progress: replies reach their owners, not whichever
    # generator happened to register first
    assert first.completed > 0
    assert second.completed > 0
    assert port.received == first.completed + second.completed
    assert not stray  # every reply found its owner
    assert first.tag != second.tag


def test_client_port_untagged_replies_fall_through_to_sinks():
    sim = Simulator()
    from repro.scenario.build import ClientPort
    from repro.net import Network
    net = Network(sim, bandwidth_gbps=10)
    port = ClientPort(sim, net, "client")
    seen = []
    port.add_sink(seen.append)
    port.receive(Packet("s0", "client", 64, created_at=0.0))
    assert len(seen) == 1
    assert port.received == 1
