"""TenantPlane tests (docs/TENANCY.md): spec round-trip and validation,
per-tenant DRR conservation under random share splits, cross-tenant DMO
denial under random op interleavings, quota-map eviction, and the
TenantMonitor injection checks (each planted violation is caught and
names the offending tenant/actor)."""

import types

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import TenantMonitor
from repro.core import Actor, ActorTable, DmoManager, Message, SchedulerConfig
from repro.core.dmo import DmoError
from repro.core.isolation import IsolationPolicy, QuotaEnforcer
from repro.core.scheduler import NicScheduler, WorkItem
from repro.nic import TrafficManager
from repro.scenario import (
    ScenarioError,
    TenantSpec,
    build,
    from_dict,
    to_dict,
)
from repro.sim import Simulator, Timeout


# -- spec layer --------------------------------------------------------------

def _tenant_spec_dict():
    return {
        "name": "tenancy-test",
        "racks": [{
            "name": "rack0",
            "servers": [{"name": "s0"}, {"name": "s1"}],
            "clients": [{"name": "c0"}],
        }],
        "apps": [
            {"kind": "rkv", "servers": ["s0", "s1"], "leader": "s0",
             "tenant": "gold"},
            {"kind": "rta", "servers": ["s1"], "tenant": "bronze"},
        ],
        "tenants": [
            {"name": "gold", "nic_core_share": 0.6,
             "dmo_budget_bytes": 1 << 20,
             "slos": ["rkv p99 < 500us over 2ms"]},
            {"name": "bronze", "nic_core_share": 0.4},
        ],
        "fleets": [{"client": "c0", "dst": "s0", "clients": 4,
                    "tenant": "gold"}],
        "observability": {"pulse": {"period_us": 500.0}},
        "duration_us": 5000.0,
    }


def test_tenant_spec_round_trips_through_dict():
    spec = from_dict(_tenant_spec_dict())
    spec.validate()
    assert spec.tenant_names() == ["gold", "bronze"]
    assert spec.tenant_of("gold").dmo_budget_bytes == 1 << 20
    again = from_dict(to_dict(spec))
    assert again == spec


def test_unknown_tenant_field_is_rejected():
    bad = _tenant_spec_dict()
    bad["tenants"][0]["bogus_knob"] = 1
    with pytest.raises(ScenarioError, match="bogus_knob"):
        from_dict(bad)


def test_app_with_undeclared_tenant_fails_validation():
    bad = _tenant_spec_dict()
    bad["apps"][1]["tenant"] = "nobody"
    with pytest.raises(ScenarioError, match="nobody"):
        from_dict(bad).validate()


def test_untenanted_app_fails_validation_when_tenants_declared():
    bad = _tenant_spec_dict()
    bad["apps"][1]["tenant"] = ""
    with pytest.raises(ScenarioError, match="no tenant"):
        from_dict(bad).validate()


def test_share_total_above_one_fails_validation():
    bad = _tenant_spec_dict()
    bad["tenants"][1]["nic_core_share"] = 0.6
    with pytest.raises(ScenarioError, match="exceeds 1"):
        from_dict(bad).validate()


def test_zero_share_tenant_is_allowed():
    # 0 = "declared but unshared": ledgers and monitors run, the
    # scheduler serves the tenant flat (the tenant-study's flat leg)
    flat = _tenant_spec_dict()
    for tenant in flat["tenants"]:
        tenant["nic_core_share"] = 0.0
    from_dict(flat).validate()


def test_tenant_slo_without_pulse_fails_validation():
    bad = _tenant_spec_dict()
    bad["observability"] = {}
    with pytest.raises(ScenarioError, match="pulse"):
        from_dict(bad).validate()


def test_tenant_timeout_must_be_positive():
    with pytest.raises(ValueError, match="timeout"):
        IsolationPolicy(tenant_timeout_us={"gold": 0.0})


# -- scheduler: hierarchical DRR conservation --------------------------------

class _Harness:
    """Scripted scheduler fixture (same shape as test_scheduler_unit)."""

    def __init__(self, cores=2, quantum=5.0):
        self.sim = Simulator()
        self.queue = TrafficManager(self.sim, hardware=True)
        self.table = ActorTable()
        self.scheduler = NicScheduler(
            self.sim, num_cores=cores, work_queue=self.queue,
            actor_table=self.table, executor=self._executor,
            config=SchedulerConfig(migration_enabled=False,
                                   downgrade_enabled=False,
                                   autoscale=False,
                                   # threshold 0: no dispersion-driven
                                   # upgrades; actors stay where scripted
                                   tail_thresh_us=0.0),
            quantum_fn=lambda actor: quantum)

    def _executor(self, core_id, actor, msg):
        yield from actor.exec_handler(actor, msg, None)

    def add_drr_actor(self, name, tenant, service_us):
        actor = self.add_fcfs_actor(name, tenant, service_us)
        actor.is_drr = True
        actor.service.record(service_us)
        self.scheduler.drr_runnable.append(actor)
        return actor

    def add_fcfs_actor(self, name, tenant, service_us):
        def handler(actor, msg, ctx):
            yield Timeout(service_us)

        actor = Actor(name, handler, concurrent=True, tenant=tenant)
        self.table.register(actor)
        return actor

    def push(self, actor_name, at):
        msg = Message(target=actor_name)
        msg.meta["nic_arrival"] = at
        item = WorkItem(message=msg, arrived_at=at)
        self.sim.call_at(at, self.queue.push, item)


def _monitor_for(sched, dmo=None):
    monitor = TenantMonitor()
    monitor.watch("s0", types.SimpleNamespace(nic_scheduler=sched,
                                              dmo=dmo or DmoManager()))
    return monitor


@given(share=st.floats(min_value=0.05, max_value=0.95),
       arrivals=st.lists(
           st.tuples(st.integers(min_value=0, max_value=3),
                     st.floats(min_value=0.0, max_value=80.0)),
           min_size=1, max_size=16))
@settings(max_examples=25, deadline=None)
def test_per_tenant_drr_conservation_under_random_share_splits(
        share, arrivals):
    h = _Harness(cores=2)
    h.scheduler.core_mode[1] = "drr"
    h.scheduler.set_tenant_shares({"gold": share, "bronze": 1.0 - share})
    names = []
    for i, (tenant, service) in enumerate((
            ("gold", 3.0), ("gold", 9.0), ("bronze", 2.0), ("bronze", 7.0))):
        names.append(f"{tenant}{i}")
        h.add_drr_actor(names[-1], tenant, service)
    for idx, at in arrivals:
        h.push(names[idx], at)
    h.sim.run(until=400.0)
    h.scheduler.stop()
    monitor = _monitor_for(h.scheduler)
    assert list(monitor.check(h.sim.now)) == []
    sched = h.scheduler
    # the per-tenant dicts partition the global ledger exactly
    assert sum(sched.tenant_granted_us.values()) == pytest.approx(
        sched.quantum_granted_us)
    assert sum(sched.tenant_spent_us.values()) == pytest.approx(
        sched.deficit_spent_us)
    assert set(sched.tenant_granted_us) <= {"gold", "bronze"}


def test_tenant_quantum_grants_scale_with_the_share():
    h = _Harness(cores=2, quantum=10.0)
    h.scheduler.core_mode[1] = "drr"
    h.scheduler.set_tenant_shares({"gold": 0.8, "bronze": 0.2})
    h.add_drr_actor("gold0", "gold", 4.0)
    h.add_drr_actor("bronze0", "bronze", 4.0)
    # the FCFS core is saturated with its own (implicit-tenant) traffic,
    # so DRR work is served through the quantum economy, not stolen
    h.add_fcfs_actor("bg", "", 5.0)
    for at in range(0, 200, 4):
        h.push("bg", float(at))
    for at in range(0, 200, 2):
        h.push("gold0", float(at))
        h.push("bronze0", float(at))
    h.sim.run(until=400.0)
    h.scheduler.stop()
    sched = h.scheduler
    # equal demand, 4:1 shares -> gold's pool is granted several times
    # bronze's quantum per scan (scale = share * runnable / members)
    assert sched.tenant_granted_us["gold"] > \
        2.0 * sched.tenant_granted_us["bronze"]
    assert list(_monitor_for(sched).check(h.sim.now)) == []


# -- DMO: cross-tenant denial under random interleavings ---------------------

_OPS = st.lists(
    st.tuples(st.sampled_from(["malloc", "read_own", "read_other", "free"]),
              st.integers(min_value=0, max_value=3),
              st.integers(min_value=32, max_value=512)),
    min_size=1, max_size=40)


@given(ops=_OPS)
@settings(max_examples=40, deadline=None)
def test_cross_tenant_dmo_denied_under_random_interleavings(ops):
    dmo = DmoManager(region_bytes=1 << 20)
    actors = {0: ("a0", "t1"), 1: ("a1", "t1"), 2: ("b0", "t2"),
              3: ("b1", "t2")}
    for name, tenant in actors.values():
        dmo.create_region(name, tenant=tenant)
    owned = {name: [] for name, _ in actors.values()}
    denials = 0
    for op, idx, size in ops:
        name, tenant = actors[idx]
        other = actors[(idx + 2) % 4][0]      # an actor of the other tenant
        if op == "malloc":
            owned[name].append(dmo.malloc(name, size))
        elif op == "free" and owned[name]:
            dmo.free(name, owned[name].pop().object_id)
        elif op == "read_own" and owned[name]:
            dmo.read(name, owned[name][-1].object_id)
        elif op == "read_other" and owned[other]:
            with pytest.raises(DmoError, match="cross-tenant"):
                dmo.read(name, owned[other][-1].object_id)
            denials += 1
    assert dmo.cross_tenant_denials == denials
    # usage ledgers always equal the live bytes, interleaving-independent
    for tenant in ("t1", "t2"):
        live = sum(o.size for objs in owned.values() for o in objs
                   if dmo.tenant_of(o.actor) == tenant)
        assert dmo.tenant_bytes_used(tenant) == live


def test_tenant_dmo_budget_exhaustion():
    dmo = DmoManager(region_bytes=1 << 20)
    dmo.create_region("a", tenant="t1")
    dmo.create_region("b", tenant="t1")
    dmo.set_tenant_budget("t1", 1000)
    dmo.malloc("a", 600)
    with pytest.raises(DmoError, match="budget exhausted"):
        dmo.malloc("b", 600)                  # 600+600 > 1000, cross-region
    obj = dmo.malloc("b", 400)
    dmo.free("b", obj.object_id)
    assert dmo.tenant_bytes_used("t1") == 600


# -- QuotaEnforcer -----------------------------------------------------------

def test_quota_enforcer_evicts_stale_entries():
    quota = QuotaEnforcer(window_us=100.0, max_share=0.5)
    quota.charge("a", 10.0, now=0.0, tenant="t1")
    quota.charge("b", 10.0, now=50.0, tenant="t1")
    assert quota.tracked_actors() == 2
    # a's last charge is 200µs stale by now=250: evicted on next charge
    quota.charge("c", 10.0, now=250.0, tenant="t2")
    assert quota.tracked_actors() == 1
    assert quota.share("a", now=250.0, total_cores=1) == 0.0
    # t1's window also rolled over; only t2 is live
    assert quota.tenant_share("t1", now=250.0, total_cores=1) == 0.0
    assert quota.tenant_share("t2", now=250.0, total_cores=1) > 0.0


def test_tenant_over_quota_uses_the_tenant_cap():
    quota = QuotaEnforcer(window_us=1000.0, max_share=0.9,
                          tenant_shares={"t1": 0.2})
    for now in (10.0, 20.0, 30.0):
        quota.charge("a", 3.0, now=now, tenant="t1")
    # ~39% of one core over the window: past t1's 20% cap, but well
    # under the 90% per-actor default
    assert quota.tenant_over_quota("t1", now=30.0, total_cores=1)
    assert not quota.over_quota("a", now=30.0, total_cores=1)


# -- TenantMonitor injection tests -------------------------------------------

def test_monitor_names_the_cross_tenant_offender():
    dmo = DmoManager(region_bytes=1 << 20)
    dmo.create_region("good", tenant="gold")
    dmo.create_region("evil", tenant="bronze")
    obj = dmo.malloc("good", 128)
    sched = _Harness().scheduler
    monitor = _monitor_for(sched, dmo)
    assert list(monitor.check(0.0)) == []
    with pytest.raises(DmoError):
        dmo.read("evil", obj.object_id)       # the planted access
    messages = list(monitor.check(1.0))
    assert len(messages) == 1
    assert "cross-tenant DMO access" in messages[0]
    assert "'evil'" in messages[0] and "'bronze'" in messages[0]
    assert "'good'" in messages[0] and "'gold'" in messages[0]
    # reported once, not on every later sweep
    assert list(monitor.check(2.0)) == []


def test_monitor_flags_a_planted_share_overrun():
    sched = _Harness(cores=2).scheduler
    sched.set_tenant_shares({"gold": 0.5, "bronze": 0.5})
    monitor = _monitor_for(sched)
    assert list(monitor.check(0.0)) == []
    # plant: gold spends quantum it was never granted, conservation
    # untouched (spent+forfeited constant) -> only the overrun fires
    sched.tenant_spent_us["gold"] = \
        sched.tenant_spent_us.get("gold", 0.0) + 50.0
    sched.tenant_forfeited_us["gold"] = \
        sched.tenant_forfeited_us.get("gold", 0.0) - 50.0
    sched.deficit_spent_us += 50.0
    sched.deficit_forfeited_us -= 50.0
    messages = list(monitor.check(1.0))
    assert len(messages) == 1
    assert "share overrun" in messages[0] and "'gold'" in messages[0]


def test_monitor_flags_a_planted_conservation_break():
    sched = _Harness(cores=2).scheduler
    sched.set_tenant_shares({"gold": 1.0})
    monitor = _monitor_for(sched)
    sched.tenant_granted_us["gold"] = \
        sched.tenant_granted_us.get("gold", 0.0) + 25.0   # nobody holds it
    messages = list(monitor.check(1.0))
    assert any("not conserved" in m and "'gold'" in m for m in messages)
    assert any("global ledger" in m for m in messages)


def test_monitor_flags_a_busted_byte_budget():
    dmo = DmoManager(region_bytes=1 << 20)
    dmo.create_region("a", tenant="gold")
    dmo.malloc("a", 512)
    dmo.set_tenant_budget("gold", 100)        # budget lowered under usage
    monitor = _monitor_for(_Harness().scheduler, dmo)
    messages = list(monitor.check(0.0))
    assert len(messages) == 1
    assert "exceeds the 100B budget" in messages[0]
    assert "'gold'" in messages[0]


# -- builder integration -----------------------------------------------------

def test_build_threads_tenancy_through_the_testbed():
    from repro.check import CheckPlane
    spec = from_dict(_tenant_spec_dict())
    sim = Simulator()
    CheckPlane(sim, strict=False)
    bed = build(spec, sim=sim)
    s0 = bed.servers["s0"].runtime
    s1 = bed.servers["s1"].runtime
    assert all(a.tenant == "gold" for a in s0.actors)
    kinds = {a.tenant for a in s1.actors}
    assert kinds == {"gold", "bronze"}        # rkv replica + rta pipeline
    assert s0.nic_scheduler.tenant_shares == {"gold": 0.6, "bronze": 0.4}
    assert all(s0.dmo.tenant_of(a.name) == "gold" for a in s0.actors)
    checker = bed.sim.checker
    assert checker is not None
    tenancy = [m for m in checker.monitors if m.name == "tenancy"]
    assert len(tenancy) == 1 and tenancy[0].watched == 2


def test_tenant_study_single_leg_smoke():
    from repro.experiments.tenant_study import run_tenant_chaos
    report = run_tenant_chaos(isolation=True, aggressor=False,
                              duration_us=6_000.0, n_requests=6)
    assert report.ok
    assert report.invariants["tenants_tagged"]
    assert report.invariants["tenant_invariants"]
    assert dict(report.pulse["tenant_busy_us"])["victim"] > 0.0
