"""Tests for workload generators and the DPDK/Floem baselines."""

import pytest

from repro.baselines import DpdkRuntime, FLOEM_QUEUE_OVERHEAD_US, FloemRuntime
from repro.core import Actor, Location
from repro.host import HostMachine
from repro.net import Network, Packet
from repro.nic import HOST_XEON_E5_2680, LIQUIDIO_CN2350, SmartNic, WorkloadProfile
from repro.sim import Simulator
from repro.workloads import (
    KvWorkload,
    TwitterWorkload,
    TxnWorkload,
    value_bytes_for_packet,
)


# -- workloads -------------------------------------------------------------------

def test_kv_workload_mix_95_5():
    wl = KvWorkload(packet_size=512, seed=3)
    kinds = [wl.next_request()["kind"] for _ in range(4000)]
    write_frac = sum(1 for k in kinds if k == "rkv-put") / len(kinds)
    assert write_frac == pytest.approx(0.05, abs=0.02)


def test_kv_workload_keys_zipf_skewed():
    wl = KvWorkload(packet_size=512, seed=3)
    keys = [wl.next_request()["key"] for _ in range(3000)]
    # zipf(0.99): the most common key should repeat many times
    from collections import Counter
    top = Counter(keys).most_common(1)[0][1]
    assert top > 30


def test_kv_value_scales_with_packet_size():
    assert value_bytes_for_packet(1024) > value_bytes_for_packet(256)
    assert value_bytes_for_packet(64) == 8  # floor


def test_txn_workload_2r1w():
    wl = TxnWorkload(packet_size=512)
    req = wl.next_request()
    assert req["kind"] == "dt-txn"
    assert len(req["reads"]) == 2
    assert len(req["writes"]) == 1
    assert not set(req["reads"]) & set(req["writes"])


def test_twitter_workload_tuples_scale_with_packet():
    small = TwitterWorkload(packet_size=128)
    large = TwitterWorkload(packet_size=1500)
    assert len(large.next_request()["tuples"]) > len(small.next_request()["tuples"])


def test_twitter_tuples_contain_hashtags_sometimes():
    wl = TwitterWorkload(packet_size=1024, seed=4)
    tuples = [t for _ in range(50) for t in wl.next_request()["tuples"]]
    assert any("#tag" in t for t in tuples)


# -- DPDK baseline -----------------------------------------------------------------

def _echo(actor, msg, ctx):
    yield ctx.compute(us=2.0)
    ctx.reply(msg, payload=msg.payload, size=msg.size)


def test_dpdk_runtime_serves_requests_host_only():
    sim = Simulator()
    network = Network(sim, bandwidth_gbps=10)
    host = HostMachine(sim, HOST_XEON_E5_2680)
    runtime = DpdkRuntime(sim, host, network, "server", workers=4)
    actor = Actor("echo", _echo, profile=WorkloadProfile("e", 2.0, 1.3, 0.6))
    runtime.register_actor(actor, steering_keys=["data"])
    assert actor.location is Location.HOST

    replies = []
    network.attach("client", lambda p: replies.append(p))
    for i in range(20):
        sim.call_at(i * 10.0, network.send,
                    Packet("client", "server", 256, payload=i))
    sim.run(until=2_000.0)
    runtime.stop()
    assert len(replies) == 20
    assert runtime.host_cores_used(2_000.0) > 0
    assert runtime.nic_cores_used(2_000.0) == 0.0


def test_dpdk_charges_stack_costs():
    sim = Simulator()
    network = Network(sim, bandwidth_gbps=10)
    host = HostMachine(sim, HOST_XEON_E5_2680)
    runtime = DpdkRuntime(sim, host, network, "server", workers=1)
    actor = Actor("echo", _echo, profile=WorkloadProfile("e", 2.0, 1.3, 0.6))
    runtime.register_actor(actor, steering_keys=["data"])
    network.attach("client", lambda p: None)
    network.send(Packet("client", "server", 512))
    sim.run(until=100.0)
    runtime.stop()
    busy = runtime.host_util[0].busy_time
    # rx + handler(≈0.6 host µs) + tx — clearly more than the bare handler
    assert busy > 1.5


# -- Floem baseline ------------------------------------------------------------------

def test_floem_static_placement_by_complexity():
    sim = Simulator()
    network = Network(sim, bandwidth_gbps=10)
    host = HostMachine(sim, HOST_XEON_E5_2680)
    nic = SmartNic(sim, LIQUIDIO_CN2350)
    runtime = FloemRuntime(sim, nic, host, network, "server")
    simple = Actor("simple", _echo, profile=WorkloadProfile("s", 2.0, 1.3, 0.6))
    complex_ = Actor("complex", _echo, profile=WorkloadProfile("c", 34.0, 1.7, 0.1))
    runtime.register_actor(simple)
    runtime.register_actor(complex_)
    assert simple.location is Location.NIC
    assert complex_.location is Location.HOST
    assert simple.pinned and complex_.pinned


def test_floem_charges_queue_overhead():
    sim = Simulator()
    network = Network(sim, bandwidth_gbps=10)
    host = HostMachine(sim, HOST_XEON_E5_2680)
    nic = SmartNic(sim, LIQUIDIO_CN2350)
    runtime = FloemRuntime(sim, nic, host, network, "server")
    actor = Actor("echo", _echo, profile=WorkloadProfile("e", 2.0, 1.3, 0.6))
    runtime.register_actor(actor, steering_keys=["data"])
    replies = []
    network.attach("client", lambda p: replies.append(sim.now))
    network.send(Packet("client", "server", 256, created_at=0.0))
    sim.run(until=100.0)
    runtime.stop()
    assert replies
    # RTT includes the FLOEM queue tax on top of wire + 2µs handler
    assert replies[0] > 2.0 + FLOEM_QUEUE_OVERHEAD_US
