"""Tests for the software-managed object cache and the IOKernel option."""

import pytest

from repro.core import Actor, IoKernel, SchedulerConfig, SoftwareObjectCache
from repro.experiments.testbed import make_testbed
from repro.nic import LIQUIDIO_CN2350, STINGRAY_PS225, WorkloadProfile
from repro.nic.calibration import HW_SHARED_QUEUE_SYNC_US, SW_SHARED_QUEUE_SYNC_US


# -- software object cache ----------------------------------------------------

def test_cache_hit_after_fetch():
    backing = {"k": 1}
    cache = SoftwareObjectCache(capacity=4, fetch=backing.get)
    assert cache.get("k") == 1     # miss → fetch
    assert cache.get("k") == 1     # hit
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_ratio == 0.5


def test_cache_write_through():
    backing = {}
    cache = SoftwareObjectCache(capacity=4, fetch=backing.get,
                                write_back=backing.__setitem__)
    cache.put("k", 42)
    assert backing["k"] == 42
    assert cache.peek("k") == 42
    cache.put("l", 7, write_through=False)
    assert "l" not in backing
    assert cache.write_throughs == 1


def test_cache_lru_eviction():
    cache = SoftwareObjectCache(capacity=2)
    cache.put("a", 1, write_through=False)
    cache.put("b", 2, write_through=False)
    cache.put("c", 3, write_through=False)
    assert cache.peek("a") is None
    assert cache.evictions == 1


def test_cache_epoch_invalidation_is_total():
    fetched = []
    cache = SoftwareObjectCache(capacity=8,
                                fetch=lambda k: fetched.append(k) or k)
    cache.put("x", 1, write_through=False)
    cache.invalidate_all()
    assert cache.peek("x") is None
    assert len(cache) == 0
    # a get after the epoch bump refetches
    cache.get("x")
    assert fetched == ["x"]


def test_cache_single_key_invalidate():
    cache = SoftwareObjectCache(capacity=8)
    cache.put("x", 1, write_through=False)
    cache.invalidate("x")
    assert cache.peek("x") is None


def test_cache_rejects_zero_capacity():
    with pytest.raises(ValueError):
        SoftwareObjectCache(capacity=0)


# -- IOKernel ---------------------------------------------------------------------

def _echo(actor, msg, ctx):
    yield ctx.compute(us=2.0)
    if msg.packet is not None:
        ctx.reply(msg, size=msg.size)


def test_iokernel_rejects_on_path_nic():
    bed = make_testbed()
    server = bed.add_server("server", LIQUIDIO_CN2350)
    with pytest.raises(ValueError):
        IoKernel(server.runtime, cores=1)


def test_iokernel_restores_hardware_like_sync_cost():
    bed = make_testbed(bandwidth_gbps=25)
    server = bed.add_server("server", STINGRAY_PS225,
                            config=SchedulerConfig(migration_enabled=False))
    assert server.nic.traffic_manager.dequeue_sync_us == SW_SHARED_QUEUE_SYNC_US
    IoKernel(server.runtime, cores=1)
    assert server.nic.traffic_manager.dequeue_sync_us == HW_SHARED_QUEUE_SYNC_US


def test_iokernel_dispatches_and_serves_traffic():
    bed = make_testbed(bandwidth_gbps=25)
    server = bed.add_server("server", STINGRAY_PS225,
                            config=SchedulerConfig(migration_enabled=False))
    actor = Actor("echo", _echo, concurrent=True,
                  profile=WorkloadProfile("e", 2.0, 1.2, 0.5))
    server.runtime.register_actor(actor, steering_keys=["data"])
    iok = IoKernel(server.runtime, cores=1)
    client = bed.add_client("client")
    gen = client.closed_loop(dst="server", clients=8, size=256)
    bed.sim.run(until=5_000.0)
    gen.stop()
    iok.stop()
    server.runtime.stop()
    assert gen.completed > 200
    assert iok.dispatched >= gen.completed
    # one scheduler core is parked on dispatch duty
    assert server.runtime.nic_scheduler.core_mode[-1] == "iokernel"
    sched = server.runtime.nic_scheduler
    assert sched.fcfs_cores() + sched.drr_cores() == STINGRAY_PS225.cores - 1


def test_iokernel_cannot_take_every_core():
    bed = make_testbed(bandwidth_gbps=25)
    server = bed.add_server("server", STINGRAY_PS225)
    with pytest.raises(ValueError):
        IoKernel(server.runtime, cores=STINGRAY_PS225.cores)


def test_iokernel_vs_shuffle_queue_tradeoff():
    """§3.2.6: both software substitutes work; the IOKernel buys a cheap
    shared queue at the price of dedicated dispatch core(s)."""

    def run(use_iokernel):
        bed = make_testbed(bandwidth_gbps=25)
        server = bed.add_server(
            "server", STINGRAY_PS225,
            config=SchedulerConfig(migration_enabled=False,
                                   downgrade_enabled=False,
                                   autoscale=False))
        actor = Actor("echo", _echo, concurrent=True,
                      profile=WorkloadProfile("e", 2.0, 1.2, 0.5))
        server.runtime.register_actor(actor, steering_keys=["data"])
        iok = IoKernel(server.runtime, cores=1) if use_iokernel else None
        client = bed.add_client("client")
        gen = client.closed_loop(dst="server", clients=16, size=256)
        bed.sim.run(until=8_000.0)
        gen.stop()
        if iok:
            iok.stop()
        server.runtime.stop()
        return gen.latency.mean, gen.completed

    shuffle_lat, shuffle_ops = run(False)
    iok_lat, iok_ops = run(True)
    # both serve the workload; latencies are within the same ballpark
    assert shuffle_ops > 500 and iok_ops > 500
    assert 0.5 < iok_lat / shuffle_lat < 2.0
