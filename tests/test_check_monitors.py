"""Injection tests: each invariant monitor catches its planted violation
and localizes it to the right monitor/component."""

import pytest

from repro.apps.rkv import MultiPaxosNode
from repro.check import (
    ChannelMonitor,
    CheckPlane,
    DmoMonitor,
    InvariantViolation,
    PaxosMonitor,
    RingMonitor,
    SchedulerMonitor,
)
from repro.core import (
    Actor,
    ActorTable,
    Channel,
    DmoManager,
    Location,
    Message,
    Ring,
    SchedulerConfig,
)
from repro.core.channel import ReliableChannel
from repro.core.scheduler import NicScheduler, WorkItem
from repro.experiments.testbed import make_testbed
from repro.nic import LIQUIDIO_CN2350, DmaEngine, TrafficManager, WorkloadProfile
from repro.sim import Simulator, Timeout


# -- scheduler -------------------------------------------------------------------

def _scheduler(sim, cores=2):
    table = ActorTable()
    sched = NicScheduler(
        sim, num_cores=cores, work_queue=TrafficManager(sim, hardware=True),
        actor_table=table,
        executor=lambda core, actor, msg: iter(()),
        config=SchedulerConfig(migration_enabled=False,
                               downgrade_enabled=False, autoscale=False),
        quantum_fn=lambda actor: 5.0)
    return sched, table


def _handler(actor, msg, ctx):
    yield Timeout(1.0)


def test_scheduler_quantum_conservation_violation():
    sim = Simulator()
    sched, table = _scheduler(sim)
    monitor = SchedulerMonitor(sched)
    assert list(monitor.check(sim.now)) == []
    sched.quantum_granted_us += 123.0          # granted µs that nobody holds
    messages = list(monitor.check(sim.now))
    assert len(messages) == 1
    assert "not conserved" in messages[0]
    assert monitor.name == "scheduler"


def test_scheduler_non_drr_deficit_violation():
    sim = Simulator()
    sched, table = _scheduler(sim)
    actor = Actor("lsm", _handler)
    table.register(actor)
    assert list(SchedulerMonitor(sched).check(sim.now)) == []
    actor.deficit = 7.5                        # deficit outside the DRR group
    messages = list(SchedulerMonitor(sched).check(sim.now))
    assert len(messages) == 1
    assert "'lsm'" in messages[0] and "outside the DRR group" in messages[0]


def test_scheduler_starvation_detected_once():
    sim = Simulator()
    sched, table = _scheduler(sim)
    actor = Actor("stuck", _handler)
    table.register(actor)
    actor.is_drr = True
    actor.mailbox.append(Message(target="stuck"))
    sched.drr_runnable.append(actor)
    monitor = SchedulerMonitor(sched, starvation_bound_us=1_000.0)
    assert list(monitor.check(0.0)) == []      # progress clock starts
    messages = list(monitor.check(5_000.0))    # no progress for 5ms
    assert len(messages) == 1
    assert "'stuck'" in messages[0] and "starved" in messages[0]
    # an ongoing episode is reported once, not every sweep
    assert list(monitor.check(6_000.0)) == []
    # progress (requests_seen advances) resets the episode
    actor.requests_seen += 1
    assert list(monitor.check(7_000.0)) == []


# -- DMO -------------------------------------------------------------------------

def test_dmo_duplicate_table_entry_violation():
    dmo = DmoManager(region_bytes=1 << 20)
    dmo.create_region("alice")
    obj = dmo.malloc("alice", 256)
    monitor = DmoMonitor(dmo, component="s0")
    assert list(monitor.check(0.0)) == []
    dmo.tables[Location.HOST].insert(obj)      # single-copy invariant broken
    messages = list(monitor.check(0.0))
    assert any("present in both" in m for m in messages)
    assert monitor.component == "s0"


def test_dmo_region_accounting_violation():
    dmo = DmoManager(region_bytes=1 << 20)
    dmo.create_region("alice")
    dmo.malloc("alice", 256)
    monitor = DmoMonitor(dmo)
    assert list(monitor.check(0.0)) == []
    dmo.regions["alice"].used += 64            # refcount/usage corruption
    messages = list(monitor.check(0.0))
    assert len(messages) == 1
    assert "accounts" in messages[0] and "live objects total 256B" in messages[0]


def test_dmo_location_mismatch_violation():
    dmo = DmoManager(region_bytes=1 << 20)
    dmo.create_region("alice")
    obj = dmo.malloc("alice", 128, location=Location.NIC)
    obj.location = Location.HOST               # field disagrees with table
    messages = list(DmoMonitor(dmo).check(0.0))
    assert any("claims location" in m for m in messages)


# -- ring ------------------------------------------------------------------------

def test_ring_slot_leak_violation():
    sim = Simulator()
    ring = Ring(sim, DmaEngine(sim), slots=8, name="s0.to_host")
    for i in range(3):
        ring.produce(Message(target=f"m{i}", size=64))
    sim.run()
    monitor = RingMonitor(ring)
    assert list(monitor.check(sim.now)) == []
    ring._buffer.pop()                         # slot vanishes unaccounted
    messages = list(monitor.check(sim.now))
    assert any("slot leak" in m for m in messages)
    assert any("free-slot accounting broken" in m for m in messages)
    assert monitor.component == "s0.to_host"


def test_ring_visibility_order_violation():
    sim = Simulator()
    ring = Ring(sim, DmaEngine(sim), slots=8)
    for i in range(2):
        ring.produce(Message(target=f"m{i}", size=64))
    sim.run()
    msg, checksum, _visible = ring._buffer[0]
    ring._buffer[0] = (msg, checksum, 1e9)     # DMA ordering broken
    messages = list(RingMonitor(ring).check(sim.now))
    assert any("visibility order broken" in m for m in messages)


# -- reliable channel ------------------------------------------------------------

def test_channel_at_most_once_violation():
    sim = Simulator()
    channel = Channel(sim, DmaEngine(sim), slots=64, name="s0")
    rchannel = ReliableChannel(channel, sim)
    for i in range(4):
        rchannel.nic_send(Message(target="echo", size=64))
    sim.run()
    while rchannel.host_poll() is not None:
        pass
    monitor = ChannelMonitor(rchannel)
    assert list(monitor.check(sim.now)) == []
    state = rchannel._dirs["to_host"]
    state.released["echo"] += 1                # one delivery too many
    messages = list(monitor.check(sim.now))
    assert len(messages) == 1
    assert "at-most-once" in messages[0]
    assert monitor.component == "s0"


def test_channel_release_point_regression_violation():
    sim = Simulator()
    channel = Channel(sim, DmaEngine(sim), slots=64)
    rchannel = ReliableChannel(channel, sim)
    rchannel.nic_send(Message(target="echo", size=64))
    sim.run()
    rchannel.host_poll()
    monitor = ChannelMonitor(rchannel)
    assert list(monitor.check(sim.now)) == []
    state = rchannel._dirs["to_host"]
    state.expected["echo"] -= 1                # sequence went backwards
    messages = list(monitor.check(sim.now))
    assert any("went backwards" in m for m in messages)


# -- paxos -----------------------------------------------------------------------

def _cluster(n=3):
    names = [f"n{i}" for i in range(n)]
    queue = []
    nodes = {}
    for name in names:
        peers = [p for p in names if p != name]
        nodes[name] = MultiPaxosNode(
            name, peers,
            send=lambda dst, m, src=name: queue.append((dst, m)),
            initial_leader="n0")
    return nodes, queue


def _drive(nodes, queue):
    steps = 0
    while queue and steps < 10_000:
        dst, msg = queue.pop(0)
        nodes[dst].handle(msg)
        steps += 1


def test_paxos_conflicting_commit_reported():
    nodes, queue = _cluster()
    monitor = PaxosMonitor()
    for node in nodes.values():
        monitor.watch("g0", node)
    nodes["n0"].client_request("v0")
    _drive(nodes, queue)
    assert nodes["n0"].log[0].committed
    assert list(monitor.check(0.0)) == []
    # a replica commits a different value at an already-chosen instance
    monitor.on_commit("g0", "n2", 0, "evil")
    messages = list(monitor.check(0.0))
    assert len(messages) == 1
    assert "instance 0" in messages[0] and "'evil'" in messages[0]


def test_paxos_conflict_raises_synchronously_under_strict_plane():
    sim = Simulator()
    plane = CheckPlane(sim, strict=True)
    nodes, queue = _cluster()
    plane.watch_paxos("g0", *nodes.values())
    nodes["n0"].client_request("v0")
    _drive(nodes, queue)
    # the node's checker hook fires inside _commit: a conflicting commit
    # raises at the committing call site, localized to the group
    with pytest.raises(InvariantViolation) as err:
        nodes["n1"].checker.note_commit("n1", 0, "evil")
    assert err.value.violation.monitor == "paxos"
    assert err.value.violation.component == "g0"
    assert plane.violations


def test_paxos_log_rescan_catches_direct_corruption():
    nodes, queue = _cluster()
    monitor = PaxosMonitor()
    for node in nodes.values():
        monitor.watch("g0", node)
    nodes["n0"].client_request("v0")
    _drive(nodes, queue)
    assert list(monitor.check(0.0)) == []
    nodes["n2"].log[0].value = "evil"          # corrupt one replica's log
    messages = list(monitor.check(0.0))
    assert len(messages) == 1
    assert "log of 'n2'" in messages[0]


# -- CheckPlane wiring -----------------------------------------------------------

def _echo_handler(actor, msg, ctx):
    yield ctx.compute(us=2.0)
    ctx.reply(msg, payload=msg.payload, size=msg.size)


def test_checkplane_auto_wires_runtime_monitors():
    bed = make_testbed()
    plane = CheckPlane(bed.sim, every=64, strict=True)
    server = bed.add_server("s0", LIQUIDIO_CN2350)
    names = sorted(m.name for m in plane.monitors)
    assert names.count("ring") == 2            # to_host + to_nic
    assert "scheduler" in names and "dmo" in names
    actor = Actor("echo", _echo_handler,
                  profile=WorkloadProfile("echo", 1.87, 1.4, 0.6))
    server.runtime.register_actor(actor)
    server.runtime.dispatch_table["data"] = "echo"
    client = bed.add_client("client")
    gen = client.closed_loop(dst="s0", clients=4, size=256)
    bed.sim.run(until=2_000.0)                 # strict: violations raise
    gen.stop()
    assert gen.completed > 10
    assert plane.violations == []


def test_checkplane_monitors_individually_toggleable():
    sim = Simulator()
    plane = CheckPlane(sim, strict=True)
    ring = Ring(sim, DmaEngine(sim), slots=8)
    ring.produce(Message(target="m", size=64))
    sim.run()
    plane.add_monitor(RingMonitor(ring))
    ring._buffer.pop()                         # planted violation
    plane.disable("ring")
    plane.check_now()                          # disabled: nothing raised
    assert plane.violations == []
    plane.enable("ring")
    with pytest.raises(InvariantViolation):
        plane.check_now()
    assert plane.violations[0].monitor == "ring"


def test_checkplane_nonstrict_collects_instead_of_raising():
    sim = Simulator()
    plane = CheckPlane(sim, strict=False)
    dmo = DmoManager(region_bytes=1 << 20)
    dmo.create_region("a")
    dmo.malloc("a", 100)
    plane.add_monitor(DmoMonitor(dmo, component="s0"))
    dmo.regions["a"].used += 1
    plane.check_now()
    assert len(plane.violations) == 1
    assert plane.violations[0].monitor == "dmo"
    assert plane.violations[0].component == "s0"
