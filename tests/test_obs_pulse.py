"""PulsePlane tests: the series store, the lazy lattice sampler, SLO
burn-rate evaluation, the PulseMonitor invariants, spec plumbing, and
the zero-cost contract (identical event digests with sampling on/off)."""

import dataclasses
import sys

import pytest

from repro.check import PulseMonitor, SanitizerSession
from repro.obs import (
    EMPTY_QUANTILE,
    MetricsRegistry,
    PulsePlane,
    SeriesStore,
    SloEvaluator,
    no_data,
    parse_slo,
)
from repro.obs.pulse import _peak_probe, counter_rate_probe
from repro.scenario import (
    AppSpec,
    ClientSpec,
    ObsSpec,
    PulseSpec,
    RackSpec,
    RebalanceSpec,
    ScenarioError,
    ScenarioSpec,
    ServerSpec,
    SLOSpec,
    SteeringSpec,
    from_json,
    load_shipped,
    run_scenario,
    to_json,
)
from repro.sim import Simulator, Timeout, spawn


# -- series store -------------------------------------------------------------

def test_store_ring_retention_keeps_newest_points():
    store = SeriesStore(retention=4)
    for i in range(10):
        store.record(float(i), "u", float(i) / 2.0)
    series = store.get("u")
    assert len(series) == 4
    assert series.points() == [(6.0, 3.0), (7.0, 3.5), (8.0, 4.0),
                               (9.0, 4.5)]


def test_store_fingerprint_covers_exactly_the_retained_points():
    def fill(values):
        store = SeriesStore()
        for t, v in values:
            store.record(t, "a", v)
        store.record(0.0, "b", 1.0)
        return store
    base = [(0.0, 1.0), (1.0, 2.0)]
    assert fill(base).fingerprint() == fill(base).fingerprint()
    assert fill(base).fingerprint() != fill([(0.0, 1.0),
                                            (1.0, 2.5)]).fingerprint()
    # the NaN sentinel digests stably too
    assert (fill(base + [(2.0, EMPTY_QUANTILE)]).fingerprint()
            == fill(base + [(2.0, EMPTY_QUANTILE)]).fingerprint())


def test_store_csv_and_chrome_exports():
    store = SeriesStore()
    store.record(1.0, "u", 0.5)
    store.record(2.0, "u", EMPTY_QUANTILE)
    text = store.to_csv()
    assert text.splitlines()[0] == "series,t_us,value"
    assert "u,1.0,0.5" in text
    doc = store.to_chrome()
    counters = [e for e in doc["traceEvents"] if e.get("ph") == "C"]
    # the no-data sentinel is omitted: Perfetto draws a gap, not a zero
    assert len(counters) == 1 and counters[0]["args"]["value"] == 0.5


# -- probes -------------------------------------------------------------------

class _FakeTracker:
    def __init__(self):
        self.busy_time = 0.0


def test_peak_probe_reports_the_hottest_tracker():
    cores = [_FakeTracker() for _ in range(4)]
    probe = _peak_probe(cores)
    cores[2].busy_time = 80.0          # one pinned-hot core
    cores[0].busy_time = 10.0
    assert probe(100.0) == pytest.approx(0.8)
    # next period: only the cool core accumulates
    cores[0].busy_time = 30.0
    assert probe(200.0) == pytest.approx(0.2)
    # clamped to [0, 1] even if a tracker over-accounts
    cores[1].busy_time += 500.0
    assert probe(300.0) == 1.0


def test_counter_rate_probe_differences_a_cumulative_counter():
    total = [0]
    probe = counter_rate_probe(lambda: total[0])
    total[0] = 50
    assert probe(1_000.0) == pytest.approx(50 / 1_000.0 * 1e6)
    total[0] = 50                      # idle period: rate drops to zero
    assert probe(2_000.0) == 0.0


# -- the lazy sampler ---------------------------------------------------------

def test_sampler_stamps_boundaries_and_jumps_idle_gaps():
    sim = Simulator()
    pulse = PulsePlane(sim, period_us=100.0)
    pulse.add_probe("const", lambda t: 7.0)

    def driver():
        yield Timeout(50.0)            # before the first boundary
        yield Timeout(200.0)           # t=250: one sample, stamped @200
        yield Timeout(750.0)           # t=1000: gap jumped in one step

    spawn(sim, driver(), name="driver")
    sim.run()
    assert pulse.samples == 2
    assert pulse.store.get("const").points() == [(200.0, 7.0),
                                                 (1000.0, 7.0)]
    assert pulse.first_sample_us == 200.0
    assert pulse.last_sample_us == 1000.0
    assert pulse.passive_schedules == 0


def test_pulse_rejects_nonpositive_period():
    with pytest.raises(ValueError):
        PulsePlane(Simulator(), period_us=0.0)


def test_watch_service_sizes_the_backing_histogram_window():
    sim = Simulator()
    pulse = PulsePlane(sim, period_us=100.0)
    pulse.watch_service("rkv", pct=99.0, window_us=400.0)
    hist = sim.metrics.get_histogram("svc.rkv.latency_us")
    assert hist is not None
    assert hist.window_us == 400.0 and hist.max_windows == 2


# -- SLO grammar --------------------------------------------------------------

def test_parse_slo_grammar_and_units():
    parsed = parse_slo("rkv p99 < 40us over 2ms")
    assert parsed == {"name": "rkv-p99", "service": "rkv", "pct": 99.0,
                      "threshold_us": 40.0, "window_us": 2_000.0}
    assert parse_slo("svc:dt p99.9 < 1ms over 1s")["threshold_us"] == 1_000.0
    assert parse_slo("a p50 < 5us over 500 us")["window_us"] == 500.0


@pytest.mark.parametrize("text", [
    "rkv p99 over 2ms",                # no threshold clause
    "rkv p99 < 40parsec over 2ms",     # unknown unit
    "p99 < 40us over 2ms",             # no service
    "rkv 99 < 40us over 2ms",          # missing the p
])
def test_parse_slo_rejects_malformed_objectives(text):
    with pytest.raises(ValueError):
        parse_slo(text)


def test_slo_spec_from_text_matches_the_field_form():
    assert SLOSpec.from_text("rkv p99 < 40us over 2ms") == SLOSpec(
        service="rkv", pct=99.0, threshold_us=40.0, window_us=2_000.0,
        name="rkv-p99")
    with pytest.raises(ScenarioError):
        SLOSpec.from_text("not an objective")


# -- burn-rate evaluation -----------------------------------------------------

def _evaluator(sim, store, **kwargs):
    defaults = dict(name="rkv-p99", metric="svc.rkv.latency_us",
                    threshold_us=100.0, pct=99.0, window_us=1_000.0,
                    slow_windows=2, budget=0.5, burn_threshold=1.0,
                    period_us=500.0)
    defaults.update(kwargs)
    return SloEvaluator(sim, store, **defaults)


def test_evaluator_breach_needs_a_full_fast_window_then_recovers():
    sim = Simulator()
    sim.metrics = metrics = MetricsRegistry(sim)
    hist = metrics.histogram("svc.rkv.latency_us", window_us=1_000.0,
                             windows=2)
    store = SeriesStore()
    ev = _evaluator(sim, store)        # fast_n=2, slow_n=4
    hist.record(400.0, 250.0)          # over the 100us threshold
    ev.evaluate(500.0)
    assert not ev.in_breach            # one bad sample < fast window
    hist.record(900.0, 300.0)
    ev.evaluate(1_000.0)
    assert ev.in_breach and ev.breaches == 1
    assert ev.transitions[0][1] == "breach"
    # traffic stops; the windowed histogram ages the congestion out and
    # the empty-window sentinel counts as *good* (no traffic burns no
    # budget) — a full fast window of good samples recovers
    ev.evaluate(3_000.0)
    assert ev.in_breach                # streak of 1: still hysteretic
    ev.evaluate(3_500.0)
    assert not ev.in_breach and ev.recoveries == 1
    kinds = [kind for _, kind, _, _ in ev.transitions]
    assert kinds == ["breach", "recover"]
    # every sample also lands in the pulse store for export/fingerprint
    assert store.get("slo.rkv-p99.breach").values() == [0.0, 1.0, 1.0, 0.0]


def test_evaluator_missing_histogram_is_good_not_breach():
    sim = Simulator()                  # no metrics registry at all
    store = SeriesStore()
    ev = _evaluator(sim, store)
    for i in range(6):
        ev.evaluate(500.0 * (i + 1))
    assert ev.breaches == 0 and not ev.in_breach
    assert all(no_data(v) for v in store.get("slo.rkv-p99.value").values())


def test_evaluator_rejects_bad_parameters():
    store = SeriesStore()
    with pytest.raises(ValueError):
        _evaluator(Simulator(), store, threshold_us=0.0)
    with pytest.raises(ValueError):
        _evaluator(Simulator(), store, budget=1.5)


# -- PulseMonitor invariants --------------------------------------------------

def test_pulse_monitor_clean_plane_yields_nothing():
    pulse = PulsePlane(Simulator(), period_us=100.0)
    assert list(PulseMonitor(pulse).check(0.0)) == []


def test_pulse_monitor_flags_passivity_and_lattice_violations():
    pulse = PulsePlane(Simulator(), period_us=100.0)
    monitor = PulseMonitor(pulse)
    pulse.passive_schedules = 2
    pulse.last_sample_us = 150.0       # off the 100us lattice
    messages = list(monitor.check(200.0))
    assert any("passivity" in m for m in messages)
    assert any("lattice" in m for m in messages)


def test_pulse_monitor_flags_unbacked_breach_accounting():
    sim = Simulator()
    pulse = PulsePlane(sim, period_us=100.0)
    store = pulse.store
    ev = _evaluator(sim, store)
    pulse.add_evaluator(ev)
    monitor = PulseMonitor(pulse)
    ev.breaches = 1                    # counted, but no transition backs it
    assert any("accounting" in m for m in monitor.check(0.0))
    ev.breaches = 0
    # a breach recorded with burns below the threshold is not conservative
    ev.transitions.append((100.0, "breach", 0.4, 0.4))
    ev.breaches = 1
    ev.in_breach = True
    fresh = PulseMonitor(pulse)
    assert any("below threshold" in m for m in fresh.check(0.0))


# -- spec plumbing ------------------------------------------------------------

def _pulse_spec(**obs_kwargs):
    obs = dict(pulse=PulseSpec(period_us=250.0, retention=64),
               slos=(SLOSpec(service="rkv", threshold_us=40.0),))
    obs.update(obs_kwargs)
    return ScenarioSpec(
        name="t", seed=7, duration_us=3_000.0,
        racks=(RackSpec(name="rack0",
                        servers=(ServerSpec(name="s0"),
                                 ServerSpec(name="s1")),
                        clients=(ClientSpec("c0"),)),),
        apps=(AppSpec(kind="rkv", servers=("s0",)),),
        steering=(SteeringSpec(service="rkv", app="rkv"),),
        rebalance=RebalanceSpec(on_load=True),
        observability=ObsSpec(**obs))


def test_pulse_spec_json_round_trip():
    spec = _pulse_spec()
    spec.validate()
    assert from_json(to_json(spec)) == spec


def test_slo_grammar_strings_load_from_json():
    text = to_json(_pulse_spec()).replace(
        '"slos": [\n      {\n        "service": "rkv",\n'
        '        "threshold_us": 40.0\n      }\n    ]',
        '"slos": ["rkv p99 < 40us over 2ms"]')
    spec = from_json(text)
    assert spec.observability.slos == (SLOSpec(
        service="rkv", pct=99.0, threshold_us=40.0, window_us=2_000.0,
        name="rkv-p99"),)


@pytest.mark.skipif(sys.version_info < (3, 11),
                    reason="TOML specs need tomllib")
def test_pulse_spec_loads_from_toml():
    from repro.scenario.spec import from_toml
    spec = from_toml("""
name = "t"
seed = 7

[[racks]]
name = "rack0"
servers = [{name = "s0"}, {name = "s1"}]
clients = [{name = "c0"}]

[[apps]]
kind = "rkv"
servers = ["s0"]

[[steering]]
service = "rkv"
app = "rkv"

[observability]
slos = ["rkv p99 < 40us over 2ms"]

[observability.pulse]
period_us = 250.0
""")
    spec.validate()
    assert spec.observability.pulse.period_us == 250.0
    assert spec.observability.slos[0].threshold_us == 40.0


def test_unknown_pulse_and_slo_fields_are_rejected():
    text = to_json(_pulse_spec()).replace('"period_us"', '"perod_us"')
    with pytest.raises(ScenarioError) as exc:
        from_json(text)
    assert "unknown field" in str(exc.value)
    text = to_json(_pulse_spec()).replace('"threshold_us"', '"treshold_us"')
    with pytest.raises(ScenarioError):
        from_json(text)


def test_validate_reports_every_pulse_and_slo_problem_at_once():
    spec = _pulse_spec(
        pulse=None,                    # on_load + SLOs with no sampling
        slos=(SLOSpec(service="ghost", threshold_us=0.0, window_us=-1.0,
                      pct=0.0, budget=2.0, slow_windows=0,
                      burn_threshold=0.0),))
    with pytest.raises(ScenarioError) as exc:
        spec.validate()
    message = str(exc.value)
    for fragment in ("on_load needs observability.pulse",
                     "SLOs declared without pulse",
                     "names no declared",
                     "threshold_us must be positive",
                     "window_us must be positive",
                     "pct must be in (0, 100]",
                     "budget must be in (0, 1]",
                     "slow_windows must be >= 1",
                     "burn_threshold must be positive"):
        assert fragment in message, fragment


def test_validate_rejects_slo_window_shorter_than_pulse_period():
    spec = _pulse_spec(slos=(SLOSpec(service="rkv", threshold_us=40.0,
                                     window_us=100.0),))
    with pytest.raises(ScenarioError) as exc:
        spec.validate()
    assert "shorter than the pulse period" in str(exc.value)


# -- the zero-cost contract ---------------------------------------------------

def _sanitized_digest(spec):
    with SanitizerSession(keep_records=False) as session:
        run_scenario(spec, duration_us=5_000.0)
    return session.recorder.digest, session.recorder.steps


def test_pulse_sampling_leaves_the_event_sequence_untouched():
    """The determinism proof for the whole plane: a pulse-instrumented
    run fires the exact same event sequence (identical step digests) as
    an uninstrumented one — sampling is observation, not perturbation."""
    base = load_shipped("multi-rack-rebalance")
    pulsed = dataclasses.replace(
        base, observability=dataclasses.replace(
            base.observability, pulse=PulseSpec(period_us=250.0)))
    assert _sanitized_digest(base) == _sanitized_digest(pulsed)
