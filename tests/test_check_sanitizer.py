"""Determinism sanitizer: replay comparison, divergence localization,
hazard guards and the tie detector."""

import random
import time

import pytest

from repro.check import (
    SanitizerSession,
    StepRecord,
    callback_id,
    first_divergence,
    replay_check,
)
from repro.sim import Rng, Simulator


# -- callback identity -----------------------------------------------------------

def _free_function():
    pass


class _Server:
    def tick(self):
        pass

    def __call__(self):
        pass


def test_callback_id_is_stable_and_address_free():
    import functools
    assert callback_id(_free_function).endswith(
        "test_check_sanitizer:_free_function")
    server = _Server()
    assert callback_id(server.tick).endswith(
        "test_check_sanitizer:_Server.tick")
    # partial unwraps to the underlying function
    assert callback_id(functools.partial(_free_function, 1)) == (
        callback_id(_free_function))
    # two instances of the same class share an id (no addresses leak in)
    assert callback_id(_Server()) == callback_id(_Server())


def test_first_divergence_binary_search():
    assert first_divergence([1, 2, 3], [1, 2, 3]) == 3
    assert first_divergence([1, 2, 3], [1, 9, 8]) == 1
    assert first_divergence([7], [8]) == 0
    # prefix: divergence at the shorter length
    assert first_divergence([1, 2], [1, 2, 3]) == 2


# -- replay comparison -----------------------------------------------------------

def _deterministic_run():
    sim = Simulator()
    rng = Rng(7)
    done = []

    def tick(n):
        if n:
            sim.post(rng.exponential(2.0), tick, n - 1)
        else:
            done.append(sim.now)

    sim.post(0.0, tick, 50)
    sim.run()
    return done[0]


def test_clean_replay_has_zero_divergences():
    result = replay_check(_deterministic_run, replays=3)
    assert result.ok and result.deterministic
    assert result.divergent_step is None
    assert len(set(result.digests)) == 1
    assert len(set(result.steps)) == 1 and result.steps[0] == 51
    assert result.hazards == []
    assert "OK" in result.describe()


def _unseeded_run():
    sim = Simulator()
    rng = random.Random()                      # the planted bug: no seed

    def warmup():
        sim.post(1.0, tick, 3)

    def tick(n):
        if n:
            sim.post(rng.random() * 10.0, tick, n - 1)

    sim.post(0.0, warmup)
    sim.run()


def test_planted_unseeded_rng_bug_is_localized():
    result = replay_check(_unseeded_run, replays=2)
    assert not result.ok and not result.deterministic
    # the first event (warmup, t=0) agrees; the divergence is the first
    # event whose *timing* the unseeded generator decided
    assert result.divergent_step == 2
    assert result.divergent_replay == 1
    assert isinstance(result.expected, StepRecord)
    assert result.expected.callback.endswith("_unseeded_run.<locals>.tick")
    # the report names the scheduling parent too
    assert result.expected.parent.endswith("tick")
    assert "FAILED" in result.describe()


def _module_random_run():
    sim = Simulator()

    def tick():
        random.random()                        # hidden global generator

    sim.post(1.0, tick)
    sim.run()


def test_module_random_hazard_attributed_to_callback():
    with SanitizerSession() as session:
        _module_random_run()
    hazards = session.recorder.hazards
    assert len(hazards) == 1
    assert hazards[0].kind == "module-random"
    assert hazards[0].detail == "random.random"
    assert hazards[0].callback.endswith("_module_random_run.<locals>.tick")
    assert hazards[0].sim_time == 1.0


def test_wall_clock_hazard_detected_only_in_sim_context():
    with SanitizerSession() as session:
        time.time()                            # outside any run(): fine
        sim = Simulator()
        sim.post(2.0, time.time)
        sim.run()
    kinds = [(h.kind, h.detail) for h in session.recorder.hazards]
    assert kinds == [("wall-clock", "time.time")]


def test_hazards_fail_replay_check_even_when_digests_agree():
    def seeded_but_dirty():
        sim = Simulator()
        sim.post(1.0, time.monotonic)
        sim.run()

    result = replay_check(seeded_but_dirty, replays=2)
    assert result.deterministic                # same digest both replays...
    assert not result.ok                       # ...but the hazard fails it
    assert result.hazards


def test_session_restores_patched_functions():
    original_init = Simulator.__init__
    original_time = time.time
    original_random = random.random
    with SanitizerSession():
        assert Simulator.__init__ is not original_init
        assert time.time is not original_time
    assert Simulator.__init__ is original_init
    assert time.time is original_time
    assert random.random is original_random
    with pytest.raises(RuntimeError):
        with SanitizerSession() as outer:
            with outer:                        # not reentrant
                pass


def test_same_timestamp_tie_guard_is_advisory():
    def tied_run():
        sim = Simulator()
        hits = []

        def receiver(tag):
            hits.append(tag)

        def fan_out():
            # two same-time, same-callback, same-receiver schedules:
            # ordering rests on insertion order alone
            sim.post(5.0, receiver, "a")
            sim.post(5.0, receiver, "b")

        sim.post(0.0, fan_out)
        sim.run()

    result = replay_check(tied_run, replays=2)
    assert result.ok                           # advisory, not a failure
    assert len(result.ties) == 1
    tie = result.ties[0]
    assert tie.scheduled_by.endswith("fan_out")
    assert tie.callback.endswith("receiver")
    assert "insertion-order tie" in str(tie)


def test_distinct_receivers_do_not_trip_the_tie_guard():
    def untied_run():
        sim = Simulator()
        servers = [_Server(), _Server()]

        def fan_out():
            for server in servers:
                sim.post(5.0, server.tick)

        sim.post(0.0, fan_out)
        sim.run()

    result = replay_check(untied_run, replays=2)
    assert result.ok and result.ties == []


# -- real experiments ------------------------------------------------------------

def test_fig16_point_replays_bit_identical():
    from repro.experiments.scheduler_study import run_point
    from repro.nic import LIQUIDIO_CN2350

    result = replay_check(
        lambda: run_point(LIQUIDIO_CN2350, "ipipe", "high", 0.9,
                          duration_us=2_000.0, seed=1),
        replays=2, keep_records=False)
    assert result.ok, result.describe()
    assert result.steps[0] > 1_000


def test_fig5_point_replays_bit_identical():
    from repro.experiments.characterization import traffic_manager_experiment

    result = replay_check(
        lambda: traffic_manager_experiment(frame_bytes=512, cores=6,
                                           duration_us=1_500.0, seed=3),
        replays=2, keep_records=False)
    assert result.ok, result.describe()


def test_chaos_scenario_replays_bit_identical_with_monitors():
    from repro.exec.grids import chaos_point

    result = replay_check(
        lambda: chaos_point("rkv", seed=42, duration_us=5_000.0),
        replays=2, keep_records=False, monitors=True, every=64)
    assert result.ok, result.describe()
    assert result.violations == []
