"""Tests for the NIC catalog and the calibration anchor tables.

These tests pin the hardware models to the paper's published numbers —
if someone retunes an anchor, the affected figure assertions here fail.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import line_rate_pps
from repro.nic import (
    ALL_NICS,
    BLUEFIELD_1M332A,
    HOST_XEON_E5_2620,
    HOST_XEON_E5_2680,
    LIQUIDIO_CN2350,
    LIQUIDIO_CN2360,
    STINGRAY_PS225,
    AnchorCurve,
    echo_cost_us,
    forward_cost_us,
    host_for,
    table1_rows,
)
from repro.nic.calibration import (
    MESSAGE_SIZES,
    dpdk_recv_us,
    dpdk_send_us,
    rdma_recv_us,
    rdma_send_us,
    smartnic_recv_us,
    smartnic_send_us,
)


# -- Table 1 ------------------------------------------------------------------

def test_catalog_contains_the_four_nics():
    assert set(ALL_NICS) == {
        "LiquidIOII CN2350", "LiquidIOII CN2360",
        "BlueField 1M332A", "Stingray PS225",
    }


def test_table1_key_fields():
    assert LIQUIDIO_CN2350.cores == 12 and LIQUIDIO_CN2350.freq_ghz == 1.2
    assert LIQUIDIO_CN2360.cores == 16 and LIQUIDIO_CN2360.freq_ghz == 1.5
    assert BLUEFIELD_1M332A.freq_ghz == 0.8 and BLUEFIELD_1M332A.dram_gb == 16
    assert STINGRAY_PS225.freq_ghz == 3.0 and STINGRAY_PS225.l2_mb == 16


def test_on_path_vs_off_path_classification():
    assert LIQUIDIO_CN2350.is_on_path and LIQUIDIO_CN2360.is_on_path
    assert not BLUEFIELD_1M332A.is_on_path and not STINGRAY_PS225.is_on_path


def test_liquidio_runs_firmware_others_full_os():
    assert LIQUIDIO_CN2350.runs_firmware
    assert not STINGRAY_PS225.runs_firmware


def test_host_pairing_matches_testbed():
    assert host_for(LIQUIDIO_CN2350) is HOST_XEON_E5_2680
    assert host_for(STINGRAY_PS225) is HOST_XEON_E5_2620


def test_table1_rows_renderable():
    rows = table1_rows()
    assert len(rows) == 5  # header + 4 NICs
    assert rows[0][0] == "SmartNIC model"


def test_memory_latencies_match_table2():
    assert LIQUIDIO_CN2350.memory.l1_ns == 8.3
    assert LIQUIDIO_CN2350.memory.l2_ns == 55.8
    assert LIQUIDIO_CN2350.memory.dram_ns == 115.0
    assert LIQUIDIO_CN2350.memory.cache_line == 128
    assert STINGRAY_PS225.memory.dram_ns == 85.3
    assert BLUEFIELD_1M332A.memory.l2_ns == 25.6
    assert HOST_XEON_E5_2680.memory.l3_ns == 22.4


# -- AnchorCurve ---------------------------------------------------------------

def test_anchor_curve_interpolates_linearly():
    curve = AnchorCurve([(0, 0.0), (10, 10.0)])
    assert curve(5) == pytest.approx(5.0)


def test_anchor_curve_clamps_outside_range():
    curve = AnchorCurve([(10, 1.0), (20, 2.0)])
    assert curve(0) == 1.0
    assert curve(100) == 2.0


def test_anchor_curve_validates_input():
    with pytest.raises(ValueError):
        AnchorCurve([(1, 1.0)])
    with pytest.raises(ValueError):
        AnchorCurve([(2, 1.0), (1, 2.0)])


@given(st.floats(min_value=64, max_value=1500))
@settings(max_examples=50, deadline=None)
def test_anchor_curve_stays_within_anchor_envelope(x):
    curve = AnchorCurve([(64, 1.9), (256, 2.1), (1024, 2.9), (1500, 3.0)])
    assert 1.9 <= curve(x) <= 3.0


# -- echo cost anchors reproduce the Figure 2/3 core counts -------------------

def _cores_needed(spec, size):
    rate_pp_us = line_rate_pps(spec.bandwidth_gbps, size) / 1e6
    cost = echo_cost_us(spec, size)
    import math
    return math.ceil(rate_pp_us * cost - 1e-9)


@pytest.mark.parametrize("size,cores", [(256, 10), (512, 6), (1024, 4), (1500, 3)])
def test_fig2_cn2350_core_counts(size, cores):
    assert _cores_needed(LIQUIDIO_CN2350, size) == cores


@pytest.mark.parametrize("size", [64, 128])
def test_fig2_cn2350_small_packets_cannot_saturate(size):
    assert _cores_needed(LIQUIDIO_CN2350, size) > LIQUIDIO_CN2350.cores


@pytest.mark.parametrize("size,cores", [(256, 3), (512, 2), (1024, 1), (1500, 1)])
def test_fig3_stingray_core_counts(size, cores):
    assert _cores_needed(STINGRAY_PS225, size) == cores


@pytest.mark.parametrize("size", [64, 128])
def test_fig3_stingray_small_packets_cannot_saturate(size):
    assert _cores_needed(STINGRAY_PS225, size) > STINGRAY_PS225.cores


# -- Figure 4 computing headroom ------------------------------------------------

def _headroom(spec, size):
    rate_pp_us = line_rate_pps(spec.bandwidth_gbps, size) / 1e6
    return spec.cores / rate_pp_us - forward_cost_us(spec, size)


def test_fig4_headroom_cn2350():
    assert _headroom(LIQUIDIO_CN2350, 256) == pytest.approx(2.5, abs=0.15)
    assert _headroom(LIQUIDIO_CN2350, 1024) == pytest.approx(9.8, abs=0.3)


def test_fig4_headroom_stingray():
    assert _headroom(STINGRAY_PS225, 256) == pytest.approx(0.7, abs=0.1)
    assert _headroom(STINGRAY_PS225, 1024) == pytest.approx(2.6, abs=0.15)


# -- Figure 6 messaging ---------------------------------------------------------

def test_fig6_smartnic_messaging_speedup_over_dpdk_and_rdma():
    send_ratio = (
        sum(dpdk_send_us(s) for s in MESSAGE_SIZES)
        / sum(smartnic_send_us(s) for s in MESSAGE_SIZES)
    )
    recv_ratio = (
        sum(rdma_recv_us(s) for s in MESSAGE_SIZES)
        / sum(smartnic_recv_us(s) for s in MESSAGE_SIZES)
    )
    # Paper: 4.6x vs DPDK, 4.2x vs RDMA, averaged across packet sizes.
    assert send_ratio == pytest.approx(4.6, abs=0.4)
    assert recv_ratio == pytest.approx(4.2, abs=0.4)


def test_fig6_latencies_increase_with_size():
    for fn in (smartnic_send_us, smartnic_recv_us, dpdk_send_us,
               dpdk_recv_us, rdma_send_us, rdma_recv_us):
        values = [fn(s) for s in MESSAGE_SIZES]
        assert values == sorted(values)
