"""Shared test configuration: pinned Hypothesis profiles.

CI exports ``HYPOTHESIS_PROFILE=ci`` (see .github/workflows/ci.yml) to
select the derandomized profile: examples are generated from a fixed
seed (no flaky shrink sequences across runs) and the per-example
deadline is disabled (shared CI runners have noisy wall-clocks; the
simulation itself runs on virtual time, so deadlines only ever catch
runner jitter).  Local runs keep the Hypothesis defaults unless the
variable is set.
"""

import os

try:
    from hypothesis import settings
except ImportError:          # hypothesis absent: property tests skip
    settings = None

if settings is not None:
    settings.register_profile("ci", derandomize=True, deadline=None)
    profile = os.environ.get("HYPOTHESIS_PROFILE")
    if profile:
        settings.load_profile(profile)
