"""Metrics correctness: log-linear histogram accuracy and windowing."""

import pytest

from repro.obs import EMPTY_QUANTILE, Histogram, MetricsRegistry, no_data
from repro.obs.metrics import _bucket_index, _bucket_value
from repro.sim import Rng, percentile as exact_percentile


class _Sim:
    def __init__(self):
        self.now = 0.0


# -- bucket lattice -----------------------------------------------------------
def test_bucket_roundtrip_relative_error():
    """The bucket midpoint is within the advertised 1/(2·sub) relative
    error for values on the log-linear lattice (≥ 1.0); the sub-unit
    linear region bounds the *absolute* error at 1/(2·sub) instead."""
    sub = 16
    value = 1.0
    while value < 1e7:
        mid = _bucket_value(_bucket_index(value, sub), sub)
        assert mid == pytest.approx(value, rel=1.0 / (2 * sub) + 1e-9), value
        value *= 1.37
    value = 0.001
    while value < 1.0:
        mid = _bucket_value(_bucket_index(value, sub), sub)
        assert abs(mid - value) <= 1.0 / (2 * sub) + 1e-9, value
        value *= 1.6


def test_bucket_index_monotone():
    sub = 16
    prev = -1
    value = 0.001
    while value < 1e6:
        idx = _bucket_index(value, sub)
        assert idx >= prev
        prev = idx
        value *= 1.05


# -- histogram accuracy -------------------------------------------------------
@pytest.mark.parametrize("pct", [50, 90, 99])
def test_histogram_percentiles_match_exact(pct):
    rng = Rng(5)
    hist = Histogram("svc")
    samples = []
    for _ in range(20_000):
        v = rng.lognormal(40.0, 0.8)
        samples.append(v)
        hist.record(0.0, v)
    approx = hist.percentile(pct)
    exact = exact_percentile(samples, pct)
    assert approx == pytest.approx(exact, rel=0.05)


def test_histogram_mean_and_count_are_exact():
    hist = Histogram()
    values = [1.0, 2.0, 3.0, 10.0, 100.0]
    for v in values:
        hist.record(0.0, v)
    assert hist.count == len(values)
    assert hist.mean == pytest.approx(sum(values) / len(values))
    assert hist.max_value == 100.0


def test_histogram_negative_values_clamped():
    hist = Histogram()
    hist.record(0.0, -5.0)
    assert hist.count == 1
    assert hist.percentile(50) < 1.0


# -- windowing ----------------------------------------------------------------
def test_window_ages_out_old_samples():
    hist = Histogram(window_us=1_000.0, windows=2)
    hist.record(0.0, 1000.0)            # old spike
    for t in range(10):
        hist.record(5_000.0 + t, 1.0)   # recent, far past the horizon
    # windowed view only sees the recent values; all-time still has both
    assert hist.percentile(99, now=5_100.0) < 10.0
    assert hist.percentile(99, now=None) > 500.0
    assert hist.window_count(5_100.0) == 10
    assert hist.count == 11


def test_window_merges_adjacent_windows():
    hist = Histogram(window_us=1_000.0, windows=6)
    hist.record(500.0, 10.0)
    hist.record(1_500.0, 20.0)          # rotates; previous window kept
    assert hist.window_count(1_600.0) == 2


def test_rotation_jumps_large_gaps_in_one_step():
    hist = Histogram(window_us=1_000.0, windows=6)
    hist.record(0.0, 1.0)
    # a gap of a billion windows must not loop a billion times
    hist.record(1e12, 2.0)
    assert hist.count == 2
    assert hist.window_count(1e12) == 1


# -- empty-window sentinel ----------------------------------------------------
def test_empty_histogram_quantile_is_the_sentinel_not_zero():
    hist = Histogram("empty")
    value = hist.percentile(99)
    assert no_data(value)
    assert no_data(EMPTY_QUANTILE)
    assert not no_data(0.0)


def test_expired_window_quantile_is_the_sentinel():
    hist = Histogram(window_us=1_000.0, windows=2)
    hist.record(100.0, 42.0)
    assert hist.percentile(99, 500.0) == pytest.approx(42.0, rel=0.05)
    # everything recorded has aged past the 2-window horizon: the query
    # must say "no data", never a stale or fabricated quantile
    assert no_data(hist.percentile(99, 10_000.0))
    # the whole-run query still sees the sample
    assert hist.percentile(99) == pytest.approx(42.0, rel=0.05)


# -- registry -----------------------------------------------------------------
def test_registry_snapshot_types():
    sim = _Sim()
    reg = MetricsRegistry(sim)
    reg.inc("ops", 3)
    reg.set_gauge("depth", 7.0)
    reg.observe("lat", 12.0)
    snap = reg.snapshot(sim.now)
    assert snap["ops"] == {"type": "counter", "value": 3}
    assert snap["depth"]["type"] == "gauge"
    assert snap["depth"]["value"] == 7.0
    assert snap["lat"]["type"] == "histogram"
    assert snap["lat"]["count"] == 1
    assert set(reg.names()) == {"ops", "depth", "lat"}


def test_registry_counter_rate():
    sim = _Sim()
    reg = MetricsRegistry(sim, window_us=100.0)
    for i in range(10):
        sim.now = float(i)
        reg.inc("rx")
    assert reg.counter("rx").rate_per_us(10.0) == pytest.approx(1.0)


def test_registry_create_on_use_is_stable():
    reg = MetricsRegistry(_Sim())
    assert reg.histogram("h") is reg.histogram("h")
    assert reg.counter("c") is reg.counter("c")
    assert reg.gauge("g") is reg.gauge("g")


def test_registry_histogram_window_overrides_apply_at_creation_only():
    reg = MetricsRegistry(_Sim(), window_us=10_000.0)
    hist = reg.histogram("svc", window_us=2_000.0, windows=2)
    assert hist.window_us == 2_000.0 and hist.max_windows == 2
    # later callers (recorders, probes) get the same histogram back;
    # their defaults must not resize an already-declared window
    assert reg.histogram("svc") is hist
    assert reg.histogram("svc", window_us=500.0).window_us == 2_000.0
    assert reg.histogram("other").window_us == 10_000.0


def test_registry_get_histogram_never_materialises():
    reg = MetricsRegistry(_Sim())
    assert reg.get_histogram("ghost") is None
    assert "ghost" not in reg.names()
    reg.observe("real", 1.0, now=0.0)
    assert reg.get_histogram("real") is not None


def test_runtime_snapshot_carries_metrics():
    """telemetry.snapshot() surfaces the TracePlane registry."""
    from repro.experiments.chaos_study import run_rta_chaos

    report = run_rta_chaos(seed=3, n_requests=10, duration_us=20_000.0,
                           trace=True)
    assert report.ok
    metrics = report.trace_plane.metrics_snapshot(windowed=False)
    assert metrics["sched.ops"]["value"] > 0
    assert metrics["sched.service_us"]["count"] > 0
    assert metrics["sched.service_us"]["p99"] >= metrics["sched.service_us"]["p50"]
