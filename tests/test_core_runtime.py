"""Integration tests: the iPipe runtime end-to-end on a simulated testbed."""

import pytest

from repro.core import Actor, Location, SchedulerConfig
from repro.core.actor import MigrationState
from repro.core.scheduler import WorkItem
from repro.experiments.testbed import make_testbed
from repro.nic import LIQUIDIO_CN2350, WorkloadProfile
from repro.sim import Timeout


def echo_handler(actor, msg, ctx):
    yield ctx.compute(us=2.0)
    ctx.reply(msg, payload=msg.payload, size=msg.size)


def make_echo_server(testbed, name="server", **cfg_kwargs):
    config = SchedulerConfig(**cfg_kwargs)
    server = testbed.add_server(name, LIQUIDIO_CN2350, config=config)
    actor = Actor("echo", echo_handler,
                  profile=WorkloadProfile("echo", 1.87, 1.4, 0.6))
    server.runtime.register_actor(actor)
    return server, actor


def test_end_to_end_echo_roundtrip():
    bed = make_testbed()
    server, _ = make_echo_server(bed)
    client = bed.add_client("client")
    gen = client.closed_loop(dst="server", clients=4, size=256)
    # route client packets to the echo actor
    for pkt_kind in ("data",):
        server.runtime.dispatch_table[pkt_kind] = "echo"
    bed.sim.run(until=5_000.0)
    gen.stop()
    assert gen.completed > 100
    # RTT = wire (≈2×1µs) + queue + 2µs handler + sync overheads
    assert 3.0 < gen.latency.mean < 15.0


def test_unknown_kind_packets_dropped():
    bed = make_testbed()
    server, _ = make_echo_server(bed)
    client = bed.add_client("client")
    gen = client.open_loop(dst="server", rate_mpps=0.1, size=128)
    bed.sim.run(until=1_000.0)
    gen.stop()
    bed.sim.run(until=1_100.0)
    assert server.runtime.nic_scheduler.ops_completed == 0


def test_actor_stats_collected():
    bed = make_testbed()
    server, actor = make_echo_server(bed)
    server.runtime.dispatch_table["data"] = "echo"
    client = bed.add_client("client")
    gen = client.closed_loop(dst="server", clients=2, size=512)
    bed.sim.run(until=2_000.0)
    gen.stop()
    assert actor.requests_seen > 50
    assert actor.mean_exec_us > 2.0
    assert actor.request_bytes_ewma == pytest.approx(512, rel=0.05)


def test_host_located_actor_served_via_channel():
    bed = make_testbed()
    server = bed.add_server("server", LIQUIDIO_CN2350,
                            config=SchedulerConfig(migration_enabled=False))

    def host_handler(actor, msg, ctx):
        assert not ctx.on_nic
        yield ctx.compute(us=3.0)
        ctx.reply(msg, payload="from-host", size=msg.size)

    actor = Actor("hosty", host_handler, location=Location.HOST, pinned=True,
                  profile=WorkloadProfile("hosty", 3.0, 1.0, 1.0))
    server.runtime.register_actor(actor)
    server.runtime.dispatch_table["data"] = "hosty"
    client = bed.add_client("client")
    gen = client.closed_loop(dst="server", clients=2, size=256)
    bed.sim.run(until=5_000.0)
    gen.stop()
    assert gen.completed > 50
    # host path: extra PCIe crossings both ways → slower than NIC echo
    assert gen.latency.mean > 5.0
    assert server.runtime.host_ops > 50
    assert server.runtime.host_cores_used(5_000.0) > 0


def test_nic_actor_to_host_actor_messaging():
    bed = make_testbed()
    server = bed.add_server("server", LIQUIDIO_CN2350,
                            config=SchedulerConfig(migration_enabled=False))
    seen = []

    def front_handler(actor, msg, ctx):
        yield ctx.compute(us=1.0)
        ctx.send("backend", kind="log", payload=msg.payload, size=64)
        ctx.reply(msg, size=msg.size)

    def backend_handler(actor, msg, ctx):
        yield ctx.compute(us=1.0)
        seen.append(msg.payload)

    server.runtime.register_actor(Actor(
        "front", front_handler, profile=WorkloadProfile("f", 1.0, 1.2, 0.5)))
    server.runtime.register_actor(Actor(
        "backend", backend_handler, location=Location.HOST, pinned=True,
        profile=WorkloadProfile("b", 1.0, 1.2, 0.5)))
    server.runtime.dispatch_table["data"] = "front"
    client = bed.add_client("client")
    gen = client.closed_loop(dst="server", clients=1, size=128,
                             payload_factory=lambda i: i)
    bed.sim.run(until=2_000.0)
    gen.stop()
    assert len(seen) > 10
    assert seen[:3] == [0, 1, 2]


def test_forced_migration_moves_actor_and_objects():
    # Disable autonomous migration so the scheduler's pull policy doesn't
    # undo the forced move while we assert on it.
    bed = make_testbed()
    server, actor = make_echo_server(bed, migration_enabled=False)
    server.runtime.dispatch_table["data"] = "echo"
    rt = server.runtime
    obj = rt.dmo.malloc("echo", 1 << 20, data="state")

    client = bed.add_client("client")
    gen = client.closed_loop(dst="server", clients=2, size=256)
    bed.sim.run(until=1_000.0)

    from repro.sim import spawn
    done = {}

    def force():
        report = yield from rt.migrator.migrate_to_host(actor)
        done["report"] = report

    spawn(bed.sim, force())
    bed.sim.run(until=20_000.0)
    gen.stop()
    report = done["report"]
    assert actor.location is Location.HOST
    assert actor.migration_state is MigrationState.RUNNING
    assert report.moved_bytes >= 1 << 20
    assert report.phase_us[3] > report.phase_us[1]  # object move dominates
    assert rt.dmo.read("echo", obj.object_id) == "state"
    assert rt.dmo.tables[Location.HOST].get(obj.object_id) is not None
    # service continues on the host
    before = gen.completed
    gen2 = client.closed_loop(dst="server", clients=2, size=256)
    bed.sim.run(until=25_000.0)
    gen2.stop()
    assert gen2.completed > 10


def test_pull_migration_brings_actor_back():
    bed = make_testbed()
    server, actor = make_echo_server(bed, migration_enabled=True,
                                     mean_thresh_us=30.0)
    rt = server.runtime
    server.runtime.dispatch_table["data"] = "echo"
    # place the actor on the host first
    from repro.sim import spawn

    def force():
        yield from rt.migrator.migrate_to_host(actor)

    spawn(bed.sim, force())
    bed.sim.run(until=1_000.0)
    assert actor.location is Location.HOST

    # light load → low FCFS mean → the management core should pull it back
    client = bed.add_client("client")
    gen = client.closed_loop(dst="server", clients=1, size=256)
    bed.sim.run(until=120_000.0)
    gen.stop()
    assert actor.location is Location.NIC
    assert rt.nic_scheduler.pulls >= 1


def test_dos_actor_killed_by_watchdog():
    bed = make_testbed()
    from repro.core import IsolationPolicy
    server = bed.add_server(
        "server", LIQUIDIO_CN2350,
        config=SchedulerConfig(
            migration_enabled=False,
            isolation=IsolationPolicy(timeout_us=50.0)))

    def evil_handler(actor, msg, ctx):
        while True:  # infinite loop, but cooperative — the timer fires
            yield Timeout(10.0)

    evil = Actor("evil", evil_handler)
    good = Actor("good", echo_handler,
                 profile=WorkloadProfile("g", 1.87, 1.4, 0.6))
    server.runtime.register_actor(evil)
    server.runtime.register_actor(good)
    server.runtime.dispatch_table["data"] = "good"
    server.runtime.dispatch_table["attack"] = "evil"

    client = bed.add_client("client")
    gen = client.closed_loop(dst="server", clients=2, size=256)
    from repro.net import Packet
    bed.sim.call_at(100.0, bed.network.send,
                    Packet("client", "server", 64, kind="attack"))
    bed.sim.run(until=3_000.0)
    gen.stop()
    assert not evil.schedulable  # killed
    assert server.runtime.config.isolation.kills == ["evil"]
    assert gen.completed > 50  # good actor kept running


def test_scheduler_counts_forwarding_ops():
    bed = make_testbed()
    server, _ = make_echo_server(bed)
    rt = server.runtime
    sent = []
    rt.nic.traffic_manager.push(WorkItem(
        forward_cost_us=0.2, forward_action=lambda: sent.append(1),
        arrived_at=bed.sim.now))
    bed.sim.run(until=10.0)
    assert sent == [1]
    assert rt.nic_scheduler.forwards_completed == 1
