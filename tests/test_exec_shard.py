"""Equivalence tests for the rack-sharded parallel-in-time executor.

The contract under test: running a multi-rack spec through
:class:`repro.exec.shard.RackShardExecutor` produces a
:class:`ScenarioResult` whose ``fingerprint()`` is bit-identical to the
serial single-simulator run, and the canonical per-event digest
(:mod:`repro.check.equiv`) matches — every event fires at the same
virtual time running the same code in both decompositions.
"""

import multiprocessing
from dataclasses import replace

import pytest

from repro.check import session_digest
from repro.check.sanitizer import SanitizerSession
from repro.exec.shard import RackShardExecutor, run_sharded
from repro.scenario import (
    AppSpec,
    ClientSpec,
    FabricSpec,
    FaultDecl,
    FleetSpec,
    RackSpec,
    ScenarioError,
    ScenarioSpec,
    ServerSpec,
    load_shipped,
    run_scenario,
)
from repro.scenario.spec import ExecSpec

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:          # pragma: no cover - hypothesis is optional
    HAVE_HYPOTHESIS = False

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


def _serial(spec):
    """The serial reference: same spec, same fault streams as the
    sharded run resolves (auto -> per-component), single simulator."""
    ex = replace(spec.execution, shards="by-rack")
    return replace(spec, execution=replace(
        ex, shards="none", fault_streams=ex.resolved_fault_streams()))


def _sharded(spec, **overrides):
    return replace(spec, execution=replace(
        spec.execution, shards="by-rack", **overrides))


# -- shipped multi-rack specs ------------------------------------------------

@pytest.mark.parametrize("name", ["multi-rack-rkv", "multi-rack-chaos"])
def test_shipped_spec_fingerprints_match(name):
    spec = load_shipped(name)
    serial = run_scenario(_serial(spec), duration_us=2_000.0)
    executor = RackShardExecutor(_sharded(spec), duration_us=2_000.0)
    sharded = executor.run()
    assert sharded.fingerprint() == serial.fingerprint()
    assert executor.rounds > 0
    assert executor.transfers > 0


def test_canonical_event_digest_matches():
    spec = load_shipped("multi-rack-rkv")
    with SanitizerSession(guard_hazards=False) as serial_session:
        serial = run_scenario(_serial(spec), duration_us=1_500.0)
    with SanitizerSession(guard_hazards=False) as shard_session:
        sharded = run_scenario(_sharded(spec), duration_us=1_500.0)
    assert sharded.fingerprint() == serial.fingerprint()
    assert session_digest(shard_session) == session_digest(serial_session)


def test_rack_down_fault_equivalence():
    spec = load_shipped("multi-rack-rkv")
    spec = replace(spec, faults=spec.faults + (
        FaultDecl(kind="rack_down", target="rack1",
                  at_us=(800.0,), duration_us=400.0),))
    serial = run_scenario(_serial(spec), duration_us=3_000.0)
    sharded = run_sharded(_sharded(spec), duration_us=3_000.0)
    assert serial.faults_injected > 0
    assert sharded.fingerprint() == serial.fingerprint()


@pytest.mark.skipif(not HAVE_FORK, reason="needs the fork start method")
def test_process_backed_shards_match():
    spec = load_shipped("multi-rack-rkv")
    serial = run_scenario(_serial(spec), duration_us=1_500.0)
    sharded = run_sharded(_sharded(spec), duration_us=1_500.0, processes=3)
    assert sharded.fingerprint() == serial.fingerprint()


def test_run_scenario_dispatches_by_rack():
    spec = load_shipped("multi-rack-rkv")
    serial = run_scenario(_serial(spec), duration_us=1_000.0)
    sharded = run_scenario(_sharded(spec), duration_us=1_000.0)
    assert sharded.fingerprint() == serial.fingerprint()


def test_tight_lookahead_stresses_protocol_not_results():
    spec = load_shipped("multi-rack-rkv")
    base = spec.fabric.inter_rack_propagation_us
    loose = RackShardExecutor(spec, duration_us=1_000.0)
    tight = RackShardExecutor(spec, duration_us=1_000.0,
                              lookahead_us=base / 4)
    assert tight.lookahead_us == pytest.approx(base / 4)
    # an override can only tighten the fabric-derived bound
    assert RackShardExecutor(
        spec, lookahead_us=base * 10).lookahead_us == pytest.approx(base)
    reference = loose.run().fingerprint()
    assert tight.run().fingerprint() == reference
    assert tight.rounds > loose.rounds


# -- degenerate and invalid decompositions -----------------------------------

def test_single_rack_spec_degenerates_to_serial():
    spec = ScenarioSpec(
        name="one-rack", seed=11, duration_us=1_500.0,
        racks=(RackSpec(name="rack0",
                        servers=(ServerSpec(name="s0", host_workers=2),
                                 ServerSpec(name="s1", host_workers=2)),
                        clients=(ClientSpec("c0"),)),),
        apps=(AppSpec(kind="rkv", servers=("s0", "s1")),),
        fleets=(FleetSpec(client="c0", dst="shard:rkv", mode="open",
                          rate_mpps=0.05, seed=3),))
    serial = run_scenario(_serial(spec))
    executor = RackShardExecutor(_sharded(spec))
    sharded = executor.run()
    assert sharded.fingerprint() == serial.fingerprint()
    assert executor.transfers == 0


@pytest.mark.parametrize("mutation, fragment", [
    (dict(execution=ExecSpec(shards="by-rack", fault_streams="shared")),
     "per-component"),
    (dict(execution=ExecSpec(shards="by-rack", lookahead_us=-1.0)),
     "lookahead_us"),
    (dict(execution=ExecSpec(shards="by-rack", processes=-2)),
     "processes"),
])
def test_by_rack_validation_rejections(mutation, fragment):
    spec = replace(load_shipped("multi-rack-rkv"), **mutation)
    with pytest.raises(ScenarioError, match=fragment):
        spec.validate()


def test_by_rack_rejects_tracing():
    spec = load_shipped("multi-rack-rkv")
    spec = _sharded(replace(
        spec, observability=replace(spec.observability, trace=True)))
    with pytest.raises(ScenarioError, match="tracing"):
        RackShardExecutor(spec)


def test_executor_forces_by_rack_validation_on_serial_specs():
    spec = replace(load_shipped("multi-rack-rkv"),
                   execution=ExecSpec(shards="none", fault_streams="shared"))
    with pytest.raises(ScenarioError, match="per-component"):
        RackShardExecutor(spec)


# -- randomized cross-rack traffic (hypothesis) ------------------------------

def _random_grid_spec(racks: int, rate_mpps: float, seed: int,
                      rack_down: bool) -> ScenarioSpec:
    """A small multi-rack RKV deployment with all cross-rack traffic:
    the only client lives on rack0 while the replica group spans every
    rack, so every request and every Paxos round crosses the spine."""
    rack_specs = []
    for idx in range(racks):
        rack_specs.append(RackSpec(
            name=f"rack{idx}",
            servers=(ServerSpec(name=f"r{idx}s0", host_workers=2),),
            clients=(ClientSpec(f"c{idx}"),) if idx == 0 else ()))
    faults = ()
    if rack_down:
        faults = (FaultDecl(kind="rack_down", target="rack1",
                            at_us=(250.0,), duration_us=150.0),)
    return ScenarioSpec(
        name=f"grid-{racks}r", seed=seed, duration_us=800.0,
        racks=tuple(rack_specs), fabric=FabricSpec(),
        apps=(AppSpec(kind="rkv",
                      servers=tuple(f"r{i}s0" for i in range(racks))),),
        fleets=(FleetSpec(client="c0", dst="shard:rkv", mode="open",
                          rate_mpps=rate_mpps, seed=seed + 1),),
        faults=faults)


if HAVE_HYPOTHESIS:
    @settings(max_examples=6, deadline=None)
    @given(racks=st.integers(min_value=2, max_value=3),
           rate=st.sampled_from([0.02, 0.05, 0.1]),
           seed=st.integers(min_value=0, max_value=2**16),
           rack_down=st.booleans())
    def test_random_cross_rack_traffic_is_equivalent(racks, rate, seed,
                                                     rack_down):
        spec = _random_grid_spec(racks, rate, seed, rack_down)
        serial = run_scenario(_serial(spec))
        sharded = run_sharded(_sharded(spec))
        assert sharded.fingerprint() == serial.fingerprint()
else:                        # pragma: no cover - hypothesis is optional
    @pytest.mark.skip(reason="hypothesis not installed")
    def test_random_cross_rack_traffic_is_equivalent():
        pass
