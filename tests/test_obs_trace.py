"""Tracing invariants: span lifecycle, parenthood, cross-node propagation.

Runs one traced chaos scenario per module (cached in a fixture) and
asserts the structural guarantees docs/OBSERVABILITY.md promises:

* every span closes, with ``end_us >= start_us``;
* a span claiming a parent is strictly contained in that parent's
  interval (service ⊇ accel, migration ⊇ phases);
* trace ids survive cross-node hops — one client request's trace has
  spans on multiple servers (Paxos replication) and on both sides of
  the host↔NIC rings;
* tracing is invisible to the simulation: the deterministic-replay
  fingerprint is identical with the TracePlane on or off.
"""

import pytest

from repro.core import Actor
from repro.core.actor import Location
from repro.experiments.chaos_study import ChaosClient, run_rkv_chaos
from repro.experiments.testbed import make_testbed
from repro.nic import LIQUIDIO_CN2350
from repro.obs import TracePlane, Tracer


@pytest.fixture(scope="module")
def traced_report():
    return run_rkv_chaos(seed=11, n_requests=24, duration_us=30_000.0,
                         trace=True)


def _spans(report):
    return list(report.trace_plane.spans)


def test_every_span_closes(traced_report):
    spans = _spans(traced_report)
    assert spans, "traced run recorded no spans"
    assert traced_report.trace_plane.tracer.open_spans == []
    for span in spans:
        assert span.closed
        assert span.end_us >= span.start_us


def _assert_containment(spans):
    by_id = {s.span_id: s for s in spans}
    children = [s for s in spans if s.parent_id is not None]
    eps = 1e-9
    for child in children:
        parent = by_id.get(child.parent_id)
        assert parent is not None, f"{child!r} names a missing parent"
        assert parent.trace_id == child.trace_id
        assert parent.start_us - eps <= child.start_us
        assert child.end_us <= parent.end_us + eps
    return children


def test_child_contained_in_parent(traced_report):
    """Any span claiming a parent in the chaos run is contained in it."""
    _assert_containment(_spans(traced_report))


def test_accel_span_nested_in_service():
    """An accelerator invocation becomes a child span strictly inside the
    service span of the handler that issued it."""
    bed = make_testbed(seed=3)
    plane = TracePlane(bed.sim)

    def handler(actor, msg, ctx):
        yield from ctx.accelerator("crc", nbytes=2048)
        ctx.reply(msg, size=64)

    server = bed.add_server("s0", LIQUIDIO_CN2350)
    server.runtime.register_actor(Actor("crc", handler, location=Location.NIC))
    client = ChaosClient(bed.sim, bed.network)
    client.request("s0", "crc", {})
    bed.sim.run(until=10_000.0)
    assert client.answered == 1

    spans = list(plane.spans)
    accels = [s for s in spans if s.cat == "accel"]
    assert accels, "accelerator call recorded no span"
    children = _assert_containment(spans)
    assert accels[0] in children
    by_id = {s.span_id: s for s in spans}
    assert by_id[accels[0].parent_id].cat == "service"


def test_trace_ids_cross_nodes(traced_report):
    """Paxos replication spans land on the followers under the same
    trace id the client request started on the leader."""
    by_trace = {}
    for span in _spans(traced_report):
        by_trace.setdefault(span.trace_id, []).append(span)
    multi_node = [spans for spans in by_trace.values()
                  if len({s.node for s in spans if s.node} - {"client"}) >= 2]
    assert multi_node, "no trace spans more than one server"
    # at least one replicated request shows remote service execution
    assert any(
        {s.node for s in spans if s.cat == "service"} >= {"s0", "s1"}
        for spans in multi_node)


def test_trace_ids_cross_ring(traced_report):
    """Cold gets cross the NIC→host ring; the channel and host spans must
    stay on the trace that entered at NIC ingress."""
    by_trace = {}
    for span in _spans(traced_report):
        by_trace.setdefault(span.trace_id, set()).add(span.cat)
    assert any({"ingress", "sched.wait", "service"} <= cats
               for cats in by_trace.values())
    assert any({"channel", "host"} <= cats for cats in by_trace.values()), \
        "no trace crossed the host↔NIC rings intact"


def test_stage_order_within_trace(traced_report):
    """Virtual-time causality: ingress precedes queue wait precedes
    service within every trace that has all three."""
    by_trace = {}
    for span in _spans(traced_report):
        by_trace.setdefault(span.trace_id, []).append(span)
    checked = 0
    for spans in by_trace.values():
        firsts = {}
        for s in spans:
            if s.cat in ("ingress", "sched.wait", "service"):
                if s.cat not in firsts or s.start_us < firsts[s.cat]:
                    firsts[s.cat] = s.start_us
        if len(firsts) == 3:
            assert firsts["ingress"] <= firsts["sched.wait"] <= firsts["service"]
            checked += 1
    assert checked > 0


def test_retransmit_spans_present(traced_report):
    """The default scenario injects torn DMA writes; their nack/recovery
    path must be visible as channel.retx spans."""
    cats = {s.cat for s in _spans(traced_report)}
    assert "channel.retx" in cats


def test_stage_latencies_in_report(traced_report):
    stages = traced_report.stage_latencies
    for required in ("ingress", "sched.wait", "service", "link"):
        assert required in stages
        assert stages[required]["count"] > 0
        assert stages[required]["p99_us"] >= stages[required]["p50_us"] >= 0.0


def test_tracing_does_not_perturb_replay():
    """Same seed, TracePlane on vs off: byte-identical fingerprints."""
    plain = run_rkv_chaos(seed=17, n_requests=15, duration_us=25_000.0)
    traced = run_rkv_chaos(seed=17, n_requests=15, duration_us=25_000.0,
                           trace=True)
    assert plain.telemetry_fingerprint() == traced.telemetry_fingerprint()
    assert traced.stage_latencies and not plain.stage_latencies


def test_tracer_bounds_span_retention():
    class _Sim:
        now = 0.0

    tracer = Tracer(_Sim(), max_spans=10)
    for i in range(25):
        tracer.record_span(f"s{i}", "service", float(i), float(i) + 1.0)
    assert len(tracer.spans) == 10
    assert tracer.dropped == 15
    # the survivors are the newest
    assert [s.name for s in tracer.spans] == [f"s{i}" for i in range(15, 25)]


def test_traceplane_disabled_installs_nothing():
    class _Sim:
        now = 0.0

    sim = _Sim()
    plane = TracePlane(sim, enabled=False)
    assert getattr(sim, "tracer", None) is None
    assert plane.spans == ()
    assert plane.stage_breakdown() == {}
    assert plane.metrics_snapshot() == {}
