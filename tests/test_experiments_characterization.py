"""Tests pinning the §2 characterization harness to the paper's numbers."""

import pytest

from repro.experiments.characterization import (
    bandwidth_vs_cores,
    bandwidth_with_processing,
    computing_headroom_us,
    cores_to_saturate,
    figure2_series,
    figure6_series,
    figure7_series,
    figure8_series,
    figure9_series,
    figure10_series,
    table2_rows,
    table3_rows,
    traffic_manager_experiment,
)
from repro.nic import LIQUIDIO_CN2350, STINGRAY_PS225


# -- Figures 2/3 ------------------------------------------------------------------

def test_fig2_core_counts_match_paper():
    assert cores_to_saturate(LIQUIDIO_CN2350, 256) == 10
    assert cores_to_saturate(LIQUIDIO_CN2350, 512) == 6
    assert cores_to_saturate(LIQUIDIO_CN2350, 1024) == 4
    assert cores_to_saturate(LIQUIDIO_CN2350, 1500) == 3
    assert cores_to_saturate(LIQUIDIO_CN2350, 64) == 0
    assert cores_to_saturate(LIQUIDIO_CN2350, 128) == 0


def test_fig3_core_counts_match_paper():
    assert cores_to_saturate(STINGRAY_PS225, 256) == 3
    assert cores_to_saturate(STINGRAY_PS225, 512) == 2
    assert cores_to_saturate(STINGRAY_PS225, 1024) == 1
    assert cores_to_saturate(STINGRAY_PS225, 1500) == 1
    assert cores_to_saturate(STINGRAY_PS225, 64) == 0


def test_bandwidth_monotone_in_cores():
    series = figure2_series()
    for size, points in series.items():
        gbps = [g for _, g in points]
        assert all(b >= a - 1e-9 for a, b in zip(gbps, gbps[1:]))


def test_bandwidth_capped_at_payload_rate():
    # Achieved Gbps counts frame bytes only; wire overhead means the cap is
    # below the nominal link rate, especially for small frames.
    assert bandwidth_vs_cores(LIQUIDIO_CN2350, 64, 12) < 10.0
    full = bandwidth_vs_cores(LIQUIDIO_CN2350, 1500, 12)
    assert full == pytest.approx(10.0 * 1500 / 1520, rel=1e-3)


# -- Figure 4 ---------------------------------------------------------------------------

def test_fig4_headroom_matches_paper():
    assert computing_headroom_us(LIQUIDIO_CN2350, 256) == pytest.approx(2.5, abs=0.15)
    assert computing_headroom_us(LIQUIDIO_CN2350, 1024) == pytest.approx(9.8, abs=0.3)
    assert computing_headroom_us(STINGRAY_PS225, 256) == pytest.approx(0.7, abs=0.1)
    assert computing_headroom_us(STINGRAY_PS225, 1024) == pytest.approx(2.6, abs=0.15)


def test_fig4_bandwidth_falls_beyond_headroom():
    headroom = computing_headroom_us(LIQUIDIO_CN2350, 1024)
    at_limit = bandwidth_with_processing(LIQUIDIO_CN2350, 1024, headroom)
    beyond = bandwidth_with_processing(LIQUIDIO_CN2350, 1024, headroom * 2)
    assert at_limit > beyond


# -- Figure 5 ------------------------------------------------------------------------------

def test_fig5_shared_queue_scales_with_little_latency_penalty():
    six = traffic_manager_experiment(512, cores=6, duration_us=20_000)
    twelve = traffic_manager_experiment(512, cores=12, duration_us=20_000)
    # Paper: going 6 → 12 cores adds only ~4% avg latency; allow slack for
    # the short simulation but insist the penalty stays small even though
    # throughput doubled.
    assert twelve.avg_us < six.avg_us * 1.35
    assert twelve.p99_us < six.p99_us * 1.6


# -- Figures 6-10 ---------------------------------------------------------------------------

def test_fig6_smartnic_messaging_fastest():
    series = figure6_series()
    for size_idx in range(3):
        nic = series["SmartNIC-send"][size_idx][1]
        assert nic < series["DPDK-send"][size_idx][1]
        assert nic < series["RDMA-send"][size_idx][1]


def test_fig7_blocking_grows_nonblocking_flat():
    series = figure7_series()
    blocking = [v for _, v in series["DMA blocking write"]]
    nonblocking = [v for _, v in series["DMA non-blocking write"]]
    assert blocking[-1] > blocking[0]
    assert nonblocking[0] == nonblocking[-1]


def test_fig8_nonblocking_dominates_small_messages():
    series = figure8_series()
    nb = dict(series["DMA non-blocking write"])
    b = dict(series["DMA blocking write"])
    assert nb[64] > 2 * b[64]


def test_fig9_rdma_latency_about_double_dma():
    rdma = dict(figure9_series()["RDMA one-sided read"])
    dma = dict(figure7_series()["DMA blocking read"])
    for size in (64, 512, 2048):
        assert rdma[size] == pytest.approx(2 * dma[size], rel=0.01)


def test_fig10_rdma_small_message_penalty():
    rdma = dict(figure10_series()["RDMA one-sided write"])
    dma = dict(figure8_series()["DMA blocking write"])
    assert dma[64] / rdma[64] == pytest.approx(3.0, abs=0.5)
    assert dma[2048] / rdma[2048] < 1.5


# -- Tables ------------------------------------------------------------------------------------

def test_table2_values():
    rows = {r[0]: r for r in table2_rows()[1:]}
    assert rows["LiquidIOII CNXX"][1] == "8.3"
    assert rows["LiquidIOII CNXX"][4] == "115.0"
    assert rows["Stingray PS225"][2] == "25.1"
    assert rows["Host Intel server"][3] == "22.4"
    assert rows["LiquidIOII CNXX"][3] == "N/A"  # no L3 on the NIC


def test_table3_rows_cover_all_workloads():
    rows = table3_rows()
    assert len(rows) == 12  # header + 11 workloads
    names = {r[0] for r in rows[1:]}
    assert "flow_classifier" in names and "echo" in names
