"""Unit tests for the actor model, DMO layer, channels and isolation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Actor,
    ActorTable,
    Channel,
    Dmo,
    DmoError,
    DmoManager,
    IsolationPolicy,
    Location,
    Message,
    QuotaEnforcer,
    Ring,
    RingFullError,
    Watchdog,
    message_checksum,
)
from repro.nic import DmaEngine
from repro.sim import Simulator


def _noop_handler(actor, msg, ctx):
    return None


# -- actors ---------------------------------------------------------------------

def test_actor_ids_unique_and_table_registration():
    table = ActorTable()
    a = Actor("a", _noop_handler)
    b = Actor("b", _noop_handler)
    table.register(a)
    table.register(b)
    assert a.actor_id != b.actor_id
    assert table.lookup("a") is a
    assert len(table) == 2
    with pytest.raises(ValueError):
        table.register(Actor("a", _noop_handler))


def test_actor_deregister_marks_unschedulable():
    table = ActorTable()
    a = Actor("a", _noop_handler)
    table.register(a)
    table.deregister("a")
    assert not a.schedulable
    assert "a" not in table


def test_exec_lock_exclusive_by_default():
    a = Actor("a", _noop_handler)
    assert a.try_lock(0)
    assert not a.try_lock(1)
    a.unlock(0)
    assert a.try_lock(1)


def test_concurrent_actor_never_blocks():
    a = Actor("a", _noop_handler, concurrent=True)
    assert a.try_lock(0)
    assert a.try_lock(1)


def test_actor_bookkeeping_dispersion_and_load():
    a = Actor("a", _noop_handler)
    for latency in (10.0, 10.0, 50.0, 10.0):
        a.record_execution(latency, request_bytes=512, service_us=latency / 2)
    assert a.requests_seen == 4
    assert a.dispersion > a.mean_exec_us
    assert a.mean_service_us < a.mean_exec_us
    assert a.load(elapsed_us=100.0) > 0
    assert a.request_bytes_ewma == pytest.approx(512.0)


def test_actor_table_at_location():
    table = ActorTable()
    table.register(Actor("n", _noop_handler, location=Location.NIC))
    table.register(Actor("h", _noop_handler, location=Location.HOST))
    assert [a.name for a in table.at(Location.HOST)] == ["h"]


# -- DMO --------------------------------------------------------------------------

@pytest.fixture
def dmo():
    mgr = DmoManager(region_bytes=1 << 20)
    mgr.create_region("alice")
    mgr.create_region("bob")
    return mgr


def test_dmo_malloc_free_roundtrip(dmo):
    obj = dmo.malloc("alice", 1024, data={"k": 1})
    assert dmo.read("alice", obj.object_id) == {"k": 1}
    dmo.free("alice", obj.object_id)
    with pytest.raises(DmoError):
        dmo.read("alice", obj.object_id)


def test_dmo_cross_actor_access_denied(dmo):
    obj = dmo.malloc("alice", 64)
    with pytest.raises(DmoError):
        dmo.read("bob", obj.object_id)
    assert dmo.denied_accesses == 1


def test_dmo_region_exhaustion(dmo):
    dmo.malloc("alice", 1 << 19)
    dmo.malloc("alice", 1 << 19)
    with pytest.raises(DmoError):
        dmo.malloc("alice", 64)


def test_dmo_requires_region():
    mgr = DmoManager()
    with pytest.raises(DmoError):
        mgr.malloc("ghost", 64)


def test_dmo_memcpy_memmove(dmo):
    src = dmo.malloc("alice", 64, data="payload")
    dst = dmo.malloc("alice", 64)
    dmo.memcpy("alice", dst.object_id, src.object_id)
    assert dmo.read("alice", dst.object_id) == "payload"
    dmo.memmove("alice", dst.object_id, src.object_id)
    assert dmo.read("alice", src.object_id) is None


def test_dmo_single_copy_invariant_on_migrate(dmo):
    obj = dmo.malloc("alice", 4096, location=Location.NIC)
    dmo.migrate("alice", obj.object_id, Location.HOST)
    assert obj.object_id not in dmo.tables[Location.NIC]
    assert obj.object_id in dmo.tables[Location.HOST]
    # idempotent
    dmo.migrate("alice", obj.object_id, Location.HOST)
    assert obj.object_id in dmo.tables[Location.HOST]


def test_dmo_migrate_all_returns_bytes(dmo):
    dmo.malloc("alice", 100)
    dmo.malloc("alice", 200)
    dmo.malloc("bob", 999)
    moved = dmo.migrate_all("alice", Location.HOST)
    assert moved == 300
    assert dmo.bytes_owned("alice", Location.HOST) == 300
    assert dmo.bytes_owned("bob", Location.NIC) == 999


def test_dmo_destroy_region_drops_objects(dmo):
    obj = dmo.malloc("alice", 64)
    dmo.destroy_region("alice")
    with pytest.raises(DmoError):
        dmo.read("alice", obj.object_id)


@given(st.lists(st.integers(min_value=1, max_value=4096), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_dmo_region_accounting_invariant(sizes):
    mgr = DmoManager(region_bytes=1 << 20)
    mgr.create_region("a")
    allocated = []
    for size in sizes:
        try:
            allocated.append(mgr.malloc("a", size))
        except DmoError:
            break
    total = sum(o.size for o in allocated)
    assert total == mgr.bytes_owned("a")
    assert total <= 1 << 20


# -- channels -------------------------------------------------------------------------

def test_ring_produce_consume_after_pcie_delay():
    sim = Simulator()
    ring = Ring(sim, DmaEngine(sim), slots=8)
    msg = Message(target="x", size=128)
    ring.produce(msg)
    assert ring.poll() is None  # not yet visible
    sim.run()
    assert ring.poll() is msg


def test_ring_full_blocks_producer():
    sim = Simulator()
    ring = Ring(sim, DmaEngine(sim), slots=4)
    for _ in range(4):
        ring.produce(Message(target="x", size=64))
    with pytest.raises(RingFullError):
        ring.produce(Message(target="x", size=64))


def test_ring_lazy_header_sync_batches_notifications():
    sim = Simulator()
    ring = Ring(sim, DmaEngine(sim), slots=8)
    for _ in range(8):
        ring.produce(Message(target="x", size=64))
    sim.run()
    # consume 3: below half the ring — producer still sees 0 free
    for _ in range(3):
        assert ring.poll() is not None
    assert ring.producer_view_free == 0
    assert ring.sync_messages == 0
    # crossing half the ring triggers exactly one sync message
    assert ring.poll() is not None
    assert ring.producer_view_free == 4
    assert ring.sync_messages == 1


def test_ring_checksum_rejects_torn_write():
    sim = Simulator()
    ring = Ring(sim, DmaEngine(sim), slots=8)
    ring.produce(Message(target="x", size=64), corrupt=True)
    sim.run()
    assert ring.poll() is None
    assert ring.checksum_failures == 1


def test_ring_produce_cost_batching_amortizes():
    sim = Simulator()
    ring = Ring(sim, DmaEngine(sim), slots=8)
    msg = Message(target="x", size=256)
    assert ring.produce_cost_us(msg, batch=8) < ring.produce_cost_us(msg, batch=1)


def test_channel_bidirectional():
    sim = Simulator()
    chan = Channel(sim, DmaEngine(sim))
    chan.nic_send(Message(target="host-actor", size=64))
    chan.host_send(Message(target="nic-actor", size=64))
    sim.run()
    assert chan.host_poll().target == "host-actor"
    assert chan.nic_poll().target == "nic-actor"


def test_message_checksum_sensitive_to_fields():
    m1 = Message(target="a", kind="x", size=64)
    m2 = Message(target="a", kind="y", size=64)
    assert message_checksum(m1) != message_checksum(m2)


# -- isolation ---------------------------------------------------------------------------

def test_isolation_policy_modes():
    fw = IsolationPolicy(mode="firmware")
    os_ = IsolationPolicy(mode="full-os")
    assert fw.protection_mechanism == "software-TLB trap"
    assert fw.timeout_mechanism == "hardware timer ring"
    assert os_.protection_mechanism == "hardware paging"
    assert os_.timeout_mechanism == "POSIX signal"
    with pytest.raises(ValueError):
        IsolationPolicy(mode="hope")
    with pytest.raises(ValueError):
        IsolationPolicy(timeout_us=0)


def test_watchdog_expiry_and_kill():
    policy = IsolationPolicy(timeout_us=100.0)
    dog = Watchdog(policy)
    table = ActorTable()
    actor = Actor("evil", _noop_handler)
    table.register(actor)
    dog.arm(now=0.0, actor=actor)
    assert not dog.expired(now=50.0)
    assert dog.expired(now=101.0)
    victim = dog.kill(table)
    assert victim is actor
    assert not actor.schedulable
    assert policy.kills == ["evil"]


def test_quota_enforcer_flags_hog():
    quota = QuotaEnforcer(window_us=1000.0, max_share=0.5)
    quota.charge("hog", busy_us=900.0, now=100.0)
    assert quota.over_quota("hog", now=100.0, total_cores=2)
    assert not quota.over_quota("meek", now=100.0, total_cores=2)
    assert quota.share("hog", now=100.0, total_cores=2) > 0.5
