"""Fast sanity tests of the §5 experiment harnesses (short durations)."""

import pytest

from repro.experiments.applications import (
    ROLES,
    latency_throughput_curve,
    overhead_comparison,
    run_app,
)
from repro.experiments.migration_study import (
    FIG18_ACTORS,
    breakdown_rows,
    phase_share,
    run_migration_breakdown,
)
from repro.experiments.netfns import (
    firewall_latency_vs_load,
    floem_vs_ipipe,
    ipsec_goodput_gbps,
)
from repro.experiments.report import render_series, render_table
from repro.experiments.scheduler_study import (
    high_dispersion_actors,
    low_dispersion_actors,
    run_point,
)
from repro.nic import LIQUIDIO_CN2350


# -- report helpers ---------------------------------------------------------------

def test_render_table_alignment():
    out = render_table([("a", "long-header"), ("value", "x")], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "long-header" in lines[1]
    assert "---" in lines[2]


def test_render_series():
    out = render_series("s", [1, 2], [3.0, 4.5])
    assert out == "s: 1=3.00 2=4.50"


# -- scheduler study traces ----------------------------------------------------------

def test_low_dispersion_trace_mean_is_calibrated():
    trace = low_dispersion_actors(32.0)
    mean = sum(t.weight * t.mean_us for t in trace)
    assert mean == pytest.approx(32.0, rel=0.01)
    assert sum(t.weight for t in trace) == pytest.approx(1.0)


def test_high_dispersion_trace_structure():
    trace = high_dispersion_actors(35.0, 60.0)
    names = {t.name for t in trace}
    assert "heavy" in names and "burst" in names
    burst = next(t for t in trace if t.name == "burst")
    assert burst.weight < 0.01
    assert burst.mean_us > 1000.0


def test_scheduler_point_runs_fast_config():
    mean, p99 = run_point(LIQUIDIO_CN2350, "ipipe", "low", load=0.5,
                          duration_us=15_000.0)
    assert 20.0 < mean < 80.0
    assert p99 > mean


def test_scheduler_rejects_unknown_inputs():
    with pytest.raises(ValueError):
        run_point(LIQUIDIO_CN2350, "lifo", "low", 0.5)
    with pytest.raises(ValueError):
        run_point(LIQUIDIO_CN2350, "fcfs", "medium", 0.5)


# -- application harness -----------------------------------------------------------------

def test_run_app_rejects_unknown_system():
    with pytest.raises(ValueError):
        run_app("magic", "rta")


def test_run_app_result_fields():
    result = run_app("ipipe", "rta", packet_size=512, clients=8,
                     duration_us=6_000.0)
    assert result.completed > 50
    assert result.throughput_mops > 0
    assert set(result.host_cores) == {"s0", "s1", "s2"}
    assert result.per_core_tput("s0") > 0


def test_ipipe_beats_dpdk_per_core_on_dt():
    dpdk = run_app("dpdk", "dt", packet_size=512, clients=24,
                   duration_us=8_000.0)
    ipipe = run_app("ipipe", "dt", packet_size=512, clients=24,
                    duration_us=8_000.0)
    assert ipipe.per_core_tput("s0") > dpdk.per_core_tput("s0")
    assert ipipe.host_cores["s0"] < dpdk.host_cores["s0"]


def test_latency_throughput_curve_shape():
    curve = latency_throughput_curve("ipipe", "rta", client_counts=(2, 16),
                                     duration_us=6_000.0)
    assert len(curve) == 2
    # more clients → at least as much per-core throughput
    assert curve[1][0] >= curve[0][0] * 0.8


def test_overhead_comparison_reports_positive_overhead():
    rows = overhead_comparison(load_fractions=(0.5,), duration_us=8_000.0,
                               base_clients=48)
    load, dpdk_cores, ipipe_cores = rows[0]
    assert dpdk_cores > 0
    assert ipipe_cores > 0


# -- migration study -----------------------------------------------------------------------

def test_fig18_actor_inventory():
    names = [name for name, _, _ in FIG18_ACTORS]
    assert len(names) == 8
    assert "lsmmem" in names
    lsm_bytes = dict((n, b) for n, b, _ in FIG18_ACTORS)["lsmmem"]
    assert lsm_bytes == 32 * 1024 * 1024


def test_migration_breakdown_single_actor():
    from repro.experiments.migration_study import _migrate_one
    report = _migrate_one(LIQUIDIO_CN2350, "lsmmem", 32 << 20, 4.0,
                          load=0.9, warmup_us=1_000.0, seed=7)
    assert report is not None
    assert report.moved_bytes >= 32 << 20
    assert report.phase_us[3] > report.phase_us[1]
    assert report.share(3) > 0.4


# -- network functions harness -----------------------------------------------------------------

def test_firewall_latency_increases_with_load():
    points = firewall_latency_vs_load(rule_count=512, loads=(0.2, 0.9),
                                      duration_us=6_000.0)
    assert points[1][1] >= points[0][1]


def test_ipsec_goodput_positive():
    gbps = ipsec_goodput_gbps(duration_us=6_000.0, clients=64)
    assert 5.0 < gbps < 10.0


def test_floem_comparison_runs():
    floem, ipipe = floem_vs_ipipe(packet_size=1024, clients=24,
                                  duration_us=6_000.0)
    assert floem.throughput_gbps > 0 and ipipe.throughput_gbps > 0
    assert ipipe.gbps_per_core >= floem.gbps_per_core * 0.9
