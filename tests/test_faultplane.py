"""FaultPlane unit tests: spec validation, triggers, wiring, determinism."""

import pytest

from repro.core import Actor, Message, SchedulerConfig
from repro.core.channel import Channel
from repro.experiments.testbed import make_testbed
from repro.net import Link, Packet
from repro.nic import LIQUIDIO_CN2350, DmaEngine, WorkloadProfile
from repro.sim import (
    FaultKind,
    FaultPlane,
    FaultSpec,
    Simulator,
    Timeout,
)


# -- spec validation ---------------------------------------------------------

def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        FaultSpec("meteor_strike", probability=1.0)


def test_event_kind_rejects_schedule_triggers():
    with pytest.raises(ValueError):
        FaultSpec(FaultKind.LINK_LOSS, at_us=(10.0,))
    with pytest.raises(ValueError):
        FaultSpec(FaultKind.DMA_TORN, period_us=5.0, stop_us=100.0)
    with pytest.raises(ValueError):
        FaultSpec(FaultKind.LINK_LOSS)          # no trigger at all


def test_scheduled_kind_rejects_event_triggers():
    with pytest.raises(ValueError):
        FaultSpec(FaultKind.CORE_FAIL, probability=0.5)
    with pytest.raises(ValueError):
        FaultSpec(FaultKind.ACTOR_CRASH, every_nth=3)
    with pytest.raises(ValueError):
        FaultSpec(FaultKind.RING_STALL)         # no trigger at all


def test_unbounded_periodic_rejected():
    with pytest.raises(ValueError):
        FaultSpec(FaultKind.CORE_STALL, target="0", period_us=10.0)
    # bounded variants are fine
    FaultSpec(FaultKind.CORE_STALL, target="0", period_us=10.0, stop_us=50.0)
    FaultSpec(FaultKind.CORE_STALL, target="0", period_us=10.0, max_count=3)


def test_fire_times_periodic_window():
    spec = FaultSpec(FaultKind.RING_STALL, target="r", period_us=10.0,
                     start_us=5.0, stop_us=36.0, duration_us=1.0)
    assert spec.fire_times() == [5.0, 15.0, 25.0, 35.0]


# -- link faults -------------------------------------------------------------

def _run_link_with_loss(seed: int, n: int = 200, p: float = 0.2):
    sim = Simulator()
    got = []
    link = Link(sim, 10, receiver=lambda pkt: got.append(pkt.payload),
                propagation_us=0.1, name="wire")
    plane = FaultPlane(sim, seed=seed)
    plane.add(FaultSpec(FaultKind.LINK_LOSS, target="wire", probability=p))
    plane.wire_link(link)
    for i in range(n):
        link.transmit(Packet("a", "b", 128, payload=i))
    sim.run()
    return got, link, plane


def test_link_loss_drops_frames_and_counts():
    got, link, plane = _run_link_with_loss(seed=3)
    assert 0 < len(got) < 200
    assert link.frames_dropped == 200 - len(got)
    assert plane.counts[FaultKind.LINK_LOSS] == link.frames_dropped
    # survivors keep FIFO order
    assert got == sorted(got)


def test_link_loss_same_seed_same_schedule():
    got_a, _, plane_a = _run_link_with_loss(seed=11)
    got_b, _, plane_b = _run_link_with_loss(seed=11)
    got_c, _, plane_c = _run_link_with_loss(seed=12)
    assert got_a == got_b
    assert plane_a.schedule_log == plane_b.schedule_log
    assert plane_a.schedule_log != plane_c.schedule_log


def test_link_corrupt_counts_separately():
    sim = Simulator()
    got = []
    link = Link(sim, 10, receiver=got.append, propagation_us=0.1,
                name="wire")
    plane = FaultPlane(sim, seed=5)
    plane.add(FaultSpec(FaultKind.LINK_CORRUPT, target="wire",
                        probability=1.0, max_count=4))
    plane.wire_link(link)
    for i in range(10):
        link.transmit(Packet("a", "b", 128, payload=i))
    sim.run()
    assert link.frames_corrupted == 4           # max_count cap respected
    assert len(got) == 6


def test_event_fault_respects_time_window():
    sim = Simulator()
    got = []
    link = Link(sim, 10, receiver=got.append, propagation_us=0.0,
                name="wire")
    plane = FaultPlane(sim, seed=5)
    plane.add(FaultSpec(FaultKind.LINK_LOSS, target="wire", probability=1.0,
                        start_us=100.0, stop_us=200.0))
    plane.wire_link(link)
    for t in (50.0, 150.0, 250.0):
        sim.call_at(t, link.transmit, Packet("a", "b", 64, payload=t))
    sim.run()
    assert [p.payload for p in got] == [50.0, 250.0]
    assert link.frames_dropped == 1


# -- ring faults -------------------------------------------------------------

def _msg(i: int) -> Message:
    return Message(target="t", payload=i, size=64)


def test_torn_writes_every_nth():
    sim = Simulator()
    chan = Channel(sim, DmaEngine(sim), slots=64, name="c")
    plane = FaultPlane(sim, seed=1)
    plane.add(FaultSpec(FaultKind.DMA_TORN, target="c.to_host",
                        every_nth=4))
    plane.wire_channel(chan)
    for i in range(12):
        chan.nic_send(_msg(i))
    sim.run()
    got = []
    while True:
        msg = chan.host_poll()
        if msg is None and not chan.to_host:
            break
        if msg is not None:
            got.append(msg.payload)
    assert chan.to_host.checksum_failures == 3      # messages 4, 8, 12
    assert chan.to_host.dma.torn_writes == 3
    assert chan.to_host.nacks == 3
    assert got == [0, 1, 2, 4, 5, 6, 8, 9, 10]


def test_ring_stall_freezes_consumer_until_expiry():
    sim = Simulator()
    chan = Channel(sim, DmaEngine(sim), slots=16, name="c")
    chan.nic_send(_msg(0))
    sim.run()
    chan.to_host.stall(50.0)
    assert chan.host_poll() is None                 # frozen
    sim.run(until=sim.now + 60.0)
    assert chan.host_poll().payload == 0            # thawed


# -- scheduled faults against a runtime -------------------------------------

def _echo(actor, msg, ctx):
    yield ctx.compute(us=2.0)
    if msg.packet is not None:
        ctx.reply(msg, size=msg.size)


def test_core_fail_rebalances_and_service_survives():
    bed = make_testbed()
    plane = FaultPlane(bed.sim, seed=2)
    plane.add(FaultSpec(FaultKind.CORE_FAIL, target="2", node="server",
                        at_us=(500.0,)))
    plane.add(FaultSpec(FaultKind.CORE_STALL, target="1", node="server",
                        at_us=(600.0,), duration_us=100.0))
    server = bed.add_server("server", LIQUIDIO_CN2350,
                            config=SchedulerConfig(migration_enabled=False),
                            fault_plane=plane)
    rt = server.runtime
    rt.register_actor(
        Actor("echo", _echo, concurrent=True,
              profile=WorkloadProfile("e", 2.0, 1.2, 0.5)),
        steering_keys=["data"])
    replies = []
    bed.network.attach("client", lambda p: replies.append(p))
    for i in range(30):
        bed.sim.call_at(i * 50.0, bed.network.send,
                        Packet("client", "server", 128, kind="data",
                               created_at=i * 50.0))
    bed.sim.run(until=5_000.0)
    rt.stop()
    sched = rt.nic_scheduler
    assert sched.core_failures == 1
    assert sched.core_stalls == 1
    assert not sched.core_health.alive(2)
    assert sched.core_health.alive_count() == sched.num_cores - 1
    # the failed core is out of both pools; the floors still hold
    assert sched.core_mode[2] == "failed"
    assert sched.fcfs_cores() >= sched.config.min_fcfs_cores
    assert len(replies) == 30
    assert plane.counts == {FaultKind.CORE_FAIL: 1, FaultKind.CORE_STALL: 1}


def test_failed_mgmt_core_promotes_replacement():
    bed = make_testbed()
    plane = FaultPlane(bed.sim, seed=2)
    plane.add(FaultSpec(FaultKind.CORE_FAIL, target="0", at_us=(100.0,)))
    server = bed.add_server("server", LIQUIDIO_CN2350,
                            config=SchedulerConfig(migration_enabled=False),
                            fault_plane=plane)
    sched = server.runtime.nic_scheduler
    assert sched.mgmt_core == 0
    bed.sim.run(until=200.0)
    server.runtime.stop()
    assert not sched.core_health.alive(0)
    assert sched.mgmt_core != 0
    assert sched.core_health.alive(sched.mgmt_core)


def test_scheduled_node_filter():
    """A node-scoped spec only fires on that runtime."""
    bed = make_testbed()
    plane = FaultPlane(bed.sim, seed=2)
    plane.add(FaultSpec(FaultKind.CORE_FAIL, target="1", node="b",
                        at_us=(100.0,)))
    sa = bed.add_server("a", LIQUIDIO_CN2350,
                        config=SchedulerConfig(migration_enabled=False),
                        fault_plane=plane)
    sb = bed.add_server("b", LIQUIDIO_CN2350,
                        config=SchedulerConfig(migration_enabled=False),
                        fault_plane=plane)
    bed.sim.run(until=200.0)
    sa.runtime.stop()
    sb.runtime.stop()
    assert sa.runtime.nic_scheduler.core_health.alive(1)
    assert not sb.runtime.nic_scheduler.core_health.alive(1)
    assert plane.schedule_log == [(100.0, FaultKind.CORE_FAIL, "b.core1")]


def test_snapshot_totals():
    sim = Simulator()
    plane = FaultPlane(sim, seed=0)
    link = Link(sim, 10, receiver=lambda p: None, propagation_us=0.0,
                name="wire")
    plane.add(FaultSpec(FaultKind.LINK_LOSS, target="wire", probability=1.0))
    plane.wire_link(link)
    for _ in range(3):
        link.transmit(Packet("a", "b", 64))
    sim.run()
    snap = plane.snapshot()
    assert snap.injected == {FaultKind.LINK_LOSS: 3}
    assert snap.total == 3
    assert snap.schedule_len == 3
