"""Property-based tests: Paxos safety under adversarial message schedules."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.rkv import MultiPaxosNode


class ShuffledCluster:
    """Paxos cluster whose message delivery order/drops are driven by a
    hypothesis-provided schedule."""

    def __init__(self, n: int):
        self.names = [f"n{i}" for i in range(n)]
        self.queue = []
        self.applied = {name: [] for name in self.names}
        self.nodes = {}
        for name in self.names:
            peers = [p for p in self.names if p != name]
            self.nodes[name] = MultiPaxosNode(
                name, peers,
                send=lambda dst, m, src=name: self.queue.append((dst, m)),
                on_commit=lambda i, v, nm=name: self.applied[nm].append((i, v)),
                initial_leader="n0")

    def drive(self, schedule, drop_mod: int):
        """Deliver messages in a schedule-driven order, dropping some."""
        steps = 0
        while self.queue and steps < 5000:
            idx = schedule.draw_index(len(self.queue)) if hasattr(
                schedule, "draw_index") else 0
            dst, msg = self.queue.pop(idx % len(self.queue))
            steps += 1
            if drop_mod and steps % drop_mod == 0:
                continue  # drop this message
            self.nodes[dst].handle(msg)


@given(st.lists(st.integers(min_value=0, max_value=100), min_size=1,
                max_size=12),
       st.integers(min_value=0, max_value=7),
       st.randoms(use_true_random=False))
@settings(max_examples=60, deadline=None)
def test_paxos_agreement_under_reordering_and_drops(commands, drop_mod, rnd):
    """Safety: no two replicas ever apply different values at an instance,
    and applied sequences are prefixes of each other."""
    cluster = ShuffledCluster(3)
    for command in commands:
        cluster.nodes["n0"].client_request(command)

    steps = 0
    while cluster.queue and steps < 5000:
        idx = rnd.randrange(len(cluster.queue))
        dst, msg = cluster.queue.pop(idx)
        steps += 1
        if drop_mod and steps % drop_mod == 0:
            continue
        cluster.nodes[dst].handle(msg)

    sequences = [cluster.applied[name] for name in cluster.names]
    # prefix consistency: same (instance, value) at every shared position
    min_len = min(len(s) for s in sequences)
    for pos in range(min_len):
        assert sequences[0][pos] == sequences[1][pos] == sequences[2][pos]
    # instances apply in order 0,1,2,... on every replica
    for seq in sequences:
        assert [i for i, _ in seq] == list(range(len(seq)))


@given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=8),
       st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_paxos_election_never_loses_committed_values(commands, rnd):
    """After any committed prefix, a leader change preserves that prefix."""
    cluster = ShuffledCluster(3)
    for command in commands:
        cluster.nodes["n0"].client_request(command)
    # deliver everything reliably first → all committed
    while cluster.queue:
        dst, msg = cluster.queue.pop(0)
        cluster.nodes[dst].handle(msg)
    committed_prefix = list(cluster.applied["n1"])

    # n1 takes over leadership with random delivery order
    cluster.nodes["n1"].start_election()
    steps = 0
    while cluster.queue and steps < 5000:
        idx = rnd.randrange(len(cluster.queue))
        dst, msg = cluster.queue.pop(idx)
        cluster.nodes[dst].handle(msg)
        steps += 1
    cluster.nodes["n1"].client_request("post-election")
    while cluster.queue:
        dst, msg = cluster.queue.pop(0)
        cluster.nodes[dst].handle(msg)

    after = cluster.applied["n1"]
    assert after[: len(committed_prefix)] == committed_prefix
    assert any(v == "post-election" for _, v in after)
