"""Tests for the distributed transaction system: store, OCC/2PC, actors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.dt import (
    CoordinatorLog,
    ExtensibleHashTable,
    LogRecord,
    TxnCoordinator,
    TxnParticipant,
    DtCoordinatorNode,
    DtParticipantNode,
)
from repro.core import SchedulerConfig
from repro.experiments.testbed import make_testbed
from repro.net import Packet
from repro.nic import LIQUIDIO_CN2350


# -- extensible hash table ----------------------------------------------------

def test_hashtable_put_get_versions():
    table = ExtensibleHashTable()
    assert table.put("k", b"v1") == 1
    assert table.put("k", b"v2") == 2
    assert table.get("k") == (b"v2", 2)
    assert table.get("nope") is None


def test_hashtable_grows_directory():
    table = ExtensibleHashTable(initial_buckets=2)
    for i in range(64):
        table.put(f"key{i}", b"v")
    assert table.resizes >= 1
    assert table.buckets > 2
    for i in range(64):
        assert table.get(f"key{i}") == (b"v", 1)


def test_hashtable_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        ExtensibleHashTable(initial_buckets=3)


def test_hashtable_locks():
    table = ExtensibleHashTable()
    assert table.try_lock("k", "txn-1")
    assert table.is_locked("k")
    assert not table.try_lock("k", "txn-2")
    assert table.try_lock("k", "txn-1")  # re-entrant for the owner
    table.unlock("k", "txn-2")           # non-owner unlock is a no-op
    assert table.is_locked("k")
    table.unlock("k", "txn-1")
    assert not table.is_locked("k")


def test_hashtable_commit_requires_lock():
    table = ExtensibleHashTable()
    with pytest.raises(RuntimeError):
        table.commit_write("k", b"v", "txn-9")
    table.try_lock("k", "txn-9")
    version = table.commit_write("k", b"v", "txn-9")
    assert version == 1
    assert not table.is_locked("k")


# -- OCC + 2PC (direct wiring) ------------------------------------------------------

class DirectCluster:
    def __init__(self, participants=("p0", "p1")):
        self.queue = []
        self.parts = {
            name: TxnParticipant(name, send=self._enqueue)
            for name in participants
        }
        self.coord = TxnCoordinator(
            "coord", list(participants), send=self._enqueue)
        self.results = []

    def _enqueue(self, dst, msg):
        self.queue.append((dst, msg))

    def run(self):
        while self.queue:
            dst, msg = self.queue.pop(0)
            if dst == "coord":
                self.coord.handle(msg)
            else:
                self.parts[dst].handle(msg)

    def txn(self, reads, writes):
        self.coord.begin(reads, writes,
                         lambda ok, vals: self.results.append((ok, vals)))
        self.run()
        return self.results[-1]


def _store_of(cluster, key):
    owner = cluster.coord.owner_of(key)
    return cluster.parts[owner].store


def test_txn_write_then_read():
    cluster = DirectCluster()
    ok, _ = cluster.txn([], {"x": b"42"})
    assert ok
    ok, values = cluster.txn(["x"], {})
    assert ok and values["x"] == b"42"


def test_txn_commit_point_is_log(monkeypatch):
    cluster = DirectCluster()
    records = []
    cluster.coord.log_append = records.append
    ok, _ = cluster.txn([], {"k": b"v"})
    assert ok
    assert len(records) == 1
    assert records[0].writes == {"k": b"v"}


def test_txn_aborts_on_locked_key():
    cluster = DirectCluster()
    cluster.txn([], {"x": b"1"})
    # lock x behind the coordinator's back
    _store_of(cluster, "x").try_lock("x", "intruder")
    ok, _ = cluster.txn(["x"], {"x": b"2"})
    assert not ok
    assert cluster.coord.aborted == 1
    # the intruder's lock survives; the store value is unchanged
    assert _store_of(cluster, "x").get("x") == (b"1", 1)


def test_txn_abort_releases_own_locks():
    cluster = DirectCluster()
    cluster.txn([], {"a": b"1"})
    _store_of(cluster, "a").try_lock("a", "intruder")
    ok, _ = cluster.txn(["a"], {"b": b"2"})  # aborts on read lock
    assert not ok
    # b's lock from the aborted txn must be released
    assert not _store_of(cluster, "b").is_locked("b")


def test_txn_validation_catches_version_change():
    cluster = DirectCluster()
    cluster.txn([], {"x": b"1"})
    coord = cluster.coord

    # interleave: start txn A, then commit txn B changing x between A's
    # phase 1 and validation.
    state_holder = []
    coord.begin(["x"], {"y": b"A"},
                lambda ok, vals: state_holder.append(ok))
    # process only phase-1 messages
    phase1 = [m for m in cluster.queue]
    cluster.queue = []
    replies = []
    for dst, msg in phase1:
        part = cluster.parts[dst]
        part.send = lambda d, m: replies.append((d, m))
        part.handle(msg)
        part.send = cluster._enqueue
    # now another transaction commits a new version of x
    cluster.txn([], {"x": b"CHANGED"})
    # deliver A's phase-1 replies → triggers validation → abort
    for dst, msg in replies:
        coord.handle(msg)
    cluster.run()
    assert state_holder == [False]


def test_txn_read_own_partition_values():
    cluster = DirectCluster(participants=("p0", "p1", "p2"))
    for i in range(9):
        cluster.txn([], {f"key{i}": str(i).encode()})
    ok, values = cluster.txn([f"key{i}" for i in range(9)], {})
    assert ok
    assert values == {f"key{i}": str(i).encode() for i in range(9)}


@given(st.lists(st.tuples(st.sampled_from(["a", "b", "c", "d"]),
                          st.binary(min_size=1, max_size=6)),
                min_size=1, max_size=30))
@settings(max_examples=40, deadline=None)
def test_txn_sequential_matches_dict(writes):
    cluster = DirectCluster()
    expected = {}
    for key, value in writes:
        ok, _ = cluster.txn([], {key: value})
        assert ok
        expected[key] = value
    ok, values = cluster.txn(sorted(expected), {})
    assert ok
    assert values == {k: expected[k] for k in expected}


# -- coordinator log ----------------------------------------------------------------------

def test_log_checkpoints_at_limit():
    sealed = []
    log = CoordinatorLog(segment_limit_bytes=200, on_checkpoint=sealed.append)
    for i in range(10):
        log.append(LogRecord(txn_id=i, writes={"k": b"v" * 20},
                             read_versions={}))
    assert log.checkpointed_segments >= 1
    assert sealed and sealed[0].records


def test_log_find_in_active_segment():
    log = CoordinatorLog(segment_limit_bytes=1 << 20)
    record = LogRecord(txn_id=7, writes={"k": b"v"}, read_versions={})
    log.append(record)
    assert log.find(7) is record
    assert log.find(8) is None


# -- actors over the testbed ----------------------------------------------------------------

def test_dt_end_to_end_over_network():
    bed = make_testbed()
    replies = []
    bed.network.attach("client", lambda p: replies.append(p))
    coord_srv = bed.add_server("c0", LIQUIDIO_CN2350,
                               config=SchedulerConfig(migration_enabled=False))
    parts = {}
    for name in ("p0", "p1"):
        server = bed.add_server(name, LIQUIDIO_CN2350,
                                config=SchedulerConfig(migration_enabled=False))
        parts[name] = DtParticipantNode(server.runtime)
    coord = DtCoordinatorNode(coord_srv.runtime, ["p0", "p1"])

    def send_txn(reads, writes, seq):
        pkt = Packet("client", "c0", 256, kind="dt-txn",
                     payload={"reads": reads, "writes": writes},
                     created_at=bed.sim.now)
        pkt.meta["client"] = ("client", seq)
        bed.network.send(pkt)

    send_txn([], {"x": b"42", "y": b"7"}, seq=0)
    bed.sim.run(until=3_000.0)
    assert len(replies) == 1
    assert replies[0].payload["status"] == "committed"

    send_txn(["x", "y"], {"z": b"1"}, seq=1)
    bed.sim.run(until=6_000.0)
    assert len(replies) == 2
    assert replies[1].payload["status"] == "committed"
    assert replies[1].payload["values"]["x"] == b"42"
    assert replies[1].payload["values"]["y"] == b"7"
    assert coord.coordinator.committed == 2
    assert coord.log.records_total == 2
