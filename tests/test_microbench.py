"""Tests for the Table-3 microbenchmark workload implementations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.microbench import (
    CountMinSketch,
    KvCache,
    LpmRouter,
    MaglevTable,
    NaiveBayesClassifier,
    PFabricScheduler,
    QueuedPacket,
    RateLimiter,
    ReplicationChain,
    SoftwareTcam,
    TcamRule,
    TopRanker,
    field_mask,
    ip,
    pack_key,
    packet_features,
    FEATURE_CARDINALITIES,
    WORKLOAD_IMPLEMENTATIONS,
)


# -- count-min sketch -----------------------------------------------------------

def test_sketch_never_undercounts():
    sketch = CountMinSketch(width=512, depth=4)
    for i in range(200):
        sketch.update(f"flow{i % 20}")
    for i in range(20):
        assert sketch.estimate(f"flow{i}") >= 10


def test_sketch_heavy_hitters():
    sketch = CountMinSketch(width=2048, depth=4)
    for _ in range(100):
        sketch.update("elephant")
    sketch.update("mouse")
    hh = sketch.heavy_hitters(["elephant", "mouse"], threshold=50)
    assert hh == ["elephant"]


@given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=300))
@settings(max_examples=50, deadline=None)
def test_sketch_estimate_at_least_true_count(keys):
    sketch = CountMinSketch(width=256, depth=3)
    for k in keys:
        sketch.update(k)
    from collections import Counter
    for key, count in Counter(keys).items():
        assert sketch.estimate(key) >= count


def test_sketch_rejects_bad_shape():
    with pytest.raises(ValueError):
        CountMinSketch(width=0)


# -- KV cache ----------------------------------------------------------------------

def test_kvcache_read_write_delete():
    cache = KvCache(capacity_bytes=10_000)
    cache.write(b"k", b"v")
    assert cache.read(b"k") == b"v"
    assert cache.delete(b"k")
    assert cache.read(b"k") is None
    assert not cache.delete(b"k")


def test_kvcache_lru_eviction_order():
    cache = KvCache(capacity_bytes=3 * (2 + 32))
    cache.write(b"a", b"1")
    cache.write(b"b", b"1")
    cache.write(b"c", b"1")
    cache.read(b"a")          # a becomes MRU
    cache.write(b"d", b"1")   # evicts b (LRU)
    assert cache.read(b"b") is None
    assert cache.read(b"a") == b"1"
    assert cache.evictions == 1


def test_kvcache_overwrite_accounts_bytes():
    cache = KvCache(capacity_bytes=1000)
    cache.write(b"k", b"x" * 100)
    used = cache.used_bytes
    cache.write(b"k", b"y" * 10)
    assert cache.used_bytes < used


def test_kvcache_rejects_oversized_entry():
    cache = KvCache(capacity_bytes=50)
    with pytest.raises(ValueError):
        cache.write(b"k", b"v" * 100)


@given(st.lists(st.tuples(st.binary(min_size=1, max_size=8),
                          st.binary(max_size=64)), max_size=100))
@settings(max_examples=50, deadline=None)
def test_kvcache_never_exceeds_budget(ops):
    cache = KvCache(capacity_bytes=500)
    for key, value in ops:
        try:
            cache.write(key, value)
        except ValueError:
            continue
        assert cache.used_bytes <= 500


# -- top ranker ----------------------------------------------------------------------

def test_ranker_returns_top_n_descending():
    ranker = TopRanker(n=3)
    data = [(f"w{i}", i) for i in range(20)]
    top = ranker.rank(data)
    assert [c for _, c in top] == [19, 18, 17]
    assert ranker.comparisons > 0


def test_ranker_merge_across_workers():
    ranker = TopRanker(n=2)
    merged = ranker.merge([("a", 5), ("b", 3)], [("c", 9), ("d", 1)])
    assert merged == [("c", 9), ("a", 5)]


@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=200))
@settings(max_examples=60, deadline=None)
def test_ranker_matches_sorted(counts):
    ranker = TopRanker(n=5)
    data = [(i, c) for i, c in enumerate(counts)]
    expected = sorted(counts, reverse=True)[:5]
    assert [c for _, c in ranker.rank(data)] == expected


# -- rate limiter ------------------------------------------------------------------------

def test_rate_limiter_admits_within_burst_then_drops():
    rl = RateLimiter(rate_bytes_per_us=10.0, burst_bytes=1000.0)
    assert rl.admit("f", 900, now=0.0)
    assert not rl.admit("f", 900, now=0.0)
    # after draining 50 µs → 500 bytes of room
    assert rl.admit("f", 400, now=50.0)
    assert rl.admitted == 2 and rl.dropped == 1


def test_rate_limiter_flows_independent():
    rl = RateLimiter(rate_bytes_per_us=1.0, burst_bytes=100.0)
    assert rl.admit("a", 100, now=0.0)
    assert rl.admit("b", 100, now=0.0)
    assert rl.flows() == 2


# -- TCAM ------------------------------------------------------------------------------------

def test_tcam_priority_wins():
    tcam = SoftwareTcam()
    key = pack_key(ip_a := 0x0A000001, 0x0A000002, 1000, 80, 6)
    tcam.install(TcamRule(value=key, mask=field_mask((False,) * 5),
                          priority=10, action="allow"))
    tcam.install(TcamRule(value=0, mask=0, priority=1, action="deny"))
    assert tcam.lookup(key).action == "allow"
    # non-matching key falls to the catch-all
    other = pack_key(0x0B000001, 0x0A000002, 1000, 80, 6)
    assert tcam.lookup(other).action == "deny"


def test_tcam_wildcard_fields():
    tcam = SoftwareTcam()
    rule_key = pack_key(0x0A000001, 0, 0, 443, 6)
    mask = field_mask((False, True, True, False, False))
    tcam.install(TcamRule(rule_key, mask, priority=5, action="allow"))
    probe = pack_key(0x0A000001, 0x22222222, 9999, 443, 6)
    assert tcam.lookup(probe).action == "allow"


def test_tcam_no_match_returns_none():
    tcam = SoftwareTcam()
    assert tcam.lookup(12345) is None


# -- LPM router ---------------------------------------------------------------------------------

def test_lpm_longest_prefix_wins():
    router = LpmRouter()
    router.add_route(ip(10, 0, 0, 0), 8, "coarse")
    router.add_route(ip(10, 1, 0, 0), 16, "fine")
    assert router.lookup(ip(10, 1, 2, 3)) == "fine"
    assert router.lookup(ip(10, 2, 2, 3)) == "coarse"
    assert router.lookup(ip(11, 0, 0, 1)) is None


def test_lpm_default_route():
    router = LpmRouter()
    router.add_route(0, 0, "default")
    assert router.lookup(ip(1, 2, 3, 4)) == "default"


def test_lpm_rejects_bad_prefix_len():
    with pytest.raises(ValueError):
        LpmRouter().add_route(0, 40, "x")


# -- Maglev --------------------------------------------------------------------------------------

def test_maglev_fills_whole_table_evenly():
    table = MaglevTable(["b0", "b1", "b2"], table_size=503)
    assert all(slot is not None for slot in table.lookup_table)
    for b in ("b0", "b1", "b2"):
        assert table.share(b) == pytest.approx(1 / 3, abs=0.05)


def test_maglev_consistent_pick():
    table = MaglevTable(["b0", "b1", "b2"], table_size=503)
    assert table.pick("flow-x") == table.pick("flow-x")


def test_maglev_minimal_disruption_on_failure():
    backends = [f"b{i}" for i in range(5)]
    table = MaglevTable(backends, table_size=503)
    flows = [f"flow{i}" for i in range(300)]
    before = {f: table.pick(f) for f in flows}
    table.remove_backend("b3")
    moved = sum(1 for f in flows
                if before[f] != "b3" and table.pick(f) != before[f])
    # consistent hashing: flows not owned by the failed backend mostly stay
    assert moved / len(flows) < 0.25


# -- pFabric --------------------------------------------------------------------------------------

def test_pfabric_srpt_order():
    sched = PFabricScheduler()
    sched.enqueue(QueuedPacket(flow_id=1, remaining_bytes=5000))
    sched.enqueue(QueuedPacket(flow_id=2, remaining_bytes=100))
    sched.enqueue(QueuedPacket(flow_id=3, remaining_bytes=2000))
    assert sched.dequeue().flow_id == 2
    assert sched.dequeue().flow_id == 3
    assert sched.dequeue().flow_id == 1
    assert sched.dequeue() is None


def test_pfabric_fifo_within_same_size():
    sched = PFabricScheduler()
    sched.enqueue(QueuedPacket(flow_id=1, remaining_bytes=100, payload="first"))
    sched.enqueue(QueuedPacket(flow_id=2, remaining_bytes=100, payload="second"))
    assert sched.dequeue().payload == "first"


@given(st.lists(st.integers(min_value=1, max_value=10_000), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_pfabric_dequeues_in_nondecreasing_size(sizes):
    sched = PFabricScheduler()
    for i, s in enumerate(sizes):
        sched.enqueue(QueuedPacket(flow_id=i, remaining_bytes=s))
    out = []
    while len(sched):
        out.append(sched.dequeue().remaining_bytes)
    assert out == sorted(sizes)


# -- naive Bayes -------------------------------------------------------------------------------------

def test_nbayes_learns_separable_classes():
    clf = NaiveBayesClassifier(["web", "bulk"], FEATURE_CARDINALITIES)
    for _ in range(50):
        clf.train(packet_features(100, 1.0, 443), "web")
        clf.train(packet_features(1400, 100.0, 50000), "bulk")
    assert clf.classify(packet_features(120, 2.0, 443)) == "web"
    assert clf.classify(packet_features(1300, 80.0, 40000)) == "bulk"


def test_nbayes_validates_features():
    clf = NaiveBayesClassifier(["a"], (4,))
    with pytest.raises(ValueError):
        clf.train([9], "a")
    with pytest.raises(ValueError):
        clf.classify([1, 2])


# -- chain replication ---------------------------------------------------------------------------------

def test_chain_write_propagates_read_at_tail():
    chain = ReplicationChain(["r1", "r2", "r3"])
    hops = chain.write("k", "v")
    assert hops == 3
    assert chain.read("k") == "v"
    assert chain.consistent("k")


def test_chain_survives_node_failure():
    chain = ReplicationChain(["r1", "r2", "r3"])
    chain.write("k", "v")
    chain.fail_node("r2")
    assert len(chain) == 2
    assert chain.read("k") == "v"
    chain.write("k2", "v2")
    assert chain.consistent("k2")


def test_chain_tail_failure_promotes_predecessor():
    chain = ReplicationChain(["r1", "r2"])
    chain.write("k", "v")
    chain.fail_node("r2")
    assert chain.tail.name == "r1"
    assert chain.read("k") == "v"


def test_chain_cannot_fail_last_replica():
    chain = ReplicationChain(["r1"])
    with pytest.raises(RuntimeError):
        chain.fail_node("r1")


def test_workload_registry_complete():
    assert len(WORKLOAD_IMPLEMENTATIONS) == 10  # echo is the 11th (baseline)
