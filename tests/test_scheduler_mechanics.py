"""Focused tests for the hybrid scheduler's adaptation mechanics."""

import pytest

from repro.core import Actor, SchedulerConfig
from repro.core.actor import Location
from repro.experiments.testbed import make_testbed
from repro.nic import LIQUIDIO_CN2350, STINGRAY_PS225, WorkloadProfile
from repro.sim import Rng, Timeout


def _service_handler(service_us):
    def handler(actor, msg, ctx):
        yield Timeout(service_us)
        if msg.packet is not None:
            ctx.reply(msg, size=64)
    return handler


def _build(bed, config, actors):
    server = bed.add_server("server", LIQUIDIO_CN2350, config=config)
    for name, service in actors:
        actor = Actor(name, _service_handler(service), concurrent=True,
                      profile=WorkloadProfile(name, service, 1.2, 0.8))
        server.runtime.register_actor(actor, steering_keys=[name])
    return server


def test_downgrade_picks_highest_dispersion_actor():
    bed = make_testbed()
    config = SchedulerConfig(tail_thresh_us=8.0, adapt_cooldown_us=100.0,
                             migration_enabled=False, autoscale=True)
    server = _build(bed, config, [("short", 3.0), ("long", 80.0)])
    client = bed.add_client("client")
    rng = Rng(1)

    def payload(i):
        return None

    # mixed traffic: the long actor inflates waits
    gen_short = client.open_loop(dst="server", rate_mpps=0.9, size=256,
                                 rng=rng)
    gen_long = client.open_loop(dst="server", rate_mpps=0.08, size=256,
                                rng=rng.fork(2))
    # steer the two streams to their actors
    runtime = server.runtime
    orig = runtime.on_packet
    toggle = {"n": 0}

    def routed(packet):
        toggle["n"] += 1
        packet.kind = "long" if toggle["n"] % 10 == 0 else "short"
        orig(packet)

    server.nic.packet_handler = routed
    bed.sim.run(until=30_000.0)
    gen_short.stop()
    gen_long.stop()
    sched = runtime.nic_scheduler
    long_actor = runtime.actors.lookup("long")
    short_actor = runtime.actors.lookup("short")
    assert sched.downgrades >= 1
    # the long (high dispersion) actor lands in DRR before the short one
    assert long_actor.is_drr or long_actor.location is Location.HOST
    assert not short_actor.is_drr or long_actor.is_drr


def test_upgrade_returns_actor_when_tail_recovers():
    bed = make_testbed()
    config = SchedulerConfig(tail_thresh_us=20.0, adapt_cooldown_us=100.0,
                             migration_enabled=False, autoscale=True)
    server = _build(bed, config, [("svc", 30.0)])
    runtime = server.runtime
    client = bed.add_client("client")
    gen = client.open_loop(dst="server", rate_mpps=0.35, size=256, rng=Rng(2))

    def routed(packet, orig=runtime.on_packet):
        packet.kind = "svc"
        orig(packet)

    server.nic.packet_handler = routed
    bed.sim.run(until=20_000.0)
    gen.stop()
    # after the burst, waits recover; the actor should be upgraded back
    bed.sim.run(until=60_000.0)
    actor = runtime.actors.lookup("svc")
    sched = runtime.nic_scheduler
    if sched.downgrades:
        assert sched.upgrades >= 1
        assert not actor.is_drr
        assert not sched.drr_runnable


def test_autoscale_grows_and_shrinks_drr_group():
    bed = make_testbed()
    config = SchedulerConfig(tail_thresh_us=10.0, adapt_cooldown_us=50.0,
                             migration_enabled=False, autoscale=True,
                             util_window_us=300.0)
    server = _build(bed, config, [("heavy", 60.0)])
    runtime = server.runtime
    client = bed.add_client("client")
    gen = client.open_loop(dst="server", rate_mpps=0.18, size=256, rng=Rng(3))

    def routed(packet, orig=runtime.on_packet):
        packet.kind = "heavy"
        orig(packet)

    server.nic.packet_handler = routed
    bed.sim.run(until=30_000.0)
    sched = runtime.nic_scheduler
    grew = sched.drr_cores()
    assert sched.core_moves >= 1
    assert grew >= 1
    # core 0 is the management core and must stay FCFS
    assert sched.core_mode[0] == "fcfs"
    gen.stop()
    bed.sim.run(until=90_000.0)
    # with traffic gone the DRR group should have collapsed
    assert sched.drr_cores() <= grew


def test_off_path_stingray_uses_software_queue():
    bed = make_testbed(bandwidth_gbps=25)
    server = bed.add_server("server", STINGRAY_PS225,
                            config=SchedulerConfig(migration_enabled=False))
    assert not server.nic.traffic_manager.hardware
    from repro.nic.calibration import SW_SHARED_QUEUE_SYNC_US
    assert server.nic.traffic_manager.dequeue_sync_us == SW_SHARED_QUEUE_SYNC_US

    actor = Actor("echo", _service_handler(2.0), concurrent=True,
                  profile=WorkloadProfile("echo", 2.0, 1.2, 0.5))
    server.runtime.register_actor(actor, steering_keys=["data"])
    client = bed.add_client("client")
    gen = client.closed_loop(dst="server", clients=4, size=256)
    bed.sim.run(until=5_000.0)
    gen.stop()
    assert gen.completed > 100


def test_min_fcfs_cores_respected():
    bed = make_testbed()
    config = SchedulerConfig(tail_thresh_us=1.0, adapt_cooldown_us=10.0,
                             migration_enabled=False, autoscale=True,
                             util_window_us=200.0, min_fcfs_cores=2)
    server = _build(bed, config, [("a", 40.0), ("b", 40.0)])
    runtime = server.runtime
    client = bed.add_client("client")
    toggle = {"n": 0}

    def routed(packet, orig=runtime.on_packet):
        toggle["n"] += 1
        packet.kind = "a" if toggle["n"] % 2 else "b"
        orig(packet)

    server.nic.packet_handler = routed
    gen = client.open_loop(dst="server", rate_mpps=0.27, size=256, rng=Rng(4))
    bed.sim.run(until=40_000.0)
    gen.stop()
    assert runtime.nic_scheduler.fcfs_cores() >= 2
