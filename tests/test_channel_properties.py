"""Property-based tests for the host↔NIC ring protocol."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Message, Ring
from repro.nic import DmaEngine
from repro.sim import Simulator


@given(st.lists(st.integers(min_value=16, max_value=2048), min_size=1,
                max_size=60),
       st.integers(min_value=4, max_value=64))
@settings(max_examples=50, deadline=None)
def test_ring_preserves_fifo_order_and_loses_nothing(sizes, slots):
    """Whatever fits in the ring arrives exactly once, in order."""
    sim = Simulator()
    ring = Ring(sim, DmaEngine(sim), slots=slots)
    sent = []
    for i, size in enumerate(sizes):
        if ring.full:
            break
        msg = Message(target=f"m{i}", size=size)
        ring.produce(msg)
        sent.append(msg)
    sim.run()
    received = []
    while True:
        msg = ring.poll()
        if msg is None:
            break
        received.append(msg)
    assert [m.msg_id for m in received] == [m.msg_id for m in sent]


@given(st.integers(min_value=4, max_value=64),
       st.integers(min_value=1, max_value=200))
@settings(max_examples=50, deadline=None)
def test_ring_slot_accounting_never_goes_negative(slots, rounds):
    """Producer free-slot view stays within [0, slots] under any
    interleaving of produce/poll."""
    sim = Simulator()
    ring = Ring(sim, DmaEngine(sim), slots=slots)
    import random
    rnd = random.Random(rounds)
    for _ in range(rounds):
        if not ring.full and rnd.random() < 0.6:
            ring.produce(Message(target="x", size=64))
        else:
            sim.run()
            ring.poll()
        assert 0 <= ring.producer_view_free <= slots
    sim.run()
    drained = 0
    while ring.poll() is not None:
        drained += 1
    assert ring.consumed == ring.produced


@given(st.lists(st.booleans(), min_size=1, max_size=40))
@settings(max_examples=50, deadline=None)
def test_ring_checksum_filters_exactly_corrupted_messages(corruptions):
    sim = Simulator()
    ring = Ring(sim, DmaEngine(sim), slots=128)
    for i, corrupt in enumerate(corruptions):
        ring.produce(Message(target=f"m{i}", size=64), corrupt=corrupt)
    sim.run()
    delivered = 0
    polled = 0
    while polled < len(corruptions):
        msg = ring.poll()
        polled += 1
        if msg is not None:
            delivered += 1
    assert delivered == sum(1 for c in corruptions if not c)
    assert ring.checksum_failures == sum(corruptions)
