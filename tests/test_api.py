"""Tests for the Table-4 public API facade (repro.core.api)."""

import pytest

from repro.core import Location, Message, api
from repro.core.actor import MigrationState
from repro.experiments.testbed import make_testbed
from repro.nic import LIQUIDIO_CN2350, WorkloadProfile
from repro.core import SchedulerConfig
from repro.sim import spawn


def _echo(actor, msg, ctx):
    yield ctx.compute(us=1.0)
    if msg.packet is not None:
        ctx.reply(msg, size=msg.size)


@pytest.fixture
def runtime():
    bed = make_testbed()
    server = bed.add_server("server", LIQUIDIO_CN2350,
                            config=SchedulerConfig(migration_enabled=False))
    return bed, server.runtime


def test_actor_create_register_delete(runtime):
    bed, rt = runtime
    actor = api.actor_create("svc", _echo,
                             profile=WorkloadProfile("svc", 1.0, 1.2, 0.5))
    api.actor_register(rt, actor, steering_keys=["svc", "data"])
    assert rt.actors.lookup("svc") is actor
    assert rt.dispatch_table["data"] == "svc"
    api.actor_delete(rt, "svc")
    assert rt.actors.lookup("svc") is None
    assert "data" not in rt.dispatch_table


def test_actor_init_runs_init_handler(runtime):
    bed, rt = runtime
    inits = []

    def init(actor, ctx):
        inits.append(actor.name)

    actor = api.actor_create("svc", _echo, init_handler=init)
    api.actor_register(rt, actor)
    assert inits == ["svc"]
    api.actor_init(rt, actor)
    assert inits == ["svc", "svc"]


def test_actor_migrate_roundtrip(runtime):
    bed, rt = runtime
    actor = api.actor_create("svc", _echo)
    api.actor_register(rt, actor)
    api.dmo_malloc(rt, "svc", 4096, data="state")

    def roundtrip():
        yield from api.actor_migrate(rt, "svc")
        assert actor.location is Location.HOST
        yield from api.actor_migrate(rt, "svc")

    spawn(bed.sim, roundtrip())
    bed.sim.run(until=10_000.0)
    assert actor.location is Location.NIC
    assert actor.migration_state is MigrationState.RUNNING


def test_actor_migrate_unknown_raises(runtime):
    bed, rt = runtime
    with pytest.raises(KeyError):
        api.actor_migrate(rt, "ghost")


def test_dmo_api_surface(runtime):
    bed, rt = runtime
    actor = api.actor_create("svc", _echo)
    api.actor_register(rt, actor)
    a = api.dmo_malloc(rt, "svc", 128, data="A")
    b = api.dmo_malloc(rt, "svc", 128, data="B")
    api.dmo_mmcpy(rt, "svc", b.object_id, a.object_id)
    assert rt.dmo.read("svc", b.object_id) == "A"
    api.dmo_mmset(rt, "svc", b.object_id, "Z")
    assert rt.dmo.read("svc", b.object_id) == "Z"
    api.dmo_mmmove(rt, "svc", a.object_id, b.object_id)
    assert rt.dmo.read("svc", a.object_id) == "Z"
    assert rt.dmo.read("svc", b.object_id) is None
    api.dmo_migrate(rt, "svc", a.object_id, Location.HOST)
    assert rt.dmo.tables[Location.HOST].get(a.object_id) is not None
    api.dmo_free(rt, "svc", a.object_id)


def test_msg_ring_api(runtime):
    bed, rt = runtime
    channel = api.msg_init(rt, slots=16)
    api.msg_write(channel, Message(target="t", size=64), side="nic")
    bed.sim.run(until=10.0)
    msg = api.msg_read(channel, side="host")
    assert msg is not None and msg.target == "t"
    assert api.msg_read(channel, side="host") is None


def test_nstack_api(runtime):
    bed, rt = runtime
    received = []
    bed.network.attach("peer", lambda p: received.append(p))
    wqe = api.nstack_new_wqe("server", "peer", 256, payload="ping",
                             kind="data")
    api.nstack_hdr_cap(wqe, flow_id=7, ttl=64)
    assert wqe.flow_id == 7
    assert wqe.meta["ttl"] == 64
    api.nstack_send(rt, wqe)
    bed.sim.run(until=10.0)
    assert received and received[0].payload == "ping"


def test_nstack_get_wqe_roundtrip():
    pkt = api.nstack_new_wqe("a", "b", 64)
    msg = Message(target="x", packet=pkt)
    assert api.nstack_get_wqe(msg) is pkt


def test_runtime_snapshot(runtime):
    from repro.core import snapshot
    bed, rt = runtime
    actor = api.actor_create("svc", _echo,
                             profile=WorkloadProfile("svc", 1.0, 1.2, 0.5))
    api.actor_register(rt, actor, steering_keys=["data"])
    from repro.net import Packet
    bed.network.attach("client", lambda p: None)
    for i in range(5):
        bed.sim.call_at(i * 10.0, bed.network.send,
                        Packet("client", "server", 128))
    bed.sim.run(until=1_000.0)
    snap = snapshot(rt)
    assert snap.node == "server"
    assert snap.scheduler.ops_completed >= 5
    assert snap.actor("svc").requests_seen >= 5
    assert snap.placement() == {"svc": "nic"}
    assert "actor svc" in snap.summary()
    with pytest.raises(KeyError):
        snap.actor("ghost")
