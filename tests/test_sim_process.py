"""Unit tests for generator processes, signals, stores and resources."""

import pytest

from repro.sim import (
    Resource,
    Signal,
    SimulationError,
    Simulator,
    Store,
    Timeout,
    all_of,
    spawn,
)


def test_timeout_advances_virtual_time():
    sim = Simulator()
    marks = []

    def body():
        marks.append(sim.now)
        yield Timeout(5.0)
        marks.append(sim.now)
        yield Timeout(2.5)
        marks.append(sim.now)

    spawn(sim, body())
    sim.run()
    assert marks == [0.0, 5.0, 7.5]


def test_process_join_returns_result():
    sim = Simulator()
    results = []

    def worker():
        yield Timeout(3.0)
        return "done"

    def parent():
        value = yield spawn(sim, worker())
        results.append((sim.now, value))

    spawn(sim, parent())
    sim.run()
    assert results == [(3.0, "done")]


def test_joining_finished_process_resumes_immediately():
    sim = Simulator()
    results = []

    def worker():
        return 42
        yield  # pragma: no cover

    def parent():
        proc = spawn(sim, worker())
        yield Timeout(10.0)
        value = yield proc
        results.append(value)

    spawn(sim, parent())
    sim.run()
    assert results == [42]


def test_signal_wakes_all_waiters():
    sim = Simulator()
    sig = Signal(sim)
    woken = []

    def waiter(tag):
        value = yield sig
        woken.append((tag, value, sim.now))

    spawn(sim, waiter("a"))
    spawn(sim, waiter("b"))
    sim.call_at(4.0, sig.trigger, "payload")
    sim.run()
    assert sorted(woken) == [("a", "payload", 4.0), ("b", "payload", 4.0)]


def test_signal_double_trigger_is_error():
    sim = Simulator()
    sig = Signal(sim)
    sig.trigger()
    with pytest.raises(SimulationError):
        sig.trigger()


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((item, sim.now))

    spawn(sim, consumer())
    sim.call_at(6.0, store.put_nowait, "pkt")
    sim.run()
    assert got == [("pkt", 6.0)]


def test_store_is_fifo_for_items_and_getters():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(tag):
        item = yield store.get()
        got.append((tag, item))

    spawn(sim, consumer("first"))
    spawn(sim, consumer("second"))
    store.put_nowait(1)
    store.put_nowait(2)
    sim.run()
    assert got == [("first", 1), ("second", 2)]


def test_bounded_store_blocks_putter():
    sim = Simulator()
    store = Store(sim, capacity=1)
    log = []

    def producer():
        yield store.put("a")
        log.append(("put-a", sim.now))
        yield store.put("b")
        log.append(("put-b", sim.now))

    def consumer():
        yield Timeout(5.0)
        item = yield store.get()
        log.append(("got", item, sim.now))

    spawn(sim, producer())
    spawn(sim, consumer())
    sim.run()
    assert ("put-a", 0.0) in log
    put_b = [entry for entry in log if entry[0] == "put-b"]
    assert put_b and put_b[0][1] == 5.0


def test_store_put_nowait_full_raises():
    sim = Simulator()
    store = Store(sim, capacity=1)
    store.put_nowait("x")
    with pytest.raises(SimulationError):
        store.put_nowait("y")


def test_store_try_get_nowait():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get_nowait() is None
    store.put_nowait(9)
    assert store.try_get_nowait() == 9


def test_resource_serializes_access():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    spans = []

    def user(tag, hold):
        yield res.acquire()
        start = sim.now
        yield Timeout(hold)
        res.release()
        spans.append((tag, start, sim.now))

    spawn(sim, user("a", 4.0))
    spawn(sim, user("b", 2.0))
    sim.run()
    assert spans == [("a", 0.0, 4.0), ("b", 4.0, 6.0)]


def test_resource_capacity_allows_parallelism():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    ends = []

    def user(hold):
        yield res.acquire()
        yield Timeout(hold)
        res.release()
        ends.append(sim.now)

    for _ in range(2):
        spawn(sim, user(3.0))
    sim.run()
    assert ends == [3.0, 3.0]


def test_resource_release_without_acquire_raises():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(SimulationError):
        res.release()


def test_all_of_waits_for_every_process():
    sim = Simulator()
    out = []

    def worker(delay, value):
        yield Timeout(delay)
        return value

    procs = [spawn(sim, worker(d, d * 10)) for d in (1.0, 3.0, 2.0)]
    done = all_of(sim, procs)

    def waiter():
        values = yield done
        out.append((sim.now, values))

    spawn(sim, waiter())
    sim.run()
    assert out == [(3.0, [10.0, 30.0, 20.0])]


def test_kill_stops_process():
    sim = Simulator()
    marks = []

    def body():
        yield Timeout(1.0)
        marks.append("first")
        yield Timeout(100.0)
        marks.append("never")

    proc = spawn(sim, body())
    sim.call_at(2.0, proc.kill)
    sim.run()
    assert marks == ["first"]
    assert not proc.alive
