"""Direct unit tests of NicScheduler against a scripted work queue."""

import pytest

from repro.core.actor import Actor, ActorTable, Location, Message
from repro.core.scheduler import NicScheduler, SchedulerConfig, WorkItem
from repro.nic import TrafficManager
from repro.sim import Simulator, Timeout


class Harness:
    """Minimal scheduler fixture: real traffic manager, scripted actors."""

    def __init__(self, cores=4, config=None, quantum=5.0):
        self.sim = Simulator()
        self.queue = TrafficManager(self.sim, hardware=True)
        self.table = ActorTable()
        self.executed = []
        self.scheduler = NicScheduler(
            self.sim,
            num_cores=cores,
            work_queue=self.queue,
            actor_table=self.table,
            executor=self._executor,
            config=config or SchedulerConfig(migration_enabled=False,
                                             downgrade_enabled=False,
                                             autoscale=False),
            quantum_fn=lambda actor: quantum,
        )

    def add_actor(self, name, service_us, concurrent=True):
        def handler(actor, msg, ctx):
            yield Timeout(service_us)

        actor = Actor(name, handler, concurrent=concurrent)
        self.table.register(actor)
        return actor

    def _executor(self, core_id, actor, msg):
        yield from actor.exec_handler(actor, msg, None)
        self.executed.append((self.sim.now, actor.name, msg.msg_id))

    def push(self, actor_name, at=None):
        msg = Message(target=actor_name)
        msg.meta["nic_arrival"] = at if at is not None else self.sim.now
        item = WorkItem(message=msg, arrived_at=msg.meta["nic_arrival"])
        if at is None:
            self.queue.push(item)
        else:
            self.sim.call_at(at, self.queue.push, item)
        return msg


def test_fcfs_runs_to_completion_in_arrival_order():
    h = Harness(cores=1)
    h.add_actor("a", service_us=10.0)
    first = h.push("a", at=0.0)
    second = h.push("a", at=1.0)
    h.sim.run(until=100.0)
    h.scheduler.stop()
    assert [m for _, _, m in h.executed] == [first.msg_id, second.msg_id]
    assert h.scheduler.ops_completed == 2


def test_drr_actor_requests_go_to_mailbox_and_run_on_drr_core():
    h = Harness(cores=2)
    actor = h.add_actor("d", service_us=8.0)
    actor.is_drr = True
    actor.service.record(8.0)
    h.scheduler.drr_runnable.append(actor)
    h.scheduler.core_mode[1] = "drr"
    for _ in range(3):
        h.push("d")
    h.sim.run(until=200.0)
    h.scheduler.stop()
    assert len(h.executed) == 3
    # served either by the DRR core or by a work-stealing FCFS core
    assert (h.scheduler.drr_tracker.count
            + h.scheduler.fcfs_tracker.count) >= 3
    assert not actor.mailbox


def test_forward_items_counted_separately():
    h = Harness(cores=1)
    done = []
    h.queue.push(WorkItem(forward_cost_us=0.5,
                          forward_action=lambda: done.append(1),
                          arrived_at=0.0))
    h.sim.run(until=10.0)
    h.scheduler.stop()
    assert done == [1]
    assert h.scheduler.forwards_completed == 1
    assert h.scheduler.ops_completed == 0


def test_deficit_accumulates_before_heavy_execution():
    # quantum 5µs, service 20µs → the DRR core must scan ≥4 rounds before
    # the first execution; lighter work on the FCFS core proceeds meanwhile
    h = Harness(cores=2, quantum=5.0)
    heavy = h.add_actor("heavy", service_us=20.0)
    heavy.is_drr = True
    heavy.service.record(20.0)
    h.scheduler.drr_runnable.append(heavy)
    h.scheduler.core_mode[1] = "drr"
    h.add_actor("light", service_us=1.0)
    h.push("heavy", at=0.0)
    for i in range(5):
        h.push("light", at=0.5 * i)
    h.sim.run(until=100.0)
    h.scheduler.stop()
    light_times = [t for t, name, _ in h.executed if name == "light"]
    heavy_times = [t for t, name, _ in h.executed if name == "heavy"]
    assert len(light_times) == 5 and len(heavy_times) == 1
    # all light requests finish before the heavy one
    assert max(light_times) < heavy_times[0]


def test_exclusive_actor_requeues_contended_work():
    h = Harness(cores=4)
    h.add_actor("x", service_us=10.0, concurrent=False)
    for _ in range(4):
        h.push("x")
    h.sim.run(until=200.0)
    h.scheduler.stop()
    # all four execute despite the exec_lock, strictly serialized
    times = sorted(t for t, _, _ in h.executed)
    assert len(times) == 4
    for a, b in zip(times, times[1:]):
        assert b - a >= 10.0 - 1e-6


def test_unknown_target_dropped_without_crash():
    h = Harness(cores=1)
    h.push("ghost")
    h.sim.run(until=10.0)
    h.scheduler.stop()
    assert h.executed == []


def test_wait_statistic_measures_queueing_not_service():
    h = Harness(cores=1)
    h.add_actor("a", service_us=50.0)
    h.push("a", at=0.0)   # served immediately: wait ≈ 0
    h.push("a", at=1.0)   # waits ~49µs behind the first
    h.sim.run(until=300.0)
    h.scheduler.stop()
    tracker = h.scheduler.fcfs_tracker
    assert tracker.count == 2
    # EWMA mean of (≈0, ≈49) stays well below the 50µs service time
    assert tracker.mu < 30.0
