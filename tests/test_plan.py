"""Tests for the PlanPlane placement compiler (``repro.plan``)."""

import dataclasses
import json

import pytest

from repro.experiments.applications import deployment_spec
from repro.nic import LIQUIDIO_CN2350, host_for
from repro.plan import (
    ActorPlacement,
    PlacementSpec,
    PlanError,
    ShardAssignment,
    apply_placement,
    compute_plan,
    from_dict,
    from_json,
    profile_scenario,
    solve,
    to_json,
)
from repro.plan.profile import ActorProfile, PlanProfile
from repro.plan.solver import APP_ACTORS, NIC_UTIL_CAP
from repro.scenario import from_json as spec_from_json
from repro.scenario import run_scenario
from repro.scenario import to_json as spec_to_json


def _small_spec(app="rta", duration_us=4_000.0):
    return deployment_spec("ipipe", app, LIQUIDIO_CN2350,
                           packet_size=512, clients=8,
                           duration_us=duration_us, seed=3)


# -- determinism ---------------------------------------------------------------

def test_same_profile_solves_to_byte_identical_plan():
    spec = _small_spec()
    profile = profile_scenario(spec, duration_us=1_000.0)
    first, second = solve(profile, spec), solve(profile, spec)
    assert to_json(first) == to_json(second)
    assert first.fingerprint() == second.fingerprint()


def test_reprofiling_is_deterministic_end_to_end():
    spec = _small_spec()
    plans = [compute_plan(spec, profile_duration_us=1_000.0)
             for _ in range(2)]
    assert plans[0].profile_fingerprint == plans[1].profile_fingerprint
    assert to_json(plans[0]) == to_json(plans[1])


# -- capacity constraints ------------------------------------------------------

def _overload_profile(spec, load_per_actor=5.0):
    """A synthetic profile whose NIC-resident load exceeds the cap on
    every server, so the solver is forced to spill actors host-side."""
    rows = []
    for server in spec.server_names():
        for actor in APP_ACTORS["rta"]:
            rows.append(ActorProfile(
                server=server, actor=actor, device="nic", pinned=False,
                rate_per_us=1.0, service_us=load_per_actor,
                request_bytes=512.0))
    return PlanProfile(scenario=spec.name, seed=spec.seed,
                       duration_us=1_000.0, actors=tuple(rows))


def test_solver_respects_nic_capacity_cap():
    spec = _small_spec()
    nic_cores = float(LIQUIDIO_CN2350.cores)
    # 3 actors x 5µs x 1/µs = 15 busy cores offered per 12-core NIC:
    # well past the 0.7 cap, so a pure-NIC placement is infeasible
    profile = _overload_profile(spec)
    plan = solve(profile, spec)
    assert any(p.device == "host" for p in plan.actors)
    busy = {}
    for p in plan.actors:
        if p.device == "nic":
            # synthetic rows: nic service time == measured service time
            busy[p.server] = busy.get(p.server, 0.0) + 1.0 * 5.0
    for server, b in busy.items():
        assert b / nic_cores <= NIC_UTIL_CAP + 1e-9, server


def test_solver_never_moves_pinned_actors():
    spec = _small_spec("rkv")
    profile = profile_scenario(spec, duration_us=1_000.0)
    pinned = {(r.server, r.actor): r.device
              for r in profile.actors if r.pinned}
    assert pinned, "rkv profiles at least one pinned storage actor"
    plan = solve(profile, spec)
    for p in plan.actors:
        want = pinned.get((p.server, p.actor))
        if want is not None:
            assert p.device == want


# -- PlacementSpec serialisation ----------------------------------------------

def _tiny_plan():
    return PlacementSpec(
        scenario="toy", seed=7, profile_fingerprint="cafe1234",
        objective_p99_us=12.5,
        assignments=(ShardAssignment("rta", 0, ("s0", "s1", "s2")),),
        actors=(ActorPlacement("s0", "filter", "nic"),
                ActorPlacement("s0", "ranker", "host")))


def test_plan_json_round_trip_preserves_fingerprint():
    plan = _tiny_plan()
    again = from_json(to_json(plan))
    assert again == plan
    assert again.fingerprint() == plan.fingerprint()


def test_plan_unknown_fields_rejected_at_every_level():
    base = json.loads(to_json(_tiny_plan()))
    for mutate in (
        lambda d: d.update(surprise=1),
        lambda d: d["assignments"][0].update(surprise=1),
        lambda d: d["actors"][0].update(surprise=1),
    ):
        data = json.loads(json.dumps(base))
        mutate(data)
        with pytest.raises(PlanError, match="unknown field"):
            from_dict(data)


def test_plan_validate_lists_every_problem():
    plan = dataclasses.replace(
        _tiny_plan(),
        actors=(ActorPlacement("s0", "filter", "gpu"),
                ActorPlacement("s0", "filter", "gpu")),
        objective_p99_us=-1.0)
    with pytest.raises(PlanError) as err:
        plan.validate()
    text = str(err.value)
    assert "unknown device" in text
    assert "placed twice" in text
    assert "objective_p99_us" in text


# -- the ScenarioSpec transform ------------------------------------------------

def test_apply_placement_is_stable_and_round_trips():
    spec = _small_spec()
    plan = compute_plan(spec, profile_duration_us=1_000.0)
    planned = apply_placement(plan, spec)
    planned.validate()
    # deterministic transform: byte-identical spec JSON both times
    assert spec_to_json(planned) == spec_to_json(apply_placement(plan, spec))
    # the placement field survives the spec's own JSON round trip
    # (canonical JSON, not dataclass equality: nic specs deserialize
    # to their dict form)
    text = spec_to_json(planned)
    reloaded = spec_from_json(text)
    assert spec_to_json(reloaded) == text
    assert tuple(a.placement for a in reloaded.apps) \
        == tuple(a.placement for a in planned.apps)


def test_apply_placement_rejects_a_foreign_plan():
    spec = _small_spec()
    plan = dataclasses.replace(
        compute_plan(spec, profile_duration_us=1_000.0),
        scenario="some-other-scenario")
    with pytest.raises(PlanError, match="plan is for scenario"):
        apply_placement(plan, spec)


def test_planned_run_replays_bit_identically():
    spec = _small_spec(duration_us=3_000.0)
    plan = compute_plan(spec, profile_duration_us=1_000.0)
    planned = apply_placement(plan, spec)
    first = run_scenario(planned)
    second = run_scenario(planned)
    assert first.fingerprint() == second.fingerprint()


# -- CLI -----------------------------------------------------------------------

def test_plan_cli_exit_codes(tmp_path, capsys, monkeypatch):
    from repro.cli import main
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))

    # 2: usage error (argparse)
    with pytest.raises(SystemExit) as exit_info:
        main(["plan"])
    assert exit_info.value.code == 2

    # 1: unknown scenario
    assert main(["plan", "no-such-scenario"]) == 1
    assert "plan failed" in capsys.readouterr().err

    # 0: plan a shipped scenario and write the artifact
    out = tmp_path / "plan.json"
    assert main(["plan", "multi-rack-rkv", "--out", str(out),
                 "--profile-us", "500", "--no-cache"]) == 0
    assert out.stat().st_size > 0
    emitted = from_json(out.read_text())
    assert emitted.validate() is emitted

    # 0: the emitted plan re-validates against its scenario from disk
    assert main(["plan", "multi-rack-rkv", "--validate", str(out)]) == 0

    # 1: a corrupt plan fails validation
    bad = tmp_path / "bad.json"
    data = json.loads(out.read_text())
    data["actors"][0]["device"] = "gpu"
    bad.write_text(json.dumps(data))
    assert main(["plan", "multi-rack-rkv", "--validate", str(bad)]) == 1
    assert "plan failed" in capsys.readouterr().err
