"""Cross-cutting invariant tests over substrate components."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.rkv import LsmTree
from repro.core import DmoManager, Location
from repro.net import Link, Packet, serialization_delay_us
from repro.nic import DmaEngine, RdmaEngine
from repro.sim import Rng, Simulator, Timeout, spawn


# -- link FIFO invariant ---------------------------------------------------------

@given(st.lists(st.integers(min_value=64, max_value=1500), min_size=1,
                max_size=40))
@settings(max_examples=40, deadline=None)
def test_link_delivers_in_fifo_order(sizes):
    sim = Simulator()
    delivered = []
    link = Link(sim, 10, receiver=lambda p: delivered.append(p.payload),
                propagation_us=0.3)
    for i, size in enumerate(sizes):
        link.transmit(Packet("a", "b", size, payload=i))
    sim.run()
    assert delivered == list(range(len(sizes)))


@given(st.lists(st.integers(min_value=64, max_value=1500), min_size=1,
                max_size=30))
@settings(max_examples=40, deadline=None)
def test_link_never_exceeds_capacity(sizes):
    """Total delivery time ≥ sum of serialization delays (no overlap)."""
    sim = Simulator()
    last = {}
    link = Link(sim, 25, receiver=lambda p: last.update(t=sim.now),
                propagation_us=0.0)
    for size in sizes:
        link.transmit(Packet("a", "b", size))
    sim.run()
    floor = sum(serialization_delay_us(25, max(s, 64)) for s in sizes)
    assert last["t"] >= floor - 1e-9


# -- DMA/RDMA model sanity ----------------------------------------------------------

@given(st.integers(min_value=1, max_value=4096))
@settings(max_examples=60, deadline=None)
def test_dma_latency_monotone_and_positive(nbytes):
    dma = DmaEngine(Simulator())
    assert 0 < dma.read_latency_us(nbytes) <= dma.read_latency_us(nbytes + 64)
    assert 0 < dma.write_latency_us(nbytes) <= dma.write_latency_us(nbytes + 64)


@given(st.integers(min_value=1, max_value=4096))
@settings(max_examples=60, deadline=None)
def test_rdma_never_faster_than_dma(nbytes):
    sim = Simulator()
    dma, rdma = DmaEngine(sim), RdmaEngine(sim)
    assert rdma.read_latency_us(nbytes) >= dma.read_latency_us(nbytes)
    assert rdma.write_throughput_mops(nbytes) <= \
        dma.write_throughput_mops(nbytes) + 1e-9


@given(st.integers(min_value=0, max_value=64 << 20))
@settings(max_examples=40, deadline=None)
def test_bulk_transfer_nonnegative_and_monotone(nbytes):
    dma = DmaEngine(Simulator())
    assert dma.bulk_transfer_us(nbytes) >= 0
    assert dma.bulk_transfer_us(nbytes + 4096) >= dma.bulk_transfer_us(nbytes)


# -- DMO single-copy invariant ------------------------------------------------------

@given(st.lists(st.sampled_from([Location.NIC, Location.HOST]), min_size=1,
                max_size=12))
@settings(max_examples=40, deadline=None)
def test_dmo_object_exists_on_exactly_one_side(moves):
    mgr = DmoManager(region_bytes=1 << 20)
    mgr.create_region("a")
    obj = mgr.malloc("a", 256, data="x")
    for to in moves:
        mgr.migrate("a", obj.object_id, to)
        on_nic = obj.object_id in mgr.tables[Location.NIC]
        on_host = obj.object_id in mgr.tables[Location.HOST]
        assert on_nic != on_host
        assert mgr.read("a", obj.object_id) == "x"


# -- LSM sequence numbers -------------------------------------------------------------

@given(st.lists(st.lists(st.tuples(st.sampled_from("abcd"),
                                   st.binary(min_size=1, max_size=4)),
                         min_size=1, max_size=5),
                min_size=1, max_size=8))
@settings(max_examples=40, deadline=None)
def test_lsm_sequence_numbers_strictly_increase(runs):
    lsm = LsmTree(l0_table_limit=2)
    seqs = []
    for run in runs:
        dedup = {k: v for k, v in run}
        table = lsm.flush_run([(k, v, False) for k, v in sorted(dedup.items())])
        seqs.append(table.sequence)
        lsm.compact_until_stable()
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)


# -- simulator determinism -------------------------------------------------------------

def _chaotic_run(seed):
    sim = Simulator()
    rng = Rng(seed)
    trace = []

    def proc(tag):
        for _ in range(20):
            yield Timeout(rng.exponential(3.0))
            trace.append((tag, round(sim.now, 9)))

    for tag in range(4):
        spawn(sim, proc(tag))
    sim.run()
    return trace


def test_simulation_bitwise_deterministic():
    assert _chaotic_run(7) == _chaotic_run(7)
    assert _chaotic_run(7) != _chaotic_run(8)
