"""The SLO study end-to-end: the breach → load-driven migration →
recovery loop closes, the pulse telemetry folds into the replay
fingerprint, and the grid record has the documented shape."""

import pytest

from repro.experiments.slo_study import run_slo_chaos, slo_point, slo_spec

#: Shrunk run (same shape ``repro check slo-study --quick`` uses): the
#: aggressor still drives a breach, the LoadFeed still migrates, the
#: victim still recovers — in about a second of wall time.
QUICK = dict(duration_us=25_000.0, n_requests=55,
             aggressor_stop_us=20_000.0)


@pytest.fixture(scope="module")
def report():
    return run_slo_chaos(seed=42, **QUICK)


def test_spec_validates_and_declares_the_closed_loop_parts():
    spec = slo_spec()
    spec.validate()
    assert spec.rebalance.on_load
    assert spec.observability.pulse is not None
    assert spec.observability.slos[0].service == "rkv"


def test_breach_migration_recovery_ordering(report):
    assert report.ok, report.invariants
    assert report.lost == 0
    inv = report.invariants
    assert inv["breach_detected"] and inv["migrated_on_load"]
    assert inv["slo_recovered"]
    assert inv["breach_before_move_before_recovery"]
    assert inv["pulse_invariants"]


def test_pulse_telemetry_digest_shape(report):
    pt = report.pulse
    assert pt["samples"] > 0 and pt["series"] > 0
    assert pt["passive_schedules"] == 0
    assert pt["breaches"] >= 1 and pt["recoveries"] >= 1
    kinds = [kind for _, _, kind in pt["slo_transitions"]]
    assert kinds[0] == "breach" and kinds[-1] == "recover"
    # the migration the LoadFeed triggered, with its home and refuge
    (t, home, dst), = pt["load_migrations"]
    assert home == "r0s0" and dst != home and t > 0


def test_replay_is_bit_identical(report):
    again = run_slo_chaos(seed=42, **QUICK)
    assert again.telemetry_fingerprint() == report.telemetry_fingerprint()
    assert again.pulse["store_crc"] == report.pulse["store_crc"]


def test_slo_point_record_is_plain_data(report):
    record = slo_point(seed=42, **QUICK)
    assert record["workload"] == "slo" and record["ok"]
    assert record["pulse"] == report.pulse
    assert record["fingerprint"] == report.telemetry_fingerprint()
    # plain data only: the record must survive a round trip through
    # equality with itself after repr (no live objects smuggled in)
    assert "pulse_plane" not in record and "trace_plane" not in record
