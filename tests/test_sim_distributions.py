"""Tests for seeded distributions and stats trackers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Ewma, LatencyRecorder, LatencyTracker, Rng, UtilizationTracker, ZipfGenerator, percentile


def test_rng_is_deterministic_per_seed():
    a = Rng(123)
    b = Rng(123)
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_rng_fork_independent_streams():
    base = Rng(1)
    fork_a = base.fork(1)
    fork_b = base.fork(2)
    assert [fork_a.random() for _ in range(3)] != [fork_b.random() for _ in range(3)]


def test_exponential_mean_close():
    rng = Rng(9)
    samples = [rng.exponential(32.0) for _ in range(20000)]
    mean = sum(samples) / len(samples)
    assert abs(mean - 32.0) / 32.0 < 0.05


def test_bimodal_values_and_mix():
    rng = Rng(5)
    samples = [rng.bimodal(35.0, 60.0, p_high=0.1) for _ in range(20000)]
    assert set(samples) == {35.0, 60.0}
    frac_high = sum(1 for s in samples if s == 60.0) / len(samples)
    assert abs(frac_high - 0.1) < 0.02


def test_poisson_interarrival_rate():
    rng = Rng(3)
    rate = 0.5  # per µs
    gaps = [rng.poisson_interarrival(rate) for _ in range(20000)]
    assert abs(sum(gaps) / len(gaps) - 1.0 / rate) < 0.1


def test_lognormal_mean():
    rng = Rng(11)
    samples = [rng.lognormal(10.0, sigma=0.5) for _ in range(30000)]
    assert abs(sum(samples) / len(samples) - 10.0) < 0.5


def test_zipf_skews_toward_low_ranks():
    gen = ZipfGenerator(n=1000, theta=0.99, rng=Rng(4))
    draws = [gen.draw() for _ in range(20000)]
    assert all(0 <= d < 1000 for d in draws)
    top10 = sum(1 for d in draws if d < 10) / len(draws)
    assert top10 > 0.3  # heavy head, as zipf(0.99) implies


def test_zipf_large_keyspace_setup_is_fast_and_valid():
    gen = ZipfGenerator(n=1_000_000, theta=0.99, rng=Rng(4))
    draws = [gen.draw() for _ in range(1000)]
    assert all(0 <= d < 1_000_000 for d in draws)


def test_zipf_rejects_bad_parameters():
    with pytest.raises(ValueError):
        ZipfGenerator(n=0)
    with pytest.raises(ValueError):
        ZipfGenerator(n=10, theta=1.5)


def test_percentile_interpolation():
    samples = [1.0, 2.0, 3.0, 4.0]
    assert percentile(samples, 0) == 1.0
    assert percentile(samples, 100) == 4.0
    assert percentile(samples, 50) == 2.5


def test_percentile_empty_raises():
    with pytest.raises(ValueError):
        percentile([], 50)


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200),
       st.floats(min_value=0, max_value=100))
@settings(max_examples=100, deadline=None)
def test_percentile_within_sample_range(samples, p):
    value = percentile(samples, p)
    assert min(samples) <= value <= max(samples)


def test_ewma_converges_to_constant():
    ewma = Ewma(alpha=0.5)
    for _ in range(50):
        ewma.update(10.0)
    assert abs(ewma.get() - 10.0) < 1e-9


def test_ewma_rejects_bad_alpha():
    with pytest.raises(ValueError):
        Ewma(alpha=0.0)


def test_latency_tracker_tail_above_mean():
    tracker = LatencyTracker()
    rng = Rng(2)
    for _ in range(2000):
        tracker.record(rng.exponential(20.0))
    assert tracker.tail > tracker.mu
    assert tracker.sigma > 0


def test_latency_tracker_constant_stream_has_zero_sigma():
    tracker = LatencyTracker()
    for _ in range(100):
        tracker.record(5.0)
    assert tracker.mu == pytest.approx(5.0)
    assert tracker.sigma == pytest.approx(0.0, abs=1e-6)
    assert tracker.tail == pytest.approx(5.0, abs=1e-5)


def test_latency_tracker_mu_plus_3sigma_approximates_p99_for_normalish():
    # For a normal distribution, µ+3σ ≈ P99.87; the paper uses it as a P99
    # proxy.  Check it lands above the true P99 and below the max for a
    # wide lognormal stream.
    tracker = LatencyTracker(alpha=0.05)
    recorder = LatencyRecorder()
    rng = Rng(8)
    for _ in range(5000):
        s = rng.lognormal(30.0, sigma=0.2)
        tracker.record(s)
        recorder.record(s)
    assert tracker.tail == pytest.approx(recorder.p99, rel=0.25)


def test_latency_recorder_percentiles():
    rec = LatencyRecorder("x")
    for v in range(1, 101):
        rec.record(float(v))
    assert rec.mean == pytest.approx(50.5)
    assert rec.p50 == pytest.approx(50.5)
    assert rec.p99 == pytest.approx(99.01)
    assert rec.maximum == 100.0
    assert len(rec) == 100


def test_utilization_tracker_window():
    tracker = UtilizationTracker()
    tracker.add_busy(30.0)
    util = tracker.roll_window(now=100.0)
    assert util == pytest.approx(0.3)
    tracker.add_busy(50.0)
    util = tracker.roll_window(now=200.0)
    assert util == pytest.approx(0.5)
    assert 0.3 < tracker.ewma.get() < 0.5


def test_utilization_caps_at_one():
    tracker = UtilizationTracker()
    tracker.add_busy(500.0)
    assert tracker.roll_window(now=100.0) == 1.0
