"""Tests for NIC memory, accelerators, DMA, RDMA, cost model, traffic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nic import (
    ACCELERATORS,
    AcceleratorBank,
    AccessProfile,
    DmaEngine,
    HOST_XEON_E5_2680,
    LIQUIDIO_CN2350,
    LIQUIDIO_CN2360,
    MemoryHierarchy,
    MICROBENCH_PROFILES,
    NicDram,
    PacketBuffer,
    RdmaEngine,
    Scratchpad,
    STINGRAY_PS225,
    TrafficManager,
    NicSwitch,
    host_speedup,
    time_on_host,
    time_on_nic,
)
from repro.net import Packet
from repro.sim import Simulator, Timeout, spawn


# -- memory hierarchy (Table 2) -------------------------------------------------

def test_pointer_chase_matches_table2_levels():
    mem = MemoryHierarchy.for_nic(LIQUIDIO_CN2350)
    assert mem.chase_latency_ns(16 * 1024) == 8.3          # fits in L1
    assert mem.chase_latency_ns(1 * 1024 * 1024) == 55.8   # fits in L2
    assert mem.chase_latency_ns(64 * 1024 * 1024) == 115.0 # spills to DRAM


def test_host_chase_has_l3_level():
    mem = MemoryHierarchy.for_host(HOST_XEON_E5_2680)
    assert mem.chase_latency_ns(10 * 1024 * 1024) == 22.4
    assert mem.chase_latency_ns(100 * 1024 * 1024) == 62.2


def test_working_set_spill_raises_access_cost():
    # Implication I5: spilling out of the NIC L2 degrades performance.
    mem = MemoryHierarchy.for_nic(LIQUIDIO_CN2350)
    small = AccessProfile(accesses=100, working_set_bytes=1 << 20)
    big = AccessProfile(accesses=100, working_set_bytes=1 << 26)
    assert mem.access_cost_us(big) > mem.access_cost_us(small)


def test_scratchpad_capacity_54_lines_of_128b():
    pad = Scratchpad(54, 128)
    assert pad.capacity_bytes == 6912
    assert pad.reserve(6000)
    assert not pad.reserve(2000)
    pad.release(6000)
    assert pad.free_bytes == pad.capacity_bytes


def test_scratchpad_over_release_raises():
    pad = Scratchpad(54, 128)
    with pytest.raises(ValueError):
        pad.release(1)


def test_packet_buffer_alloc_cost_hw_vs_sw():
    hw = PacketBuffer.for_nic(LIQUIDIO_CN2350)
    sw = PacketBuffer.for_nic(STINGRAY_PS225)
    assert hw.alloc_cost_us < sw.alloc_cost_us


def test_packet_buffer_accounting_and_exhaustion():
    buf = PacketBuffer(capacity_bytes=1000, hardware_managed=True)
    assert buf.allocate(600)
    assert not buf.allocate(600)
    assert buf.failures == 1
    buf.free(600)
    assert buf.allocate(600)


def test_nic_dram_regions_enforce_capacity():
    dram = NicDram(capacity_bytes=1 << 20)
    region = dram.create_region("actor-a", 1 << 19)
    assert region.capacity == 1 << 19
    with pytest.raises(MemoryError):
        dram.create_region("actor-b", 1 << 20)


def test_memory_region_bump_allocation():
    dram = NicDram(capacity_bytes=1 << 20)
    region = dram.create_region("a", 1024)
    first = region.allocate(512)
    second = region.allocate(256)
    assert (first, second) == (0, 512)
    assert region.allocate(512) is None  # over budget
    assert region.contains(700)
    assert not region.contains(4096)


# -- accelerators (Table 3) ------------------------------------------------------

def test_accelerator_profiles_match_table3():
    assert ACCELERATORS["md5"].lat_us_b1 == 5.0
    assert ACCELERATORS["aes"].lat_us_b1 == 2.7
    assert ACCELERATORS["zip"].lat_us_b1 == 190.9
    assert ACCELERATORS["zip"].lat_us_b8 is None


def test_batching_amortizes_invocation_cost():
    crc = ACCELERATORS["crc"]
    assert crc.latency_us(batch=1) > crc.latency_us(batch=8) > crc.latency_us(batch=32)


def test_latency_scales_with_payload():
    aes = ACCELERATORS["aes"]
    assert aes.latency_us(nbytes=2048) == pytest.approx(2 * aes.latency_us(nbytes=1024))


def test_md5_engine_7x_faster_than_host():
    md5 = ACCELERATORS["md5"]
    assert md5.host_software_us / md5.lat_us_b1 == pytest.approx(7.0)


def test_aes_engine_2_5x_faster_than_host():
    aes = ACCELERATORS["aes"]
    assert aes.host_software_us / aes.lat_us_b1 == pytest.approx(2.5)


def test_accelerator_bank_invoke_charges_time():
    sim = Simulator()
    bank = AcceleratorBank(sim, units_per_engine=1)
    done = []

    def user():
        yield from bank.invoke("aes", nbytes=1024)
        done.append(sim.now)

    spawn(sim, user())
    spawn(sim, user())
    sim.run()
    # one unit → serialized invocations at 2.7 µs each
    assert done == [pytest.approx(2.7), pytest.approx(5.4)]
    assert bank.invocations["aes"] == 2


def test_accelerator_bank_unknown_engine():
    bank = AcceleratorBank(Simulator())
    with pytest.raises(KeyError):
        bank.cost_us("quantum")


# -- DMA engine (Figures 7/8) -----------------------------------------------------

def test_dma_nonblocking_latency_flat():
    dma = DmaEngine(Simulator())
    assert dma.read_latency_us(4, blocking=False) == dma.read_latency_us(2048, blocking=False)


def test_dma_blocking_latency_grows_with_payload():
    dma = DmaEngine(Simulator())
    assert dma.write_latency_us(2048) > dma.write_latency_us(64)


def test_dma_2kb_write_reaches_2_1_gb_per_s():
    dma = DmaEngine(Simulator())
    mops = dma.write_throughput_mops(2048)
    assert mops * 2048 / 1e3 == pytest.approx(2.1, abs=0.2)  # GB/s


def test_dma_write_64b_vs_2kb_ratio_8_7x():
    dma = DmaEngine(Simulator())
    gbs_2k = dma.write_throughput_mops(2048) * 2048
    gbs_64 = dma.write_throughput_mops(64) * 64
    assert gbs_2k / gbs_64 == pytest.approx(8.7, abs=1.0)


def test_dma_read_64b_vs_2kb_ratio_6x():
    dma = DmaEngine(Simulator())
    gbs_2k = dma.read_throughput_mops(2048) * 2048
    gbs_64 = dma.read_throughput_mops(64) * 64
    assert gbs_2k / gbs_64 == pytest.approx(6.0, abs=0.8)


def test_dma_nonblocking_throughput_much_higher_for_small():
    dma = DmaEngine(Simulator())
    assert dma.write_throughput_mops(64, blocking=False) > \
        2 * dma.write_throughput_mops(64, blocking=True)


def test_dma_nonblocking_capped_by_pcie_at_large_sizes():
    dma = DmaEngine(Simulator())
    mops = dma.write_throughput_mops(2048, blocking=False)
    assert mops < dma.timings.nb_issue_mops  # bent by the PCIe cap


def test_dma_gather_cheaper_than_separate_writes():
    sim = Simulator()
    dma = DmaEngine(Simulator())
    chunks = [128] * 8
    gathered = dma.write_latency_us(sum(chunks))
    separate = sum(dma.write_latency_us(c) for c in chunks)
    assert gathered < separate  # implication I6


def test_dma_simulated_ops_move_bytes():
    sim = Simulator()
    dma = DmaEngine(sim)
    done = []

    def mover():
        yield from dma.write(1024)
        yield from dma.read(512, blocking=False)
        done.append(sim.now)

    spawn(sim, mover())
    sim.run()
    assert dma.ops == 2
    assert dma.bytes_moved == 1536
    assert done[0] == pytest.approx(dma.write_latency_us(1024) + 0.30)


def test_dma_bulk_transfer_scales_with_size():
    dma = DmaEngine(Simulator())
    assert dma.bulk_transfer_us(32 << 20) > dma.bulk_transfer_us(1 << 20)
    # 32MB at ~2.6 GB/s effective ≈ 12–35 ms (Figure 18's phase-3 scale)
    assert 10_000 < dma.bulk_transfer_us(32 << 20) < 40_000


# -- RDMA engine (Figures 9/10) ------------------------------------------------------

def test_rdma_latency_doubles_dma():
    sim = Simulator()
    rdma = RdmaEngine(sim)
    dma = DmaEngine(sim)
    for size in (4, 64, 512, 2048):
        assert rdma.read_latency_us(size) == pytest.approx(2 * dma.read_latency_us(size))


def test_rdma_small_message_throughput_one_third_of_dma():
    rdma = RdmaEngine(Simulator())
    dma = DmaEngine(Simulator())
    ratio = dma.write_throughput_mops(64) / rdma.write_throughput_mops(64)
    assert ratio == pytest.approx(3.0, abs=0.5)


def test_rdma_converges_with_dma_for_large_messages():
    rdma = RdmaEngine(Simulator())
    dma = DmaEngine(Simulator())
    ratio = dma.write_throughput_mops(2048) / rdma.write_throughput_mops(2048)
    assert ratio < 1.5


# -- compute cost model (Table 3 workloads) ---------------------------------------

def test_profiles_reproduce_reference_times():
    for prof in MICROBENCH_PROFILES.values():
        assert time_on_nic(prof, LIQUIDIO_CN2350) == pytest.approx(prof.exec_us)


def test_cn2360_faster_than_cn2350():
    echo = MICROBENCH_PROFILES["echo"]
    assert time_on_nic(echo, LIQUIDIO_CN2360) < echo.exec_us


def test_host_speedup_lower_for_memory_bound_tasks():
    # Implication I3: low IPC / high MPKI → good offload candidates.
    classifier = MICROBENCH_PROFILES["flow_classifier"]  # MPKI 15.2
    ranker = MICROBENCH_PROFILES["top_ranker"]           # MPKI 0.1
    assert host_speedup(classifier, HOST_XEON_E5_2680) < \
        host_speedup(ranker, HOST_XEON_E5_2680)


def test_host_always_faster_than_wimpy_nic():
    for prof in MICROBENCH_PROFILES.values():
        assert time_on_host(prof, HOST_XEON_E5_2680) < prof.exec_us


def test_host_speedup_bounded():
    for prof in MICROBENCH_PROFILES.values():
        s = host_speedup(prof, HOST_XEON_E5_2680)
        assert 1.0 < s < 5.0


@given(st.floats(min_value=0.3, max_value=2.0), st.floats(min_value=0.05, max_value=20.0))
@settings(max_examples=60, deadline=None)
def test_cost_model_monotone_in_mpki(ipc, mpki):
    from repro.nic import WorkloadProfile
    low = WorkloadProfile("w", 10.0, ipc, mpki)
    # same measured time, higher MPKI → more of it is memory stalls →
    # smaller host speedup
    high = WorkloadProfile("w", 10.0, ipc, mpki * 1.5)
    assert host_speedup(high, HOST_XEON_E5_2680) <= \
        host_speedup(low, HOST_XEON_E5_2680) + 1e-9


# -- traffic manager / NIC switch ---------------------------------------------------

def test_traffic_manager_hw_sync_cost_lower_than_sw():
    sim = Simulator()
    hw = TrafficManager(sim, hardware=True)
    sw = TrafficManager(sim, hardware=False)
    assert hw.dequeue_sync_us < sw.dequeue_sync_us


def test_traffic_manager_push_pop_fifo():
    sim = Simulator()
    tm = TrafficManager(sim)
    got = []

    def core():
        while len(got) < 2:
            pkt = yield tm.pop()
            got.append(pkt.payload)

    spawn(sim, core())
    tm.push(Packet("a", "b", 64, payload=1))
    tm.push(Packet("a", "b", 64, payload=2))
    sim.run()
    assert got == [1, 2]
    assert tm.enqueued == 2


def test_nic_switch_steers_by_rule():
    sim = Simulator()
    nic_q, host_q = [], []
    switch = NicSwitch(sim, to_nic=nic_q.append, to_host=host_q.append)
    switch.install_rule("bypass", "host")
    p1 = Packet("a", "b", 64)
    p2 = Packet("a", "b", 64)
    p2.meta["steer_key"] = "bypass"
    switch.ingest(p1)
    switch.ingest(p2)
    sim.run()
    assert len(nic_q) == 1 and len(host_q) == 1
    assert switch.steered_nic == 1 and switch.steered_host == 1


def test_nic_switch_rejects_bad_targets():
    sim = Simulator()
    switch = NicSwitch(sim, to_nic=lambda p: None, to_host=lambda p: None)
    with pytest.raises(ValueError):
        switch.install_rule("k", "moon")
