#!/bin/sh
# Final recorded runs: full test suite + full benchmark suite.
cd /root/repo
python -m pytest tests/ 2>&1 | tee /root/repo/test_output.txt
python -m pytest benchmarks/ --benchmark-only 2>&1 | tee /root/repo/bench_output.txt
echo "FINAL RUNS COMPLETE"
