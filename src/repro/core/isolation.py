"""Security isolation (§3.4): state protection and DoS containment.

Two attacks are handled:

* **Actor state corruption** — the DMO layer already denies cross-actor
  object access (a software-TLB trap on LiquidIO, hardware paging under a
  full OS).  :class:`IsolationPolicy` centralizes the accounting and the
  firmware/OS distinction.
* **Denial of service** — a handler that exceeds its execution budget is
  detected by the per-core hardware timer (firmware) or a POSIX-signal
  timeout (full OS); the runtime then deregisters the actor, removes it
  from dispatch/runnable queues, and frees its resources.

Handlers in this reproduction are cooperative generators, so "timeout"
means the runtime checks elapsed virtual time at each yield point and
aborts the offender — the same observable outcome as the paper's timer
interrupt, with detection granularity of one yield.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .actor import Actor


class ActorKilledError(Exception):
    """Raised inside a handler aborted by the DoS watchdog."""


@dataclass
class IsolationPolicy:
    """Per-deployment isolation configuration."""

    #: "firmware" → software-managed TLB + hardware timer rings (LiquidIO);
    #: "full-os"  → process address spaces + POSIX signal timeouts.
    mode: str = "firmware"
    #: Execution budget per handler invocation, µs.  The LiquidIO hardware
    #: timer has 16 rings, one dedicated per core.
    timeout_us: float = 1000.0
    #: Per-tenant overrides of ``timeout_us`` (docs/TENANCY.md): the
    #: watchdog reads the armed actor's tenant.  Empty = every tenant
    #: gets the flat budget (bit-identical to the untenanted policy).
    tenant_timeout_us: Dict[str, float] = field(default_factory=dict)
    kills: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.mode not in ("firmware", "full-os"):
            raise ValueError(f"unknown isolation mode: {self.mode}")
        if self.timeout_us <= 0:
            raise ValueError("timeout must be positive")
        for tenant, timeout in self.tenant_timeout_us.items():
            if timeout <= 0:
                raise ValueError(
                    f"tenant {tenant!r} timeout must be positive")

    @property
    def protection_mechanism(self) -> str:
        return ("software-TLB trap" if self.mode == "firmware"
                else "hardware paging")

    @property
    def timeout_mechanism(self) -> str:
        return ("hardware timer ring" if self.mode == "firmware"
                else "POSIX signal")


class Watchdog:
    """Per-core execution timer (one of the 16 LiquidIO timer rings).

    The scheduler arms the watchdog before running a handler and feeds it
    elapsed time at every yield; :meth:`expired` turning true means the
    actor violated availability and must be deregistered.
    """

    def __init__(self, policy: IsolationPolicy):
        self.policy = policy
        self._armed_at: Optional[float] = None
        self._actor: Optional[Actor] = None

    def arm(self, now: float, actor: Actor) -> None:
        self._armed_at = now
        self._actor = actor

    def disarm(self) -> None:
        self._armed_at = None
        self._actor = None

    def expired(self, now: float) -> bool:
        if self._armed_at is None:
            return False
        tenant = getattr(self._actor, "tenant", "")
        timeout = self.policy.tenant_timeout_us.get(
            tenant, self.policy.timeout_us)
        return now - self._armed_at > timeout

    def kill(self, table) -> Optional[Actor]:
        """Deregister the offending actor: dispatch-table removal + state
        teardown is the caller's job via the returned actor."""
        actor = self._actor
        if actor is None:
            return None
        self.policy.kills.append(actor.name)
        table.deregister(actor.name)
        self.disarm()
        return actor


class QuotaEnforcer:
    """Per-actor share accounting against core-hogging (fairness facet of
    the DoS guarantee): tracks busy µs consumed per actor and flags actors
    exceeding a configurable share of recent NIC compute.

    Each actor gets its own tumbling accounting window anchored at its
    first charge; an entry whose last charge is older than ``window_us``
    is evicted on the next :meth:`charge` (the map stays bounded by the
    set of actors active in the last window, however long the run).

    ``tenant_shares`` adds per-tenant budgets on top (docs/TENANCY.md):
    charges carrying a ``tenant`` also accumulate per tenant, and
    :meth:`tenant_over_quota` flags a tenant whose busy time exceeds its
    configured share of recent NIC compute.
    """

    def __init__(self, window_us: float = 100_000.0, max_share: float = 0.9,
                 tenant_shares: Optional[Dict[str, float]] = None):
        self.window_us = window_us
        self.max_share = max_share
        self.tenant_shares: Dict[str, float] = dict(tenant_shares or {})
        #: name -> [window anchor, last charge time, busy µs]
        self._entries: Dict[str, List[float]] = {}
        self._tenant_entries: Dict[str, List[float]] = {}

    def _charge_into(self, entries: Dict[str, List[float]], name: str,
                     busy_us: float, now: float) -> None:
        stale = [n for n, e in entries.items()
                 if now - e[1] > self.window_us]
        for n in stale:
            del entries[n]
        entry = entries.get(name)
        if entry is None or now - entry[0] > self.window_us:
            # fresh (or rolled-over) window: the busy time necessarily
            # accrued over at least busy_us of wall time before now
            entries[name] = [max(now - busy_us, 0.0), now, busy_us]
            return
        entry[1] = now
        entry[2] += busy_us

    def charge(self, actor: str, busy_us: float, now: float,
               tenant: str = "") -> None:
        self._charge_into(self._entries, actor, busy_us, now)
        if tenant:
            self._charge_into(self._tenant_entries, tenant, busy_us, now)

    def _share_of(self, entries: Dict[str, List[float]], name: str,
                  now: float, total_cores: int) -> float:
        entry = entries.get(name)
        if entry is None or now - entry[1] > self.window_us:
            return 0.0
        elapsed = max(now - entry[0], 1.0)
        return entry[2] / (elapsed * total_cores)

    def over_quota(self, actor: str, now: float, total_cores: int) -> bool:
        return self._share_of(self._entries, actor, now,
                              total_cores) > self.max_share

    def share(self, actor: str, now: float, total_cores: int) -> float:
        return self._share_of(self._entries, actor, now, total_cores)

    def tenant_share(self, tenant: str, now: float,
                     total_cores: int) -> float:
        return self._share_of(self._tenant_entries, tenant, now, total_cores)

    def tenant_over_quota(self, tenant: str, now: float,
                          total_cores: int) -> bool:
        cap = self.tenant_shares.get(tenant, self.max_share)
        return self.tenant_share(tenant, now, total_cores) > cap

    def tracked_actors(self) -> int:
        """Live charge-map entries (regression hook for the eviction)."""
        return len(self._entries)
