"""Security isolation (§3.4): state protection and DoS containment.

Two attacks are handled:

* **Actor state corruption** — the DMO layer already denies cross-actor
  object access (a software-TLB trap on LiquidIO, hardware paging under a
  full OS).  :class:`IsolationPolicy` centralizes the accounting and the
  firmware/OS distinction.
* **Denial of service** — a handler that exceeds its execution budget is
  detected by the per-core hardware timer (firmware) or a POSIX-signal
  timeout (full OS); the runtime then deregisters the actor, removes it
  from dispatch/runnable queues, and frees its resources.

Handlers in this reproduction are cooperative generators, so "timeout"
means the runtime checks elapsed virtual time at each yield point and
aborts the offender — the same observable outcome as the paper's timer
interrupt, with detection granularity of one yield.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .actor import Actor


class ActorKilledError(Exception):
    """Raised inside a handler aborted by the DoS watchdog."""


@dataclass
class IsolationPolicy:
    """Per-deployment isolation configuration."""

    #: "firmware" → software-managed TLB + hardware timer rings (LiquidIO);
    #: "full-os"  → process address spaces + POSIX signal timeouts.
    mode: str = "firmware"
    #: Execution budget per handler invocation, µs.  The LiquidIO hardware
    #: timer has 16 rings, one dedicated per core.
    timeout_us: float = 1000.0
    kills: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.mode not in ("firmware", "full-os"):
            raise ValueError(f"unknown isolation mode: {self.mode}")
        if self.timeout_us <= 0:
            raise ValueError("timeout must be positive")

    @property
    def protection_mechanism(self) -> str:
        return ("software-TLB trap" if self.mode == "firmware"
                else "hardware paging")

    @property
    def timeout_mechanism(self) -> str:
        return ("hardware timer ring" if self.mode == "firmware"
                else "POSIX signal")


class Watchdog:
    """Per-core execution timer (one of the 16 LiquidIO timer rings).

    The scheduler arms the watchdog before running a handler and feeds it
    elapsed time at every yield; :meth:`expired` turning true means the
    actor violated availability and must be deregistered.
    """

    def __init__(self, policy: IsolationPolicy):
        self.policy = policy
        self._armed_at: Optional[float] = None
        self._actor: Optional[Actor] = None

    def arm(self, now: float, actor: Actor) -> None:
        self._armed_at = now
        self._actor = actor

    def disarm(self) -> None:
        self._armed_at = None
        self._actor = None

    def expired(self, now: float) -> bool:
        return (self._armed_at is not None
                and now - self._armed_at > self.policy.timeout_us)

    def kill(self, table) -> Optional[Actor]:
        """Deregister the offending actor: dispatch-table removal + state
        teardown is the caller's job via the returned actor."""
        actor = self._actor
        if actor is None:
            return None
        self.policy.kills.append(actor.name)
        table.deregister(actor.name)
        self.disarm()
        return actor


class QuotaEnforcer:
    """Per-actor share accounting against core-hogging (fairness facet of
    the DoS guarantee): tracks busy µs consumed per actor and flags actors
    exceeding a configurable share of recent NIC compute."""

    def __init__(self, window_us: float = 100_000.0, max_share: float = 0.9):
        self.window_us = window_us
        self.max_share = max_share
        self._busy: Dict[str, float] = {}
        self._window_start = 0.0

    def charge(self, actor: str, busy_us: float, now: float) -> None:
        if now - self._window_start > self.window_us:
            self._busy.clear()
            self._window_start = now
        self._busy[actor] = self._busy.get(actor, 0.0) + busy_us

    def over_quota(self, actor: str, now: float, total_cores: int) -> bool:
        elapsed = max(now - self._window_start, 1.0)
        capacity = elapsed * total_cores
        return self._busy.get(actor, 0.0) > self.max_share * capacity

    def share(self, actor: str, now: float, total_cores: int) -> float:
        elapsed = max(now - self._window_start, 1.0)
        return self._busy.get(actor, 0.0) / (elapsed * total_cores)
