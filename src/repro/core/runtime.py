"""The iPipe runtime: NIC-side + host-side execution environment (§3).

One :class:`IPipeRuntime` instance manages a single server equipped with a
SmartNIC.  It owns:

* the actor table and flow-dispatch table,
* the DMO manager spanning NIC and host object tables,
* the host↔NIC message channels,
* the NIC-side hybrid scheduler (:mod:`repro.core.scheduler`) running on
  the SmartNIC's cores,
* host-side worker threads (one is the pinned communication thread that
  polls the channel, per §5.5) executing host-located actors,
* the migrator.

Handlers receive an :class:`ExecutionContext` whose cost helpers resolve
to NIC-core or host-core time depending on where the actor currently
lives — so migrating an actor automatically re-times its execution.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, List, Optional

from ..host.machine import HostMachine, StorageService
from ..host.stacks import StackCosts, ipipe_host_stack
from ..net import Network, Packet, line_rate_pps
from ..nic.cores import WorkloadProfile, time_on_host, time_on_nic
from ..nic.device import SmartNic
from ..nic.dma import DmaEngine
from ..sim import Simulator, Store, Timeout, UtilizationTracker, spawn
from ..sim.faults import RecoveryPolicy
from .actor import Actor, ActorTable, Location, Message, MigrationState
from .channel import Channel, ReliableChannel, RingFullError
from .dmo import DmoManager
from .migration import Migrator
from .scheduler import NicScheduler, SchedulerConfig, WorkItem


class ExecutionContext:
    """Per-invocation services handed to an actor handler."""

    def __init__(self, runtime: "IPipeRuntime", actor: Actor, core_id: int):
        self.runtime = runtime
        self.actor = actor
        self.core_id = core_id
        self.sim = runtime.sim
        #: trace context of the message being handled (propagated into
        #: every send/reply this handler makes) and the enclosing span
        self._trace = None
        self._span = None

    @property
    def side(self) -> Location:
        return self.actor.location

    @property
    def on_nic(self) -> bool:
        return self.side is Location.NIC

    # -- time charging ---------------------------------------------------------
    def compute(self, us: Optional[float] = None,
                profile: Optional[WorkloadProfile] = None,
                scale: float = 1.0) -> Timeout:
        """A sim command charging CPU time at the actor's current location.

        ``us`` is interpreted as NIC-core (CN2350-reference) time; when the
        actor runs on the host the charge shrinks by the workload's
        host-speedup (computed from the profile, or a default 2.8x).
        """
        prof = profile or self.actor.profile
        if us is None:
            if prof is None:
                raise ValueError("no cost given and actor has no profile")
            base = prof.exec_us
        else:
            base = us
        if self.on_nic:
            factor = (time_on_nic(prof, self.runtime.nic.spec) / prof.exec_us
                      if prof is not None else 1.0)
        else:
            factor = (time_on_host(prof, self.runtime.host.spec) / prof.exec_us
                      if prof is not None else 1.0 / 2.8)
        return Timeout(base * factor * scale)

    def accelerator(self, name: str, nbytes: int = 1024, batch: int = 1):
        """Generator charging a domain-specific accelerator invocation.

        On the NIC this contends on the real engine; on the host the same
        work runs in software at the Table-3 penalty (MD5 7x, AES 2.5x,
        default 3x for engines the paper doesn't compare).
        """
        tracer = getattr(self.sim, "tracer", None)
        span = None
        if tracer is not None:
            span = tracer.start_span(
                f"accel:{name}", "accel", trace=self._trace,
                parent=self._span, node=self.runtime.node_name,
                track="accel", engine=name, nbytes=nbytes, batch=batch,
                loc=self.side.value)
        try:
            if self.on_nic:
                yield from self.runtime.admit_accelerator(self.actor)
                start = self.sim.now
                yield from self.runtime.nic.accelerators.invoke(
                    name, nbytes=nbytes, batch=batch)
                self.runtime.charge_accelerator(self.actor,
                                                self.sim.now - start)
            else:
                prof = self.runtime.nic.accelerators.profile(name)
                host_us = prof.host_software_us
                if host_us is None:
                    host_us = prof.lat_us_b1 * 3.0
                yield Timeout(host_us * max(nbytes, 1) / prof.reference_bytes)
        finally:
            if span is not None:
                tracer.end(span)

    def storage_read(self):
        """Generator charging one persistent-storage read (host only)."""
        if self.on_nic:
            raise RuntimeError(
                f"actor {self.actor.name!r} touched storage from the NIC; "
                "storage-backed actors must be pinned to the host (§4)")
        yield Timeout(self.runtime.storage.read_cost_us())

    def storage_write(self, nbytes: int):
        """Generator charging one persistent-storage append (host only)."""
        if self.on_nic:
            raise RuntimeError("storage writes only reach the host")
        yield Timeout(self.runtime.storage.write_cost_us(nbytes))

    # -- messaging ------------------------------------------------------------
    def send(self, target: str, kind: str = "request", payload=None,
             size: int = 64, packet: Optional[Packet] = None) -> None:
        """Asynchronous message to another local actor (NIC or host)."""
        msg = Message(target=target, kind=kind, payload=payload, size=size,
                      source=self.actor.name, created_at=self.sim.now,
                      packet=packet)
        if self._trace is not None:
            msg.meta["trace"] = self._trace
        self.runtime.route_local(msg, origin=self.side)

    def send_remote(self, node: str, target: str, kind: str = "request",
                    payload=None, size: int = 64) -> None:
        """Message to an actor on another machine (goes over the wire)."""
        pkt = Packet(src=self.runtime.node_name, dst=node, size=size,
                     kind=target, payload={"kind": kind, "payload": payload},
                     created_at=self.sim.now)
        if self._trace is not None:
            # the trace id survives the hop: the remote ingress continues
            # this trace rather than starting a fresh one
            pkt.meta["trace"] = self._trace
        self.runtime.transmit_from(self.side, pkt)

    def reply(self, msg: Message, payload=None, size: Optional[int] = None) -> None:
        """Send the response packet back to the request's originator."""
        if msg.packet is None:
            raise ValueError("message did not arrive from the wire")
        reply = msg.packet.reply(size=size, payload=payload)
        if self._trace is not None:
            reply.meta["trace"] = self._trace
        self.runtime.transmit_from(self.side, reply)

    # -- DMO API -----------------------------------------------------------------
    def dmo_malloc(self, size: int, data=None):
        return self.runtime.dmo.malloc(self.actor.name, size, data=data,
                                       location=self.actor.location)

    def dmo_free(self, object_id: int) -> None:
        self.runtime.dmo.free(self.actor.name, object_id)

    def dmo_read(self, object_id: int):
        return self.runtime.dmo.read(self.actor.name, object_id)

    def dmo_write(self, object_id: int, data) -> None:
        self.runtime.dmo.write(self.actor.name, object_id, data)


class IPipeRuntime:
    """iPipe on one server: SmartNIC runtime + host runtime + channels."""

    #: §5.5 runtime tax on host-side execution: message handling, DMO
    #: address translation, and scheduler statistics together cost ~11-12%
    #: extra host CPU versus a bare DPDK loop at equal throughput.
    BOOKKEEPING_FRACTION = 0.18
    BOOKKEEPING_FLOOR_US = 0.30

    def __init__(self, sim: Simulator, nic: SmartNic, host: HostMachine,
                 network: Network, node_name: str,
                 config: Optional[SchedulerConfig] = None,
                 host_workers: int = 2,
                 host_stack: Optional[StackCosts] = None,
                 host_only: bool = False,
                 reliable: bool = False,
                 fault_plane=None,
                 recovery: Optional[RecoveryPolicy] = None):
        self.sim = sim
        #: When set, every registered actor is pinned to the host — the
        #: §5.5 overhead experiment's "host-only iPipe" configuration.
        self.host_only = host_only
        self.nic = nic
        self.host = host
        self.network = network
        self.node_name = node_name
        self.config = config or SchedulerConfig()
        self.actors = ActorTable()
        self.dmo = DmoManager(nic.dram)
        #: TenantPlane config (docs/TENANCY.md), set by
        #: :meth:`set_tenancy`.  Empty dicts = implicit single tenant:
        #: no admission path ever waits and the event schedule is
        #: bit-identical to the untenanted runtime.
        self.tenant_accel_shares: Dict[str, float] = {}
        #: Cumulative NIC-accelerator busy time per tenant (µs).
        self.tenant_accel_us: Dict[str, float] = {}
        self.storage: StorageService = host.storage
        self.host_stack = host_stack or ipipe_host_stack()

        channel_dma = (nic.host_channel if isinstance(nic.host_channel, DmaEngine)
                       else DmaEngine(sim))
        self._channel_dma = channel_dma
        self.channel = Channel(sim, channel_dma, name=f"{node_name}.chan")
        #: optional sequence-numbered reliable-delivery layer (FaultPlane
        #: recovery path); None keeps the seed fire-and-forget semantics
        self.rchannel: Optional[ReliableChannel] = (
            ReliableChannel(self.channel, sim) if reliable else None)
        if self.rchannel is not None:
            # wake the NIC-side poll when a backed-off host→NIC
            # retransmit finally lands
            self.rchannel.on_deliverable["to_nic"] = self._nic_channel_arrival
        self.dispatch_table: Dict[str, str] = {}
        self._migration_buffers: Dict[str, List[Message]] = {}
        self.migrator = Migrator(self)

        #: SteerPlane state (cross-rack migration, see core/migration.py):
        #: forwarding tombstones map a dispatch key that left this node to
        #: (new home, post-repoint epoch); packets that were steered under
        #: the old epoch are re-addressed there during the forwarding
        #: window instead of being dropped.
        self.forwarding: Dict[str, tuple] = {}
        self.forwarded_cross_rack = 0
        #: request uids seen at this node; while a migration's forwarding
        #: window is open (``steer_suppress_active``) a retransmit of a
        #: seen uid is dropped so it cannot race the repoint and execute
        #: on both the old and the new backend.
        self._steer_seen: set = set()
        self.steer_suppressed = 0
        self.steer_suppress_active = False
        #: SteeringController delivery-note hook (set by scenario.build)
        self.steer_note: Optional[Callable[[Packet], None]] = None

        #: crash / restart machinery (FaultPlane recovery path)
        self.recovery = recovery
        self.fault_plane = None
        self._actor_specs: Dict[str, Dict] = {}
        self._crashed: Dict[str, float] = {}   # name -> crash time
        self._restart_counts: Dict[str, int] = {}
        self.crashes = 0
        self.restarts = 0
        #: per-restart recovery time samples (crash → back serving)
        self.recovery_mttr: List[float] = []
        self._nic_poll_pending = False

        # host-side workers: worker 0 is the pinned communication thread
        self.host_workers = host_workers
        self.host_queue: Store = Store(sim)
        self.host_util: List[UtilizationTracker] = [
            UtilizationTracker() for _ in range(host_workers)]
        self.host_ops = 0
        self.channel_drops = 0
        #: host→NIC ring writes issued from host context (replies, sends);
        #: the issuing host worker pays the descriptor-write CPU cost
        self._host_ring_writes = 0
        self._running = True
        self._host_procs = [
            spawn(sim, self._host_worker(w), name=f"{node_name}-hostw{w}")
            for w in range(host_workers)]

        nic.packet_handler = self.on_packet
        nic.attach_network(network, node_name)
        if not nic.spec.is_on_path:
            # Off-path NICs steer host-bound flows through the NIC switch,
            # bypassing NIC cores entirely (§2.1); the runtime installs a
            # bypass rule whenever an actor lands on the host.
            nic.set_host_receiver(self._host_direct_rx)
        self.nic_scheduler = NicScheduler(
            sim,
            num_cores=nic.spec.cores,
            work_queue=nic.traffic_manager,
            actor_table=self.actors,
            executor=self._nic_executor,
            config=self.config,
            quantum_fn=self._drr_quantum,
            on_push_migration=self.migrator.migrate_to_host,
            on_pull_migration=self._pull_candidate,
            redeliver=self.deliver,
            core_util=nic.core_util,
            on_actor_killed=self._on_actor_killed,
            node_name=node_name,
        )
        if fault_plane is not None:
            fault_plane.wire_runtime(self)
        # A CheckPlane installed on this sim (repro.check) picks up any
        # runtime built afterwards and registers its invariant monitors.
        checker = getattr(sim, "checker", None)
        if checker is not None and hasattr(checker, "wire_runtime"):
            checker.wire_runtime(self)

    # -- multi-tenancy (docs/TENANCY.md) --------------------------------------
    def set_tenancy(self, nic_shares: Optional[Dict[str, float]] = None,
                    accel_shares: Optional[Dict[str, float]] = None,
                    dmo_budgets: Optional[Dict[str, int]] = None) -> None:
        """Activate per-tenant budgets on this server's NIC resources.

        ``nic_shares`` turns on hierarchical DRR in the scheduler,
        ``accel_shares`` rate-limits each tenant's accelerator busy time
        to a fraction of elapsed virtual time, ``dmo_budgets`` caps a
        tenant's total DMO region bytes.  All three default to off.
        """
        if nic_shares:
            self.nic_scheduler.set_tenant_shares(nic_shares)
        if accel_shares:
            self.tenant_accel_shares = {
                t: s for t, s in accel_shares.items() if s > 0.0}
        if dmo_budgets:
            for tenant, budget in dmo_budgets.items():
                if budget > 0:
                    self.dmo.set_tenant_budget(tenant, budget)

    def admit_accelerator(self, actor: Actor):
        """Per-tenant accelerator admission (generator; may wait).

        A tenant with a configured ``accelerator_share`` may keep the
        NIC engines busy for at most ``share`` of elapsed virtual time;
        past the budget the invocation is delayed until the long-run
        average drops back under the cap.  Tenants without a share (and
        every actor when no shares are configured) are admitted
        immediately with zero added events.
        """
        share = self.tenant_accel_shares.get(getattr(actor, "tenant", ""))
        if not share:
            return
        tenant = actor.tenant
        while True:
            elapsed = max(self.sim.now, 1.0)
            used = self.tenant_accel_us.get(tenant, 0.0)
            if used <= share * elapsed:
                return
            yield Timeout(used / share - elapsed)

    def charge_accelerator(self, actor: Actor, busy_us: float) -> None:
        tenant = getattr(actor, "tenant", "")
        self.tenant_accel_us[tenant] = \
            self.tenant_accel_us.get(tenant, 0.0) + busy_us

    # -- actor lifecycle -----------------------------------------------------------
    def register_actor(self, actor: Actor,
                       steering_keys: Optional[List[str]] = None,
                       region_bytes: Optional[int] = None) -> Actor:
        """actor_create + actor_register + actor_init (Table 4)."""
        if self.host_only:
            actor.location = Location.HOST
            actor.pinned = True
        self._actor_specs[actor.name] = {
            "actor": actor,
            "steering_keys": list(steering_keys or [actor.name]),
        }
        self.actors.register(actor)
        self.dmo.create_region(actor.name,
                               region_bytes or max(actor.state_bytes * 2, 1 << 20),
                               tenant=getattr(actor, "tenant", ""))
        for key in steering_keys or [actor.name]:
            self.dispatch_table[key] = actor.name
        self.update_steering(actor)
        if actor.init_handler is not None:
            actor.init_handler(actor, ExecutionContext(self, actor, core_id=-1))
        return actor

    def delete_actor(self, name: str) -> None:
        """actor_delete: deregister and reclaim every resource."""
        actor = self.actors.deregister(name)
        if actor is None:
            return
        sched = self.nic_scheduler
        if actor in sched.drr_runnable:
            sched.drr_runnable.remove(actor)
        sched.forfeit_deficit(actor)
        for key in [k for k, v in self.dispatch_table.items() if v == name]:
            del self.dispatch_table[key]
        self.dmo.destroy_region(name)
        self._actor_specs.pop(name, None)
        self._crashed.pop(name, None)

    # -- crash & restart (FaultPlane recovery path) ---------------------------
    def crash_actor(self, name: str) -> bool:
        """Kill an actor process, keeping its DMO region and dispatch
        entries.  Requests arriving while it is down are buffered through
        the migration machinery; a :class:`RecoveryPolicy` schedules the
        restart."""
        actor = self.actors.lookup(name)
        if actor is None or name not in self._actor_specs:
            return False
        self.crashes += 1
        self.actors.deregister(name)
        self._mark_down(actor, restart=(
            self.recovery is not None and self.recovery.restart_crashed))
        return True

    def _on_actor_killed(self, actor: Actor) -> None:
        """Scheduler callback: the DoS watchdog killed this actor."""
        if actor.name not in self._actor_specs:
            return
        self._mark_down(actor, restart=(
            self.recovery is not None and self.recovery.restart_killed))

    def _mark_down(self, actor: Actor, restart: bool) -> None:
        sched = self.nic_scheduler
        if actor in sched.drr_runnable:
            sched.drr_runnable.remove(actor)
        sched.forfeit_deficit(actor)
        actor.is_drr = False
        actor._locked_by = None
        # in-flight mailbox requests survive the crash: buffer them the
        # same way migration phase 1 does
        buffer = self._migration_buffers.setdefault(actor.name, [])
        while actor.mailbox:
            buffer.append(actor.mailbox.popleft())
        if restart:
            self._schedule_restart(actor.name)

    def _schedule_restart(self, name: str) -> None:
        if name in self._crashed:
            return                 # restart already pending
        attempts = self._restart_counts.get(name, 0)
        policy = self.recovery
        if policy is None or attempts >= policy.max_restarts:
            return
        self._crashed[name] = self.sim.now
        delay = policy.restart_delay_us * (policy.backoff_factor ** attempts)
        self.sim.post(delay, self.restart_actor, name)

    def restart_actor(self, name: str) -> bool:
        """Re-deploy a crashed/killed actor with DMO-recovered state.

        Reuses the migration path: the actor object re-registers with its
        original steering keys (phase 3's re-bind) and the messages
        buffered while it was down are re-delivered (phase 4's forward).
        The DMO region was never torn down, so state recovery is exactly
        a region re-attach — calling this on a live actor is a no-op,
        which makes restart idempotent w.r.t. DMO state."""
        spec = self._actor_specs.get(name)
        if spec is None:
            return False
        fault_at = self._crashed.pop(name, None)
        if self.actors.lookup(name) is not None:
            return False           # already running
        actor: Actor = spec["actor"]
        actor.deregistered = False
        actor.migration_state = MigrationState.RUNNING
        actor._locked_by = None
        actor.is_drr = False
        actor.deficit = 0.0
        self.actors.register(actor)
        for key in spec["steering_keys"]:
            self.dispatch_table.setdefault(key, name)
        self.update_steering(actor)
        self._restart_counts[name] = self._restart_counts.get(name, 0) + 1
        self.restarts += 1
        if fault_at is not None:
            self.recovery_mttr.append(self.sim.now - fault_at)
        for queued in self._migration_buffers.pop(name, []):
            self.deliver(queued)
        return True

    def _buffer_for_restart(self, msg: Message) -> bool:
        """Hold messages for an actor that is down but restartable."""
        if msg.target in self._crashed:
            self._migration_buffers.setdefault(msg.target, []).append(msg)
            return True
        return False

    def stop(self) -> None:
        self._running = False
        self.nic_scheduler.stop()

    # -- ingress -----------------------------------------------------------------
    def on_packet(self, packet: Packet) -> None:
        """Wire arrival → scheduler work item (runs at interrupt level)."""
        switch = self.nic.nic_switch
        if switch is not None:
            # off-path: the NIC switch steers host-bound flows around the
            # NIC cores entirely
            if switch.rules.get(switch.classify(packet)) == "host":
                switch.steered_host += 1
                self._host_direct_rx(packet)
                return
            switch.steered_nic += 1
        if self._steer_suppress(packet):
            return
        target = self.dispatch_table.get(packet.kind)
        if target is None:
            if self._steer_forward(packet):
                return
            return  # not for us: drop (endpoint semantics)
        payload, kind = packet.payload, packet.kind
        if isinstance(payload, dict) and "kind" in payload and "payload" in payload:
            kind, payload = payload["kind"], payload["payload"]
        msg = Message(target=target, kind=kind, payload=payload,
                      size=packet.size, source=packet.src,
                      created_at=packet.created_at, packet=packet)
        msg.meta["nic_arrival"] = self.sim.now
        tracer = getattr(self.sim, "tracer", None)
        if tracer is not None:
            # the trace starts here (or continues one begun on a remote
            # node); every downstream stage joins via msg.meta["trace"]
            span = tracer.instant(
                f"rx:{packet.kind}", "ingress",
                trace=packet.meta.get("trace"), node=self.node_name,
                track="nic-rx", target=target, src=packet.src,
                size=packet.size)
            msg.meta["trace"] = span.ctx
        self.deliver(msg)

    def deliver(self, msg: Message) -> None:
        """Route a message to its actor's current location."""
        actor = self.actors.lookup(msg.target)
        if actor is None:
            self._buffer_for_restart(msg)
            return
        if actor.migration_state in (MigrationState.PREPARE, MigrationState.READY):
            self._migration_buffers.setdefault(actor.name, []).append(msg)
            return
        pkt = msg.packet
        if (self.steer_note is not None and pkt is not None
                and pkt.meta.get("steer_epoch") is not None
                and not pkt.meta.get("steer_noted")):
            # first hand-off to a live actor: record the delivery for the
            # SteeringMonitor (the flag keeps a buffered-then-forwarded
            # request from being counted on both sides of a migration)
            pkt.meta["steer_noted"] = True
            self.steer_note(pkt)
        if actor.location is Location.HOST:
            # NIC core work: forwarding + channel DMA issue
            cost = (self.nic.forward_cost(msg.size)
                    + self.channel.to_host.produce_cost_us(msg, batch=8))
            self.nic.traffic_manager.push(WorkItem(
                forward_cost_us=cost,
                forward_action=lambda m=msg: self._nic_send_or_drop(m),
                arrived_at=msg.meta.get("nic_arrival", self.sim.now),
                trace=msg.meta.get("trace")))
        else:
            self.enqueue_nic_message(msg)

    def _host_direct_rx(self, packet: Packet) -> None:
        """Off-path bypass delivery: the NIC switch DMAs straight to host
        rings without touching NIC cores."""
        if self._steer_suppress(packet):
            return
        target = self.dispatch_table.get(packet.kind)
        if target is None:
            self._steer_forward(packet)
            return
        payload, kind = packet.payload, packet.kind
        if isinstance(payload, dict) and "kind" in payload and "payload" in payload:
            kind, payload = payload["kind"], payload["payload"]
        msg = Message(target=target, kind=kind, payload=payload,
                      size=packet.size, source=packet.src,
                      created_at=packet.created_at, packet=packet)
        msg.meta["nic_arrival"] = self.sim.now
        tracer = getattr(self.sim, "tracer", None)
        if tracer is not None:
            span = tracer.instant(
                f"rx:{packet.kind}", "ingress",
                trace=packet.meta.get("trace"), node=self.node_name,
                track="nic-switch", target=target, src=packet.src,
                size=packet.size, bypass=True)
            msg.meta["trace"] = span.ctx
        self.host_queue.put_nowait(msg)

    def update_steering(self, actor: Actor) -> None:
        """Refresh the off-path NIC switch rules to match the actor's
        current location (install bypass for host actors)."""
        switch = self.nic.nic_switch
        if switch is None:
            return
        keys = [k for k, v in self.dispatch_table.items() if v == actor.name]
        for key in keys:
            if actor.location is Location.HOST:
                switch.install_rule(key, "host")
            else:
                switch.remove_rule(key)

    def _steer_suppress(self, packet: Packet) -> bool:
        """Duplicate suppression for the cross-rack forwarding window.

        Marks every uid-carrying wire arrival as seen; while a window is
        open, a retransmit of a seen uid is dropped (True) so it cannot
        execute on both the draining and the restored backend.  Packets
        the migrator itself forwarded bypass the check — they *are* the
        single surviving copy of the original request.
        """
        uid = packet.meta.get("req_uid")
        if uid is None:
            return False
        if (self.steer_suppress_active
                and not packet.meta.get("steer_forwarded")
                and uid in self._steer_seen):
            self.steer_suppressed += 1
            return True
        self._steer_seen.add(uid)
        return False

    def _steer_forward(self, packet: Packet) -> bool:
        """Forwarding-window tombstone: re-address a stale-steered packet
        to the dispatch key's post-migration home (phase-4 semantics,
        extended across the fabric)."""
        entry = self.forwarding.get(packet.kind)
        if entry is None:
            return False
        new_home, epoch = entry
        packet.dst = new_home
        packet.meta["steer_forwarded"] = True
        if "steer_epoch" in packet.meta:
            # the repointed table owns the flow at the new home
            packet.meta["steer_epoch"] = epoch
        self.forwarded_cross_rack += 1
        self.transmit_from(Location.NIC, packet)
        return True

    def _nic_send_or_drop(self, msg: Message) -> None:
        """Cross the NIC→host ring.  Without the reliable layer a full
        ring drops the packet, exactly as a full descriptor ring does on
        real hardware; with it, the send is retried with backoff."""
        if self.rchannel is not None:
            self.rchannel.nic_send(msg)
            return
        try:
            self.channel.nic_send(msg)
        except RingFullError:
            self.channel_drops += 1

    def enqueue_nic_message(self, msg: Message) -> None:
        self.nic.traffic_manager.push(WorkItem(
            message=msg,
            arrived_at=msg.meta.get("nic_arrival", self.sim.now)))

    def route_local(self, msg: Message, origin: Location) -> None:
        """Actor→actor message within this server."""
        actor = self.actors.lookup(msg.target)
        if actor is None:
            self._buffer_for_restart(msg)
            return
        msg.meta["nic_arrival"] = self.sim.now
        if actor.location is Location.HOST and origin is Location.HOST:
            self.host_queue.put_nowait(msg)
        elif actor.location is Location.HOST:
            self.deliver(msg)
        elif origin is Location.HOST:
            # host → NIC actor: cross the channel, then schedule on the NIC
            self._host_ring_writes += 1
            if self.rchannel is not None:
                self.rchannel.host_send(msg)
            else:
                self._host_send_backoff(msg, 1.0)
                return
            delay = self.channel.to_nic.transfer_delay_us(msg)
            self.sim.post(delay, self._nic_channel_arrival)
        else:
            self.enqueue_nic_message(msg)

    def _host_send_backoff(self, msg: Message, backoff_us: float) -> None:
        """Event-level ``wait_not_full``: host→NIC sends run inside actor
        handlers (plain callables, not sim processes), so a full ring must
        back off via rescheduled events rather than raising RingFullError
        through the handler."""
        try:
            self.channel.host_send(msg)
        except RingFullError:
            self.sim.post(backoff_us, self._host_send_backoff, msg,
                             min(backoff_us * 2, 64.0))
            return
        delay = self.channel.to_nic.transfer_delay_us(msg)
        self.sim.post(delay, self._nic_channel_arrival)

    def _nic_channel_arrival(self, msg: Message = None) -> None:
        """Drain the host→NIC ring into the scheduler's shared queue."""
        while True:
            polled = (self.rchannel.nic_poll() if self.rchannel is not None
                      else self.channel.nic_poll())
            if polled is None:
                break
            self.enqueue_nic_message(polled)
        backlog = len(self.channel.to_nic) or (
            self.rchannel is not None and self.rchannel.pending("to_nic"))
        if backlog and not self._nic_poll_pending:
            # head slot's DMA still in flight (slots are visible strictly
            # in ring order), or a retransmit is pending: retry shortly
            self._nic_poll_pending = True
            self.sim.post(1.0, self._nic_poll_retry)

    def _nic_poll_retry(self) -> None:
        self._nic_poll_pending = False
        self._nic_channel_arrival()

    # -- egress ---------------------------------------------------------------------
    def transmit_from(self, side: Location, packet: Packet) -> None:
        """Send a packet to the wire from NIC or host context.

        Host-originated frames pay the channel crossing plus a forwarding
        work item on a NIC core (on-path NICs convey *all* traffic through
        their cores).
        """
        if side is Location.NIC:
            self.nic.transmit(packet)
        else:
            carrier = Message(target="__tx__", payload=packet,
                              size=packet.size, created_at=self.sim.now)
            self._host_ring_writes += 1
            delay = self.channel.to_nic.transfer_delay_us(carrier)
            self.sim.post(delay, self._host_tx_arrival, packet)

    def _host_tx_arrival(self, packet: Packet) -> None:
        self.nic.traffic_manager.push(WorkItem(
            forward_cost_us=self.nic.forward_cost(packet.size),
            forward_action=lambda p=packet: self.nic.transmit(p),
            arrived_at=self.sim.now,
            trace=packet.meta.get("trace")))

    # -- NIC-side handler execution ------------------------------------------------
    def _nic_executor(self, core_id: int, actor: Actor, msg: Message):
        ctx = ExecutionContext(self, actor, core_id)
        yield from self._drive(actor, msg, ctx)

    def _drive(self, actor: Actor, msg: Message, ctx: ExecutionContext):
        ctx._trace = msg.meta.get("trace")
        ctx._span = msg.meta.get("span")
        result = actor.exec_handler(actor, msg, ctx)
        if inspect.isgenerator(result):
            yield from result
        elif actor.profile is not None:
            yield ctx.compute(profile=actor.profile)

    def execute_for_migration(self, actor: Actor, msg: Message):
        """Drain-phase execution on the management core."""
        ctx = ExecutionContext(self, actor, core_id=0)
        yield from self._drive(actor, msg, ctx)

    # -- migration integration ------------------------------------------------------
    def begin_buffering(self, actor: Actor) -> None:
        self._migration_buffers.setdefault(actor.name, [])

    def end_buffering(self, actor: Actor) -> List[Message]:
        return self._migration_buffers.pop(actor.name, [])

    def bulk_transfer_us(self, nbytes: int) -> float:
        return self._channel_dma.bulk_transfer_us(nbytes)

    def _pull_candidate(self):
        candidates = [a for a in self.actors
                      if a.schedulable and a.location is Location.HOST
                      and not a.pinned and a.requests_seen > 10]
        if not candidates:
            return None
        elapsed = max(self.sim.now, 1.0)
        lightest = min(candidates, key=lambda a: a.load(elapsed))
        return self.migrator.migrate_to_nic(lightest)

    def _drr_quantum(self, actor: Actor) -> float:
        """Quantum = max tolerated forwarding latency for the actor's
        average request size (§3.2.2), i.e. the Figure-4 headroom."""
        size = int(actor.request_bytes_ewma) or 512
        spec = self.nic.spec
        rate_pp_us = line_rate_pps(spec.bandwidth_gbps, size) / 1e6
        headroom = spec.cores / rate_pp_us - self.nic.forward_cost(size)
        return max(headroom, 1.0)

    # -- host-side workers --------------------------------------------------------------
    def _host_worker(self, worker_id: int):
        """Host runtime thread: "each runtime thread periodically polls
        requests from the channel and performs actor execution" (§5.1).
        The run queue takes priority; an idle worker polls the ring."""
        while self._running:
            busy_start = self.sim.now
            msg = self.host_queue.try_get_nowait()
            if msg is None:
                polled = (self.rchannel.host_poll() if self.rchannel is not None
                          else self.channel.host_poll())
                if polled is not None:
                    rx = self.host_stack.rx_cost(polled.size)
                    yield Timeout(rx)
                    self.host_util[worker_id].add_busy(rx)
                    self.host_queue.put_nowait(polled)
                    continue
                yield Timeout(0.5)
                continue
            actor = self.actors.lookup(msg.target)
            if actor is None:
                self._buffer_for_restart(msg)
                continue
            if not actor.schedulable:
                continue
            if actor.migration_state in (MigrationState.PREPARE,
                                         MigrationState.READY):
                self._migration_buffers.setdefault(actor.name, []).append(msg)
                continue
            if actor.location is Location.NIC:
                self.route_local(msg, origin=Location.HOST)
                continue
            if not actor.try_lock(1000 + worker_id):
                actor.mailbox.append(msg)
                continue
            tracer = getattr(self.sim, "tracer", None)
            span = None
            if tracer is not None:
                span = tracer.start_span(
                    f"host:{actor.name}", "host",
                    trace=msg.meta.get("trace"), node=self.node_name,
                    track=f"hostw{worker_id}", actor=actor.name,
                    worker=worker_id, loc="host")
                msg.meta["span"] = span
            try:
                start = self.sim.now
                tx_before = self._host_ring_writes
                ctx = ExecutionContext(self, actor, core_id=1000 + worker_id)
                yield from self._drive(actor, msg, ctx)
                while actor.mailbox:
                    queued = actor.mailbox.popleft()
                    yield from self._drive(actor, queued, ctx)
                # host→NIC sends made by the handler (replies, messages)
                # cost ring-descriptor writes on this worker
                tx_delta = self._host_ring_writes - tx_before
                if tx_delta:
                    yield Timeout(tx_delta * self.host_stack.tx_cost(msg.size))
                # §5.5 runtime tax: DMO translation + scheduler bookkeeping
                handler_busy = self.sim.now - start
                yield Timeout(self.BOOKKEEPING_FRACTION * handler_busy
                              + self.BOOKKEEPING_FLOOR_US)
                busy = self.sim.now - start
            finally:
                if span is not None:
                    tracer.end(span)
                    msg.meta.pop("span", None)
                actor.unlock(1000 + worker_id)
            self.host_util[worker_id].add_busy(busy)
            actor.record_execution(
                self.sim.now - msg.meta.get("nic_arrival", msg.created_at),
                msg.size, service_us=busy)
            self.host_ops += 1
            metrics = getattr(self.sim, "metrics", None)
            if metrics is not None:
                metrics.histogram("host.service_us").record(self.sim.now, busy)
                metrics.counter("host.ops").inc(self.sim.now)

    # -- metrics -----------------------------------------------------------------------
    def host_cores_used(self, elapsed_us: float) -> float:
        return sum(u.utilization(elapsed_us) for u in self.host_util)

    def nic_cores_used(self, elapsed_us: float) -> float:
        return self.nic.cores_used(elapsed_us)
