"""IOKernel-style dedicated dispatcher for off-path SmartNICs (§3.2.6).

Off-path NICs (BlueField, Stingray) lack a hardware traffic manager.  The
paper sketches two software substitutes:

1. a dedicated kernel-bypass component "such as the IOKernel module in
   Shenango" that runs exclusively on one or more NIC cores, processes
   all incoming traffic and exposes a single queue to the FCFS cores;
2. an intermediate shuffle layer with work stealing (the default in this
   reproduction: the software shared queue with its higher sync tax).

This module implements option 1: :class:`IoKernel` occupies ``cores``
NIC cores full-time, pays a per-packet dispatch cost, and feeds the
scheduler's shared queue — whose dequeue sync cost drops back to the
hardware-like level because the consumers no longer contend on the raw
RX ring.  Enable it via ``SchedulerConfig``-independent wiring:

    iok = IoKernel(runtime, cores=1)

after which the given number of scheduler cores are converted to
dispatch duty.
"""

from __future__ import annotations

from typing import Optional

from ..nic.calibration import HW_SHARED_QUEUE_SYNC_US
from ..sim import Store, Timeout, spawn

#: Per-packet software dispatch cost of the IOKernel core (classify +
#: enqueue; Shenango reports sub-µs per packet on a dedicated core).
IOKERNEL_DISPATCH_US = 0.12


class IoKernel:
    """Dedicated dispatch core(s) in front of the scheduler's queue."""

    def __init__(self, runtime, cores: int = 1):
        if cores < 1:
            raise ValueError("IOKernel needs at least one core")
        nic = runtime.nic
        if nic.spec.is_on_path:
            raise ValueError(
                "on-path NICs have a hardware traffic manager; the "
                "IOKernel substitute is for off-path NICs")
        self.runtime = runtime
        self.cores = cores
        self.sim = runtime.sim
        #: raw RX ring the wire now feeds
        self.rx_ring: Store = Store(self.sim)
        self.dispatched = 0
        self._running = True

        scheduler = runtime.nic_scheduler
        if scheduler.num_cores <= cores:
            raise ValueError("IOKernel cannot occupy every NIC core")
        # the dispatcher owns the top core ids; shrink the scheduler's view
        self._reserved = list(range(scheduler.num_cores - cores,
                                    scheduler.num_cores))
        for core in self._reserved:
            scheduler.core_mode[core] = "iokernel"
        # consumers now see a single clean queue: hardware-like sync cost
        nic.traffic_manager.dequeue_sync_us = HW_SHARED_QUEUE_SYNC_US
        # intercept arrivals ahead of the runtime's handler
        self._inner_handler = nic.packet_handler or runtime.on_packet
        nic.packet_handler = self._rx
        self._procs = [spawn(self.sim, self._dispatch_loop(core),
                             name=f"iokernel-{core}")
                       for core in self._reserved]

    def _rx(self, packet) -> None:
        self.rx_ring.put_nowait(packet)

    def _dispatch_loop(self, core_id: int):
        nic = self.runtime.nic
        while self._running:
            packet = yield self.rx_ring.get()
            yield Timeout(IOKERNEL_DISPATCH_US)
            nic.charge_core(core_id, IOKERNEL_DISPATCH_US)
            self.dispatched += 1
            self._inner_handler(packet)

    def stop(self) -> None:
        self._running = False
