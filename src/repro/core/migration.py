"""Four-phase actor migration (§3.2.5, Appendix B.3, Figure 18).

Only the SmartNIC initiates migration (it is far more overload-sensitive
than the host).  The phases:

1. **Prepare** — the actor leaves the dispatcher (and the DRR runnable
   queue); new requests are buffered by the runtime.
2. **Drain** — the actor finishes in-flight work; a DRR actor drains its
   whole mailbox.  Ends in the *Ready* state.
3. **Move** — every distributed memory object migrates across the PCIe
   (bulk DMA); the destination side registers the actor; state → *Gone*.
   This phase dominates (≈68% of migration time in Figure 18 — the LSM
   memtable actor's ~32MB of objects takes ~36ms).
4. **Forward** — buffered requests are re-addressed and pushed to the new
   side; state → *Clean*, then the actor resumes as *Running*.

Pull migration (host → NIC) mirrors the same phases with the transfer
direction reversed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sim import Timeout
from .actor import Actor, Location, Message, MigrationState


@dataclass
class MigrationReport:
    """Per-phase elapsed time of one migration, for Figure 18."""

    actor: str
    direction: str                      # "to_host" / "to_nic"
    phase_us: Dict[int, float] = field(default_factory=dict)
    moved_bytes: int = 0
    forwarded_requests: int = 0

    @property
    def total_us(self) -> float:
        return sum(self.phase_us.values())

    def share(self, phase: int) -> float:
        return self.phase_us.get(phase, 0.0) / self.total_us if self.total_us else 0.0


#: Runtime-lock + state-manipulation overhead of the light phases (µs).
PREPARE_COST_US = 15.0
READY_COST_US = 10.0

PHASE_NAMES = {1: "prepare", 2: "drain", 3: "move", 4: "forward"}


class Migrator:
    """Executes migrations on behalf of the scheduler's management core.

    The runtime provides the integration points: draining leftover
    requests, pricing the object move, re-registering the actor, and
    re-forwarding buffered traffic.
    """

    def __init__(self, runtime):
        self.runtime = runtime
        self.reports: List[MigrationReport] = []

    def _trace_report(self, report: MigrationReport) -> None:
        """Emit one parent span per migration with the four phases as
        strictly-contained children (the phases tile the parent)."""
        tracer = getattr(self.runtime.sim, "tracer", None)
        if tracer is None or not report.phase_us:
            return
        node = getattr(self.runtime, "node_name", "")
        end = self.runtime.sim.now
        start = end - report.total_us
        parent = tracer.record_span(
            f"migrate:{report.actor}", "migration", start, end,
            node=node, track="mgmt", actor=report.actor,
            direction=report.direction, moved_bytes=report.moved_bytes,
            forwarded=report.forwarded_requests)
        t = start
        for phase in sorted(report.phase_us):
            dur = report.phase_us[phase]
            tracer.record_span(
                PHASE_NAMES.get(phase, f"phase{phase}"), "migration",
                t, t + dur, parent=parent, node=node, track="mgmt",
                actor=report.actor, phase=phase)
            t += dur

    # -- NIC → host (push) ----------------------------------------------------
    def migrate_to_host(self, actor: Actor):
        """Process generator driving one push migration."""
        if actor.location is not Location.NIC or actor.pinned:
            return
        sim = self.runtime.sim
        report = MigrationReport(actor=actor.name, direction="to_host")

        # Phase 1: Prepare — leave the dispatcher, start buffering.
        t0 = sim.now
        actor.migration_state = MigrationState.PREPARE
        self.runtime.begin_buffering(actor)
        if actor.is_drr:
            actor.is_drr = False
            scheduler = self.runtime.nic_scheduler
            if actor in scheduler.drr_runnable:
                scheduler.drr_runnable.remove(actor)
            scheduler.forfeit_deficit(actor)
        yield Timeout(PREPARE_COST_US)
        report.phase_us[1] = sim.now - t0

        # Phase 2: Drain — run out the mailbox, then Ready.
        t0 = sim.now
        while actor.mailbox:
            msg = actor.mailbox.popleft()
            yield from self.runtime.execute_for_migration(actor, msg)
        while not actor.try_lock(-1):      # wait for in-flight handler
            yield Timeout(1.0)
        actor.unlock(-1)
        actor.migration_state = MigrationState.READY
        yield Timeout(READY_COST_US)
        report.phase_us[2] = sim.now - t0

        # Phase 3: Move objects over PCIe, start host actor, mark Gone.
        t0 = sim.now
        moved = self.runtime.dmo.migrate_all(actor.name, Location.HOST)
        report.moved_bytes = moved
        yield Timeout(self.runtime.bulk_transfer_us(moved))
        actor.location = Location.HOST
        actor.migration_state = MigrationState.GONE
        report.phase_us[3] = sim.now - t0

        # Phase 4: Forward buffered requests, rewrite destinations, Clean.
        t0 = sim.now
        buffered = self.runtime.end_buffering(actor)
        report.forwarded_requests = len(buffered)
        from .channel import RingFullError
        rchannel = getattr(self.runtime, "rchannel", None)
        for msg in buffered:
            if rchannel is not None:
                # the reliable layer owns retransmit/backoff; charge the
                # descriptor-write cost and hand the message over
                yield Timeout(
                    self.runtime.channel.to_host.produce_cost_us(msg, batch=8))
                rchannel.nic_send(msg)
                continue
            while True:
                yield from self.runtime.channel.to_host.wait_not_full()
                yield Timeout(
                    self.runtime.channel.to_host.produce_cost_us(msg, batch=8))
                try:
                    # live forwarding traffic races us for ring slots, so
                    # the reservation may vanish during the descriptor write
                    self.runtime.channel.nic_send(msg)
                    break
                except RingFullError:
                    continue
        actor.migration_state = MigrationState.CLEAN
        report.phase_us[4] = sim.now - t0

        actor.migration_state = MigrationState.RUNNING
        if hasattr(self.runtime, "update_steering"):
            self.runtime.update_steering(actor)
        self.reports.append(report)
        self._trace_report(report)
        return report

    # -- host → NIC (pull) --------------------------------------------------------
    def migrate_to_nic(self, actor: Actor):
        """Process generator driving one pull migration."""
        if actor.location is not Location.HOST or actor.pinned:
            return
        sim = self.runtime.sim
        report = MigrationReport(actor=actor.name, direction="to_nic")

        t0 = sim.now
        actor.migration_state = MigrationState.PREPARE
        self.runtime.begin_buffering(actor)
        yield Timeout(PREPARE_COST_US)
        report.phase_us[1] = sim.now - t0

        t0 = sim.now
        while actor.mailbox:
            msg = actor.mailbox.popleft()
            yield from self.runtime.execute_for_migration(actor, msg)
        actor.migration_state = MigrationState.READY
        yield Timeout(READY_COST_US)
        report.phase_us[2] = sim.now - t0

        t0 = sim.now
        moved = self.runtime.dmo.migrate_all(actor.name, Location.NIC)
        report.moved_bytes = moved
        yield Timeout(self.runtime.bulk_transfer_us(moved))
        actor.location = Location.NIC
        actor.migration_state = MigrationState.GONE
        report.phase_us[3] = sim.now - t0

        t0 = sim.now
        buffered = self.runtime.end_buffering(actor)
        report.forwarded_requests = len(buffered)
        for msg in buffered:
            self.runtime.enqueue_nic_message(msg)
        actor.migration_state = MigrationState.CLEAN
        report.phase_us[4] = sim.now - t0

        actor.migration_state = MigrationState.RUNNING
        if hasattr(self.runtime, "update_steering"):
            self.runtime.update_steering(actor)
        self.reports.append(report)
        self._trace_report(report)
        return report

    def last_report(self) -> Optional[MigrationReport]:
        return self.reports[-1] if self.reports else None
