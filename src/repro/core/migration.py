"""Four-phase actor migration (§3.2.5, Appendix B.3, Figure 18).

Only the SmartNIC initiates migration (it is far more overload-sensitive
than the host).  The phases:

1. **Prepare** — the actor leaves the dispatcher (and the DRR runnable
   queue); new requests are buffered by the runtime.
2. **Drain** — the actor finishes in-flight work; a DRR actor drains its
   whole mailbox.  Ends in the *Ready* state.
3. **Move** — every distributed memory object migrates across the PCIe
   (bulk DMA); the destination side registers the actor; state → *Gone*.
   This phase dominates (≈68% of migration time in Figure 18 — the LSM
   memtable actor's ~32MB of objects takes ~36ms).
4. **Forward** — buffered requests are re-addressed and pushed to the new
   side; state → *Clean*, then the actor resumes as *Running*.

Pull migration (host → NIC) mirrors the same phases with the transfer
direction reversed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..net import Packet
from ..sim import Simulator, Timeout
from .actor import Actor, Location, Message, MigrationState


@dataclass
class MigrationReport:
    """Per-phase elapsed time of one migration, for Figure 18."""

    actor: str
    direction: str                      # "to_host" / "to_nic"
    phase_us: Dict[int, float] = field(default_factory=dict)
    moved_bytes: int = 0
    forwarded_requests: int = 0

    @property
    def total_us(self) -> float:
        return sum(self.phase_us.values())

    def share(self, phase: int) -> float:
        return self.phase_us.get(phase, 0.0) / self.total_us if self.total_us else 0.0


#: Runtime-lock + state-manipulation overhead of the light phases (µs).
PREPARE_COST_US = 15.0
READY_COST_US = 10.0

PHASE_NAMES = {1: "prepare", 2: "drain", 3: "move", 4: "forward"}


class Migrator:
    """Executes migrations on behalf of the scheduler's management core.

    The runtime provides the integration points: draining leftover
    requests, pricing the object move, re-registering the actor, and
    re-forwarding buffered traffic.
    """

    def __init__(self, runtime):
        self.runtime = runtime
        self.reports: List[MigrationReport] = []

    def _trace_report(self, report: MigrationReport) -> None:
        """Emit one parent span per migration with the four phases as
        strictly-contained children (the phases tile the parent)."""
        tracer = getattr(self.runtime.sim, "tracer", None)
        if tracer is None or not report.phase_us:
            return
        node = getattr(self.runtime, "node_name", "")
        end = self.runtime.sim.now
        start = end - report.total_us
        parent = tracer.record_span(
            f"migrate:{report.actor}", "migration", start, end,
            node=node, track="mgmt", actor=report.actor,
            direction=report.direction, moved_bytes=report.moved_bytes,
            forwarded=report.forwarded_requests)
        t = start
        for phase in sorted(report.phase_us):
            dur = report.phase_us[phase]
            tracer.record_span(
                PHASE_NAMES.get(phase, f"phase{phase}"), "migration",
                t, t + dur, parent=parent, node=node, track="mgmt",
                actor=report.actor, phase=phase)
            t += dur

    # -- NIC → host (push) ----------------------------------------------------
    def migrate_to_host(self, actor: Actor):
        """Process generator driving one push migration."""
        if actor.location is not Location.NIC or actor.pinned:
            return
        sim = self.runtime.sim
        report = MigrationReport(actor=actor.name, direction="to_host")

        # Phase 1: Prepare — leave the dispatcher, start buffering.
        t0 = sim.now
        actor.migration_state = MigrationState.PREPARE
        self.runtime.begin_buffering(actor)
        if actor.is_drr:
            actor.is_drr = False
            scheduler = self.runtime.nic_scheduler
            if actor in scheduler.drr_runnable:
                scheduler.drr_runnable.remove(actor)
            scheduler.forfeit_deficit(actor)
        yield Timeout(PREPARE_COST_US)
        report.phase_us[1] = sim.now - t0

        # Phase 2: Drain — run out the mailbox, then Ready.
        t0 = sim.now
        while actor.mailbox:
            msg = actor.mailbox.popleft()
            yield from self.runtime.execute_for_migration(actor, msg)
        while not actor.try_lock(-1):      # wait for in-flight handler
            yield Timeout(1.0)
        actor.unlock(-1)
        actor.migration_state = MigrationState.READY
        yield Timeout(READY_COST_US)
        report.phase_us[2] = sim.now - t0

        # Phase 3: Move objects over PCIe, start host actor, mark Gone.
        t0 = sim.now
        moved = self.runtime.dmo.migrate_all(actor.name, Location.HOST)
        report.moved_bytes = moved
        yield Timeout(self.runtime.bulk_transfer_us(moved))
        actor.location = Location.HOST
        actor.migration_state = MigrationState.GONE
        report.phase_us[3] = sim.now - t0

        # Phase 4: Forward buffered requests, rewrite destinations, Clean.
        t0 = sim.now
        buffered = self.runtime.end_buffering(actor)
        report.forwarded_requests = len(buffered)
        from .channel import RingFullError
        rchannel = getattr(self.runtime, "rchannel", None)
        for msg in buffered:
            if rchannel is not None:
                # the reliable layer owns retransmit/backoff; charge the
                # descriptor-write cost and hand the message over
                yield Timeout(
                    self.runtime.channel.to_host.produce_cost_us(msg, batch=8))
                rchannel.nic_send(msg)
                continue
            while True:
                yield from self.runtime.channel.to_host.wait_not_full()
                yield Timeout(
                    self.runtime.channel.to_host.produce_cost_us(msg, batch=8))
                try:
                    # live forwarding traffic races us for ring slots, so
                    # the reservation may vanish during the descriptor write
                    self.runtime.channel.nic_send(msg)
                    break
                except RingFullError:
                    continue
        actor.migration_state = MigrationState.CLEAN
        report.phase_us[4] = sim.now - t0

        actor.migration_state = MigrationState.RUNNING
        if hasattr(self.runtime, "update_steering"):
            self.runtime.update_steering(actor)
        self.reports.append(report)
        self._trace_report(report)
        return report

    # -- host → NIC (pull) --------------------------------------------------------
    def migrate_to_nic(self, actor: Actor):
        """Process generator driving one pull migration."""
        if actor.location is not Location.HOST or actor.pinned:
            return
        sim = self.runtime.sim
        report = MigrationReport(actor=actor.name, direction="to_nic")

        t0 = sim.now
        actor.migration_state = MigrationState.PREPARE
        self.runtime.begin_buffering(actor)
        yield Timeout(PREPARE_COST_US)
        report.phase_us[1] = sim.now - t0

        t0 = sim.now
        while actor.mailbox:
            msg = actor.mailbox.popleft()
            yield from self.runtime.execute_for_migration(actor, msg)
        actor.migration_state = MigrationState.READY
        yield Timeout(READY_COST_US)
        report.phase_us[2] = sim.now - t0

        t0 = sim.now
        moved = self.runtime.dmo.migrate_all(actor.name, Location.NIC)
        report.moved_bytes = moved
        yield Timeout(self.runtime.bulk_transfer_us(moved))
        actor.location = Location.NIC
        actor.migration_state = MigrationState.GONE
        report.phase_us[3] = sim.now - t0

        t0 = sim.now
        buffered = self.runtime.end_buffering(actor)
        report.forwarded_requests = len(buffered)
        for msg in buffered:
            self.runtime.enqueue_nic_message(msg)
        actor.migration_state = MigrationState.CLEAN
        report.phase_us[4] = sim.now - t0

        actor.migration_state = MigrationState.RUNNING
        if hasattr(self.runtime, "update_steering"):
            self.runtime.update_steering(actor)
        self.reports.append(report)
        self._trace_report(report)
        return report

    def last_report(self) -> Optional[MigrationReport]:
        return self.reports[-1] if self.reports else None


# -- cross-rack migration (SteerPlane) ----------------------------------------

#: Control-plane rendezvous cost of a cross-rack move (µs): destination
#: admission, region reservation, and the steering-repoint RPC.
XRACK_HANDSHAKE_US = 25.0


class MigrationInterrupted(RuntimeError):
    """A cross-rack move lost its destination mid-transfer.

    The migration ticket survives: the source still holds the drained
    actors (Ready state) and the checkpoint, so re-invoking
    :meth:`CrossRackMigrator.migrate` with a new destination resumes at
    the transfer — restart is idempotent.
    """

    def __init__(self, src_node: str, dst_node: str, actors: Tuple[str, ...]):
        super().__init__(
            f"destination {dst_node!r} failed while migrating "
            f"{list(actors)} from {src_node!r}")
        self.src_node = src_node
        self.dst_node = dst_node
        self.actors = actors


@dataclass
class CrossRackTicket:
    """Resumable progress record of one cross-rack migration."""

    actors: Tuple[str, ...]
    src_node: str
    service: Optional[str]
    #: milestone reached: 1 prepared, 2 drained, 3 checkpointed.
    milestone: int = 0
    actor_objs: List[Actor] = field(default_factory=list)
    steering_keys: Dict[str, List[str]] = field(default_factory=dict)
    state: object = None
    moved_bytes: int = 0
    seen: set = field(default_factory=set)
    attempts: int = 0
    report: MigrationReport = None


def _trace_xrack(sim: Simulator, node: str, report: MigrationReport) -> None:
    """Parent migration span + phase children, on the source's mgmt track."""
    tracer = getattr(sim, "tracer", None)
    if tracer is None or not report.phase_us:
        return
    end = sim.now
    start = end - report.total_us
    parent = tracer.record_span(
        f"migrate:{report.actor}", "migration", start, end,
        node=node, track="mgmt", actor=report.actor,
        direction=report.direction, moved_bytes=report.moved_bytes,
        forwarded=report.forwarded_requests)
    t = start
    for phase in sorted(report.phase_us):
        dur = report.phase_us[phase]
        tracer.record_span(
            PHASE_NAMES.get(phase, f"phase{phase}"), "migration",
            t, t + dur, parent=parent, node=node, track="mgmt",
            actor=report.actor, phase=phase)
        t += dur


class CrossRackMigrator:
    """Live migration of a steered backend between servers (SteerPlane).

    Extends the four-phase protocol across the fabric:

    1. **Prepare** — every actor of the backend leaves its dispatcher and
       starts buffering; duplicate suppression arms on the source.
    2. **Drain** — mailboxes run dry, in-flight handlers finish (Ready).
    3. **Move** — DMO state is checkpointed (via the app's ``detach``
       hook when provided) and shipped over the rack uplink; if the
       destination dies mid-transfer, :class:`MigrationInterrupted`
       fires and the retained ticket makes a retry resume here.
    4. **Repoint + forward** — atomically (one simulator event): the
       source deletes the actors, the destination restores them, the
       steering table repoints the shard (epoch bump), and forwarding
       tombstones are installed on the source.  Buffered requests are
       then re-addressed to the new home; ``window_us`` later the
       forwarding window is flushed (tombstones + affinity pins dropped,
       duplicate suppression disarmed).
    """

    def __init__(self, sim: Simulator, steering=None):
        self.sim = sim
        #: the SteeringController repointed at phase 4 (optional).
        self.steering = steering
        self.reports: List[MigrationReport] = []
        self._tickets: Dict[Tuple[str, Tuple[str, ...]], CrossRackTicket] = {}

    # -- cost model -------------------------------------------------------
    def wire_transfer_us(self, src_runtime, nbytes: int) -> float:
        """Checkpoint shipping time over the source's rack uplink."""
        bandwidth_gbps, propagation_us, inter_rack_us = 40.0, 1.0, 0.0
        network = getattr(src_runtime, "network", None)
        if network is not None:
            inter_rack_us = getattr(network, "inter_rack_propagation_us", 0.0)
            try:
                uplink = network.uplink(src_runtime.node_name)
            except (AttributeError, KeyError):
                uplink = None
            if uplink is not None:
                bandwidth_gbps = uplink.bandwidth_gbps
                propagation_us = uplink.propagation_us
        serialization = nbytes * 8.0 / (bandwidth_gbps * 1000.0)
        return (XRACK_HANDSHAKE_US + serialization
                + 2.0 * (propagation_us + inter_rack_us))

    # -- the protocol -----------------------------------------------------
    def migrate(self, src_runtime, dst_runtime, actor_names: List[str],
                service: Optional[str] = None,
                detach: Optional[Callable[[], object]] = None,
                attach: Optional[Callable] = None,
                window_us: float = 2_000.0):
        """Process generator driving one cross-rack move (resumable)."""
        sim = self.sim
        src_node = src_runtime.node_name
        dst_node = dst_runtime.node_name
        key = (src_node, tuple(actor_names))
        ticket = self._tickets.get(key)
        if ticket is None:
            ticket = CrossRackTicket(
                actors=tuple(actor_names), src_node=src_node,
                service=service,
                report=MigrationReport(
                    actor="+".join(actor_names),
                    direction=f"xrack:{src_node}->{dst_node}"))
            self._tickets[key] = ticket
        ticket.attempts += 1
        report = ticket.report
        report.direction = f"xrack:{src_node}->{dst_node}"

        # Phase 1: Prepare every actor; arm duplicate suppression.
        if ticket.milestone < 1:
            t0 = sim.now
            for name in actor_names:
                actor = src_runtime.actors.lookup(name)
                if actor is None:
                    raise RuntimeError(
                        f"cannot migrate unknown actor {name!r} off {src_node}")
                ticket.actor_objs.append(actor)
                actor.migration_state = MigrationState.PREPARE
                src_runtime.begin_buffering(actor)
                if actor.is_drr:
                    actor.is_drr = False
                    scheduler = src_runtime.nic_scheduler
                    if actor in scheduler.drr_runnable:
                        scheduler.drr_runnable.remove(actor)
                    scheduler.forfeit_deficit(actor)
            src_runtime.steer_suppress_active = True
            yield Timeout(PREPARE_COST_US)
            ticket.milestone = 1
            report.phase_us[1] = sim.now - t0

        # Phase 2: Drain each actor's mailbox and in-flight handler.
        if ticket.milestone < 2:
            t0 = sim.now
            for actor in ticket.actor_objs:
                while actor.mailbox:
                    msg = actor.mailbox.popleft()
                    yield from src_runtime.execute_for_migration(actor, msg)
                while not actor.try_lock(-1):
                    yield Timeout(1.0)
                actor.unlock(-1)
                actor.migration_state = MigrationState.READY
            yield Timeout(READY_COST_US)
            ticket.milestone = 2
            report.phase_us[2] = sim.now - t0

        # Phase 3a: Checkpoint (no simulated time: state is summarised
        # from DMO contents already resident on the source).
        if ticket.milestone < 3:
            for actor in ticket.actor_objs:
                spec = src_runtime._actor_specs.get(actor.name, {})
                ticket.steering_keys[actor.name] = list(
                    spec.get("steering_keys", [actor.name]))
                ticket.moved_bytes += src_runtime.dmo.bytes_owned(actor.name)
            ticket.state = detach() if detach is not None else (
                self._default_checkpoint(src_runtime, ticket))
            if isinstance(ticket.state, dict):
                ticket.moved_bytes += int(ticket.state.get("bytes", 0))
            ticket.seen = set(src_runtime._steer_seen)
            ticket.milestone = 3

        # Phase 3b: Ship the checkpoint over the uplink.  Re-runs in full
        # on retry after a destination failure (the new destination needs
        # its own copy).
        t0 = sim.now
        report.moved_bytes = ticket.moved_bytes
        yield Timeout(self.wire_transfer_us(src_runtime, ticket.moved_bytes))
        report.phase_us[3] = report.phase_us.get(3, 0.0) + (sim.now - t0)
        if not getattr(dst_runtime, "_running", True):
            raise MigrationInterrupted(src_node, dst_node, ticket.actors)

        # Phase 4: atomic hand-over — delete at source, restore at
        # destination, repoint steering, install tombstones.  No yields
        # inside this block: no packet can observe a half-moved backend.
        t0 = sim.now
        buffered: List[Message] = []
        for actor in ticket.actor_objs:
            buffered.extend(src_runtime.end_buffering(actor))
            actor.migration_state = MigrationState.GONE
            src_runtime.delete_actor(actor.name)
        dst_runtime._steer_seen.update(ticket.seen)
        dst_runtime.steer_suppress_active = True
        if attach is not None:
            attach(dst_runtime, ticket.state)
        else:
            self._default_restore(dst_runtime, ticket)
        new_epoch = -1
        if self.steering is not None and ticket.service is not None:
            new_epoch = self.steering.replace_backend(
                ticket.service, src_node, dst_node)
        tombstone_keys: List[str] = []
        for name in ticket.actors:
            for skey in ticket.steering_keys.get(name, [name]):
                src_runtime.forwarding[skey] = (dst_node, new_epoch)
                tombstone_keys.append(skey)

        # ... then forward the buffered requests to the new home.
        report.forwarded_requests += len(buffered)
        for msg in buffered:
            yield Timeout(src_runtime.nic.forward_cost(msg.size))
            pkt = msg.packet
            if pkt is None:
                pkt = Packet(src=src_node, dst=dst_node, size=msg.size,
                             kind=msg.target,
                             payload={"kind": msg.kind,
                                      "payload": msg.payload})
            else:
                pkt.dst = dst_node
                if "steer_epoch" in pkt.meta:
                    pkt.meta["steer_epoch"] = new_epoch
            pkt.meta["steer_forwarded"] = True
            src_runtime.transmit_from(Location.NIC, pkt)
        for actor in ticket.actor_objs:
            actor.migration_state = MigrationState.CLEAN
            actor.migration_state = MigrationState.RUNNING
        report.phase_us[4] = sim.now - t0

        sim.call_at(sim.now + window_us, self._flush_window,
                    src_runtime, dst_runtime, tombstone_keys,
                    ticket.service, src_node, dst_node)
        self.reports.append(report)
        _trace_xrack(sim, src_node, report)
        del self._tickets[key]
        return report

    # -- default state hooks ---------------------------------------------
    def _default_checkpoint(self, src_runtime, ticket: CrossRackTicket):
        """Snapshot every DMO the actors own (both object tables)."""
        snapshot: Dict[str, List[Tuple[int, object, Location]]] = {}
        for actor in ticket.actor_objs:
            owned: List[Tuple[int, object, Location]] = []
            for location in (Location.NIC, Location.HOST):
                table = src_runtime.dmo.tables[location]
                for obj in sorted(table.owned_by(actor.name),
                                  key=lambda o: o.object_id):
                    owned.append((obj.size, obj.data, location))
            snapshot[actor.name] = owned
        return {"dmo": snapshot, "bytes": 0}

    def _default_restore(self, dst_runtime, ticket: CrossRackTicket) -> None:
        """Re-register the actor objects and re-materialise their DMOs."""
        snapshot = (ticket.state or {}).get("dmo", {})
        for actor in ticket.actor_objs:
            actor.deregistered = False
            actor.migration_state = MigrationState.RUNNING
            actor._locked_by = None
            actor.is_drr = False
            actor.deficit = 0.0
            dst_runtime.register_actor(
                actor, steering_keys=ticket.steering_keys.get(actor.name))
            for size, data, location in snapshot.get(actor.name, []):
                dst_runtime.dmo.malloc(actor.name, size, data=data,
                                       location=location)

    def _flush_window(self, src_runtime, dst_runtime,
                      tombstone_keys: List[str], service: Optional[str],
                      old_backend: str, new_backend: str) -> None:
        """Close the forwarding window opened by one migration."""
        for skey in tombstone_keys:
            entry = src_runtime.forwarding.get(skey)
            if entry is not None and entry[0] == new_backend:
                del src_runtime.forwarding[skey]
        src_runtime.steer_suppress_active = False
        dst_runtime.steer_suppress_active = False
        if self.steering is not None and service is not None:
            self.steering.flush(service, old_backend)
