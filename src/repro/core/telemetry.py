"""Runtime observability: one-call snapshots of an iPipe deployment.

The paper's runtime keeps its bookkeeping (EWMA latencies, per-core
utilization, migration counters) in the NIC's scratchpad (§3.3); this
module exposes the equivalent as structured snapshots for operators,
examples, and the experiment harnesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from .actor import Location


@dataclass
class ActorSnapshot:
    name: str
    location: str
    scheduling_group: str          # "fcfs" / "drr"
    requests_seen: int
    mean_response_us: float
    mean_service_us: float
    dispersion_us: float
    mailbox_depth: int
    dmo_bytes: int


@dataclass
class SchedulerSnapshot:
    fcfs_cores: int = 0
    drr_cores: int = 0
    fcfs_wait_mean_us: float = 0.0
    fcfs_wait_tail_us: float = 0.0
    ops_completed: int = 0
    forwards_completed: int = 0
    downgrades: int = 0
    upgrades: int = 0
    pushes: int = 0
    pulls: int = 0
    core_moves: int = 0
    core_failures: int = 0
    core_stalls: int = 0


@dataclass
class ChannelSnapshot:
    to_host_produced: int = 0
    to_host_consumed: int = 0
    to_nic_produced: int = 0
    to_nic_consumed: int = 0
    checksum_failures: int = 0
    sync_messages: int = 0
    drops: int = 0
    nacks: int = 0
    retransmits: int = 0
    ring_full_backoffs: int = 0


@dataclass
class RecoverySnapshot:
    """Fault-injection and recovery roll-up for one server."""

    faults_injected: Dict[str, int] = field(default_factory=dict)
    fault_schedule_len: int = 0
    retransmits: int = 0
    ring_full_backoffs: int = 0
    nacks: int = 0
    messages_recovered: int = 0
    duplicates_dropped: int = 0
    crashes: int = 0
    restarts: int = 0
    core_failures: int = 0
    core_stalls: int = 0
    #: mean/max time-to-recovery across channel retransmits and actor
    #: restarts (first failure → back in service), microseconds
    mttr_mean_us: float = 0.0
    mttr_max_us: float = 0.0
    restart_mttr_mean_us: float = 0.0
    channel_mttr_mean_us: float = 0.0


@dataclass
class RuntimeSnapshot:
    """Everything an operator dashboard would show for one server."""

    node: str
    now_us: float
    nic_model: str
    nic_cores_used: float
    host_cores_used: float
    actors: List[ActorSnapshot] = field(default_factory=list)
    scheduler: SchedulerSnapshot = field(default_factory=SchedulerSnapshot)
    channel: ChannelSnapshot = field(default_factory=ChannelSnapshot)
    migrations: int = 0
    dos_kills: List[str] = field(default_factory=list)
    recovery: RecoverySnapshot = field(default_factory=RecoverySnapshot)
    #: windowed metrics from the TracePlane registry, when one is
    #: installed on the simulator ({metric name: typed summary dict})
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def actor(self, name: str) -> ActorSnapshot:
        for snap in self.actors:
            if snap.name == name:
                return snap
        raise KeyError(name)

    def placement(self) -> Dict[str, str]:
        return {a.name: a.location for a in self.actors}

    def summary(self) -> str:
        """A terse human-readable one-screen summary."""
        lines = [
            f"[{self.node}] t={self.now_us / 1000:.1f}ms  {self.nic_model}",
            f"  cores: NIC {self.nic_cores_used:.2f} busy "
            f"({self.scheduler.fcfs_cores} FCFS / {self.scheduler.drr_cores} DRR), "
            f"host {self.host_cores_used:.2f} busy",
            f"  sched: {self.scheduler.ops_completed} ops, "
            f"{self.scheduler.forwards_completed} forwards, "
            f"wait µ={self.scheduler.fcfs_wait_mean_us:.1f}µs "
            f"tail={self.scheduler.fcfs_wait_tail_us:.1f}µs",
            f"  adapt: {self.scheduler.downgrades}↓ {self.scheduler.upgrades}↑ "
            f"{self.scheduler.pushes} push / {self.scheduler.pulls} pull, "
            f"{self.migrations} migrations total",
        ]
        for a in self.actors:
            lines.append(
                f"  actor {a.name:14s} @{a.location:4s}/{a.scheduling_group:4s} "
                f"reqs={a.requests_seen:<7d} svc={a.mean_service_us:6.1f}µs "
                f"resp={a.mean_response_us:7.1f}µs mbox={a.mailbox_depth}")
        return "\n".join(lines)


def snapshot(runtime, window_us: float = None) -> RuntimeSnapshot:
    """Capture the current state of an :class:`IPipeRuntime`."""
    sim = runtime.sim
    elapsed = window_us if window_us is not None else max(sim.now, 1.0)
    sched = runtime.nic_scheduler
    chan = runtime.channel
    rchannel = runtime.rchannel
    registry = getattr(sim, "metrics", None)

    actors = []
    for actor in runtime.actors:
        actors.append(ActorSnapshot(
            name=actor.name,
            location=actor.location.value,
            scheduling_group="drr" if actor.is_drr else "fcfs",
            requests_seen=actor.requests_seen,
            mean_response_us=actor.latency.mu,
            mean_service_us=actor.service.mu,
            dispersion_us=actor.dispersion,
            mailbox_depth=len(actor.mailbox),
            dmo_bytes=runtime.dmo.bytes_owned(actor.name),
        ))

    return RuntimeSnapshot(
        node=runtime.node_name,
        now_us=sim.now,
        nic_model=runtime.nic.spec.model,
        nic_cores_used=runtime.nic.cores_used(elapsed),
        host_cores_used=runtime.host_cores_used(elapsed),
        actors=actors,
        scheduler=SchedulerSnapshot(
            fcfs_cores=sched.fcfs_cores(),
            drr_cores=sched.drr_cores(),
            fcfs_wait_mean_us=sched.fcfs_tracker.mu,
            fcfs_wait_tail_us=sched.fcfs_tracker.tail,
            ops_completed=sched.ops_completed,
            forwards_completed=sched.forwards_completed,
            downgrades=sched.downgrades,
            upgrades=sched.upgrades,
            pushes=sched.pushes,
            pulls=sched.pulls,
            core_moves=sched.core_moves,
            core_failures=sched.core_failures,
            core_stalls=sched.core_stalls,
        ),
        channel=ChannelSnapshot(
            to_host_produced=chan.to_host.produced,
            to_host_consumed=chan.to_host.consumed,
            to_nic_produced=chan.to_nic.produced,
            to_nic_consumed=chan.to_nic.consumed,
            checksum_failures=(chan.to_host.checksum_failures
                               + chan.to_nic.checksum_failures),
            sync_messages=(chan.to_host.sync_messages
                           + chan.to_nic.sync_messages),
            drops=runtime.channel_drops,
            nacks=chan.to_host.nacks + chan.to_nic.nacks,
            retransmits=rchannel.retransmits if rchannel is not None else 0,
            ring_full_backoffs=(rchannel.ring_full_backoffs
                                if rchannel is not None else 0),
        ),
        migrations=len(runtime.migrator.reports),
        dos_kills=list(runtime.config.isolation.kills),
        recovery=recovery_snapshot(runtime),
        metrics=registry.snapshot(sim.now) if registry is not None else {},
    )


def recovery_snapshot(runtime) -> RecoverySnapshot:
    """Roll up FaultPlane + recovery telemetry for one server."""
    sched = runtime.nic_scheduler
    chan = runtime.channel
    rchannel = runtime.rchannel              # Optional[ReliableChannel]
    plane = runtime.fault_plane              # Optional[FaultPlane]

    channel_samples = (list(rchannel.mttr_samples)
                       if rchannel is not None else [])
    restart_samples = list(runtime.recovery_mttr)
    all_samples = channel_samples + restart_samples

    def _mean(samples):
        return sum(samples) / len(samples) if samples else 0.0

    return RecoverySnapshot(
        faults_injected=dict(plane.counts) if plane is not None else {},
        fault_schedule_len=(len(plane.schedule_log)
                            if plane is not None else 0),
        retransmits=rchannel.retransmits if rchannel is not None else 0,
        ring_full_backoffs=(rchannel.ring_full_backoffs
                            if rchannel is not None else 0),
        nacks=chan.to_host.nacks + chan.to_nic.nacks,
        messages_recovered=rchannel.recovered if rchannel is not None else 0,
        duplicates_dropped=(rchannel.duplicates_dropped
                            if rchannel is not None else 0),
        crashes=runtime.crashes,
        restarts=runtime.restarts,
        core_failures=sched.core_failures,
        core_stalls=sched.core_stalls,
        mttr_mean_us=_mean(all_samples),
        mttr_max_us=max(all_samples) if all_samples else 0.0,
        restart_mttr_mean_us=_mean(restart_samples),
        channel_mttr_mean_us=_mean(channel_samples),
    )
