"""Distributed memory objects (§3.3).

A DMO is a chunk of memory owned by exactly one actor, resident on exactly
one side (NIC or host) at any time.  Data structures built on DMOs index by
*object ID* rather than pointer, giving the level of indirection that lets
iPipe relocate objects during actor migration without touching the actor's
logical state (Figure 12).

Functionally, each object carries a Python value (``data``); the declared
``size`` drives timing (DMA transfer costs during migration) and region
accounting (allocation fails once the actor's DRAM region is exhausted).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional

from .actor import Location

_object_ids = itertools.count(1)


class DmoError(Exception):
    """Illegal DMO operation (bad owner, missing object, region overflow)."""


@dataclass
class Dmo:
    """One distributed memory object (an object-table entry + its data)."""

    object_id: int
    actor: str
    size: int
    start_addr: int
    location: Location
    data: Any = None


class ObjectTable:
    """Per-side object table: object ID → entry (Figure 12-a)."""

    def __init__(self, location: Location):
        self.location = location
        self._objects: Dict[int, Dmo] = {}

    def insert(self, obj: Dmo) -> None:
        self._objects[obj.object_id] = obj

    def remove(self, object_id: int) -> Dmo:
        try:
            return self._objects.pop(object_id)
        except KeyError:
            raise DmoError(f"object {object_id} not on {self.location.value}") from None

    def get(self, object_id: int) -> Optional[Dmo]:
        return self._objects.get(object_id)

    def owned_by(self, actor: str) -> Iterable[Dmo]:
        return [o for o in self._objects.values() if o.actor == actor]

    def objects(self) -> Iterable[Dmo]:
        """All live entries (introspection; used by the DMO monitor)."""
        return list(self._objects.values())

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._objects


class DmoManager:
    """Allocation, access checking and migration of DMOs.

    One manager spans both sides; it owns the NIC-side and host-side object
    tables and the per-actor NIC DRAM regions.  Access checks implement the
    paging-based isolation of §3.4: an actor touching another actor's
    object traps into the runtime and is denied.
    """

    def __init__(self, nic_dram=None, region_bytes: int = 64 << 20):
        self.tables = {
            Location.NIC: ObjectTable(Location.NIC),
            Location.HOST: ObjectTable(Location.HOST),
        }
        self._nic_dram = nic_dram
        self._region_bytes = region_bytes
        self._regions: Dict[str, Any] = {}
        self.denied_accesses = 0
        self.translations = 0
        #: TenantPlane (docs/TENANCY.md): owning tenant per region, byte
        #: budgets and live allocation per tenant, and a counter of
        #: denials that crossed a tenant boundary (a strict subset of
        #: ``denied_accesses``; the TenantMonitor requires it to be 0).
        self._tenant_of: Dict[str, str] = {}
        self._tenant_budget: Dict[str, int] = {}
        self._tenant_used: Dict[str, int] = {}
        self.cross_tenant_denials = 0
        #: (actor, its tenant, owner, owner's tenant) of the most recent
        #: cross-tenant denial, so the TenantMonitor can name offenders.
        self.last_cross_tenant: Optional[tuple] = None

    @property
    def regions(self) -> Dict[str, Any]:
        """Per-actor memory regions (read-only view for the DMO monitor)."""
        return self._regions

    # -- tenancy -----------------------------------------------------------
    def tenant_of(self, actor: str) -> str:
        """Owning tenant of an actor's region ("" = implicit tenant)."""
        return self._tenant_of.get(actor, "")

    def set_tenant_budget(self, tenant: str, nbytes: int) -> None:
        """Cap a tenant's total live DMO bytes across all its regions."""
        self._tenant_budget[tenant] = nbytes

    def set_tenant(self, actor: str, tenant: str) -> None:
        """(Re-)tag an actor's region with its owning tenant.

        The scenario builder assigns tenants *after* app construction
        (init handlers may already have allocated objects), so any live
        bytes move between the usage ledgers with the tag.
        """
        old = self._tenant_of.get(actor, "")
        if old == tenant:
            return
        owned = sum(obj.size for table in self.tables.values()
                    for obj in table.owned_by(actor))
        if old and owned:
            self._tenant_used[old] = self._tenant_used.get(old, 0) - owned
        if tenant:
            self._tenant_of[actor] = tenant
            if owned:
                self._tenant_used[tenant] = \
                    self._tenant_used.get(tenant, 0) + owned
        else:
            self._tenant_of.pop(actor, None)

    def tenant_bytes_used(self, tenant: str) -> int:
        return self._tenant_used.get(tenant, 0)

    # -- actor region lifecycle (§3.3 "large equal-sized chunks") ----------
    def create_region(self, actor: str, nbytes: Optional[int] = None,
                      tenant: str = "") -> None:
        nbytes = nbytes or self._region_bytes
        if self._nic_dram is not None:
            region = self._nic_dram.create_region(actor, nbytes)
        else:
            from ..nic.memory import MemoryRegion
            region = MemoryRegion(actor, nbytes)
        self._regions[actor] = region
        if tenant:
            self._tenant_of[actor] = tenant

    def destroy_region(self, actor: str) -> None:
        self._regions.pop(actor, None)
        if self._nic_dram is not None:
            self._nic_dram.destroy_region(actor)
        tenant = self._tenant_of.pop(actor, "")
        for table in self.tables.values():
            for obj in list(table.owned_by(actor)):
                table.remove(obj.object_id)
                if tenant:
                    self._tenant_used[tenant] = \
                        self._tenant_used.get(tenant, 0) - obj.size

    # -- Table 4 DMO API -------------------------------------------------------
    def malloc(self, actor: str, size: int, data: Any = None,
               location: Location = Location.NIC) -> Dmo:
        """dmo_malloc: allocate an object inside the actor's region."""
        region = self._regions.get(actor)
        if region is None:
            raise DmoError(f"actor {actor!r} has no registered memory region")
        tenant = self._tenant_of.get(actor, "")
        budget = self._tenant_budget.get(tenant) if tenant else None
        if budget is not None \
                and self._tenant_used.get(tenant, 0) + size > budget:
            raise DmoError(
                f"tenant {tenant!r} DMO budget exhausted "
                f"({self._tenant_used.get(tenant, 0)}+{size}/{budget}B)")
        addr = region.allocate(size)
        if addr is None:
            raise DmoError(
                f"region of {actor!r} exhausted ({region.used}/{region.capacity}B)")
        obj = Dmo(object_id=next(_object_ids), actor=actor, size=size,
                  start_addr=addr, location=location, data=data)
        self.tables[location].insert(obj)
        if tenant:
            self._tenant_used[tenant] = \
                self._tenant_used.get(tenant, 0) + size
        return obj

    def free(self, actor: str, object_id: int) -> None:
        """dmo_free: release the object and its region space."""
        obj = self._checked(actor, object_id)
        self.tables[obj.location].remove(object_id)
        region = self._regions.get(actor)
        if region is not None:
            region.free(obj.size)
        tenant = self._tenant_of.get(actor, "")
        if tenant:
            self._tenant_used[tenant] = \
                self._tenant_used.get(tenant, 0) - obj.size

    def read(self, actor: str, object_id: int) -> Any:
        """Access an object's data (with ownership check + translation)."""
        return self._checked(actor, object_id).data

    def write(self, actor: str, object_id: int, data: Any) -> None:
        self._checked(actor, object_id).data = data

    def memset(self, actor: str, object_id: int, value: Any) -> None:
        """dmo_memset equivalent: overwrite the object's contents."""
        self.write(actor, object_id, value)

    def memcpy(self, actor: str, dst_id: int, src_id: int) -> None:
        """dmo_memcpy: copy data between two objects of the same actor."""
        src = self._checked(actor, src_id)
        dst = self._checked(actor, dst_id)
        dst.data = src.data

    def memmove(self, actor: str, dst_id: int, src_id: int) -> None:
        """dmo_memmove: move data (source is cleared)."""
        self.memcpy(actor, dst_id, src_id)
        self._checked(actor, src_id).data = None

    def migrate(self, actor: str, object_id: int, to: Location) -> Dmo:
        """dmo_migrate: relocate one object to the other side."""
        obj = self._checked(actor, object_id)
        if obj.location is to:
            return obj
        self.tables[obj.location].remove(object_id)
        obj.location = to
        self.tables[to].insert(obj)
        return obj

    def migrate_all(self, actor: str, to: Location) -> int:
        """Move every object of an actor; returns total bytes moved.

        Used by phase 3 of actor migration — the byte count prices the DMA
        transfer (Figure 18 shows this phase dominating at ~68%).
        """
        source = (Location.NIC if to is Location.HOST else Location.HOST)
        moved = 0
        for obj in list(self.tables[source].owned_by(actor)):
            self.migrate(actor, obj.object_id, to)
            moved += obj.size
        return moved

    def bytes_owned(self, actor: str, location: Optional[Location] = None) -> int:
        locations = [location] if location else list(self.tables)
        return sum(o.size for loc in locations
                   for o in self.tables[loc].owned_by(actor))

    # -- internals ---------------------------------------------------------------
    def _checked(self, actor: str, object_id: int) -> Dmo:
        self.translations += 1
        for table in self.tables.values():
            obj = table.get(object_id)
            if obj is not None:
                if obj.actor != actor:
                    self.denied_accesses += 1
                    mine = self._tenant_of.get(actor, "")
                    theirs = self._tenant_of.get(obj.actor, "")
                    if mine != theirs:
                        # the §3.4 trap doubles as the tenant boundary:
                        # the access never proceeds, and the monitor
                        # flags the attempt itself as a violation
                        self.cross_tenant_denials += 1
                        self.last_cross_tenant = (actor, mine,
                                                  obj.actor, theirs)
                        raise DmoError(
                            f"actor {actor!r} (tenant {mine or 'implicit'!r})"
                            f" denied cross-tenant access to object "
                            f"{object_id} owned by {obj.actor!r} "
                            f"(tenant {theirs or 'implicit'!r})")
                    raise DmoError(
                        f"actor {actor!r} denied access to object {object_id} "
                        f"owned by {obj.actor!r}")
                return obj
        raise DmoError(f"object {object_id} does not exist")
