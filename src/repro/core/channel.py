"""Host ↔ NIC message-passing channels (§3.5).

Each I/O channel is a pair of unidirectional circular buffers living in
host memory.  The NIC side writes the receive ring with batched
non-blocking DMA; the host polls it.  Head-pointer synchronization is
lazy: the consumer notifies the producer only after draining half the
ring.  Because the DMA engine may not write message bytes monotonically,
every message carries a 4-byte checksum the consumer verifies before
accepting it.

Functionally the rings carry :class:`~repro.core.actor.Message` objects;
the timing model charges the producer the DMA issue cost and delays
delivery by the PCIe transfer latency.
"""

from __future__ import annotations

import zlib
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..nic.dma import DmaEngine
from ..sim import Simulator
from .actor import Message

#: Message header: 4B checksum + 12B descriptor (§3.5).
HEADER_BYTES = 16


def message_checksum(msg: Message) -> int:
    """4-byte integrity checksum over the logical message header."""
    blob = f"{msg.msg_id}:{msg.target}:{msg.kind}:{msg.size}".encode()
    return zlib.crc32(blob) & 0xFFFFFFFF


def _noop() -> None:
    """Placeholder event anchoring a ring slot's DMA-visibility time."""


class RingFullError(Exception):
    """The circular buffer has no free slots (producer must back off)."""


class Ring:
    """One unidirectional circular buffer in host memory."""

    def __init__(self, sim: Simulator, dma: DmaEngine, slots: int = 8192,
                 producer_is_nic: bool = True, name: str = "ring"):
        if slots < 2:
            raise ValueError("ring needs at least 2 slots")
        self.sim = sim
        self.dma = dma
        self.slots = slots
        self.producer_is_nic = producer_is_nic
        self.name = name
        #: owning node, derived from the "<node>.chan.<dir>" naming scheme
        self.node_name = name.split(".", 1)[0]
        self._buffer: Deque = deque()
        #: Producer's (possibly stale) view of consumed entries.
        self._producer_free = slots
        self._consumed_since_sync = 0
        self.produced = 0
        self.consumed = 0
        self.sync_messages = 0
        self.checksum_failures = 0
        self.corrupt_injected = 0
        #: checksum failures signalled back to the producer side
        self.nacks = 0
        #: producer-side callback invoked with the discarded message when
        #: the consumer hits a checksum mismatch (reliable delivery hook)
        self.on_nack: Optional[Callable[[Message], None]] = None
        #: optional FaultPlane consulted per produce (torn DMA writes)
        self.fault_plane = None
        #: consumer frozen until this virtual time (FaultPlane ring stall)
        self.stalled_until = 0.0

    # -- producer side ------------------------------------------------------
    def produce_cost_us(self, msg: Message, batch: int = 1) -> float:
        """CPU cost for the producer to enqueue (non-blocking DMA write).

        Batching amortizes the command-issue cost across ``batch`` messages
        (implication I6).
        """
        issue = self.dma.write_latency_us(msg.size + HEADER_BYTES, blocking=False)
        return issue / max(batch, 1)

    def transfer_delay_us(self, msg: Message) -> float:
        """Wire time until the message is visible to the consumer."""
        return self.dma.write_latency_us(msg.size + HEADER_BYTES, blocking=True)

    def produce(self, msg: Message, corrupt: bool = False) -> None:
        """Place a message into the ring (visibility after PCIe delay).

        ``corrupt`` simulates a torn DMA write: the stored checksum will
        not match and the consumer must discard the message.
        """
        if self._producer_free <= 0:
            raise RingFullError(f"{self.name} full ({self.slots} slots)")
        self._producer_free -= 1
        plane = self.fault_plane or getattr(self.dma, "fault_plane", None)
        if not corrupt and plane is not None and plane.tear_write(self.name):
            corrupt = True
            note = getattr(self.dma, "note_torn_write", None)
            if note is not None:
                note()
        checksum = message_checksum(msg)
        if corrupt:
            checksum ^= 0xDEADBEEF
            self.corrupt_injected += 1
        # Slots are consumed strictly in ring order even though the DMA
        # engine may complete writes out of order — a later small message
        # becomes visible only once every earlier slot is also in place.
        visible_at = self.sim.now + self.transfer_delay_us(msg)
        if self._buffer:
            visible_at = max(visible_at, self._buffer[-1][2])
        self._buffer.append((msg, checksum, visible_at))
        self.produced += 1
        if getattr(self.sim, "tracer", None) is not None:
            # remembered for the crossing span recorded at poll time
            msg.meta["ring_t0"] = self.sim.now
        # anchor virtual time so run-to-idle passes the visibility point
        self.sim.post_at(visible_at, _noop)

    @property
    def full(self) -> bool:
        """Producer-visible fullness (subject to lazy head-pointer lag)."""
        return self._producer_free <= 0

    def wait_not_full(self, poll_us: float = 1.0):
        """Process generator: back off until the producer sees free slots."""
        from ..sim import Timeout
        while self.full:
            yield Timeout(poll_us)

    # -- consumer side ---------------------------------------------------------
    def stall(self, duration_us: float) -> None:
        """FaultPlane hook: freeze the consumer side (PCIe hiccup or a
        wedged polling driver).  Produces still land; polls return None
        until the stall expires."""
        self.stalled_until = max(self.stalled_until, self.sim.now + duration_us)
        # anchor virtual time so run-to-idle passes the stall expiry
        self.sim.post_at(self.stalled_until, _noop)

    def poll(self) -> Optional[Message]:
        """Non-blocking consume; returns None when the ring is empty,
        stalled, or the head message fails its checksum.  A checksum
        failure (torn write) is dropped here but *signalled*: the nack
        counter increments and ``on_nack`` — when wired — hands the
        discarded message back to the producer side for retransmission."""
        if self.stalled_until > self.sim.now:
            return None
        if not self._buffer:
            return None
        msg, checksum, visible_at = self._buffer[0]
        if visible_at > self.sim.now:
            return None            # head slot's DMA not yet complete
        self._buffer.popleft()
        self.consumed += 1
        self._note_consumed()
        tracer = getattr(self.sim, "tracer", None)
        if checksum != message_checksum(msg):
            self.checksum_failures += 1
            self.nacks += 1
            if tracer is not None:
                tracer.instant("nack", "channel.retx",
                               trace=msg.meta.get("trace"),
                               node=self.node_name, track=self.name,
                               ring=self.name)
            if self.on_nack is not None:
                self.on_nack(msg)
            return None
        if tracer is not None:
            t0 = msg.meta.pop("ring_t0", None)
            if t0 is not None:
                tracer.record_span(
                    "cross", "channel", t0, self.sim.now,
                    trace=msg.meta.get("trace"), node=self.node_name,
                    track=self.name, ring=self.name, size=msg.size,
                    dir=("to_host" if self.producer_is_nic else "to_nic"))
        return msg

    def _note_consumed(self) -> None:
        """Lazy header update: tell the producer about freed slots only
        after half the ring has been consumed (one message per half-ring
        instead of one per slot)."""
        self._consumed_since_sync += 1
        if self._consumed_since_sync >= self.slots // 2:
            self._producer_free += self._consumed_since_sync
            self._consumed_since_sync = 0
            self.sync_messages += 1

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def producer_view_free(self) -> int:
        return self._producer_free


class Channel:
    """A bidirectional I/O channel: NIC→host and host→NIC rings (§3.5)."""

    def __init__(self, sim: Simulator, dma: DmaEngine, slots: int = 8192,
                 name: str = "chan"):
        self.to_host = Ring(sim, dma, slots, producer_is_nic=True,
                            name=f"{name}.to_host")
        self.to_nic = Ring(sim, dma, slots, producer_is_nic=False,
                           name=f"{name}.to_nic")

    def nic_send(self, msg: Message, corrupt: bool = False) -> None:
        self.to_host.produce(msg, corrupt=corrupt)

    def host_send(self, msg: Message, corrupt: bool = False) -> None:
        self.to_nic.produce(msg, corrupt=corrupt)

    def host_poll(self) -> Optional[Message]:
        return self.to_host.poll()

    def nic_poll(self) -> Optional[Message]:
        return self.to_nic.poll()


class _ReliableDirection:
    """Per-direction reliable-delivery state (one ring)."""

    __slots__ = ("ring", "next_seq", "expected", "stash", "ready", "unacked",
                 "released")

    def __init__(self, ring: Ring):
        self.ring = ring
        self.next_seq: Dict[str, int] = {}     # key -> next seq to assign
        self.expected: Dict[str, int] = {}     # key -> next seq to release
        self.stash: Dict[Tuple[str, int], Message] = {}  # out-of-order
        self.ready: Deque[Message] = deque()   # in-order, awaiting poll
        self.unacked: Dict[Tuple[str, int], Message] = {}
        #: key -> messages released in order so far.  Mirrors ``expected``
        #: by construction; repro.check's ChannelMonitor compares the two
        #: to prove at-most-once, in-order delivery (a release loop bug
        #: would break the equality before it corrupts user state).
        self.released: Dict[str, int] = {}


class ReliableChannel:
    """Sequence-numbered reliable delivery layered over a :class:`Channel`.

    Every message gets a per-direction, per-steering-key sequence number
    in ``msg.meta``.  The producer retransmits with exponential backoff
    when the consumer nacks a checksum failure (torn DMA write) or when
    the ring is full; the consumer releases messages strictly in
    per-key sequence order, stashing out-of-order arrivals and dropping
    duplicates.  Delivery into consumer memory acts as the ack (the ring
    itself never reorders or loses slots — only torn writes lose data).

    Recovery telemetry: ``retransmits``, ``ring_full_backoffs``,
    ``recovered`` and per-message time-to-recovery samples
    (``mttr_samples``, first failure → in-order delivery).
    """

    RETRANSMIT_BASE_US = 2.0
    RETRANSMIT_MAX_US = 512.0

    def __init__(self, channel: Channel, sim: Simulator,
                 key_fn: Optional[Callable[[Message], str]] = None):
        self.channel = channel
        self.sim = sim
        #: steering key: delivery order is guaranteed per key (per actor)
        self.key_fn = key_fn or (lambda msg: msg.target)
        self._dirs = {
            "to_host": _ReliableDirection(channel.to_host),
            "to_nic": _ReliableDirection(channel.to_nic),
        }
        channel.to_host.on_nack = lambda m: self._nacked("to_host", m)
        channel.to_nic.on_nack = lambda m: self._nacked("to_nic", m)
        self.retransmits = 0
        self.ring_full_backoffs = 0
        self.recovered = 0
        self.duplicates_dropped = 0
        self.mttr_samples: List[float] = []
        #: direction -> callback fired when a delayed produce finally
        #: lands (lets an event-driven consumer schedule a poll)
        self.on_deliverable: Dict[str, Callable[[], None]] = {}

    # -- producer -------------------------------------------------------------
    def nic_send(self, msg: Message) -> None:
        self._send("to_host", msg)

    def host_send(self, msg: Message) -> None:
        self._send("to_nic", msg)

    def _send(self, direction: str, msg: Message) -> None:
        state = self._dirs[direction]
        key = self.key_fn(msg)
        seq = state.next_seq.get(key, 0)
        state.next_seq[key] = seq + 1
        msg.meta["rel_key"] = key
        msg.meta["rel_seq"] = seq
        state.unacked[(key, seq)] = msg
        self._produce(direction, msg)

    def _backoff_us(self, msg: Message) -> float:
        attempt = msg.meta.get("rel_attempts", 0)
        return min(self.RETRANSMIT_BASE_US * (2 ** attempt),
                   self.RETRANSMIT_MAX_US)

    def _defer(self, direction: str, msg: Message) -> None:
        msg.meta.setdefault("rel_first_fail", self.sim.now)
        delay = self._backoff_us(msg)
        msg.meta["rel_attempts"] = msg.meta.get("rel_attempts", 0) + 1
        self.sim.post(delay, self._produce, direction, msg)

    def _produce(self, direction: str, msg: Message) -> None:
        state = self._dirs[direction]
        key_seq = (self.key_fn(msg), msg.meta.get("rel_seq"))
        if key_seq not in state.unacked:
            return                 # delivered while this retry was pending
        try:
            state.ring.produce(msg)
        except RingFullError:
            self.ring_full_backoffs += 1
            self._defer(direction, msg)
            return
        if msg.meta.get("rel_attempts"):
            notify = self.on_deliverable.get(direction)
            if notify is not None:
                self.sim.post(state.ring.transfer_delay_us(msg), notify)

    def _nacked(self, direction: str, msg: Message) -> None:
        self.retransmits += 1
        tracer = getattr(self.sim, "tracer", None)
        if tracer is not None:
            tracer.instant("retransmit", "channel.retx",
                           trace=msg.meta.get("trace"),
                           node=self._dirs[direction].ring.node_name,
                           track=self._dirs[direction].ring.name,
                           attempts=msg.meta.get("rel_attempts", 0) + 1)
        self._defer(direction, msg)

    # -- consumer -------------------------------------------------------------
    def host_poll(self) -> Optional[Message]:
        return self._poll("to_host")

    def nic_poll(self) -> Optional[Message]:
        return self._poll("to_nic")

    def _poll(self, direction: str) -> Optional[Message]:
        state = self._dirs[direction]
        self._drain_ring(state)
        if state.ready:
            return state.ready.popleft()
        return None

    def _drain_ring(self, state: _ReliableDirection) -> None:
        while True:
            msg = state.ring.poll()
            if msg is None:
                return
            key = msg.meta.get("rel_key")
            if key is None:
                state.ready.append(msg)   # unsequenced traffic passes through
                continue
            seq = msg.meta["rel_seq"]
            state.unacked.pop((key, seq), None)
            expected = state.expected.get(key, 0)
            if seq < expected:
                self.duplicates_dropped += 1
                continue
            state.stash[(key, seq)] = msg
            while (key, expected) in state.stash:
                released = state.stash.pop((key, expected))
                expected += 1
                state.released[key] = state.released.get(key, 0) + 1
                self._note_delivered(released, state.ring)
                state.ready.append(released)
            state.expected[key] = expected

    def _note_delivered(self, msg: Message, ring: Ring) -> None:
        first_fail = msg.meta.pop("rel_first_fail", None)
        if first_fail is not None:
            self.recovered += 1
            self.mttr_samples.append(self.sim.now - first_fail)
            tracer = getattr(self.sim, "tracer", None)
            if tracer is not None:
                # the recovery interval: first failed delivery attempt
                # until in-order release to the consumer (channel MTTR)
                tracer.record_span(
                    "recovery", "channel.retx", first_fail, self.sim.now,
                    trace=msg.meta.get("trace"), node=ring.node_name,
                    track=ring.name, key=msg.meta.get("rel_key"),
                    seq=msg.meta.get("rel_seq"),
                    attempts=msg.meta.get("rel_attempts", 0))
            metrics = getattr(self.sim, "metrics", None)
            if metrics is not None:
                metrics.histogram("channel.mttr_us").record(
                    self.sim.now, self.sim.now - first_fail)

    # -- introspection --------------------------------------------------------
    def pending(self, direction: str) -> int:
        """Messages not yet released in order (in flight, stashed, ready)."""
        state = self._dirs[direction]
        return len(state.ready) + len(state.stash) + len(state.unacked)

    @property
    def mttr_mean_us(self) -> float:
        if not self.mttr_samples:
            return 0.0
        return sum(self.mttr_samples) / len(self.mttr_samples)
