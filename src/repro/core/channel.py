"""Host ↔ NIC message-passing channels (§3.5).

Each I/O channel is a pair of unidirectional circular buffers living in
host memory.  The NIC side writes the receive ring with batched
non-blocking DMA; the host polls it.  Head-pointer synchronization is
lazy: the consumer notifies the producer only after draining half the
ring.  Because the DMA engine may not write message bytes monotonically,
every message carries a 4-byte checksum the consumer verifies before
accepting it.

Functionally the rings carry :class:`~repro.core.actor.Message` objects;
the timing model charges the producer the DMA issue cost and delays
delivery by the PCIe transfer latency.
"""

from __future__ import annotations

import zlib
from collections import deque
from typing import Callable, Deque, Optional

from ..nic.dma import DmaEngine
from ..sim import Simulator
from .actor import Message

#: Message header: 4B checksum + 12B descriptor (§3.5).
HEADER_BYTES = 16


def message_checksum(msg: Message) -> int:
    """4-byte integrity checksum over the logical message header."""
    blob = f"{msg.msg_id}:{msg.target}:{msg.kind}:{msg.size}".encode()
    return zlib.crc32(blob) & 0xFFFFFFFF


def _noop() -> None:
    """Placeholder event anchoring a ring slot's DMA-visibility time."""


class RingFullError(Exception):
    """The circular buffer has no free slots (producer must back off)."""


class Ring:
    """One unidirectional circular buffer in host memory."""

    def __init__(self, sim: Simulator, dma: DmaEngine, slots: int = 8192,
                 producer_is_nic: bool = True, name: str = "ring"):
        if slots < 2:
            raise ValueError("ring needs at least 2 slots")
        self.sim = sim
        self.dma = dma
        self.slots = slots
        self.producer_is_nic = producer_is_nic
        self.name = name
        self._buffer: Deque = deque()
        #: Producer's (possibly stale) view of consumed entries.
        self._producer_free = slots
        self._consumed_since_sync = 0
        self.produced = 0
        self.consumed = 0
        self.sync_messages = 0
        self.checksum_failures = 0
        self.corrupt_injected = 0

    # -- producer side ------------------------------------------------------
    def produce_cost_us(self, msg: Message, batch: int = 1) -> float:
        """CPU cost for the producer to enqueue (non-blocking DMA write).

        Batching amortizes the command-issue cost across ``batch`` messages
        (implication I6).
        """
        issue = self.dma.write_latency_us(msg.size + HEADER_BYTES, blocking=False)
        return issue / max(batch, 1)

    def transfer_delay_us(self, msg: Message) -> float:
        """Wire time until the message is visible to the consumer."""
        return self.dma.write_latency_us(msg.size + HEADER_BYTES, blocking=True)

    def produce(self, msg: Message, corrupt: bool = False) -> None:
        """Place a message into the ring (visibility after PCIe delay).

        ``corrupt`` simulates a torn DMA write: the stored checksum will
        not match and the consumer must discard the message.
        """
        if self._producer_free <= 0:
            raise RingFullError(f"{self.name} full ({self.slots} slots)")
        self._producer_free -= 1
        checksum = message_checksum(msg)
        if corrupt:
            checksum ^= 0xDEADBEEF
            self.corrupt_injected += 1
        # Slots are consumed strictly in ring order even though the DMA
        # engine may complete writes out of order — a later small message
        # becomes visible only once every earlier slot is also in place.
        visible_at = self.sim.now + self.transfer_delay_us(msg)
        if self._buffer:
            visible_at = max(visible_at, self._buffer[-1][2])
        self._buffer.append((msg, checksum, visible_at))
        self.produced += 1
        # anchor virtual time so run-to-idle passes the visibility point
        self.sim.call_at(visible_at, _noop)

    @property
    def full(self) -> bool:
        """Producer-visible fullness (subject to lazy head-pointer lag)."""
        return self._producer_free <= 0

    def wait_not_full(self, poll_us: float = 1.0):
        """Process generator: back off until the producer sees free slots."""
        from ..sim import Timeout
        while self.full:
            yield Timeout(poll_us)

    # -- consumer side ---------------------------------------------------------
    def poll(self) -> Optional[Message]:
        """Non-blocking consume; returns None when the ring is empty or the
        head message fails its checksum (torn write → retried later by the
        producer, dropped here)."""
        if not self._buffer:
            return None
        msg, checksum, visible_at = self._buffer[0]
        if visible_at > self.sim.now:
            return None            # head slot's DMA not yet complete
        self._buffer.popleft()
        self.consumed += 1
        self._note_consumed()
        if checksum != message_checksum(msg):
            self.checksum_failures += 1
            return None
        return msg

    def _note_consumed(self) -> None:
        """Lazy header update: tell the producer about freed slots only
        after half the ring has been consumed (one message per half-ring
        instead of one per slot)."""
        self._consumed_since_sync += 1
        if self._consumed_since_sync >= self.slots // 2:
            self._producer_free += self._consumed_since_sync
            self._consumed_since_sync = 0
            self.sync_messages += 1

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def producer_view_free(self) -> int:
        return self._producer_free


class Channel:
    """A bidirectional I/O channel: NIC→host and host→NIC rings (§3.5)."""

    def __init__(self, sim: Simulator, dma: DmaEngine, slots: int = 8192,
                 name: str = "chan"):
        self.to_host = Ring(sim, dma, slots, producer_is_nic=True,
                            name=f"{name}.to_host")
        self.to_nic = Ring(sim, dma, slots, producer_is_nic=False,
                           name=f"{name}.to_nic")

    def nic_send(self, msg: Message, corrupt: bool = False) -> None:
        self.to_host.produce(msg, corrupt=corrupt)

    def host_send(self, msg: Message, corrupt: bool = False) -> None:
        self.to_nic.produce(msg, corrupt=corrupt)

    def host_poll(self) -> Optional[Message]:
        return self.to_host.poll()

    def nic_poll(self) -> Optional[Message]:
        return self.to_nic.poll()
