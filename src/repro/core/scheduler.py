"""The iPipe hybrid FCFS/DRR actor scheduler (§3.2, ALG 1 & ALG 2).

Scheduling cores all start in FCFS mode, pulling work items from the
shared queue the (hardware) traffic manager exposes and running actor
handlers to completion.  The scheduler then adapts:

* **Downgrade** — when the FCFS group's tail latency (µ+3σ estimate)
  exceeds ``tail_thresh``, the actor with the *highest dispersion* moves to
  the DRR runnable queue; a DRR core is spawned if none exists.
* **Upgrade** — when the FCFS tail falls below ``(1−α)·tail_thresh``, the
  DRR actor with the *lowest dispersion* returns to the FCFS group.
* **Push migration** — when the FCFS mean exceeds ``mean_thresh`` (queue
  build-up on the NIC), the actor contributing the most load migrates to
  the host.  A DRR actor whose mailbox exceeds ``q_thresh`` is also pushed.
* **Pull migration** — when the FCFS mean drops below
  ``(1−α)·mean_thresh`` and the FCFS group has CPU headroom, the
  lightest host actor is pulled back to the NIC.
* **Core auto-scaling** (§3.2.4) — cores move between the FCFS and DRR
  groups based on group utilization.

DRR cores scan the runnable queue round-robin; an actor executes a request
when its deficit counter covers the actor's estimated latency.  The
quantum added per round is the maximum tolerated forwarding latency for
the actor's average request size (the Figure-4 computing headroom).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional
from collections import deque

from ..nic.cores import CoreHealth
from ..sim import LatencyTracker, Simulator, Timeout, spawn
from .actor import Actor, ActorTable, Location, Message
from .isolation import IsolationPolicy, Watchdog


@dataclass
class SchedulerConfig:
    """Thresholds and knobs of the hybrid scheduler.

    Defaults follow §3.2.3 / §5.4: the tail threshold is the P99 latency of
    line-rate MTU forwarding (measured 52.8µs on the LiquidIOII, 44.6µs on
    the Stingray), the hysteresis factor α avoids oscillation.
    """

    tail_thresh_us: float = 52.8
    mean_thresh_us: float = 15.0
    alpha: float = 0.25
    q_thresh: int = 128
    stats_alpha: float = 0.1
    #: Fallback DRR quantum when no per-size headroom model is supplied.
    default_quantum_us: float = 10.0
    migration_enabled: bool = True
    downgrade_enabled: bool = True
    autoscale: bool = True
    min_fcfs_cores: int = 1
    #: Utilization window for auto-scaling decisions.
    util_window_us: float = 500.0
    #: Idle poll interval for DRR cores with nothing runnable.
    idle_poll_us: float = 0.5
    #: Minimum spacing between downgrade (resp. upgrade) decisions — keeps
    #: the adaptation from dumping every actor into DRR in one burst.
    adapt_cooldown_us: float = 200.0
    #: Minimum spacing between migrations: a push/pull pair costs two
    #: object moves plus request buffering, so rapid oscillation throttles
    #: the very traffic the migration is meant to protect.
    migration_cooldown_us: float = 2_000.0
    isolation: IsolationPolicy = field(default_factory=IsolationPolicy)


class WorkItem:
    """What the traffic manager queue carries: a message bound for an
    actor, or a raw forwarding task (transit traffic / host TX)."""

    __slots__ = ("message", "forward_cost_us", "forward_action", "arrived_at",
                 "trace")

    def __init__(self, message: Optional[Message] = None,
                 forward_cost_us: float = 0.0,
                 forward_action: Optional[Callable[[], None]] = None,
                 arrived_at: float = 0.0,
                 trace=None):
        self.message = message
        self.forward_cost_us = forward_cost_us
        self.forward_action = forward_action
        self.arrived_at = arrived_at
        #: trace context of the request this raw item forwards, if any
        self.trace = trace


#: executor(core_id, actor, message) -> generator charging virtual time
Executor = Callable[[int, Actor, Message], object]
#: dispatch(message) -> actor or None
Dispatcher = Callable[[Message], Optional[Actor]]


class NicScheduler:
    """Runs the hybrid discipline over a SmartNIC's cores."""

    def __init__(self, sim: Simulator, *,
                 num_cores: int,
                 work_queue,                      # TrafficManager-like
                 actor_table: ActorTable,
                 executor: Executor,
                 config: Optional[SchedulerConfig] = None,
                 quantum_fn: Optional[Callable[[Actor], float]] = None,
                 on_push_migration: Optional[Callable[[Actor], object]] = None,
                 on_pull_migration: Optional[Callable[[], Optional[object]]] = None,
                 redeliver: Optional[Callable[[Message], None]] = None,
                 core_util=None,
                 on_actor_killed: Optional[Callable[[Actor], None]] = None,
                 node_name: str = "nic"):
        self.sim = sim
        #: owning server's name, stamped onto spans and metrics
        self.node_name = node_name
        self.num_cores = num_cores
        self.queue = work_queue
        self.actors = actor_table
        self.executor = executor
        self.config = config or SchedulerConfig()
        self.quantum_fn = quantum_fn or (
            lambda actor: self.config.default_quantum_us)
        self.on_push_migration = on_push_migration
        self.on_pull_migration = on_pull_migration
        self.redeliver = redeliver
        self.core_util = core_util or [None] * num_cores
        #: notified after the watchdog kills an actor (recovery hook)
        self.on_actor_killed = on_actor_killed

        #: "fcfs" / "drr" / "failed" mode per core.
        self.core_mode: List[str] = ["fcfs"] * num_cores
        #: the dedicated management core (§3.2.2); promoted on core failure
        self.mgmt_core = 0
        self.core_health = CoreHealth(num_cores)
        self.core_failures = 0
        self.core_stalls = 0
        self.drr_runnable: Deque[Actor] = deque()
        #: DRR quantum-conservation ledger (checked by
        #: repro.check.monitors.SchedulerMonitor): every µs of deficit an
        #: actor is granted is either spent on execution, forfeited when
        #: the actor leaves the DRR group (upgrade, kill, crash, empty
        #: mailbox reset), or still outstanding on a runnable actor.
        self.quantum_granted_us = 0.0
        self.deficit_spent_us = 0.0
        self.deficit_forfeited_us = 0.0
        #: Hierarchical DRR (docs/TENANCY.md): tenant -> NIC-core share.
        #: Empty means the implicit single tenant — every quantum path
        #: multiplies by exactly 1.0 and the event schedule is identical
        #: to the untenanted scheduler.
        self.tenant_shares: Dict[str, float] = {}
        #: Per-tenant split of the conservation ledger (keyed by
        #: ``actor.tenant``; the implicit tenant books under "").  The
        #: TenantMonitor proves granted == spent + forfeited +
        #: outstanding per tenant, and that the per-tenant dicts sum to
        #: the global ledger.
        self.tenant_granted_us: Dict[str, float] = {}
        self.tenant_spent_us: Dict[str, float] = {}
        self.tenant_forfeited_us: Dict[str, float] = {}
        #: Per-tenant handler busy time (feeds per-tenant utilization
        #: pulse series and the per-tenant QuotaEnforcer budgets).
        self.tenant_busy_us: Dict[str, float] = {}
        #: Queueing-delay tracker of operations handled by the FCFS group.
        #: The thresholds are forwarding-latency budgets (§3.2.3 derives
        #: them from line-rate MTU forwarding), so the compared statistic
        #: is the delay an operation waited before service — the latency
        #: that would equally be inflicted on forwarded traffic.
        self.fcfs_tracker = LatencyTracker(alpha=self.config.stats_alpha)
        self.drr_tracker = LatencyTracker(alpha=self.config.stats_alpha)
        self._group_busy: Dict[str, float] = {"fcfs": 0.0, "drr": 0.0}
        self._window_start = 0.0
        self.ops_completed = 0
        self.forwards_completed = 0
        self.downgrades = 0
        self.upgrades = 0
        self.pushes = 0
        self.pulls = 0
        self.core_moves = 0
        self._migration_inflight = False
        self._last_migration = -1e18
        self._last_downgrade = -1e18
        self._last_upgrade = -1e18
        self._running = True
        self._watchdogs = [Watchdog(self.config.isolation)
                           for _ in range(num_cores)]
        self._procs = [spawn(sim, self._core_loop(core), name=f"nic-core{core}")
                       for core in range(num_cores)]

    # -- lifecycle -------------------------------------------------------------
    def stop(self) -> None:
        self._running = False

    def forfeit_deficit(self, actor: Actor) -> None:
        """Zero an actor's deficit, accounting it as forfeited.

        Called wherever an actor leaves the DRR group with credit still
        on the books — upgrade back to FCFS, watchdog kill, crash,
        deletion, or the empty-mailbox reset of ALG 2 — so the quantum
        conservation invariant stays balanced.
        """
        if actor.deficit:
            self.deficit_forfeited_us += actor.deficit
            tenant = getattr(actor, "tenant", "")
            self.tenant_forfeited_us[tenant] = \
                self.tenant_forfeited_us.get(tenant, 0.0) + actor.deficit
            actor.deficit = 0.0

    def set_tenant_shares(self, shares: Dict[str, float]) -> None:
        """Turn on hierarchical DRR: tenant -> NIC-core share.

        A tenant's runnable actors collectively receive a
        share-proportional fraction of each DRR scan's quantum pool
        (the pool is split evenly across the tenant's runnable actors),
        so one tenant flooding the NIC with actors cannot starve
        another's quantum stream.  Tenants absent from ``shares`` (and
        the implicit "" tenant) keep the flat per-actor quantum.
        """
        self.tenant_shares = dict(shares)

    def _tenant_quantum_scale(self, actor: Actor) -> float:
        """Share-scaled pool factor for one actor's quantum grant.

        ``share * total_runnable / tenant_runnable``: the tenant's
        aggregate grant per scan is ``share`` of the flat pool however
        many actors it runs.  Exactly 1.0 when no shares are configured.
        """
        if not self.tenant_shares:
            return 1.0
        share = self.tenant_shares.get(getattr(actor, "tenant", ""))
        if share is None or share <= 0.0:
            return 1.0
        tenant = actor.tenant
        members = 0
        total = 0
        for a in self.drr_runnable:
            if not a.schedulable:
                continue
            total += 1
            if getattr(a, "tenant", "") == tenant:
                members += 1
        if members == 0 or total == 0:
            return 1.0
        return share * total / members

    def fcfs_cores(self) -> int:
        return sum(1 for m in self.core_mode if m == "fcfs")

    def drr_cores(self) -> int:
        return sum(1 for m in self.core_mode if m == "drr")

    # -- core faults (FaultPlane hooks) --------------------------------------
    def stall_core(self, core_id: int, duration_us: float) -> bool:
        """Freeze one core for ``duration_us``; survivors keep scheduling."""
        if not 0 <= core_id < self.num_cores:
            return False
        if not self.core_health.alive(core_id):
            return False
        self.core_health.stall(core_id, self.sim.now, duration_us)
        self.core_stalls += 1
        return True

    def fail_core(self, core_id: int) -> bool:
        """Permanently fail one core and rebalance the survivors.

        Takes effect at the core's next scheduling boundary (cooperative,
        the same granularity as the DoS watchdog).  If the management
        core dies, management duty is promoted to the next live FCFS
        core; the FCFS floor and a live DRR core (when DRR work exists)
        are then restored by converting survivors.
        """
        if not 0 <= core_id < self.num_cores:
            return False
        if not self.core_health.alive(core_id):
            return False
        self.core_health.fail(core_id)
        prev_mode = self.core_mode[core_id]
        self.core_mode[core_id] = "failed"
        self.core_failures += 1
        alive = [c for c in range(self.num_cores)
                 if self.core_health.alive(c)]
        if not alive:
            return True            # whole NIC down: nothing to rebalance
        if core_id == self.mgmt_core:
            fcfs_alive = [c for c in alive if self.core_mode[c] == "fcfs"]
            self.mgmt_core = fcfs_alive[0] if fcfs_alive else alive[0]
            self.core_mode[self.mgmt_core] = "fcfs"  # mgmt is always FCFS
        if self.fcfs_cores() < self.config.min_fcfs_cores:
            for core in alive:
                if self.core_mode[core] == "drr":
                    self.core_mode[core] = "fcfs"
                    self.core_moves += 1
                    break
        if prev_mode == "drr" and self.drr_cores() == 0 and self.drr_runnable:
            for core in alive:
                if (self.core_mode[core] == "fcfs"
                        and core != self.mgmt_core
                        and self.fcfs_cores() > self.config.min_fcfs_cores):
                    self.core_mode[core] = "drr"
                    self.core_moves += 1
                    break
        return True

    # -- core main loops ----------------------------------------------------------
    def _core_loop(self, core_id: int):
        while self._running:
            if not self.core_health.alive(core_id):
                return             # failed core: its loop ends for good
            stall = self.core_health.stall_remaining(core_id, self.sim.now)
            if stall > 0.0:
                yield Timeout(stall)
                continue
            mode = self.core_mode[core_id]
            if mode == "fcfs":
                yield from self._fcfs_iteration(core_id)
            elif mode == "drr":
                yield from self._drr_iteration(core_id)
            else:
                # core reassigned outside the scheduler (e.g. to an
                # off-path IOKernel dispatcher): parked here
                yield Timeout(50.0)

    # ALG 1 ---------------------------------------------------------------------
    def _fcfs_iteration(self, core_id: int):
        item: Optional[WorkItem] = None
        if hasattr(self.queue, "try_pop"):
            item = self.queue.try_pop()
        if item is None and self.drr_runnable:
            # Work conservation: an idle FCFS core steals backlogged DRR
            # work rather than blocking while DRR cores drown (§3.2.6's
            # stealing, mirrored from the FCFS side).
            stole = yield from self._steal_drr_work(core_id)
            if not stole:
                yield Timeout(self.config.idle_poll_us)
        elif item is None:
            item = yield self.queue.pop()
        if item is not None:
            yield from self._handle_item(core_id, item)

        # -- adaptation checks (lines 13-24 of ALG 1) -------------------------
        now = self.sim.now
        if (self.config.downgrade_enabled
                and self.fcfs_tracker.tail > self.config.tail_thresh_us
                and now - self._last_downgrade >= self.config.adapt_cooldown_us):
            if self._downgrade_highest_dispersion():
                self._last_downgrade = now
        if core_id == self.mgmt_core:
            yield from self._management_checks()
        if self.config.autoscale:
            self._autoscale(core_id)

    def _handle_item(self, core_id: int, item: WorkItem):
        """Dispatch + run one shared-queue work item (ALG 1 lines 5-12)."""
        start = self.sim.now
        sync = getattr(self.queue, "dequeue_sync_us", 0.0)
        if sync:
            yield Timeout(sync)

        if item.message is None:
            # raw forwarding work (transit traffic, host-originated TX)
            if item.forward_cost_us > 0:
                yield Timeout(item.forward_cost_us)
            if item.forward_action is not None:
                item.forward_action()
            self._account(core_id, "fcfs", self.sim.now - start)
            self.fcfs_tracker.record(self.sim.now - item.arrived_at)
            self.forwards_completed += 1
            tracer = getattr(self.sim, "tracer", None)
            if tracer is not None:
                tracer.record_span(
                    "forward", "forward", item.arrived_at, self.sim.now,
                    trace=item.trace, node=self.node_name,
                    track=f"core{core_id}", wait_us=start - item.arrived_at)
            return

        actor = self.actors.lookup(item.message.target)
        if actor is None:
            # hand it back to the router: a crashed-but-restartable actor
            # buffers the message; anything else stays a drop
            if self.redeliver is not None:
                self.redeliver(item.message)
            self._account(core_id, "fcfs", self.sim.now - start)
            return
        if not actor.schedulable or actor.location is not Location.NIC:
            # The actor migrated (or is mid-migration) after this item was
            # queued — hand the message back to the runtime's router, which
            # buffers it or crosses the channel, instead of dropping it.
            if self.redeliver is not None and not actor.deregistered:
                self.redeliver(item.message)
            self._account(core_id, "fcfs", self.sim.now - start)
            return
        if actor.is_drr:
            actor.mailbox.append(item.message)
            self._account(core_id, "fcfs", self.sim.now - start)
            self._maybe_drr_mailbox_migration(actor)
            return
        yield from self._run_actor(core_id, actor, item.message,
                                   item.arrived_at, group="fcfs")

    def _steal_drr_work(self, core_id: int):
        """Run one request from the most backlogged DRR actor (or False)."""
        backlogged = [a for a in self.drr_runnable
                      if a.mailbox and a.schedulable]
        if not backlogged:
            return False
        actor = max(backlogged, key=lambda a: len(a.mailbox))
        if not actor.try_lock(core_id):
            return False
        try:
            msg = actor.mailbox.popleft()
            yield from self._run_actor(
                core_id, actor, msg,
                msg.meta.get("nic_arrival", msg.created_at), group="drr")
        finally:
            actor.unlock(core_id)
        return True

    # ALG 2 --------------------------------------------------------------------
    def _drr_iteration(self, core_id: int):
        did_work = False
        for actor in list(self.drr_runnable):
            if not actor.is_drr or not actor.schedulable:
                continue
            if not actor.mailbox:
                self.forfeit_deficit(actor)
                continue
            quantum = self.quantum_fn(actor)
            if self.tenant_shares:
                quantum *= self._tenant_quantum_scale(actor)
            actor.deficit += quantum
            self.quantum_granted_us += quantum
            tenant = getattr(actor, "tenant", "")
            self.tenant_granted_us[tenant] = \
                self.tenant_granted_us.get(tenant, 0.0) + quantum
            # ALG 2 compares the deficit against the actor's *execution*
            # latency estimate (pure service time — using the response time
            # here would let backlog inflate the bar and starve the actor).
            est = max(actor.mean_service_us, 0.1)
            while (actor.mailbox and actor.deficit >= est
                   and self.core_mode[core_id] == "drr"):
                if not actor.try_lock(core_id):
                    break
                try:
                    msg = actor.mailbox.popleft()
                    exec_start = self.sim.now
                    yield from self._run_actor(
                        core_id, actor, msg,
                        msg.meta.get("nic_arrival", msg.created_at),
                        group="drr")
                    charge = max(self.sim.now - exec_start, est)
                    actor.deficit -= charge
                    self.deficit_spent_us += charge
                    self.tenant_spent_us[tenant] = \
                        self.tenant_spent_us.get(tenant, 0.0) + charge
                finally:
                    actor.unlock(core_id)
                did_work = True
                est = max(actor.mean_service_us, 0.1)
            if not actor.mailbox:
                self.forfeit_deficit(actor)
            self._maybe_drr_mailbox_migration(actor)
            # upgrade check (lines 10-12 of ALG 2)
            threshold = (1 - self.config.alpha) * self.config.tail_thresh_us
            if (self.fcfs_tracker.tail < threshold
                    and self.sim.now - self._last_upgrade
                    >= self.config.adapt_cooldown_us):
                if self._upgrade_lowest_dispersion():
                    self._last_upgrade = self.sim.now
        if self.config.autoscale:
            self._autoscale(core_id)
        if not did_work:
            # Work conservation: an idle DRR core pulls from the shared
            # queue itself — dispatching to mailboxes, or running FCFS
            # actors' requests to completion (akin to ZygOS stealing).
            item = None
            if hasattr(self.queue, "try_pop"):
                item = self.queue.try_pop()
            if item is not None:
                yield from self._handle_item(core_id, item)
            else:
                yield Timeout(self.config.idle_poll_us)

    # -- handler execution -------------------------------------------------------
    def _run_actor(self, core_id: int, actor: Actor, msg: Message,
                   arrived_at: float, group: str):
        if group == "fcfs" and not actor.try_lock(core_id):
            # exec_lock held elsewhere: requeue behind current work
            actor.mailbox.append(msg)
            return
        tracer = getattr(self.sim, "tracer", None)
        span = None
        if tracer is not None:
            tctx = msg.meta.get("trace")
            if arrived_at and self.sim.now > arrived_at:
                tracer.record_span(
                    "queue-wait", "sched.wait", arrived_at, self.sim.now,
                    trace=tctx, node=self.node_name, track=f"core{core_id}",
                    actor=actor.name, group=group)
            span = tracer.start_span(
                f"exec:{actor.name}", "service", trace=tctx,
                node=self.node_name, track=f"core{core_id}",
                actor=actor.name, core=core_id, group=group, loc="nic")
            msg.meta["span"] = span
        watchdog = self._watchdogs[core_id]
        watchdog.arm(self.sim.now, actor)
        start = self.sim.now
        try:
            gen = self.executor(core_id, actor, msg)
            if gen is not None:
                yield from self._bounded(gen, watchdog)
        finally:
            watchdog.disarm()
            if span is not None:
                tracer.end(span)
                msg.meta.pop("span", None)
            if group == "fcfs":
                actor.unlock(core_id)
                # Requests that arrived while we held the exec_lock were
                # parked in the mailbox; put them back on the shared queue
                # so any FCFS core can pick them up.
                while actor.mailbox and not actor.is_drr:
                    parked = actor.mailbox.popleft()
                    self.queue.push(WorkItem(
                        message=parked,
                        arrived_at=parked.meta.get("nic_arrival", self.sim.now)))
        busy = self.sim.now - start
        response = self.sim.now - (arrived_at or start)
        wait = max(start - (arrived_at or start), 0.0)
        self._account(core_id, group, busy)
        tenant = getattr(actor, "tenant", "")
        self.tenant_busy_us[tenant] = \
            self.tenant_busy_us.get(tenant, 0.0) + busy
        actor.record_execution(response, msg.size, service_us=busy)
        # The group trackers feed the adaptation logic, so they must stay
        # fresh even when every actor lives in DRR: attribute the sample by
        # the *core's* mode (an FCFS core stealing DRR work still informs
        # the FCFS-side view of system latency).
        core_mode = (self.core_mode[core_id]
                     if 0 <= core_id < self.num_cores else group)
        tracker = self.fcfs_tracker if core_mode == "fcfs" else self.drr_tracker
        tracker.record(wait)
        self.ops_completed += 1
        metrics = getattr(self.sim, "metrics", None)
        if metrics is not None:
            now = self.sim.now
            metrics.histogram("sched.wait_us").record(now, wait)
            metrics.histogram("sched.service_us").record(now, busy)
            metrics.histogram("sched.response_us").record(now, response)
            metrics.counter("sched.ops").inc(now)

    def _bounded(self, gen, watchdog: Watchdog):
        """Drive a handler generator under the DoS watchdog."""
        try:
            command = next(gen)
        except StopIteration:
            return
        while True:
            if watchdog.expired(self.sim.now):
                victim = watchdog.kill(self.actors)
                if victim is not None:
                    if victim in self.drr_runnable:
                        self.drr_runnable.remove(victim)
                    self.forfeit_deficit(victim)
                    if self.on_actor_killed is not None:
                        self.on_actor_killed(victim)
                gen.close()
                return
            result = yield command
            try:
                command = gen.send(result)
            except StopIteration:
                return

    # -- adaptation mechanics ---------------------------------------------------
    def _downgrade_highest_dispersion(self) -> bool:
        candidates = [a for a in self.actors
                      if a.schedulable and not a.is_drr
                      and a.location is Location.NIC and a.requests_seen >= 3]
        if not candidates:
            return False
        victim = max(candidates, key=lambda a: a.dispersion)
        victim.is_drr = True
        self.forfeit_deficit(victim)
        self.drr_runnable.append(victim)
        self.downgrades += 1
        if self.drr_cores() == 0:
            self._convert_core("fcfs", "drr")
        return True

    def _upgrade_lowest_dispersion(self) -> bool:
        candidates = [a for a in self.drr_runnable if a.schedulable]
        if not candidates:
            return False
        chosen = min(candidates, key=lambda a: a.dispersion)
        chosen.is_drr = False
        self.drr_runnable.remove(chosen)
        self.forfeit_deficit(chosen)
        self.upgrades += 1
        # drain its backlog back through the shared queue
        while chosen.mailbox:
            msg = chosen.mailbox.popleft()
            self.queue.push(WorkItem(
                message=msg,
                arrived_at=msg.meta.get("nic_arrival", self.sim.now)))
        if not self.drr_runnable:
            for core, mode in enumerate(self.core_mode):
                if mode == "drr":
                    self.core_mode[core] = "fcfs"
                    self.core_moves += 1
        return True

    def _management_checks(self):
        """Push/pull migration, run on the dedicated management core."""
        if not self.config.migration_enabled or self._migration_inflight:
            return
        if self.sim.now - self._last_migration < self.config.migration_cooldown_us:
            return
        mean = self.fcfs_tracker.mu
        if mean > self.config.mean_thresh_us and self.on_push_migration:
            victim = self._heaviest_nic_actor()
            if victim is not None:
                self._migration_inflight = True
                self._last_migration = self.sim.now
                self.pushes += 1
                try:
                    yield from self.on_push_migration(victim)
                finally:
                    self._migration_inflight = False
        elif (mean < (1 - self.config.alpha) * self.config.mean_thresh_us
              and self.on_pull_migration and self._fcfs_has_headroom()):
            gen = self.on_pull_migration()
            if gen is not None:
                self._migration_inflight = True
                self._last_migration = self.sim.now
                self.pulls += 1
                try:
                    yield from gen
                finally:
                    self._migration_inflight = False

    def _heaviest_nic_actor(self) -> Optional[Actor]:
        elapsed = max(self.sim.now, 1.0)
        candidates = [a for a in self.actors
                      if a.schedulable and a.location is Location.NIC
                      and not a.pinned and a.requests_seen > 10]
        if not candidates:
            return None
        return max(candidates, key=lambda a: a.load(elapsed))

    def _maybe_drr_mailbox_migration(self, actor: Actor) -> None:
        if (self.config.migration_enabled and actor.is_drr
                and len(actor.mailbox) > self.config.q_thresh
                and not actor.pinned and not self._migration_inflight
                and self.on_push_migration is not None):
            self.queue.push(WorkItem(
                forward_action=self._spawn_migration(actor),
                arrived_at=self.sim.now))

    def _spawn_migration(self, actor: Actor):
        def action():
            if not self._migration_inflight and actor.schedulable:
                self._migration_inflight = True
                self._last_migration = self.sim.now
                self.pushes += 1

                def run():
                    try:
                        yield from self.on_push_migration(actor)
                    finally:
                        self._migration_inflight = False

                spawn(self.sim, run(), name=f"migrate-{actor.name}")
        return action

    def _fcfs_has_headroom(self) -> bool:
        util = self._group_utilization("fcfs")
        return util < 0.7

    # -- core auto-scaling (§3.2.4) ----------------------------------------------
    def _account(self, core_id: int, group: str, busy_us: float) -> None:
        self._group_busy[group] += busy_us
        tracker = self.core_util[core_id]
        if tracker is not None:
            tracker.add_busy(busy_us)

    def _group_utilization(self, group: str) -> float:
        elapsed = max(self.sim.now - self._window_start, 1.0)
        cores = sum(1 for m in self.core_mode if m == group)
        if cores == 0:
            return 1.0
        return min(self._group_busy[group] / (elapsed * cores), 1.0)

    def _autoscale(self, core_id: int) -> None:
        elapsed = self.sim.now - self._window_start
        if elapsed < self.config.util_window_us:
            return
        fcfs_n = self.fcfs_cores()
        drr_n = self.drr_cores()
        fcfs_util = self._group_utilization("fcfs")
        drr_util = self._group_utilization("drr")
        if (drr_n > 0 and drr_util >= 0.95 and fcfs_n > self.config.min_fcfs_cores
                and fcfs_util < (fcfs_n - 1) / fcfs_n):
            self._convert_core("fcfs", "drr")
        elif (drr_n > 1 and fcfs_util >= 0.95
              and drr_util < (drr_n - 1) / drr_n):
            self._convert_core("drr", "fcfs")
        self._group_busy = {"fcfs": 0.0, "drr": 0.0}
        self._window_start = self.sim.now

    def _convert_core(self, src: str, dst: str) -> None:
        for core, mode in enumerate(self.core_mode):
            if mode == src:
                if src == "fcfs":
                    if self.fcfs_cores() <= self.config.min_fcfs_cores:
                        return
                    if core == self.mgmt_core:
                        # The dedicated management core (§3.2.2: migration
                        # runs on a dedicated FCFS core) — never hand it
                        # to the DRR group.
                        continue
                self.core_mode[core] = dst
                self.core_moves += 1
                return
