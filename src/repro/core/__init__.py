"""The iPipe framework: actors, hybrid scheduler, DMO, migration, channels."""

from .actor import Actor, ActorTable, Location, Message, MigrationState
from .channel import Channel, ReliableChannel, Ring, RingFullError, message_checksum
from .dmo import Dmo, DmoError, DmoManager, ObjectTable
from .dmo_cache import SoftwareObjectCache
from .iokernel import IOKERNEL_DISPATCH_US, IoKernel
from .isolation import ActorKilledError, IsolationPolicy, QuotaEnforcer, Watchdog
from .migration import MigrationReport, Migrator
from .runtime import ExecutionContext, IPipeRuntime
from .telemetry import (
    ActorSnapshot,
    ChannelSnapshot,
    RecoverySnapshot,
    RuntimeSnapshot,
    SchedulerSnapshot,
    recovery_snapshot,
    snapshot,
)
from .scheduler import NicScheduler, SchedulerConfig, WorkItem
from . import api

__all__ = [
    "Actor",
    "ActorTable",
    "Location",
    "Message",
    "MigrationState",
    "Channel",
    "ReliableChannel",
    "Ring",
    "RingFullError",
    "message_checksum",
    "Dmo",
    "DmoError",
    "DmoManager",
    "ObjectTable",
    "SoftwareObjectCache",
    "IOKERNEL_DISPATCH_US",
    "IoKernel",
    "ActorKilledError",
    "IsolationPolicy",
    "QuotaEnforcer",
    "Watchdog",
    "MigrationReport",
    "Migrator",
    "ExecutionContext",
    "IPipeRuntime",
    "ActorSnapshot",
    "ChannelSnapshot",
    "RecoverySnapshot",
    "RuntimeSnapshot",
    "SchedulerSnapshot",
    "recovery_snapshot",
    "snapshot",
    "NicScheduler",
    "SchedulerConfig",
    "WorkItem",
    "api",
]
