"""The public iPipe runtime API (Table 4).

Thin functional façade over the runtime objects, mirroring the C API the
paper publishes.  Four categories: actor management (Actor), distributed
memory objects (DMO), message passing (MSG), and the networking stack
(Nstack).  Functions marked runtime-internal in the paper (``*``) are
still exposed here for completeness but are normally called by the
framework itself.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..net import Packet
from .actor import Actor, Location, Message
from .dmo import Dmo
from .runtime import IPipeRuntime

# -- Actor management -----------------------------------------------------------


def actor_create(name: str, exec_handler, init_handler=None, **kwargs) -> Actor:
    """(*) Create an actor object (not yet registered with a runtime)."""
    return Actor(name, exec_handler, init_handler=init_handler, **kwargs)


def actor_register(runtime: IPipeRuntime, actor: Actor,
                   steering_keys: Optional[List[str]] = None) -> Actor:
    """(*) Register an actor into the runtime (allocates its DMO region,
    installs dispatch rules, runs ``init_handler``)."""
    return runtime.register_actor(actor, steering_keys=steering_keys)


def actor_init(runtime: IPipeRuntime, actor: Actor) -> None:
    """(*) (Re-)run the actor's state initialization handler."""
    if actor.init_handler is not None:
        from .runtime import ExecutionContext
        actor.init_handler(actor, ExecutionContext(runtime, actor, core_id=-1))


def actor_delete(runtime: IPipeRuntime, name: str) -> None:
    """(*) Remove the actor from the runtime and reclaim its resources."""
    runtime.delete_actor(name)


def actor_migrate(runtime: IPipeRuntime, name: str):
    """(*) Force-migrate an actor to the other side.

    Returns a process generator; spawn it (or ``yield from`` it) to run
    the four-phase protocol.
    """
    actor = runtime.actors.lookup(name)
    if actor is None:
        raise KeyError(f"no actor named {name!r}")
    if actor.location is Location.NIC:
        return runtime.migrator.migrate_to_host(actor)
    return runtime.migrator.migrate_to_nic(actor)


# -- Distributed memory objects ------------------------------------------------------


def dmo_malloc(runtime: IPipeRuntime, actor: str, size: int, data: Any = None) -> Dmo:
    """Allocate a distributed memory object in the actor's region."""
    owner = runtime.actors.lookup(actor)
    location = owner.location if owner is not None else Location.NIC
    return runtime.dmo.malloc(actor, size, data=data, location=location)


def dmo_free(runtime: IPipeRuntime, actor: str, object_id: int) -> None:
    runtime.dmo.free(actor, object_id)


def dmo_mmset(runtime: IPipeRuntime, actor: str, object_id: int, value: Any) -> None:
    runtime.dmo.memset(actor, object_id, value)


def dmo_mmcpy(runtime: IPipeRuntime, actor: str, dst: int, src: int) -> None:
    runtime.dmo.memcpy(actor, dst, src)


def dmo_mmmove(runtime: IPipeRuntime, actor: str, dst: int, src: int) -> None:
    runtime.dmo.memmove(actor, dst, src)


def dmo_migrate(runtime: IPipeRuntime, actor: str, object_id: int,
                to: Location) -> Dmo:
    """Relocate one object to the other side."""
    return runtime.dmo.migrate(actor, object_id, to)


# -- Message passing -------------------------------------------------------------------


def msg_init(runtime: IPipeRuntime, slots: int = 1024):
    """Initialize a remote message I/O ring pair (returns the channel)."""
    from .channel import Channel
    return Channel(runtime.sim, runtime._channel_dma, slots=slots)


def msg_read(channel, side: str = "host") -> Optional[Message]:
    """(*) Poll one message from the ring (host or NIC consumer side)."""
    return channel.host_poll() if side == "host" else channel.nic_poll()


def msg_write(channel, msg: Message, side: str = "host") -> None:
    """Write a message into the ring toward the other side."""
    if side == "host":
        channel.host_send(msg)
    else:
        channel.nic_send(msg)


# -- Networking stack --------------------------------------------------------------------


def nstack_new_wqe(src: str, dst: str, size: int, payload: Any = None,
                   kind: str = "data") -> Packet:
    """Create a new work-queue entry (packet)."""
    return Packet(src=src, dst=dst, size=size, payload=payload, kind=kind)


def nstack_hdr_cap(packet: Packet, **fields) -> Packet:
    """Build/patch the packet header fields."""
    for key, value in fields.items():
        if hasattr(packet, key):
            setattr(packet, key, value)
        else:
            packet.meta[key] = value
    return packet


def nstack_send(runtime: IPipeRuntime, packet: Packet,
                side: Location = Location.NIC) -> None:
    """Send a packet to the TX port."""
    runtime.transmit_from(side, packet)


def nstack_get_wqe(message: Message) -> Optional[Packet]:
    """Retrieve the work-queue entry underlying a message."""
    return message.packet


def nstack_recv(runtime: IPipeRuntime):
    """(*) Process command: block until the shared queue yields a work
    item (used by the scheduler's FCFS loop)."""
    return runtime.nic.traffic_manager.pop()
