"""The actor programming model (§3.1).

An actor is a computation agent with a self-contained private state
(distributed memory objects), a mailbox of asynchronous messages, and two
handlers: ``init_handler`` for state initialization and ``exec_handler``
for message execution.  Actors never share memory; all interaction is
message passing.

Handlers are written as Python generators so they can charge virtual time
(``yield ctx.compute(...)``), invoke accelerators, and send messages while
the scheduler retains control of the hosting core.  The handler's
*functional* effects (mutating skip lists, appending Paxos log entries …)
happen eagerly in Python — the reproduction executes the application logic
for real.
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Optional

from ..nic.cores import WorkloadProfile
from ..sim import LatencyTracker

_actor_ids = itertools.count(1)
_message_ids = itertools.count(1)


class Location(enum.Enum):
    """Where an actor currently executes."""

    NIC = "nic"
    HOST = "host"


class MigrationState(enum.Enum):
    """The §3.2.5 migration lifecycle."""

    RUNNING = "running"
    PREPARE = "prepare"
    READY = "ready"
    GONE = "gone"
    CLEAN = "clean"


@dataclass
class Message:
    """An asynchronous message delivered to an actor's mailbox."""

    target: str                 # actor name
    kind: str = "request"
    payload: Any = None
    size: int = 64              # bytes, drives wire/DMA costs
    source: Optional[str] = None
    created_at: float = 0.0
    #: The originating network packet, when the message came off the wire
    #: (used to route the reply back to the client).
    packet: Any = None
    msg_id: int = field(default_factory=lambda: next(_message_ids))
    meta: Dict[str, Any] = field(default_factory=dict)


#: exec_handler(actor, message, ctx) -> generator of sim commands
ExecHandler = Callable[["Actor", Message, Any], Any]
#: init_handler(actor, ctx) -> None (plain function, runs at registration)
InitHandler = Callable[["Actor", Any], None]


class Actor:
    """A registered iPipe actor and its runtime bookkeeping."""

    def __init__(self, name: str, exec_handler: ExecHandler,
                 init_handler: Optional[InitHandler] = None,
                 profile: Optional[WorkloadProfile] = None,
                 location: Location = Location.NIC,
                 pinned: bool = False,
                 concurrent: bool = False,
                 state_bytes: int = 1 << 20,
                 port: int = 0,
                 tenant: str = ""):
        self.name = name
        self.actor_id = next(_actor_ids)
        self.exec_handler = exec_handler
        self.init_handler = init_handler
        #: Default cost profile; handlers may charge explicit costs instead.
        self.profile = profile
        self.location = location
        #: Pinned actors never migrate (e.g. the host-only logging actor).
        self.pinned = pinned
        #: exec_lock semantics: ``concurrent=False`` means at most one core
        #: runs this actor at a time (§3.1's exec_lock).
        self.concurrent = concurrent
        self.state_bytes = state_bytes
        self.port = port
        #: Owning tenant ("" = the implicit single tenant; see
        #: docs/TENANCY.md).  Set from AppSpec.tenant at registration.
        self.tenant = tenant

        #: Private state namespace; DMO handles and plain Python values.
        self.state: Dict[str, Any] = {}
        #: Multi-producer multi-consumer FIFO of pending messages.
        self.mailbox: Deque[Message] = deque()
        self.migration_state = MigrationState.RUNNING
        self.is_drr = False
        self.deficit = 0.0
        self._locked_by: Optional[int] = None

        # -- bookkeeping (§3.2.3): EWMA latency, dispersion, load ---------
        #: Response time (execution + queueing), the paper's statistic (1).
        self.latency = LatencyTracker(alpha=0.1)
        #: Pure handler execution time — drives DRR deficit accounting and
        #: migration load ranking; never polluted by queueing delay.
        self.service = LatencyTracker(alpha=0.1)
        self.requests_seen = 0
        self.request_bytes_ewma = 0.0
        self.deregistered = False

    # -- exec_lock -----------------------------------------------------------
    def try_lock(self, core_id: int) -> bool:
        """Acquire the actor for execution on a core."""
        if self.concurrent:
            return True
        if self._locked_by is None:
            self._locked_by = core_id
            return True
        return False

    def unlock(self, core_id: int) -> None:
        if not self.concurrent and self._locked_by == core_id:
            self._locked_by = None

    # -- bookkeeping ---------------------------------------------------------
    def record_execution(self, latency_us: float, request_bytes: int,
                         service_us: Optional[float] = None) -> None:
        self.latency.record(latency_us)
        if service_us is not None:
            self.service.record(service_us)
        self.requests_seen += 1
        if self.request_bytes_ewma == 0.0:
            self.request_bytes_ewma = float(request_bytes)
        else:
            self.request_bytes_ewma += 0.2 * (request_bytes - self.request_bytes_ewma)

    @property
    def dispersion(self) -> float:
        """µ + 3σ of this actor's request latency (downgrade victim metric)."""
        return self.latency.dispersion

    @property
    def mean_exec_us(self) -> float:
        return self.latency.mu

    @property
    def mean_service_us(self) -> float:
        return self.service.mu

    def load(self, elapsed_us: float) -> float:
        """Average execution latency scaled by invocation frequency — the
        quantity the migration policy ranks actors by (§3.2.5)."""
        if elapsed_us <= 0:
            return 0.0
        rate = self.requests_seen / elapsed_us
        return rate * self.service.mu

    @property
    def schedulable(self) -> bool:
        return (self.migration_state == MigrationState.RUNNING
                and not self.deregistered)

    def __repr__(self) -> str:
        return (f"Actor({self.name!r}, id={self.actor_id}, "
                f"loc={self.location.value}, drr={self.is_drr})")


class ActorTable:
    """Directory of registered actors (the paper's ``actor_tbl``)."""

    def __init__(self) -> None:
        self._by_name: Dict[str, Actor] = {}

    def register(self, actor: Actor) -> None:
        if actor.name in self._by_name:
            raise ValueError(f"actor {actor.name!r} already registered")
        self._by_name[actor.name] = actor

    def deregister(self, name: str) -> Optional[Actor]:
        actor = self._by_name.pop(name, None)
        if actor is not None:
            actor.deregistered = True
        return actor

    def lookup(self, name: str) -> Optional[Actor]:
        return self._by_name.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self):
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    def at(self, location: Location):
        return [a for a in self if a.location is location]
