"""Software-managed object cache (§3.1, §4).

The distributed-object abstraction "supports a software managed cache to
mitigate the cost of SmartNIC to host communications": an actor whose
authoritative object lives on the other side keeps a bounded local cache
of entries, writing through asynchronously and invalidating on epoch
bumps.  The RTA counter actor uses exactly this for its statistics (§4:
"Counter uses a software-managed cache for statistics").

The cache is a *performance* structure, not a consistency domain: entries
carry the epoch at which they were cached, and a migration or explicit
``invalidate_all`` bumps the epoch, making every stale entry miss.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Optional, Tuple


class SoftwareObjectCache:
    """Bounded LRU cache over a remote-object read/write interface.

    ``fetch(key)`` pulls the authoritative value (the caller charges the
    PCIe crossing); ``write_back(key, value)`` pushes an update.  Both are
    injectable so the same cache runs under unit tests and inside actor
    handlers.
    """

    def __init__(self, capacity: int = 1024,
                 fetch: Optional[Callable[[Any], Any]] = None,
                 write_back: Optional[Callable[[Any, Any], None]] = None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.fetch = fetch
        self.write_back = write_back
        self._entries: "OrderedDict[Any, Tuple[Any, int]]" = OrderedDict()
        self.epoch = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.write_throughs = 0

    # -- reads ------------------------------------------------------------
    def get(self, key: Any) -> Any:
        """Cached read; falls back to ``fetch`` on miss/stale."""
        entry = self._entries.get(key)
        if entry is not None and entry[1] == self.epoch:
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[0]
        self.misses += 1
        if self.fetch is None:
            return None
        value = self.fetch(key)
        self._insert(key, value)
        return value

    def peek(self, key: Any) -> Optional[Any]:
        """Read without fetching (None on miss/stale)."""
        entry = self._entries.get(key)
        if entry is not None and entry[1] == self.epoch:
            return entry[0]
        return None

    # -- writes --------------------------------------------------------------
    def put(self, key: Any, value: Any, write_through: bool = True) -> None:
        """Update locally; optionally push to the authoritative side."""
        self._insert(key, value)
        if write_through and self.write_back is not None:
            self.write_back(key, value)
            self.write_throughs += 1

    def _insert(self, key: Any, value: Any) -> None:
        if key in self._entries:
            del self._entries[key]
        while len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = (value, self.epoch)

    # -- invalidation -----------------------------------------------------------
    def invalidate(self, key: Any) -> None:
        self._entries.pop(key, None)

    def invalidate_all(self) -> None:
        """Epoch bump: every cached entry becomes stale (O(1)).

        Called when the backing actor migrates — the authoritative copies
        moved across the PCIe, so locality assumptions reset.
        """
        self.epoch += 1

    def __len__(self) -> int:
        return sum(1 for _, (_, ep) in self._entries.items()
                   if ep == self.epoch)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
