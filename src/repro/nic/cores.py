"""Compute cost model for NIC cores and host cores.

Table 3 characterizes offloaded workloads on the LiquidIOII CN2350 by
execution latency, measured IPC, and L2 MPKI.  From those three numbers we
back out an instruction count and a memory-stall decomposition:

    instructions = latency · IPC · freq
    memory_stall = (instructions/1000) · MPKI · DRAM_latency · overlap
    compute_time = latency − memory_stall

and re-time the workload on any other core by scaling the compute part with
frequency × microarchitecture gain and the stall part with the DRAM latency
ratio.  This reproduces implication I3: tasks with low IPC or high MPKI gain
little from a beefy host core and are the best offload candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from .specs import HostSpec, NicSpec, LIQUIDIO_CN2350

#: Fraction of miss latency that is *not* hidden by overlap on the in-order
#: cnMIPS cores (2-way, no OoO window to speak of).
MISS_OVERLAP = 0.7
#: Effective per-cycle advantage of the host's wide OoO core over the
#: 2-way in-order cnMIPS for compute-bound instruction streams.
HOST_ARCH_GAIN = 1.8
#: ARM Cortex-A72 (3-way OoO) advantage over cnMIPS at equal frequency.
A72_ARCH_GAIN = 1.35


@dataclass(frozen=True)
class WorkloadProfile:
    """A workload characterized on the reference NIC (CN2350, Table 3)."""

    name: str
    exec_us: float    # measured on LiquidIOII CN2350 @ 1.2GHz
    ipc: float        # measured IPC (ideal is 2 on the 2-way cnMIPS)
    mpki: float       # L2 misses per kilo-instruction
    request_bytes: int = 1024

    @property
    def instructions(self) -> float:
        freq_mhz = LIQUIDIO_CN2350.freq_ghz * 1e3  # instructions per µs per IPC
        return self.exec_us * self.ipc * freq_mhz

    def scaled(self, factor: float) -> "WorkloadProfile":
        """The same workload with its work scaled by ``factor``."""
        return replace(self, exec_us=self.exec_us * factor)


#: Table 3, left half: representative in-network offloaded workloads.
MICROBENCH_PROFILES: Dict[str, WorkloadProfile] = {
    "echo": WorkloadProfile("echo", 1.87, 1.4, 0.6),
    "flow_monitor": WorkloadProfile("flow_monitor", 3.2, 1.4, 0.8),
    "kv_cache": WorkloadProfile("kv_cache", 3.7, 1.2, 0.9),
    "top_ranker": WorkloadProfile("top_ranker", 34.0, 1.7, 0.1),
    "rate_limiter": WorkloadProfile("rate_limiter", 8.2, 0.7, 4.4),
    "firewall": WorkloadProfile("firewall", 3.7, 1.3, 1.6),
    "router": WorkloadProfile("router", 2.2, 1.3, 0.6),
    "load_balancer": WorkloadProfile("load_balancer", 2.0, 1.3, 1.3),
    "packet_scheduler": WorkloadProfile("packet_scheduler", 12.6, 0.5, 4.9),
    "flow_classifier": WorkloadProfile("flow_classifier", 71.0, 0.5, 15.2),
    "packet_replication": WorkloadProfile("packet_replication", 1.9, 1.4, 0.6),
}


def _decompose(profile: WorkloadProfile) -> tuple:
    """Split the reference execution time into (compute_us, stall_us)."""
    misses = profile.instructions / 1000.0 * profile.mpki
    stall_us = misses * (LIQUIDIO_CN2350.memory.dram_ns / 1000.0) * MISS_OVERLAP
    stall_us = min(stall_us, 0.8 * profile.exec_us)
    return profile.exec_us - stall_us, stall_us


def time_on_nic(profile: WorkloadProfile, spec: NicSpec) -> float:
    """Execution time of the workload on one core of ``spec`` (µs)."""
    compute_us, stall_us = _decompose(profile)
    freq_ratio = LIQUIDIO_CN2350.freq_ghz / spec.freq_ghz
    arch_gain = 1.0 if spec.processor.startswith("cnMIPS") else A72_ARCH_GAIN
    mem_ratio = spec.memory.dram_ns / LIQUIDIO_CN2350.memory.dram_ns
    return compute_us * freq_ratio / arch_gain + stall_us * mem_ratio


def time_on_host(profile: WorkloadProfile, host: HostSpec) -> float:
    """Execution time of the workload on one beefy host core (µs)."""
    compute_us, stall_us = _decompose(profile)
    freq_ratio = LIQUIDIO_CN2350.freq_ghz / host.freq_ghz
    mem_ratio = host.memory.dram_ns / LIQUIDIO_CN2350.memory.dram_ns
    return compute_us * freq_ratio / HOST_ARCH_GAIN + stall_us * mem_ratio


def host_speedup(profile: WorkloadProfile, host: HostSpec) -> float:
    """How much faster the host runs this workload than the CN2350.

    Low-IPC / high-MPKI workloads approach ~2x (memory bound: the host only
    wins its DRAM-latency advantage); compute-bound code approaches
    freq_ratio × HOST_ARCH_GAIN ≈ 3.7x.
    """
    return profile.exec_us / time_on_host(profile, host)


def table3_workload_rows():
    """Printable reproduction of Table 3's workload half."""
    header = ("Application", "Exec. Lat.(us)", "IPC", "MPKI")
    rows = [header]
    for prof in MICROBENCH_PROFILES.values():
        rows.append((prof.name, f"{prof.exec_us:.2f}", f"{prof.ipc:.1f}",
                     f"{prof.mpki:.1f}"))
    return tuple(rows)


class CoreHealth:
    """Liveness / stall bookkeeping for a NIC's scheduling cores.

    The FaultPlane sets these flags; the scheduler consults them at every
    scheduling-loop boundary, so fault detection granularity is one
    cooperative scheduling iteration — the same granularity the DoS
    watchdog already has.  Failures are permanent (a wedged core never
    comes back without a device reset); stalls expire on their own.
    """

    def __init__(self, cores: int):
        self.cores = cores
        self._failed: set = set()
        self._stalled_until = [0.0] * cores

    def alive(self, core: int) -> bool:
        return core not in self._failed

    def fail(self, core: int) -> None:
        self._failed.add(core)

    def stall(self, core: int, now: float, duration_us: float) -> None:
        self._stalled_until[core] = max(self._stalled_until[core],
                                        now + duration_us)

    def stall_remaining(self, core: int, now: float) -> float:
        return max(self._stalled_until[core] - now, 0.0)

    @property
    def failed(self) -> frozenset:
        return frozenset(self._failed)

    def alive_count(self) -> int:
        return self.cores - len(self._failed)
