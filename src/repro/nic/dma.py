"""DMA engine model: NIC ↔ host memory over PCIe Gen3 x8 (§2.2.5).

Reproduces the Figure 7/8 measurements on the LiquidIOII CN2350:

* blocking reads/writes wait for the completion word; latency grows
  linearly with payload (pinned to the paper's 64B→2KB throughput ratios:
  2KB blocking write/read reaches 2.1/1.4 GB/s per core, 8.7x/6.0x the 64B
  case);
* non-blocking operations just enqueue a command word — latency is flat
  and independent of payload;
* aggregate throughput is additionally capped by effective PCIe bandwidth
  and by the command-issue rate (tags/credits), which is what bends the
  non-blocking curves at large payloads (implication I6: aggregate
  transfers via scatter/gather).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..sim import Resource, Simulator, Timeout

#: PCIe Gen3 x8: 7.87 GB/s theoretical; ~80% achievable after TLP overheads.
PCIE_GEN3_X8_GBPS = 7.87
PCIE_EFFICIENCY = 0.80


@dataclass(frozen=True)
class DmaTimings:
    """Per-card DMA cost curve parameters (µs, bytes/µs)."""

    # blocking latency = base + size / bandwidth  (bandwidth in B/µs)
    read_base_us: float = 0.236
    read_bw_b_per_us: float = 1670.0     # asymptotic 1.67 GB/s
    write_base_us: float = 0.242
    write_bw_b_per_us: float = 2794.0    # asymptotic 2.79 GB/s
    # non-blocking command insert cost (flat, Figure 7)
    nb_read_issue_us: float = 0.30
    nb_write_issue_us: float = 0.25
    # per-core non-blocking command issue ceiling (Mops, Figure 8)
    nb_issue_mops: float = 11.0


class DmaEngine:
    """A SmartNIC's programmable DMA engine.

    Timing queries (``*_latency_us``, ``*_throughput_mops``) are pure
    functions used by characterization benches; :meth:`read` / :meth:`write`
    are process generators that charge a core's virtual time and contend on
    the engine's channel resource.
    """

    def __init__(self, sim: Simulator, timings: DmaTimings = DmaTimings(),
                 channels: int = 8):
        self.sim = sim
        self.timings = timings
        self.channels = Resource(sim, channels)
        self.bytes_moved = 0
        self.ops = 0
        #: optional FaultPlane consulted by rings built on this engine
        self.fault_plane = None
        #: torn writes injected against this engine's rings
        self.torn_writes = 0

    def note_torn_write(self) -> None:
        """Ring-side callback: a DMA write landed torn (checksum bad)."""
        self.torn_writes += 1

    # -- analytic model (Figures 7 & 8) ----------------------------------
    def read_latency_us(self, nbytes: int, blocking: bool = True) -> float:
        if not blocking:
            return self.timings.nb_read_issue_us
        return self.timings.read_base_us + nbytes / self.timings.read_bw_b_per_us

    def write_latency_us(self, nbytes: int, blocking: bool = True) -> float:
        if not blocking:
            return self.timings.nb_write_issue_us
        return self.timings.write_base_us + nbytes / self.timings.write_bw_b_per_us

    def _pcie_cap_mops(self, nbytes: int) -> float:
        effective_b_per_us = PCIE_GEN3_X8_GBPS * 1e3 * PCIE_EFFICIENCY
        return effective_b_per_us / max(nbytes, 1)

    def read_throughput_mops(self, nbytes: int, blocking: bool = True) -> float:
        if blocking:
            per_op = 1.0 / self.read_latency_us(nbytes)
        else:
            per_op = self.timings.nb_issue_mops
        return min(per_op, self._pcie_cap_mops(nbytes))

    def write_throughput_mops(self, nbytes: int, blocking: bool = True) -> float:
        if blocking:
            per_op = 1.0 / self.write_latency_us(nbytes)
        else:
            per_op = self.timings.nb_issue_mops
        return min(per_op, self._pcie_cap_mops(nbytes))

    # -- simulation-facing operations -------------------------------------
    def read(self, nbytes: int, blocking: bool = True):
        """Process generator: DMA-read ``nbytes`` from host memory."""
        yield from self._op(self.read_latency_us(nbytes, blocking), nbytes)

    def write(self, nbytes: int, blocking: bool = True):
        """Process generator: DMA-write ``nbytes`` to host memory."""
        yield from self._op(self.write_latency_us(nbytes, blocking), nbytes)

    def write_gather(self, chunks: Sequence[int]):
        """Scatter/gather: one blocking transaction for many chunks.

        Aggregating PCIe transfers is implication I6 — one header/completion
        round for the combined payload rather than per chunk.
        """
        total = sum(chunks)
        yield from self._op(self.write_latency_us(total, blocking=True), total)

    def _op(self, cost_us: float, nbytes: int):
        yield self.channels.acquire()
        try:
            yield Timeout(cost_us)
            self.bytes_moved += nbytes
            self.ops += 1
        finally:
            self.channels.release()

    # -- bulk-transfer estimate (used by actor migration) -------------------
    def bulk_transfer_us(self, nbytes: int, chunk: int = 8192) -> float:
        """Time to move a large object host↔NIC using chunked blocking DMA."""
        if nbytes <= 0:
            return 0.0
        full, rem = divmod(nbytes, chunk)
        total = full * self.write_latency_us(chunk)
        if rem:
            total += self.write_latency_us(rem)
        return total
