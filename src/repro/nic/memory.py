"""On-board memory hierarchy model (§2.2.4, Table 2).

Models the five memory resources the paper enumerates: per-core scratchpad,
the hardware packet buffer, shared L2, NIC-local DRAM, and (via the DMA
engine, separately) host memory.  The access-time model reproduces the
pointer-chasing measurements of Table 2, and a working-set-aware cost
estimator captures implication I5: once an application's working set spills
out of the NIC's L2, per-access cost degrades to DRAM latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .specs import HostSpec, MemoryLatencies, NicSpec


@dataclass
class AccessProfile:
    """How a workload touches memory: accesses per request + locality."""

    accesses: int
    working_set_bytes: int
    #: Fraction of accesses with L1 temporal locality regardless of set size.
    l1_hit_ratio: float = 0.7


class MemoryHierarchy:
    """Latency model for a device's cache/DRAM hierarchy."""

    def __init__(self, latencies: MemoryLatencies, l1_kb: int, l2_bytes: int,
                 l3_bytes: int = 0):
        self.lat = latencies
        self.l1_bytes = l1_kb * 1024
        self.l2_bytes = l2_bytes
        self.l3_bytes = l3_bytes

    @classmethod
    def for_nic(cls, spec: NicSpec) -> "MemoryHierarchy":
        return cls(spec.memory, spec.l1_kb, int(spec.l2_mb * 1024 * 1024))

    @classmethod
    def for_host(cls, spec: HostSpec) -> "MemoryHierarchy":
        # 32KB L1 / 256KB L2 / 30MB LLC are the E5 v3/v4 shapes.
        return cls(spec.memory, 32, 256 * 1024, 30 * 1024 * 1024)

    # -- pointer chasing (Table 2) -----------------------------------------
    def chase_latency_ns(self, working_set_bytes: int) -> float:
        """Average load-to-use latency of a dependent pointer chase whose
        footprint is ``working_set_bytes`` (the Table 2 experiment)."""
        if working_set_bytes <= self.l1_bytes:
            return self.lat.l1_ns
        if working_set_bytes <= self.l2_bytes:
            return self.lat.l2_ns
        if self.l3_bytes and working_set_bytes <= self.l3_bytes:
            return self.lat.l3_ns
        return self.lat.dram_ns

    # -- workload cost (implication I5) -------------------------------------
    def access_cost_us(self, profile: AccessProfile) -> float:
        """Total memory stall time for one request of the given profile."""
        misses = profile.accesses * (1.0 - profile.l1_hit_ratio)
        per_miss_ns = self.chase_latency_ns(profile.working_set_bytes)
        hit_ns = profile.accesses * profile.l1_hit_ratio * self.lat.l1_ns
        return (hit_ns + misses * per_miss_ns) / 1000.0


class Scratchpad:
    """Per-core scratchpad: tiny, fast, explicitly managed (LiquidIO: 54
    cache lines).  iPipe reserves it for runtime bookkeeping (§3.3), so the
    model exposes reserve/release accounting rather than data storage."""

    def __init__(self, lines: int, line_bytes: int = 128):
        self.capacity_bytes = lines * line_bytes
        self.used_bytes = 0

    def reserve(self, nbytes: int) -> bool:
        """Claim scratchpad space; returns False when it doesn't fit."""
        if self.used_bytes + nbytes > self.capacity_bytes:
            return False
        self.used_bytes += nbytes
        return True

    def release(self, nbytes: int) -> None:
        if nbytes > self.used_bytes:
            raise ValueError("releasing more scratchpad than reserved")
        self.used_bytes -= nbytes

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes


class PacketBuffer:
    """Hardware-managed on-board packet buffer with fast indexing.

    On-path NICs have a dedicated SRAM region with hardware allocation;
    off-path NICs lack it and fall back to DRAM-backed buffers (§2.2.4),
    which the allocate cost reflects.
    """

    HW_ALLOC_US = 0.005
    SW_ALLOC_US = 0.06

    def __init__(self, capacity_bytes: int, hardware_managed: bool):
        self.capacity_bytes = capacity_bytes
        self.hardware_managed = hardware_managed
        self.used_bytes = 0
        self.allocations = 0
        self.failures = 0

    @classmethod
    def for_nic(cls, spec: NicSpec, capacity_bytes: int = 8 * 1024 * 1024
                ) -> "PacketBuffer":
        return cls(capacity_bytes, hardware_managed=spec.is_on_path)

    @property
    def alloc_cost_us(self) -> float:
        return self.HW_ALLOC_US if self.hardware_managed else self.SW_ALLOC_US

    def allocate(self, nbytes: int) -> bool:
        if self.used_bytes + nbytes > self.capacity_bytes:
            self.failures += 1
            return False
        self.used_bytes += nbytes
        self.allocations += 1
        return True

    def free(self, nbytes: int) -> None:
        if nbytes > self.used_bytes:
            raise ValueError("freeing more packet buffer than allocated")
        self.used_bytes -= nbytes


class NicDram:
    """NIC-local DRAM allocator with per-actor region accounting.

    iPipe partitions DRAM into large equal-sized chunks per registered
    actor (§3.3, "global bootmem region"); the DMO layer enforces that an
    actor only allocates inside its own region.
    """

    def __init__(self, capacity_bytes: int):
        self.capacity_bytes = capacity_bytes
        self.regions: dict = {}

    def create_region(self, owner: str, nbytes: int) -> "MemoryRegion":
        used = sum(r.capacity for r in self.regions.values())
        if used + nbytes > self.capacity_bytes:
            raise MemoryError(
                f"NIC DRAM exhausted: {used + nbytes} > {self.capacity_bytes}")
        region = MemoryRegion(owner, nbytes)
        self.regions[owner] = region
        return region

    def destroy_region(self, owner: str) -> None:
        self.regions.pop(owner, None)


@dataclass
class MemoryRegion:
    """An actor's private slice of NIC (or host) DRAM."""

    owner: str
    capacity: int
    used: int = 0
    _next_addr: int = 0

    def allocate(self, nbytes: int) -> Optional[int]:
        """Bump allocation; returns a region-relative address or None."""
        if self.used + nbytes > self.capacity:
            return None
        addr = self._next_addr
        self._next_addr += nbytes
        self.used += nbytes
        return addr

    def free(self, nbytes: int) -> None:
        self.used = max(0, self.used - nbytes)

    def contains(self, addr: int) -> bool:
        """Paging-style validity check used by the isolation layer."""
        return 0 <= addr < self._next_addr
