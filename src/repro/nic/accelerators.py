"""Domain-specific accelerator models (Table 3, right half).

Each engine is characterized by its measured execution latency for a 1KB
request at batch sizes 1/8/32, plus the IPC/MPKI the invoking core observes
while feeding it.  Invoking an accelerator ties up the calling NIC core for
the (batched) duration — the paper notes invocation "is not free since the
NIC core has to wait for execution completion" (§2.2.3) — so acquisition is
modelled with a counted resource per engine.

The MD5 engine is 7.0x and the AES engine 2.5x faster than the host-side
software (AES-NI included), which the ``host_software_us`` fields encode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..sim import Resource, Simulator


@dataclass(frozen=True)
class AcceleratorProfile:
    """Measured behaviour of one engine for a 1KB request (Table 3)."""

    name: str
    ipc: float
    mpki: float
    lat_us_b1: float            # batch size 1
    lat_us_b8: Optional[float]  # batch size 8 (per request)
    lat_us_b32: Optional[float]
    #: Host-software time for the same 1KB unit of work, if the paper
    #: quotes a comparison (MD5 7.0x, AES 2.5x).
    host_software_us: Optional[float] = None
    reference_bytes: int = 1024

    def latency_us(self, batch: int = 1, nbytes: int = 1024) -> float:
        """Per-request latency at a given batch size and payload size."""
        if batch >= 32 and self.lat_us_b32 is not None:
            base = self.lat_us_b32
        elif batch >= 8 and self.lat_us_b8 is not None:
            base = self.lat_us_b8
        else:
            base = self.lat_us_b1
        return base * max(nbytes, 1) / self.reference_bytes


#: Table 3 accelerator rows for the LiquidIOII CN2350.
ACCELERATORS: Dict[str, AcceleratorProfile] = {
    "crc": AcceleratorProfile("crc", 1.2, 2.8, 2.6, 0.7, 0.3),
    "md5": AcceleratorProfile("md5", 0.7, 2.6, 5.0, 3.1, 3.0,
                              host_software_us=5.0 * 7.0),
    "sha1": AcceleratorProfile("sha1", 0.9, 2.6, 3.5, 1.2, 0.9),
    "3des": AcceleratorProfile("3des", 0.8, 0.9, 3.4, 1.3, 1.1),
    "aes": AcceleratorProfile("aes", 1.1, 0.9, 2.7, 1.0, 0.8,
                              host_software_us=2.7 * 2.5),
    "kasumi": AcceleratorProfile("kasumi", 1.0, 0.9, 2.7, 1.1, 0.9),
    "sms4": AcceleratorProfile("sms4", 0.8, 0.9, 3.5, 1.4, 1.2),
    "snow3g": AcceleratorProfile("snow3g", 1.4, 0.5, 2.3, 0.9, 0.8),
    "fau": AcceleratorProfile("fau", 1.4, 0.6, 1.9, 1.4, 1.0),
    "zip": AcceleratorProfile("zip", 1.0, 0.2, 190.9, None, None),
    "dfa": AcceleratorProfile("dfa", 1.3, 0.2, 9.2, 7.5, 7.3),
}


class AcceleratorBank:
    """Runtime view of a NIC's accelerators: occupancy + timing.

    Handlers charge accelerator time through :meth:`invoke` (a process
    command sequence) or query :meth:`cost_us` when composing an aggregate
    handler cost.
    """

    def __init__(self, sim: Simulator, units_per_engine: int = 4,
                 profiles: Optional[Dict[str, AcceleratorProfile]] = None):
        self.sim = sim
        self.profiles = dict(profiles or ACCELERATORS)
        self._units = {
            name: Resource(sim, units_per_engine) for name in self.profiles
        }
        self.invocations: Dict[str, int] = {name: 0 for name in self.profiles}

    def profile(self, name: str) -> AcceleratorProfile:
        try:
            return self.profiles[name]
        except KeyError:
            raise KeyError(f"no such accelerator: {name}") from None

    def cost_us(self, name: str, nbytes: int = 1024, batch: int = 1) -> float:
        """Synchronous-cost estimate (the core blocks for this long)."""
        return self.profile(name).latency_us(batch=batch, nbytes=nbytes)

    def invoke(self, name: str, nbytes: int = 1024, batch: int = 1):
        """Process generator: acquire the engine, wait out execution.

        Usage from a core process::

            yield from accelerators.invoke("aes", nbytes=1024)
        """
        from ..sim import Timeout

        unit = self._units[name]
        self.invocations[name] += 1
        yield unit.acquire()
        try:
            yield Timeout(self.cost_us(name, nbytes=nbytes, batch=batch))
        finally:
            unit.release()


def table3_accelerator_rows():
    """Printable reproduction of Table 3's accelerator half."""
    header = ("Accelerator", "IPC", "MPKI", "lat(us) bsz=1", "bsz=8", "bsz=32")
    rows = [header]
    for prof in ACCELERATORS.values():
        rows.append((
            prof.name.upper(), f"{prof.ipc:.1f}", f"{prof.mpki:.1f}",
            f"{prof.lat_us_b1:.1f}",
            "N/A" if prof.lat_us_b8 is None else f"{prof.lat_us_b8:.1f}",
            "N/A" if prof.lat_us_b32 is None else f"{prof.lat_us_b32:.1f}",
        ))
    return tuple(rows)
