"""Traffic control: hardware traffic manager and off-path NIC switch (§2.1).

* On-path NICs (LiquidIOII) push every incoming packet through the hardware
  traffic manager, which exposes a *shared work queue* to all NIC cores with
  near-zero synchronization cost (implication I2, Figure 5).
* Off-path NICs (BlueField, Stingray) instead have a NIC switch that
  forwards flows either to the host (bypassing NIC cores) or to NIC cores,
  according to installed forwarding rules.  A software shuffle queue with a
  higher sync cost stands in for the missing traffic manager (§3.2.6).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim import Simulator, Store
from ..net import Packet
from .calibration import HW_SHARED_QUEUE_SYNC_US, SW_SHARED_QUEUE_SYNC_US
from .specs import NicSpec


class TrafficManager:
    """Shared work-queue abstraction feeding NIC cores.

    ``dequeue_sync_us`` is the per-dequeue synchronization tax — tiny when
    a hardware traffic manager provides the queue, ~10x larger for a
    software (spinlock) shuffle queue.
    """

    def __init__(self, sim: Simulator, hardware: bool = True,
                 capacity: Optional[int] = None):
        self.sim = sim
        self.hardware = hardware
        self.queue = Store(sim, capacity=capacity)
        self.dequeue_sync_us = (
            HW_SHARED_QUEUE_SYNC_US if hardware else SW_SHARED_QUEUE_SYNC_US)
        self.enqueued = 0
        self.dropped = 0

    def push(self, packet: Packet) -> None:
        """Hardware enqueue of an arriving packet (work item)."""
        try:
            self.queue.put_nowait(packet)
            self.enqueued += 1
        except Exception:
            self.dropped += 1

    def pop(self):
        """Process command: block until a work item is available."""
        return self.queue.get()

    def try_pop(self):
        """Immediate dequeue; returns None when the queue is empty."""
        return self.queue.try_get_nowait()

    def __len__(self) -> int:
        return len(self.queue)


class NicSwitch:
    """Off-path forwarding: steer flows to NIC cores or straight to host.

    Rules map a classification key to ``"nic"`` or ``"host"``.  The default
    action sends traffic to the NIC cores (where iPipe runs); host-bound
    flows bypass NIC compute entirely, as BlueField/Stingray do.
    """

    def __init__(self, sim: Simulator,
                 to_nic: Callable[[Packet], None],
                 to_host: Callable[[Packet], None],
                 default: str = "nic",
                 switching_latency_us: float = 0.3):
        if default not in ("nic", "host"):
            raise ValueError("default must be 'nic' or 'host'")
        self.sim = sim
        self.to_nic = to_nic
        self.to_host = to_host
        self.default = default
        self.switching_latency_us = switching_latency_us
        self.rules: dict = {}
        self.steered_nic = 0
        self.steered_host = 0

    def install_rule(self, key, target: str) -> None:
        if target not in ("nic", "host"):
            raise ValueError("target must be 'nic' or 'host'")
        self.rules[key] = target

    def remove_rule(self, key) -> None:
        self.rules.pop(key, None)

    def classify(self, packet: Packet):
        """Rule key for a packet: (kind, flow)."""
        return packet.meta.get("steer_key", packet.kind)

    def ingest(self, packet: Packet) -> None:
        target = self.rules.get(self.classify(packet), self.default)
        if target == "host":
            self.steered_host += 1
            self.sim.post(self.switching_latency_us, self.to_host, packet)
        else:
            self.steered_nic += 1
            self.sim.post(self.switching_latency_us, self.to_nic, packet)


def traffic_manager_for(sim: Simulator, spec: NicSpec) -> TrafficManager:
    """Build the work queue matching the NIC's hardware capabilities."""
    return TrafficManager(sim, hardware=spec.has_traffic_manager)
