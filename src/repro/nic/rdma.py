"""RDMA verbs model for off-path SmartNICs (§2.2.5, Figures 9 & 10).

BlueField/Stingray expose RDMA verbs to reach host memory instead of native
DMA primitives.  The paper measures (on the BlueField 1M332A):

* one-sided read/write latency ≈ 2x the equivalent blocking-DMA latency;
* per-core throughput for messages < 256B is about a third of blocking DMA
  (software verb-posting overhead dominates); beyond 512B the two converge
  as the wire transfer amortizes the verb cost.
"""

from __future__ import annotations

from ..sim import Resource, Simulator, Timeout
from .dma import DmaEngine, DmaTimings

#: Latency multiplier over native blocking DMA (Figure 9).
RDMA_LATENCY_FACTOR = 2.0
#: Software verb post/poll floor per operation, µs (limits small-message
#: throughput to ~1.25 Mops/core — a third of blocking DMA's small-message
#: rate, Figure 10).
RDMA_VERB_FLOOR_US = 0.80


class RdmaEngine:
    """One-sided RDMA read/write between SmartNIC and host memory."""

    def __init__(self, sim: Simulator, timings: DmaTimings = DmaTimings(),
                 queue_pairs: int = 8):
        self.sim = sim
        self._dma = DmaEngine(sim, timings, channels=queue_pairs)
        self.qps = Resource(sim, queue_pairs)
        self.ops = 0
        self.bytes_moved = 0

    # -- analytic model ---------------------------------------------------
    def read_latency_us(self, nbytes: int) -> float:
        return RDMA_LATENCY_FACTOR * self._dma.read_latency_us(nbytes)

    def write_latency_us(self, nbytes: int) -> float:
        return RDMA_LATENCY_FACTOR * self._dma.write_latency_us(nbytes)

    def _per_op_cost_us(self, dma_latency_us: float) -> float:
        return max(RDMA_VERB_FLOOR_US, 1.15 * dma_latency_us)

    def read_throughput_mops(self, nbytes: int) -> float:
        return 1.0 / self._per_op_cost_us(self._dma.read_latency_us(nbytes))

    def write_throughput_mops(self, nbytes: int) -> float:
        return 1.0 / self._per_op_cost_us(self._dma.write_latency_us(nbytes))

    # -- simulation-facing operations --------------------------------------
    def read(self, nbytes: int):
        """Process generator: one-sided RDMA read of host memory."""
        yield from self._op(self.read_latency_us(nbytes), nbytes)

    def write(self, nbytes: int):
        """Process generator: one-sided RDMA write to host memory."""
        yield from self._op(self.write_latency_us(nbytes), nbytes)

    def _op(self, cost_us: float, nbytes: int):
        yield self.qps.acquire()
        try:
            yield Timeout(cost_us)
            self.ops += 1
            self.bytes_moved += nbytes
        finally:
            self.qps.release()

    def bulk_transfer_us(self, nbytes: int, chunk: int = 8192) -> float:
        """Large-object move cost via chunked RDMA writes."""
        if nbytes <= 0:
            return 0.0
        full, rem = divmod(nbytes, chunk)
        total = full * self.write_latency_us(chunk)
        if rem:
            total += self.write_latency_us(rem)
        return total
