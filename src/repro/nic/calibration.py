"""Calibration anchor tables derived from the paper's characterization study.

The paper's Section 2 measurements are the ground truth for the hardware
models.  Rather than invent analytic cost functions, we pin piecewise-linear
curves to the data points Figures 2–6 report (or imply) and interpolate
between anchors.  Where the paper's numbers are non-monotonic — e.g. the
128B-vs-256B per-packet cost on the Stingray, where 128B traffic cannot
reach line rate with 8 cores yet 256B needs only 3 — we keep the measured
behaviour instead of smoothing it away (see DESIGN.md §1).

Derivation notes (all sizes are Ethernet frame bytes, costs in µs):

* **Echo cost** — the per-packet CPU time of the §2.2.2 ECHO server.  From
  Figure 2, CN2350 needs 10/6/4/3 cores for 256/512/1024/1500B line rate at
  10GbE, so cost(size) ∈ ((k−1)/rate, k/rate]; we pin the midpoint-ish value
  (k−0.5)/rate.  64/128B anchors are chosen so all 12 cores still miss line
  rate, as the paper observes.  Stingray anchors come from Figure 3 the same
  way (3/2/1/1 cores).
* **Forward cost** — raw packet forwarding without the application echo.
  Backed out from Figure 4's computing-headroom limits: headroom =
  ncores/rate − forward_cost, with the paper reporting 2.5/9.8µs (CN2350,
  256/1024B) and 0.7/2.6µs (Stingray).
* **Messaging (Figure 6)** — linear latency models whose averages across the
  probed sizes reproduce the reported 4.6×/4.2× advantage of NIC-assisted
  send/recv over host DPDK/RDMA.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Sequence, Tuple

from .specs import (
    BLUEFIELD_1M332A,
    LIQUIDIO_CN2350,
    LIQUIDIO_CN2360,
    STINGRAY_PS225,
    NicSpec,
)


class AnchorCurve:
    """Piecewise-linear interpolation over (x, y) anchors; clamps outside."""

    def __init__(self, anchors: Sequence[Tuple[float, float]]):
        if len(anchors) < 2:
            raise ValueError("need at least two anchors")
        xs = [x for x, _ in anchors]
        if xs != sorted(xs):
            raise ValueError("anchor x values must be increasing")
        self.xs = xs
        self.ys = [y for _, y in anchors]

    def __call__(self, x: float) -> float:
        if x <= self.xs[0]:
            return self.ys[0]
        if x >= self.xs[-1]:
            return self.ys[-1]
        hi = bisect_left(self.xs, x)
        lo = hi - 1
        frac = (x - self.xs[lo]) / (self.xs[hi] - self.xs[lo])
        return self.ys[lo] * (1 - frac) + self.ys[hi] * frac


# -- per-packet ECHO-server cost on one NIC core (Figures 2 & 3) -------------

_ECHO_COST_US: Dict[str, AnchorCurve] = {
    LIQUIDIO_CN2350.model: AnchorCurve([
        (64, 1.90), (128, 1.95), (256, 2.098), (512, 2.340),
        (1024, 2.924), (1500, 3.040),
    ]),
    # CN2360 runs the same firmware at 1.5GHz (vs 1.2): scale by 0.8.
    LIQUIDIO_CN2360.model: AnchorCurve([
        (64, 1.52), (128, 1.56), (256, 1.678), (512, 1.872),
        (1024, 2.339), (1500, 2.432),
    ]),
    STINGRAY_PS225.model: AnchorCurve([
        (64, 0.25), (128, 0.40), (256, 0.24), (512, 0.30),
        (1024, 0.332), (1500, 0.40),
    ]),
    # BlueField's A72 runs at 0.8GHz vs the Stingray's 3.0 — scale ~3.75x,
    # with the same small-packet inefficiency.
    BLUEFIELD_1M332A.model: AnchorCurve([
        (64, 0.94), (128, 1.50), (256, 0.90), (512, 1.13),
        (1024, 1.25), (1500, 1.50),
    ]),
}

# Stingray's 128B anchor is *higher* than its 256B one — measured, not a
# typo: 8 cores cannot sustain 21.1 Mpps of 128B frames yet 3 cores carry
# 11.3 Mpps of 256B frames (Figure 3 + §2.2.2 text).  The buffer manager
# coalesces at 256B granularity.
_NONMONOTONIC_OK = {STINGRAY_PS225.model, BLUEFIELD_1M332A.model}


# -- raw forwarding cost (Figure 4's baseline) --------------------------------

_FORWARD_COST_US: Dict[str, AnchorCurve] = {
    LIQUIDIO_CN2350.model: AnchorCurve([
        (64, 0.171), (256, 0.191), (1024, 0.267), (1500, 0.315),
    ]),
    LIQUIDIO_CN2360.model: AnchorCurve([
        (64, 0.137), (256, 0.153), (1024, 0.214), (1500, 0.252),
    ]),
    STINGRAY_PS225.model: AnchorCurve([
        (64, 0.006), (256, 0.022), (1024, 0.088), (1500, 0.129),
    ]),
    BLUEFIELD_1M332A.model: AnchorCurve([
        (64, 0.023), (256, 0.083), (1024, 0.330), (1500, 0.484),
    ]),
}


def echo_cost_us(spec: NicSpec, frame_bytes: int) -> float:
    """Per-packet CPU cost of the ECHO app on one core of ``spec``."""
    return _ECHO_COST_US[spec.model](frame_bytes)


def forward_cost_us(spec: NicSpec, frame_bytes: int) -> float:
    """Per-packet cost of pure forwarding (no application work)."""
    return _FORWARD_COST_US[spec.model](frame_bytes)


# -- traffic manager -----------------------------------------------------------

#: Dequeue overhead from the hardware-managed shared work queue (I2: the
#: traffic manager provides a shared queue with *little* synchronization
#: overhead — Figure 5 shows 12 cores add only ~4% latency over 6).
HW_SHARED_QUEUE_SYNC_US = 0.02
#: Software shared queue (off-path NICs, spinlock-protected): ~10x worse.
SW_SHARED_QUEUE_SYNC_US = 0.18


# -- host/NIC messaging latency (Figure 6) ------------------------------------

def smartnic_send_us(frame_bytes: int) -> float:
    """Hardware-assisted (PKO) send on the LiquidIO, one packet."""
    return 0.25 + 4.0e-4 * frame_bytes


def smartnic_recv_us(frame_bytes: int) -> float:
    return 0.28 + 4.0e-4 * frame_bytes


def dpdk_send_us(frame_bytes: int) -> float:
    """Host DPDK SEND cost (kernel-bypass, but software descriptor path)."""
    return 1.35 + 9.0e-4 * frame_bytes


def dpdk_recv_us(frame_bytes: int) -> float:
    return 1.45 + 9.0e-4 * frame_bytes


def rdma_send_us(frame_bytes: int) -> float:
    """Host RDMA SEND verb cost."""
    return 1.20 + 1.0e-3 * frame_bytes


def rdma_recv_us(frame_bytes: int) -> float:
    return 1.30 + 1.0e-3 * frame_bytes


#: Sizes Figures 6-10 sweep.
MESSAGE_SIZES = (4, 8, 16, 32, 64, 128, 256, 512, 1024)
DMA_SIZES = (4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048)
#: Sizes Figures 2/3/5 sweep.
FRAME_SIZES = (64, 128, 256, 512, 1024, 1500)
