"""Hardware catalog: the four SmartNICs of Table 1 plus the host servers.

Every model parameter that downstream components consume (core counts,
frequencies, cache sizes, memory latencies, link speed, deployment style)
lives here, transcribed from Table 1 / Table 2 / §2.2.1 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class MemoryLatencies:
    """Load-to-use latencies in nanoseconds (Table 2, pointer chasing)."""

    l1_ns: float
    l2_ns: float
    dram_ns: float
    l3_ns: Optional[float] = None
    cache_line: int = 64


@dataclass(frozen=True)
class NicSpec:
    """Static description of a Multicore SoC SmartNIC."""

    model: str
    vendor: str
    processor: str
    cores: int
    freq_ghz: float
    ports: int
    bandwidth_gbps: float
    l1_kb: int
    l2_mb: float
    dram_gb: int
    deployed_sw: str            # "firmware" or "full-os"
    nic_type: str               # "on-path" or "off-path"
    host_interface: str         # "dma" or "rdma"
    memory: MemoryLatencies = field(default=None)
    #: Scratchpad cache lines per core (LiquidIO: 54 lines, §2.2.4).
    scratchpad_lines: int = 0
    #: Ideal issue width of the core (cnMIPS OCTEON is 2-way).
    issue_width: int = 2
    has_traffic_manager: bool = True
    has_nvdimm: bool = False

    @property
    def is_on_path(self) -> bool:
        return self.nic_type == "on-path"

    @property
    def runs_firmware(self) -> bool:
        return self.deployed_sw == "firmware"


@dataclass(frozen=True)
class HostSpec:
    """A host server box from the testbed (§2.2.1)."""

    model: str
    cores: int
    freq_ghz: float
    memory: MemoryLatencies
    dram_gb: int
    issue_width: int = 4


LIQUIDIO_CN2350 = NicSpec(
    model="LiquidIOII CN2350",
    vendor="Marvell",
    processor="cnMIPS OCTEON",
    cores=12,
    freq_ghz=1.2,
    ports=2,
    bandwidth_gbps=10,
    l1_kb=32,
    l2_mb=4,
    dram_gb=4,
    deployed_sw="firmware",
    nic_type="on-path",
    host_interface="dma",
    memory=MemoryLatencies(l1_ns=8.3, l2_ns=55.8, dram_ns=115.0, cache_line=128),
    scratchpad_lines=54,
    issue_width=2,
    has_traffic_manager=True,
)

LIQUIDIO_CN2360 = NicSpec(
    model="LiquidIOII CN2360",
    vendor="Marvell",
    processor="cnMIPS OCTEON",
    cores=16,
    freq_ghz=1.5,
    ports=2,
    bandwidth_gbps=25,
    l1_kb=32,
    l2_mb=4,
    dram_gb=4,
    deployed_sw="firmware",
    nic_type="on-path",
    host_interface="dma",
    memory=MemoryLatencies(l1_ns=8.3, l2_ns=55.8, dram_ns=115.0, cache_line=128),
    scratchpad_lines=54,
    issue_width=2,
    has_traffic_manager=True,
)

BLUEFIELD_1M332A = NicSpec(
    model="BlueField 1M332A",
    vendor="Mellanox",
    processor="ARM Cortex-A72",
    cores=8,
    freq_ghz=0.8,
    ports=2,
    bandwidth_gbps=25,
    l1_kb=32,
    l2_mb=1,
    dram_gb=16,
    deployed_sw="full-os",
    nic_type="off-path",
    host_interface="rdma",
    memory=MemoryLatencies(l1_ns=5.0, l2_ns=25.6, dram_ns=132.0, cache_line=64),
    issue_width=3,
    has_traffic_manager=False,
    has_nvdimm=True,
)

STINGRAY_PS225 = NicSpec(
    model="Stingray PS225",
    vendor="Broadcom",
    processor="ARM Cortex-A72",
    cores=8,
    freq_ghz=3.0,
    ports=2,
    bandwidth_gbps=25,
    l1_kb=32,
    l2_mb=16,
    dram_gb=8,
    deployed_sw="full-os",
    nic_type="off-path",
    host_interface="rdma",
    memory=MemoryLatencies(l1_ns=1.3, l2_ns=25.1, dram_ns=85.3, cache_line=64),
    issue_width=3,
    has_traffic_manager=False,
)

#: 1U Supermicro used with the LiquidIO cards.
HOST_XEON_E5_2680 = HostSpec(
    model="Intel Xeon E5-2680 v3",
    cores=12,
    freq_ghz=2.5,
    memory=MemoryLatencies(l1_ns=1.2, l2_ns=6.0, l3_ns=22.4, dram_ns=62.2),
    dram_gb=64,
)

#: 2U Supermicro used with the BlueField / Stingray cards.
HOST_XEON_E5_2620 = HostSpec(
    model="Intel Xeon E5-2620 v4",
    cores=16,
    freq_ghz=2.1,
    memory=MemoryLatencies(l1_ns=1.2, l2_ns=6.0, l3_ns=22.4, dram_ns=62.2),
    dram_gb=128,
)

ALL_NICS: Dict[str, NicSpec] = {
    spec.model: spec
    for spec in (LIQUIDIO_CN2350, LIQUIDIO_CN2360, BLUEFIELD_1M332A, STINGRAY_PS225)
}


def host_for(nic: NicSpec) -> HostSpec:
    """The host server box paired with a given SmartNIC in the testbed."""
    if nic.vendor == "Marvell":
        return HOST_XEON_E5_2680
    return HOST_XEON_E5_2620


def table1_rows() -> Tuple[Tuple[str, ...], ...]:
    """Render Table 1 as printable rows for the bench harness."""
    header = ("SmartNIC model", "Vendor", "Processor", "BW", "L1", "L2",
              "DRAM", "Deployed SW", "Type", "To/From host")
    rows = [header]
    for spec in ALL_NICS.values():
        rows.append((
            spec.model,
            spec.vendor,
            f"{spec.processor} {spec.cores} core, {spec.freq_ghz}GHz",
            f"{spec.ports}x {spec.bandwidth_gbps:g}GbE",
            f"{spec.l1_kb}KB",
            f"{spec.l2_mb:g}MB",
            f"{spec.dram_gb}GB",
            spec.deployed_sw,
            spec.nic_type,
            spec.host_interface.upper(),
        ))
    return tuple(rows)
