"""SmartNIC device composition.

Glues the component models into one device: traffic control feeding NIC
cores, accelerators, on-board memory, and the host-communication engine
(native DMA for LiquidIO-style firmware cards, RDMA verbs for
BlueField/Stingray-style full-OS cards).

The device is passive: core *logic* (the iPipe runtime, or a bare echo
app) spawns processes that pull work items from :attr:`traffic_manager`
and call :meth:`transmit` — exactly how firmware work-queue entries flow
on real hardware.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..net import Network, Packet
from ..sim import Simulator, UtilizationTracker
from .accelerators import AcceleratorBank
from .calibration import echo_cost_us, forward_cost_us
from .dma import DmaEngine
from .memory import MemoryHierarchy, NicDram, PacketBuffer, Scratchpad
from .rdma import RdmaEngine
from .specs import NicSpec
from .traffic import NicSwitch, TrafficManager, traffic_manager_for


class SmartNic:
    """A simulated Multicore SoC SmartNIC plugged into one server."""

    def __init__(self, sim: Simulator, spec: NicSpec, name: str = "nic"):
        self.sim = sim
        self.spec = spec
        self.name = name
        self.traffic_manager: TrafficManager = traffic_manager_for(sim, spec)
        self.accelerators = AcceleratorBank(sim)
        self.packet_buffer = PacketBuffer.for_nic(spec)
        self.memory = MemoryHierarchy.for_nic(spec)
        self.dram = NicDram(spec.dram_gb * (1 << 30))
        self.scratchpads = [
            Scratchpad(spec.scratchpad_lines, spec.memory.cache_line)
            for _ in range(spec.cores)
        ]
        if spec.host_interface == "dma":
            self.host_channel = DmaEngine(sim)
        else:
            self.host_channel = RdmaEngine(sim)
        self.core_util: List[UtilizationTracker] = [
            UtilizationTracker() for _ in range(spec.cores)
        ]
        self.nic_switch: Optional[NicSwitch] = None
        self._uplink = None
        self._host_receiver: Optional[Callable[[Packet], None]] = None
        #: When set (by the iPipe runtime), arriving frames are handed to
        #: this callback instead of being enqueued raw — the runtime wraps
        #: them into scheduler work items first.
        self.packet_handler: Optional[Callable[[Packet], None]] = None
        self.rx_packets = 0
        self.tx_packets = 0

    # -- wiring ------------------------------------------------------------
    def attach_network(self, network: Network, node_name: str) -> None:
        """Connect the NIC's ports to the fabric under ``node_name``."""
        self._uplink = network.attach(node_name, self.receive,
                                      bandwidth_gbps=self.spec.bandwidth_gbps)

    def set_host_receiver(self, fn: Callable[[Packet], None]) -> None:
        """Register the host-side delivery path (driver ring / RDMA QP).

        For off-path NICs this also instantiates the NIC switch so flows
        can bypass NIC cores entirely.
        """
        self._host_receiver = fn
        if not self.spec.is_on_path:
            self.nic_switch = NicSwitch(
                self.sim,
                to_nic=self.traffic_manager.push,
                to_host=fn,
            )

    # -- datapath ------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        """Frame arrival from the wire."""
        self.rx_packets += 1
        if self.packet_handler is not None:
            self.packet_handler(packet)
        elif self.spec.is_on_path or self.nic_switch is None:
            self.traffic_manager.push(packet)
        else:
            self.nic_switch.ingest(packet)

    def transmit(self, packet: Packet) -> None:
        """Send a frame out the TX port."""
        if self._uplink is None:
            raise RuntimeError(f"{self.name}: not attached to a network")
        self.tx_packets += 1
        self._uplink.transmit(packet)

    def deliver_to_host(self, packet: Packet) -> None:
        """Hand a packet up to the host (via DMA'd descriptor rings)."""
        if self._host_receiver is None:
            raise RuntimeError(f"{self.name}: no host receiver registered")
        self._host_receiver(packet)

    # -- calibrated per-packet costs ------------------------------------------
    def echo_cost(self, frame_bytes: int) -> float:
        """CPU µs one core spends fully echoing a frame (Figures 2/3)."""
        return echo_cost_us(self.spec, frame_bytes)

    def forward_cost(self, frame_bytes: int) -> float:
        """CPU µs for raw forwarding without app work (Figure 4)."""
        return forward_cost_us(self.spec, frame_bytes)

    # -- accounting ------------------------------------------------------------
    def charge_core(self, core_id: int, busy_us: float) -> None:
        self.core_util[core_id].add_busy(busy_us)

    def cores_used(self, elapsed_us: float) -> float:
        """Equivalent fully-busy core count over the elapsed window."""
        return sum(u.utilization(elapsed_us) for u in self.core_util)
