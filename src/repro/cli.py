"""Command-line entry point: regenerate any paper table/figure.

Usage::

    python -m repro list
    python -m repro fig2 fig4 table2
    python -m repro fig16 --quick
    python -m repro all --quick
    python -m repro trace --workload rkv --out trace.json
    python -m repro top --by node,cat,actor
    python -m repro fig16 --jobs 4
    python -m repro sweep fig16 --jobs 4 --quick
    python -m repro bench --out BENCH_sweep.json
    python -m repro check --replay 2 fig16 --quick
    python -m repro lint
    python -m repro scenario list
    python -m repro scenario validate
    python -m repro scenario run multi-rack-rkv --duration-us 5000
    python -m repro run multi-rack-rkv --shards by-rack --compare-serial

``--jobs N`` fans a figure's grid out to N worker processes through the
sweep executor (results are bit-identical to a serial run); ``sweep``
additionally caches point results on disk so re-runs only recompute
dirty points; ``bench`` emits the perf baseline ``BENCH_sweep.json``;
``check`` replays one experiment under the determinism sanitizer and
``lint`` runs the static nondeterminism-hazard pass (docs/CHECKING.md);
``scenario`` lists, validates, and runs declarative deployment specs
(docs/SCENARIOS.md) — shipped specs are also ``check`` targets as
``scenario-<name>``; ``run`` is shorthand for ``scenario run`` and takes
``--shards by-rack`` to execute a multi-rack spec on the parallel-in-time
rack-shard executor (``--compare-serial`` proves the fingerprint matches
the single-simulator run; see docs/PERFORMANCE.md).

``--quick`` shrinks simulation durations ~4x for a fast look; the
benchmark suite (``pytest benchmarks/ --benchmark-only``) remains the
canonical reproduction run.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict

from .experiments.report import render_series, render_table


def _executor(jobs: int):
    """A :class:`ParallelSweep` for ``--jobs N`` fan-out, or None serial."""
    if jobs <= 1:
        return None
    from .exec import ParallelSweep
    return ParallelSweep(jobs=jobs)


def _table1() -> None:
    from .nic import table1_rows
    print(render_table(table1_rows(), title="Table 1: SmartNIC specifications"))


def _table2() -> None:
    from .experiments.characterization import table2_rows
    print(render_table(table2_rows(), title="Table 2: memory latencies (ns)"))


def _table3() -> None:
    from .experiments.characterization import table3_accel_rows, table3_rows
    print(render_table(table3_rows(), title="Table 3: offloaded workloads"))
    print(render_table(table3_accel_rows(), title="Table 3: accelerators"))


def _fig2(quick: bool = False, jobs: int = 1) -> None:
    from .experiments.characterization import figure2_series
    from .nic import LIQUIDIO_CN2350
    print("Figure 2: bandwidth (Gbps) vs cores, LiquidIOII CN2350")
    for size, points in figure2_series(LIQUIDIO_CN2350).items():
        print(" ", render_series(f"{size}B", *zip(*points)))


def _fig3(quick: bool = False, jobs: int = 1) -> None:
    from .experiments.characterization import figure2_series
    from .nic import STINGRAY_PS225
    print("Figure 3: bandwidth (Gbps) vs cores, Stingray PS225")
    for size, points in figure2_series(STINGRAY_PS225).items():
        print(" ", render_series(f"{size}B", *zip(*points)))


def _fig4(quick: bool = False, jobs: int = 1) -> None:
    from .experiments.characterization import computing_headroom_us
    from .nic import LIQUIDIO_CN2350, STINGRAY_PS225
    print("Figure 4: computing headroom (µs/packet at line rate)")
    for spec in (LIQUIDIO_CN2350, STINGRAY_PS225):
        print(f"  {spec.model}: "
              f"256B={computing_headroom_us(spec, 256):.2f} "
              f"1024B={computing_headroom_us(spec, 1024):.2f}")


def _fig5(quick: bool = False, jobs: int = 1) -> None:
    from .experiments.characterization import figure5_panel
    duration = 8_000.0 if quick else 25_000.0
    print("Figure 5: avg/p99 latency at max throughput (CN2350)")
    panel = figure5_panel(duration_us=duration, executor=_executor(jobs))
    for size in (64, 512, 1024, 1500):
        for cores in (6, 12):
            p = panel[(size, cores)]
            print(f"  {size:5d}B {cores:2d} cores: avg={p.avg_us:6.2f}µs "
                  f"p99={p.p99_us:6.2f}µs")


def _fig6(quick: bool = False, jobs: int = 1) -> None:
    from .experiments.characterization import figure6_series
    print("Figure 6: messaging latency (µs)")
    for name, points in figure6_series().items():
        print(" ", render_series(name, *zip(*points)))


def _fig7_10(quick: bool = False, jobs: int = 1) -> None:
    from .experiments.characterization import (
        figure7_series, figure8_series, figure9_series, figure10_series)
    for title, series in (
        ("Figure 7: DMA latency (µs)", figure7_series()),
        ("Figure 8: DMA throughput (Mops)", figure8_series()),
        ("Figure 9: RDMA latency (µs)", figure9_series()),
        ("Figure 10: RDMA throughput (Mops)", figure10_series()),
    ):
        print(title)
        for name, points in series.items():
            print(" ", render_series(name, *zip(*points)))


def _fig13(quick: bool = False, jobs: int = 1) -> None:
    from .exec import ParallelSweep, grids
    from .experiments.applications import ROLES
    sizes = (512,) if quick else (64, 256, 512, 1024)
    merged = ParallelSweep(jobs=jobs).run(grids.fig13_grid(quick=quick)).results
    print("Figure 13: host cores used (10GbE CN2350)")
    for size in sizes:
        for system in ("dpdk", "ipipe"):
            for role, (app, idx) in ROLES.items():
                cores = merged[("fig13", system, app, size)].host_cores[f"s{idx}"]
                print(f"  {size:5d}B {system:5s} {role:15s} {cores:5.2f}")


def _fig14(quick: bool = False, jobs: int = 1) -> None:
    from .exec import ParallelSweep, grids
    clients = (2, 16) if quick else (2, 8, 24, 64)
    merged = ParallelSweep(jobs=jobs).run(grids.fig14_grid(quick=quick)).results
    print("Figure 14: latency vs per-core throughput (10GbE, 512B)")
    for system in ("dpdk", "ipipe"):
        for app in ("rta", "dt", "rkv"):
            curve = [(merged[("fig14", system, app, c)].per_core_tput("s0"),
                      merged[("fig14", system, app, c)].mean_latency_us)
                     for c in clients]
            pts = " ".join(f"{t:.2f}Mops@{l:.1f}µs" for t, l in curve)
            print(f"  {app}-{system}: {pts}")


def _fig16(quick: bool = False, jobs: int = 1) -> None:
    from .experiments.scheduler_study import run_point, sweep
    from .nic import LIQUIDIO_CN2350
    duration = 30_000.0 if quick else 100_000.0
    loads = (0.5, 0.9) if quick else (0.3, 0.5, 0.7, 0.9)
    for dispersion in ("low", "high"):
        print(f"Figure 16 ({dispersion} dispersion, CN2350): p99 (µs)")
        results = sweep(LIQUIDIO_CN2350, dispersion, loads,
                        duration_us=duration, executor=_executor(jobs))
        for policy, series in results.items():
            print(" ", render_series(policy, [l for l, _, _ in series],
                                     [p for _, _, p in series],
                                     xfmt="{:.1f}"))
    # where the sojourn time goes at the knee: a traced rerun of the
    # hybrid at the highest swept load, attributed per pipeline stage
    _, _, stages = run_point(LIQUIDIO_CN2350, "ipipe", "high", loads[-1],
                             duration_us=duration, traced=True)
    print(f"Figure 16 stage breakdown (ipipe, high dispersion, "
          f"load={loads[-1]:.1f}):")
    for stage, st in stages.items():
        print(f"  {stage:14s} n={st['count']:<8d} p50={st['p50_us']:8.2f}µs "
              f"p99={st['p99_us']:8.2f}µs")


def _fig17(quick: bool = False, jobs: int = 1) -> None:
    from .experiments.applications import overhead_comparison
    duration = 8_000.0 if quick else 15_000.0
    print("Figure 17: host-only RKV CPU with vs without iPipe")
    for load, dpdk, ipipe in overhead_comparison(
            load_fractions=(0.5, 1.0), duration_us=duration,
            executor=_executor(jobs)):
        print(f"  load={load:.2f}: w/o iPipe {dpdk:.2f} cores, "
              f"w/ iPipe {ipipe:.2f} cores")


def _fig18(quick: bool = False, jobs: int = 1) -> None:
    from .experiments.migration_study import breakdown_rows, run_migration_breakdown
    print("Figure 18: migration breakdown")
    for row in breakdown_rows(run_migration_breakdown(warmup_us=2_000.0)):
        print(f"  {row.actor:10s} p1={row.phase1_us:6.0f}µs "
              f"p2={row.phase2_us:6.0f}µs p3={row.phase3_us:8.0f}µs "
              f"p4={row.phase4_us:8.0f}µs  total={row.total_ms:.2f}ms")


def _sec56(quick: bool = False, jobs: int = 1) -> None:
    from .experiments.netfns import floem_vs_ipipe
    duration = 8_000.0 if quick else 12_000.0
    for size in (1024, 64):
        floem, ipipe = floem_vs_ipipe(packet_size=size, clients=96,
                                      duration_us=duration)
        print(f"§5.6 {size}B: Floem {floem.gbps_per_core:.2f} vs "
              f"iPipe {ipipe.gbps_per_core:.2f} Gbps/core")


def _sec57(quick: bool = False, jobs: int = 1) -> None:
    from .experiments.netfns import firewall_latency_vs_load, ipsec_goodput_gbps
    from .nic import LIQUIDIO_CN2360
    duration = 8_000.0 if quick else 15_000.0
    print("§5.7 firewall (8K rules):")
    for load, latency in firewall_latency_vs_load(duration_us=duration):
        print(f"  load={load:.2f}: {latency:.2f}µs")
    print(f"§5.7 IPsec: 10GbE={ipsec_goodput_gbps(duration_us=duration):.1f} "
          f"Gbps, 25GbE={ipsec_goodput_gbps(spec=LIQUIDIO_CN2360, duration_us=duration):.1f} Gbps")


def _plan_study(quick: bool = False, jobs: int = 1) -> None:
    from .experiments.plan_study import render_comparison, run_study
    study = run_study(quick=quick)
    print(render_table(render_comparison(study["comparisons"]),
                       title="PlanPlane: planner vs reactive DRR "
                             "(docs/PLANNING.md)"))
    chaos = study["chaos"]
    print(chaos.describe())
    if not chaos.ok:
        raise SystemExit("plan-study: planned placement broke the chaos "
                         "recovery criterion")


def _tenant_study(quick: bool = False, jobs: int = 1) -> None:
    from .experiments.tenant_study import run_tenant_study
    kwargs = ({"duration_us": 20_000.0, "n_requests": 30,
               "aggressor_stop_us": 18_000.0} if quick else {})
    record = run_tenant_study(**kwargs)
    print("TenantPlane: noisy neighbor vs hierarchical DRR shares "
          "(docs/TENANCY.md)")
    print(f"  victim p99 solo      {record['victim_p99_solo_us']:8.1f}µs")
    print(f"  victim p99 flat      {record['victim_p99_flat_us']:8.1f}µs "
          f"({record['degradation_x']:.2f}x)")
    print(f"  victim p99 isolated  {record['victim_p99_isolated_us']:8.1f}µs "
          f"({record['isolated_x']:.2f}x)")
    bad = [k for k, good in record["invariants"].items() if not good]
    if bad:
        raise SystemExit(f"tenant-study: violated {', '.join(bad)}")
    print("  all isolation invariants hold")


def _cmd_trace(argv) -> int:
    """``repro trace``: run a traced workload, export Chrome trace JSON."""
    from .experiments.chaos_study import RUNNERS
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Run one traced workload and export a Perfetto-loadable "
                    "Chrome trace (open it at https://ui.perfetto.dev).")
    parser.add_argument("--workload", choices=sorted(RUNNERS), default="rkv")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--out", default="trace.json", metavar="PATH",
                        help="output path for the trace_event JSON")
    args = parser.parse_args(argv)
    report = RUNNERS[args.workload](seed=args.seed, trace=True)
    print(report.summary())
    events = report.trace_plane.export_chrome(args.out)
    print(f"\n{events} trace events -> {args.out} "
          f"(drag into https://ui.perfetto.dev)")
    return 0 if report.ok else 1


def _cmd_top(argv) -> int:
    """``repro top``: flame-style fold of span time by node/stage/actor."""
    from .experiments.chaos_study import RUNNERS
    parser = argparse.ArgumentParser(
        prog="python -m repro top",
        description="Run one traced workload and print where the "
                    "virtual time went, folded by span fields.")
    parser.add_argument("--workload", choices=sorted(RUNNERS), default="rkv")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--by", default="node,cat,actor",
                        help="comma-separated fold key (span fields "
                             "node/cat/name/track or attribute names)")
    parser.add_argument("--limit", type=int, default=40)
    args = parser.parse_args(argv)
    report = RUNNERS[args.workload](seed=args.seed, trace=True)
    by = tuple(dim.strip() for dim in args.by.split(",") if dim.strip())
    print(report.trace_plane.flame(by=by, limit=args.limit))
    print()
    print(report.trace_plane.render_stages())
    return 0


def _cmd_slo(argv) -> int:
    """``repro slo``: run the SLO study and print the burn-rate report."""
    from .experiments.slo_study import run_slo_chaos
    from .obs import render_slo_report
    parser = argparse.ArgumentParser(
        prog="python -m repro slo",
        description="Run the PulsePlane SLO study (aggressor vs victim) "
                    "and print each SLO's burn-rate evaluation: state, "
                    "breach/recovery transitions, and budget math "
                    "(docs/OBSERVABILITY.md). Exit code 0: the whole "
                    "breach -> load-driven migration -> recovery loop "
                    "closed; 1 otherwise.")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--threshold", type=float, default=150.0,
                        metavar="US", help="victim p99 SLO threshold")
    parser.add_argument("--quick", action="store_true",
                        help="shorter run (~1s)")
    args = parser.parse_args(argv)
    kwargs = {"seed": args.seed, "threshold_us": args.threshold}
    if args.quick:
        kwargs.update(duration_us=25_000.0, n_requests=55,
                      aggressor_stop_us=20_000.0)
    report = run_slo_chaos(**kwargs)
    print(report.summary())
    print(render_slo_report(report.pulse_plane.slo_report()))
    return 0 if report.ok else 1


def _cmd_pulse(argv) -> int:
    """``repro pulse``: run a pulse-sampled study, export the series."""
    from .experiments.slo_study import run_slo_chaos
    parser = argparse.ArgumentParser(
        prog="python -m repro pulse",
        description="Run the pulse-sampled SLO study and export the "
                    "continuous telemetry: --csv for a series,t_us,value "
                    "table, --out for Perfetto-loadable counter tracks "
                    "(open at https://ui.perfetto.dev).")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--csv", default=None, metavar="PATH",
                        help="write the sampled series as CSV")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write Chrome trace_event counter tracks")
    args = parser.parse_args(argv)
    if not args.csv and not args.out:
        parser.error("nothing to export: pass --csv and/or --out")
    report = run_slo_chaos(seed=args.seed)
    print(report.summary())
    pulse = report.pulse_plane
    if args.csv:
        rows = pulse.export_csv(args.csv)
        print(f"{rows} samples -> {args.csv}")
    if args.out:
        events = pulse.export_chrome(args.out)
        print(f"{events} counter events -> {args.out} "
              f"(drag into https://ui.perfetto.dev)")
    return 0 if report.ok else 1


def _cmd_sweep(argv) -> int:
    """``repro sweep``: run one experiment grid through the executor."""
    from .exec import DEFAULT_CACHE_DIR, ParallelSweep, ResultCache, grids
    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description="Run an experiment grid through the parallel sweep "
                    "executor, caching point results on disk so re-runs "
                    "only recompute dirty points.")
    parser.add_argument("grid", choices=sorted(grids.GRIDS),
                        help="which figure/study grid to run")
    parser.add_argument("--quick", action="store_true",
                        help="shorter simulations for a fast look")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (0 = one per CPU; default 1)")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        metavar="DIR", help="result cache directory "
                        f"(default: {DEFAULT_CACHE_DIR})")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every point; do not touch the cache")
    args = parser.parse_args(argv)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    report = ParallelSweep(jobs=args.jobs, cache=cache).run(
        grids.GRIDS[args.grid](quick=args.quick))
    for key, value in report.results.items():
        text = repr(value)
        if len(text) > 110:
            text = text[:107] + "..."
        print(f"  {key}: {text}")
    print(report.summary())
    return 0


def _cmd_bench(argv) -> int:
    """``repro bench``: kernel + sweep benchmarks -> BENCH_sweep.json."""
    import json
    from .exec.bench import (REGRESSION_THRESHOLD, check_regression,
                             run_bench, write_bench)
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="DES-kernel and sweep-executor benchmarks; writes the "
                    "BENCH_sweep.json perf baseline and optionally gates "
                    "against a committed one.")
    parser.add_argument("--out", default="BENCH_sweep.json", metavar="PATH")
    parser.add_argument("--pool", type=int, default=4, metavar="N",
                        help="pool size for the sweep benchmark (default 4)")
    parser.add_argument("--full", action="store_true",
                        help="full-size sweep grid instead of the quick one")
    parser.add_argument("--figures", action="store_true",
                        help="also time per-figure grid wall-clock")
    # argparse help strings are %-interpolated: escape the threshold
    threshold = f"{REGRESSION_THRESHOLD:.0%}".replace("%", "%%")
    parser.add_argument("--check", metavar="BASELINE", default=None,
                        help="compare *_eps metrics against a baseline "
                             "JSON file. Exit code 0: every metric is "
                             f"within {threshold} of the baseline (the "
                             "fresh results are still written to --out). "
                             "Exit code 1: at least one metric regressed "
                             "beyond the threshold; each failing metric "
                             "is printed with its baseline and current "
                             "value")
    args = parser.parse_args(argv)
    bench = run_bench(pool=args.pool, quick=not args.full,
                      figures=args.figures)
    # The file is written before any printing or gating: a section that
    # errored is stamped into it, and CI uploads it ``if: always()``.
    write_bench(bench, args.out)
    errored = sorted(section for section, metrics in bench.items()
                     if isinstance(metrics, dict) and "error" in metrics)
    kern, sw = bench["kernel"], bench["sweep"]
    cores = bench.get("meta", {}).get("runner_cores", "?")
    print(f"wrote {args.out} ({cores} runner core(s))")
    if "kernel" not in errored:
        print(f"  kernel: post chain {kern['post_chain_eps']:,.0f} ev/s "
              f"(seed kernel {kern['seed_chain_eps']:,.0f}; "
              f"{kern['speedup_post_vs_seed']:.2f}x), cancel-heavy "
              f"{kern['speedup_cancel_vs_seed']:.2f}x, peak heap "
              f"{kern['cancel_heavy_peak_heap']:.0f} vs seed "
              f"{kern['cancel_heavy_seed_peak_heap']:.0f}")
    if "sweep" not in errored:
        speedup = sw.get("pool_speedup")
        pool_txt = (f"pool x{sw['pool']} {speedup:.2f}x"
                    if speedup is not None
                    else f"pool x{sw['pool']} skipped "
                         f"({sw.get('pool_note', 'single-core host')})")
        print(f"  sweep ({sw['points']} pts): {pool_txt}, "
              f"warm cache {sw['cached_speedup']:.2f}x "
              f"(hit rate {sw['cache_hit_rate']:.0%}), "
              f"identical={sw['identical']}")
    shard = bench.get("shard")
    if shard and "shard" not in errored:
        proc = shard.get("proc_speedup")
        proc_txt = (f", process-sharded {proc:.2f}x" if proc is not None
                    else f" ({shard.get('proc_note', 'no process leg')})")
        print(f"  shard ({shard['spec']}): {shard['racks']} racks, "
              f"serial {shard['serial_s']:.2f}s vs sharded "
              f"{shard['shard_s']:.2f}s ({shard['shard_speedup']:.2f}x on "
              f"{shard['effective_jobs']} effective core(s))"
              f"{proc_txt}, rounds={shard['rounds']}, "
              f"fingerprint match={shard['match']}")
    for section in errored:
        print(f"  {section}: ERRORED: {bench[section]['error']}")
    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        failures = check_regression(bench, baseline)
        if failures:
            print("PERF REGRESSION vs " + args.check + ":")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(f"  no regression vs {args.check}")
    return 1 if errored else 0


def _scenario_names() -> tuple:
    """Shipped scenario spec names, found on disk so listing them does
    not import the (heavy) scenario layer at CLI start."""
    spec_dir = os.path.join(os.path.dirname(__file__), "scenario", "specs")
    if not os.path.isdir(spec_dir):
        return ()
    return tuple(sorted(
        os.path.splitext(entry)[0]
        for entry in os.listdir(spec_dir) if entry.endswith(".json")))


#: ``repro check`` targets: representative runs covering the scheduler
#: study (fig16), the characterization dataplane (fig5), the three
#: chaos scenarios (full fault-injection + recovery paths), and every
#: shipped scenario spec (as ``scenario-<name>``).
CHECK_TARGETS = ("fig5", "fig16", "chaos-rkv", "chaos-dt", "chaos-rta",
                 "steering-chaos", "slo-study", "tenant-study"
                 ) + tuple(f"scenario-{name}" for name in _scenario_names()) \
                   + tuple(f"plan-{name}" for name in _scenario_names())


def _check_run_fn(target: str, quick: bool, seed: int | None):
    """A self-contained zero-arg runner for one ``repro check`` target.

    ``--quick`` shrinks durations to sanitizer-smoke size (a two-replay
    check finishes in about a second); without it the experiment's
    default duration is used.
    """
    if target == "fig16":
        from .experiments.scheduler_study import run_point
        from .nic import LIQUIDIO_CN2350
        kwargs = {"seed": 1 if seed is None else seed}
        if quick:
            kwargs["duration_us"] = 4_000.0
        return lambda: run_point(LIQUIDIO_CN2350, "ipipe", "high", 0.9,
                                 **kwargs)
    if target == "fig5":
        from .experiments.characterization import traffic_manager_experiment
        kwargs = {"seed": 3 if seed is None else seed}
        if quick:
            kwargs["duration_us"] = 3_000.0
        return lambda: traffic_manager_experiment(frame_bytes=512, cores=6,
                                                  **kwargs)
    if target == "steering-chaos":
        from .experiments.steering_study import rebalance_point
        kwargs = {"seed": 42 if seed is None else seed}
        if quick:
            kwargs.update(duration_us=20_000.0, n_requests=40,
                          send_gap_us=300.0, notice_us=3_000.0)
        return lambda: rebalance_point(**kwargs)
    if target == "slo-study":
        from .experiments.slo_study import slo_point
        kwargs = {"seed": 42 if seed is None else seed}
        if quick:
            # shrunk but still closing the breach -> migrate -> recover
            # loop, so the pulse/SLO fingerprint terms stay exercised
            kwargs.update(duration_us=25_000.0, n_requests=55,
                          aggressor_stop_us=20_000.0)
        return lambda: slo_point(**kwargs)
    if target == "tenant-study":
        from .experiments.tenant_study import tenant_point
        kwargs = {"seed": 42 if seed is None else seed}
        if quick:
            # shrunk three-leg run; still long enough for the flood to
            # degrade the flat leg >= 2x and for the shares to hold the
            # isolated leg within 25% of solo
            kwargs.update(duration_us=20_000.0, n_requests=30,
                          aggressor_stop_us=18_000.0)
        return lambda: tenant_point(**kwargs)
    if target.startswith("scenario-"):
        import dataclasses
        from .scenario import load_shipped, run_scenario
        spec = load_shipped(target[len("scenario-"):])
        if seed is not None:
            spec = dataclasses.replace(spec, seed=seed)
        duration = 5_000.0 if quick else None
        return lambda: run_scenario(spec, duration_us=duration).fingerprint()
    if target.startswith("plan-"):
        # the whole planning pipeline: profile -> solve -> apply -> run;
        # the digest covers the plan *and* the planned run
        import dataclasses
        from .plan import apply_placement, compute_plan
        from .scenario import load_shipped, run_scenario
        spec = load_shipped(target[len("plan-"):])
        if seed is not None:
            spec = dataclasses.replace(spec, seed=seed)
        duration = 5_000.0 if quick else None
        profile_us = 2_000.0 if quick else None

        def planned_run():
            plan = compute_plan(spec, profile_us)
            planned = apply_placement(plan, spec)
            result = run_scenario(planned, duration_us=duration)
            return (plan.fingerprint(), result.fingerprint())
        return planned_run
    workload = target.split("-", 1)[1]
    from .exec.grids import chaos_point
    kwargs = {"seed": 42 if seed is None else seed}
    if quick:
        kwargs["duration_us"] = 10_000.0
    return lambda: chaos_point(workload, **kwargs)


def _cmd_check(argv) -> int:
    """``repro check``: N-replay determinism sanitizer over one target."""
    from .check import replay_check
    parser = argparse.ArgumentParser(
        prog="python -m repro check",
        description="Replay one experiment N times under the determinism "
                    "sanitizer and compare rolling event digests; on a "
                    "mismatch, binary-search to the first divergent event "
                    "and name the offending callback. Exit code 0: all "
                    "replays bit-identical and no nondeterminism hazard "
                    "observed; exit code 1 otherwise.")
    parser.add_argument("target", choices=CHECK_TARGETS,
                        help="which experiment to replay")
    parser.add_argument("--replay", type=int, default=2, metavar="N",
                        help="replays to compare (minimum 2; default 2)")
    parser.add_argument("--seed", type=int, default=None,
                        help="experiment seed (default: the target's own)")
    parser.add_argument("--quick", action="store_true",
                        help="sanitizer-smoke durations (~1s per check)")
    parser.add_argument("--monitors", action="store_true",
                        help="also sweep the runtime invariant monitors "
                             "during each replay (violations fail the "
                             "check)")
    args = parser.parse_args(argv)
    if args.replay < 2:
        parser.error("--replay must be at least 2")
    run_fn = _check_run_fn(args.target, args.quick, args.seed)
    result = replay_check(run_fn, replays=args.replay,
                          monitors=args.monitors)
    print(f"check {args.target}"
          + (f" --seed {args.seed}" if args.seed is not None else "")
          + (" --monitors" if args.monitors else ""))
    print(result.describe())
    return 0 if result.ok else 1


def _resolve_spec(ref: str):
    """A spec from a shipped name or a ``.json``/``.toml`` path."""
    from .scenario import from_file, load_shipped
    if ref.endswith(".json") or ref.endswith(".toml") or os.sep in ref:
        return from_file(ref)
    return load_shipped(ref)


def _cmd_scenario(argv) -> int:
    """``repro scenario``: list, validate, and run declarative specs."""
    parser = argparse.ArgumentParser(
        prog="python -m repro scenario",
        description="Work with declarative deployment scenarios "
                    "(docs/SCENARIOS.md). Specs ship under "
                    "repro/scenario/specs/ and load from JSON or TOML.")
    sub = parser.add_subparsers(dest="cmd", required=True)
    sub.add_parser("list", help="shipped scenario specs with a summary")
    p_val = sub.add_parser(
        "validate", help="validate spec files (default: all shipped)")
    p_val.add_argument("specs", nargs="*", metavar="SPEC",
                       help="shipped names or .json/.toml paths")
    p_run = sub.add_parser("run", help="build one scenario and run it")
    p_run.add_argument("spec", metavar="SPEC",
                       help="shipped name or .json/.toml path")
    p_run.add_argument("--duration-us", type=float, default=None,
                       help="override the spec's horizon")
    p_run.add_argument("--shards", choices=("none", "by-rack"), default=None,
                       help="execution mode override: by-rack runs one "
                            "simulator per rack in conservative lookahead "
                            "windows (default: the spec's own setting)")
    p_run.add_argument("--processes", type=int, default=None, metavar="N",
                       help="with by-rack shards: fork one worker process "
                            "per rack when N > 0 (default: the spec's own)")
    p_run.add_argument("--compare-serial", action="store_true",
                       help="also run the serial single-simulator "
                            "execution and verify the fingerprints match "
                            "(exit 1 on divergence)")
    args = parser.parse_args(argv)

    if args.cmd == "list":
        from .scenario import load_shipped, shipped_specs
        for name in shipped_specs():
            spec = load_shipped(name)
            servers = sum(len(r.servers) for r in spec.racks)
            apps = ",".join(a.kind for a in spec.apps) or "none"
            print(f"{name}: {len(spec.racks)} rack(s), {servers} server(s), "
                  f"apps [{apps}], {len(spec.fleets)} fleet(s), "
                  f"{len(spec.tenants)} tenant(s), {len(spec.faults)} "
                  f"fault(s)")
            if spec.description:
                print(f"  {spec.description}")
        return 0

    if args.cmd == "validate":
        from .scenario import ScenarioError, shipped_specs
        refs = args.specs or shipped_specs()
        if not refs:
            print("no specs to validate", file=sys.stderr)
            return 2
        failures = 0
        for ref in refs:
            try:
                spec = _resolve_spec(ref)
                spec.validate()
            except (ScenarioError, OSError, KeyError) as exc:
                failures += 1
                print(f"FAIL {ref}: {exc}")
            else:
                print(f"ok   {ref} ({spec.name})")
        return 1 if failures else 0

    import dataclasses
    from .scenario import run_scenario
    spec = _resolve_spec(args.spec)
    if args.shards is not None or args.processes is not None:
        ex = spec.execution
        spec = dataclasses.replace(spec, execution=dataclasses.replace(
            ex,
            shards=args.shards if args.shards is not None else ex.shards,
            processes=(args.processes if args.processes is not None
                       else ex.processes)))
    spec.validate()
    result = run_scenario(spec, duration_us=args.duration_us)
    print(f"scenario {result.name} (seed {result.seed}, "
          f"{result.duration_us:.0f}µs"
          + (f", shards={spec.execution.shards}"
             if spec.execution.shards != "none" else "") + ")")
    print(f"  sent {result.sent}, completed {result.completed} "
          f"({result.throughput_mops:.3f} Mops)")
    if result.completed:
        print(f"  latency mean {result.mean_latency_us:.3f}µs "
              f"p99 {result.p99_latency_us:.3f}µs")
    for client, count in sorted(result.client_received.items()):
        print(f"  client {client}: {count} replies")
    for switch, (fwd, dropped) in sorted(result.switch_counters.items()):
        print(f"  switch {switch}: forwarded {fwd}, dropped {dropped}")
    if result.faults_injected or result.recoveries:
        print(f"  faults {result.faults_injected}, "
              f"recoveries {result.recoveries}")
    print(f"  fingerprint {result.fingerprint()}")
    if args.compare_serial:
        serial_spec = dataclasses.replace(spec, execution=dataclasses.replace(
            spec.execution, shards="none",
            fault_streams=spec.execution.resolved_fault_streams()))
        serial = run_scenario(serial_spec, duration_us=args.duration_us)
        if serial.fingerprint() == result.fingerprint():
            print("  serial equivalence: MATCH")
        else:
            print("  serial equivalence: MISMATCH")
            print(f"  serial fingerprint {serial.fingerprint()}")
            return 1
    return 0


def _cmd_plan(argv) -> int:
    """``repro plan``: compile a profile-driven placement plan."""
    parser = argparse.ArgumentParser(
        prog="python -m repro plan",
        description="Profile one scenario under the TracePlane, solve "
                    "fabric-wide shard/actor placement against the "
                    "calibrated NIC/host cost models, and emit the plan "
                    "as a declarative PlacementSpec (docs/PLANNING.md). "
                    "Exit code 0: planned (and, with --run, ran) "
                    "successfully. Exit code 1: the plan failed "
                    "validation, did not fit the scenario, or the "
                    "planned run failed. Exit code 2: usage error.")
    parser.add_argument("scenario", metavar="SCENARIO",
                        help="shipped name or .json/.toml spec path")
    parser.add_argument("--out", metavar="PLAN.json", default=None,
                        help="write the PlacementSpec JSON here")
    parser.add_argument("--spec-out", metavar="SPEC.json", default=None,
                        help="also write the planned (transformed) "
                             "scenario spec here")
    parser.add_argument("--validate", metavar="PLAN.json", default=None,
                        help="validate an existing plan against the "
                             "scenario instead of solving a new one")
    parser.add_argument("--profile-us", type=float, default=None,
                        metavar="US", help="profiling window (default: "
                        "min(spec horizon, 5000µs))")
    parser.add_argument("--run", action="store_true",
                        help="run the planned scenario and report it "
                             "next to the unplanned (reactive) run")
    parser.add_argument("--no-cache", action="store_true",
                        help="always re-profile and re-solve; do not "
                             "touch the result cache")
    args = parser.parse_args(argv)

    from .exec import DEFAULT_CACHE_DIR, ResultCache
    from .plan import (PlanError, apply_placement, plan_scenario, to_json)
    from .plan import from_file as plan_from_file
    from .scenario import ScenarioError, run_scenario
    from .scenario import to_json as spec_to_json
    try:
        spec = _resolve_spec(args.scenario)
        spec.validate()

        if args.validate is not None:
            plan = plan_from_file(args.validate).validate()
            planned = apply_placement(plan, spec)
            planned.validate()
            print(f"ok   {args.validate} fits {spec.name} "
                  f"(plan {plan.fingerprint()}, "
                  f"{len(plan.actors)} actor placements)")
            return 0

        cache = None if args.no_cache else ResultCache(
            os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))
        plan = plan_scenario(spec, profile_duration_us=args.profile_us,
                             cache=cache)
        planned = apply_placement(plan, spec)
        planned.validate()

        nic = sum(1 for p in plan.actors if p.device == "nic")
        host = len(plan.actors) - nic
        print(f"plan {spec.name}: {len(plan.assignments)} shard "
              f"assignment(s), {len(plan.actors)} actor placement(s) "
              f"({nic} nic / {host} host)")
        print(f"  profile {plan.profile_fingerprint}, "
              f"plan {plan.fingerprint()}, "
              f"predicted p99 {plan.objective_p99_us:.3f}µs")
        for a in plan.assignments:
            print(f"  {a.app} shard {a.shard}: "
                  f"{a.servers[0]} (leader) + "
                  f"{', '.join(a.servers[1:]) or 'no followers'}")
        if args.out is not None:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(to_json(plan))
            print(f"  wrote {args.out}")
        if args.spec_out is not None:
            with open(args.spec_out, "w", encoding="utf-8") as fh:
                fh.write(spec_to_json(planned))
            print(f"  wrote {args.spec_out}")

        if args.run:
            planned_res = run_scenario(planned)
            reactive_res = run_scenario(spec)
            for label, res in (("planned", planned_res),
                               ("reactive", reactive_res)):
                done = res.completed or sum(res.client_received.values())
                line = (f"  {label}: {done} completed")
                if res.completed:
                    line += (f", p99 {res.p99_latency_us:.3f}µs")
                line += f", fingerprint {res.fingerprint()}"
                print(line)
        return 0
    except (PlanError, ScenarioError, OSError, KeyError) as exc:
        print(f"plan failed: {exc}", file=sys.stderr)
        return 1


def _cmd_lint(argv) -> int:
    """``repro lint``: static nondeterminism-hazard pass over src/repro."""
    import os
    from .check import RULES, lint_file, lint_tree
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="Static pass banning nondeterminism hazards (host "
                    "clocks, module-level random, set iteration feeding "
                    "event scheduling) in simulation code. Exit code 0: "
                    "clean; 1: findings; 2: a path does not exist.")
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="files or directories to lint (default: the "
                             "installed repro package)")
    parser.add_argument("--rules", action="store_true",
                        help="list the lint rules and exit")
    args = parser.parse_args(argv)
    if args.rules:
        for rule, description in sorted(RULES.items()):
            print(f"{rule:15s} {description}")
        return 0
    roots = args.paths or [os.path.dirname(os.path.abspath(__file__))]
    findings = []
    for root in roots:
        if not os.path.exists(root):
            print(f"no such path: {root}", file=sys.stderr)
            return 2
        if os.path.isfile(root):
            findings.extend(lint_file(root))
        else:
            findings.extend(lint_tree(root))
    for finding in findings:
        print(finding)
    checked = ", ".join(args.paths) if args.paths else "src/repro"
    if findings:
        print(f"repro lint: {len(findings)} finding(s) in {checked}")
        return 1
    print(f"repro lint: clean ({checked})")
    return 0


EXPERIMENTS: Dict[str, Callable[..., None]] = {
    "table1": lambda quick=False, jobs=1: _table1(),
    "table2": lambda quick=False, jobs=1: _table2(),
    "table3": lambda quick=False, jobs=1: _table3(),
    "fig2": _fig2,
    "fig3": _fig3,
    "fig4": _fig4,
    "fig5": _fig5,
    "fig6": _fig6,
    "fig7-10": _fig7_10,
    "fig13": _fig13,
    "fig14": _fig14,
    "fig16": _fig16,
    "fig17": _fig17,
    "fig18": _fig18,
    "sec5.6": _sec56,
    "sec5.7": _sec57,
    "plan-study": _plan_study,
    "tenant-study": _tenant_study,
}


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        return _cmd_trace(argv[1:])
    if argv and argv[0] == "top":
        return _cmd_top(argv[1:])
    if argv and argv[0] == "sweep":
        return _cmd_sweep(argv[1:])
    if argv and argv[0] == "bench":
        return _cmd_bench(argv[1:])
    if argv and argv[0] == "check":
        return _cmd_check(argv[1:])
    if argv and argv[0] == "lint":
        return _cmd_lint(argv[1:])
    if argv and argv[0] == "scenario":
        return _cmd_scenario(argv[1:])
    if argv and argv[0] == "plan":
        return _cmd_plan(argv[1:])
    if argv and argv[0] == "run":
        # shorthand: ``repro run SPEC ...`` == ``repro scenario run ...``
        return _cmd_scenario(["run"] + argv[1:])
    if argv and argv[0] == "slo":
        return _cmd_slo(argv[1:])
    if argv and argv[0] == "pulse":
        return _cmd_pulse(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures from the iPipe paper.")
    parser.add_argument("experiments", nargs="+",
                        help="experiment ids (see 'list'), or 'all'")
    parser.add_argument("--quick", action="store_true",
                        help="shorter simulations for a fast look")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan experiment grids out to N worker "
                             "processes (results identical to serial)")
    args = parser.parse_args(argv)

    if args.experiments == ["list"]:
        for name in EXPERIMENTS:
            print(name)
        return 0
    targets = (list(EXPERIMENTS) if args.experiments == ["all"]
               else args.experiments)
    for name in targets:
        fn = EXPERIMENTS.get(name)
        if fn is None:
            print(f"unknown experiment {name!r}; try 'list'", file=sys.stderr)
            return 2
        fn(quick=args.quick, jobs=args.jobs)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
