"""The placement compiler: greedy construction + deterministic local
search over shard assignment and actor/device placement.

The solver consumes a :class:`~repro.plan.profile.PlanProfile` plus the
calibrated per-device cost models (:func:`~repro.nic.cores.time_on_nic`,
``time_on_host``) and decides, fabric-wide:

* which server hosts which shard role of each planned app (the replica
  group partition and per-group leader), and
* per ``server/actor``, whether the actor runs on NIC or host cores,

under per-device capacity caps and a utilization-aware p99 objective.
The contract is **determinism, not optimality**: the same profile always
produces the byte-identical plan (sorted iteration everywhere, strict
improvement acceptance, no randomness), so plans are cacheable and
sanitizer-checkable like any other derived artifact.

Mechanically this is Lemur's profile-driven NF-chain placement recast
onto iPipe's actor model: offload-first construction (everything
unpinned starts on the NIC, the paper's §4 default), greedy downgrade of
the worst NIC-residents while any NIC is over capacity (highest host
speedup first — implication I3: compute-bound actors gain the most from
the host), then hill-climbing over device flips, leader rotations, and
cross-group server swaps.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..nic import host_for
from ..nic.cores import WorkloadProfile, time_on_host, time_on_nic
from ..scenario.spec import ScenarioSpec, resolve_nic
from .profile import ActorProfile, PlanProfile
from .spec import ActorPlacement, PlacementSpec, ShardAssignment

#: Actors each planned app registers, in registration order.
APP_ACTORS = {
    "rkv": ("consensus", "memtable", "sst_read", "compaction"),
    "dt": ("coordinator", "txn_logger", "participant"),
    "rta": ("filter", "counter", "ranker"),
}

#: Planner capacity caps: keep devices out of the queueing knee so the
#: p99 constraint has headroom (utilization beyond this fails the plan).
NIC_UTIL_CAP = 0.70
HOST_UTIL_CAP = 0.80

#: Default host-over-NIC gain when an actor carries no Table-3
#: characterization (the runtime's own fallback ratio).
DEFAULT_HOST_GAIN = 2.8

#: Host residency prices both ring crossings (request in, response out).
CROSSINGS_PER_REQUEST = 2.0

#: Objective price (µs) per host core consumed.  Offloading exists to
#: *free host cores* (§1): host CPU is the scarce fabric-wide resource,
#: so the planner minimizes host usage first and latency second — an
#: actor only moves host-side when the NIC is out of capacity or the
#: compute gain is overwhelming.  This also keeps plans aligned with the
#: runtime's reactive pull policy (an underloaded NIC pulls actors back
#: up), so a plan does not immediately get churned by the scheduler it
#: hands over to.
HOST_CORE_PRICE_US = 25.0

#: Clamp for the M/M/1-style latency inflation 1/(1-util).
_UTIL_CLAMP = 0.95
#: Objective penalty per unit of capacity excess (keeps infeasible
#: states comparable during search without ever winning).
_INFEASIBLE_PENALTY = 1e6

_MAX_PASSES = 6
_EPS = 1e-12


@dataclass(frozen=True)
class _Role:
    """One shard-group slot of one app: rank 0 is the leader."""

    app: str
    shard: int
    rank: int
    measured_server: str


@dataclass
class _Context:
    """Everything precomputed once per solve."""

    spec: ScenarioSpec
    profile: PlanProfile
    roles: List[_Role] = field(default_factory=list)
    #: role -> actor rows measured for that role (on its measured server)
    role_rows: Dict[_Role, List[ActorProfile]] = field(default_factory=dict)
    #: rows belonging to no planned role (stay where measured)
    static_rows: List[ActorProfile] = field(default_factory=list)
    #: per-server device models
    nic_cores: Dict[str, float] = field(default_factory=dict)
    host_workers: Dict[str, float] = field(default_factory=dict)
    #: per-row device times, keyed by (server, actor)
    nic_us: Dict[Tuple[str, str], float] = field(default_factory=dict)
    host_us: Dict[Tuple[str, str], float] = field(default_factory=dict)
    crossing_us: float = 1.0
    tail_factor: float = 2.0
    cross_rack_rtt_us: float = 0.0
    rack_of: Dict[str, str] = field(default_factory=dict)
    #: app kind -> racks its fleet traffic originates from
    client_racks: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: multi-tenant capacity (docs/TENANCY.md): app kind -> owning
    #: tenant, and tenant -> NIC-core share (only shares > 0; empty for
    #: untenanted specs, where every tenant loop below is a no-op)
    tenant_of_app: Dict[str, str] = field(default_factory=dict)
    tenant_nic_share: Dict[str, float] = field(default_factory=dict)


def _device_times(row: ActorProfile, nic_spec, host_spec
                  ) -> Tuple[float, float]:
    """(nic_us, host_us) for one actor, anchored to its measurement."""
    if row.exec_us > 0:
        wp = WorkloadProfile(row.actor, row.exec_us, row.ipc, row.mpki)
        nic_us = time_on_nic(wp, nic_spec)
        host_us = time_on_host(wp, host_spec)
    elif row.device == "host":
        host_us = max(row.service_us, 1e-6)
        nic_us = host_us * DEFAULT_HOST_GAIN
    else:
        nic_us = max(row.service_us, 1e-6)
        host_us = nic_us / DEFAULT_HOST_GAIN
    if row.service_us > 0:
        measured = nic_us if row.device == "nic" else host_us
        if measured > 0:
            scale = row.service_us / measured
            nic_us *= scale
            host_us *= scale
    return nic_us, host_us


def _build_context(profile: PlanProfile, spec: ScenarioSpec) -> _Context:
    ctx = _Context(spec=spec, profile=profile)
    ctx.crossing_us = profile.crossing_us()
    ctx.tail_factor = profile.tail_factor()
    fabric = spec.fabric
    ctx.cross_rack_rtt_us = 2.0 * (fabric.spine_latency_us
                                   + 2.0 * fabric.inter_rack_propagation_us)

    for rack in spec.racks:
        for server in rack.servers:
            ctx.rack_of[server.name] = rack.name
            nic_spec = resolve_nic(server.nic)
            host_spec = host_for(nic_spec)
            ctx.nic_cores[server.name] = float(nic_spec.cores)
            ctx.host_workers[server.name] = float(
                server.host_workers or host_spec.cores)
            for row in profile.actors_on(server.name):
                nic_us, host_us = _device_times(row, nic_spec, host_spec)
                ctx.nic_us[(row.server, row.actor)] = nic_us
                ctx.host_us[(row.server, row.actor)] = host_us
        for client in rack.clients:
            ctx.rack_of[client.name] = rack.name

    for fleet in spec.fleets:
        kind = None
        if fleet.dst.startswith("shard:"):
            kind = fleet.dst.split(":", 1)[1]
        else:
            for app in spec.apps:
                groups = app.replica_groups(spec.server_names())
                if any(fleet.dst in g for g in groups):
                    kind = app.kind
                    break
        if kind is not None:
            racks = set(ctx.client_racks.get(kind, ()))
            racks.add(ctx.rack_of.get(fleet.client, ""))
            ctx.client_racks[kind] = tuple(sorted(racks))

    for tenant in spec.tenants:
        if tenant.nic_core_share > 0.0:
            ctx.tenant_nic_share[tenant.name] = tenant.nic_core_share
    for app in spec.apps:
        if app.tenant:
            ctx.tenant_of_app[app.kind] = app.tenant

    claimed: Dict[Tuple[str, str], _Role] = {}
    names = spec.server_names()
    for app in spec.apps:
        actor_names = APP_ACTORS.get(app.kind)
        if actor_names is None:
            continue
        groups = app.replica_groups(names)
        for shard, group in enumerate(groups):
            leader = app.leader if app.leader in group else group[0]
            ordered = [leader] + [s for s in group if s != leader]
            for rank, server in enumerate(ordered):
                role = _Role(app=app.kind, shard=shard, rank=rank,
                             measured_server=server)
                ctx.roles.append(role)
                rows = [r for r in ctx.profile.actors_on(server)
                        if r.actor in actor_names]
                ctx.role_rows[role] = rows
                for row in rows:
                    claimed[(row.server, row.actor)] = role
    ctx.static_rows = [r for r in profile.actors
                       if (r.server, r.actor) not in claimed]
    return ctx


@dataclass
class _State:
    """One candidate placement during search."""

    server_of: Dict[_Role, str]
    #: (role, actor) -> device; static rows keep their measured device
    device_of: Dict[Tuple[_Role, str], str]

    def clone(self) -> "_State":
        return _State(dict(self.server_of), dict(self.device_of))


def _predict(ctx: _Context, state: _State) -> float:
    """Utilization-aware p99 estimate of one placement (µs)."""
    nic_busy: Dict[str, float] = {}
    host_busy: Dict[str, float] = {}
    #: (assigned server, device, rate, device_us, tenant)
    placed: List[Tuple[str, str, float, float, str]] = []

    for row in ctx.static_rows:
        key = (row.server, row.actor)
        us = ctx.nic_us[key] if row.device == "nic" else ctx.host_us[key]
        placed.append((row.server, row.device, row.rate_per_us, us, ""))
    for role in ctx.roles:
        server = state.server_of[role]
        tenant = ctx.tenant_of_app.get(role.app, "")
        for row in ctx.role_rows[role]:
            device = state.device_of[(role, row.actor)]
            key = (row.server, row.actor)    # times keyed by measurement
            us = ctx.nic_us[key] if device == "nic" else ctx.host_us[key]
            placed.append((server, device, row.rate_per_us, us, tenant))

    tenant_nic_busy: Dict[Tuple[str, str], float] = {}
    for server, device, rate, us, tenant in placed:
        busy = nic_busy if device == "nic" else host_busy
        busy[server] = busy.get(server, 0.0) + rate * us
        if device == "nic" and tenant in ctx.tenant_nic_share:
            key = (server, tenant)
            tenant_nic_busy[key] = tenant_nic_busy.get(key, 0.0) + rate * us

    penalty = 0.0
    # tenant capacity: a tenant's NIC busy time on one server may use at
    # most its share of that NIC's cores (same headroom as the global
    # cap), so the plan never co-schedules past a declared share
    for (server, tenant), busy in tenant_nic_busy.items():
        slice_cores = ctx.tenant_nic_share[tenant] * ctx.nic_cores[server]
        tu = busy / max(slice_cores, 1e-9)
        if tu > NIC_UTIL_CAP:
            penalty += (tu - NIC_UTIL_CAP) * _INFEASIBLE_PENALTY
    nic_util: Dict[str, float] = {}
    host_util: Dict[str, float] = {}
    for server in ctx.nic_cores:
        nu = nic_busy.get(server, 0.0) / ctx.nic_cores[server]
        hu = host_busy.get(server, 0.0) / ctx.host_workers[server]
        nic_util[server] = nu
        host_util[server] = hu
        if nu > NIC_UTIL_CAP:
            penalty += (nu - NIC_UTIL_CAP) * _INFEASIBLE_PENALTY
        if hu > HOST_UTIL_CAP:
            penalty += (hu - HOST_UTIL_CAP) * _INFEASIBLE_PENALTY

    total_rate = 0.0
    weighted = 0.0
    host_cores = 0.0
    for server, device, rate, us, _tenant in placed:
        util = nic_util[server] if device == "nic" else host_util[server]
        lat = us / (1.0 - min(util, _UTIL_CLAMP))
        if device == "host":
            lat += CROSSINGS_PER_REQUEST * ctx.crossing_us
            host_cores += rate * us
        weighted += rate * lat
        total_rate += rate
    mean = weighted / total_rate if total_rate > 0 else 0.0

    fabric_us = 0.0
    leaders = [r for r in ctx.roles if r.rank == 0]
    for role in leaders:
        racks = ctx.client_racks.get(role.app)
        if not racks:
            continue
        leader_rack = ctx.rack_of.get(state.server_of[role], "")
        if leader_rack not in racks:
            nshards = sum(1 for r in leaders if r.app == role.app)
            fabric_us += ctx.cross_rack_rtt_us / max(nshards, 1)

    return (ctx.tail_factor * mean + fabric_us + penalty
            + HOST_CORE_PRICE_US * host_cores)


def _initial_state(ctx: _Context) -> _State:
    state = _State(server_of={}, device_of={})
    for role in ctx.roles:
        state.server_of[role] = role.measured_server
        for row in ctx.role_rows[role]:
            # offload-first (§4): everything unpinned starts on the NIC
            device = row.device if row.pinned else "nic"
            state.device_of[(role, row.actor)] = device
    return state


def _greedy_capacity_repair(ctx: _Context, state: _State) -> None:
    """Downgrade NIC residents (best host speedup first) until every
    NIC — and every tenant's share-slice of every NIC — is under its
    capacity cap."""
    for _ in range(len(state.device_of) + 1):
        nic_busy: Dict[str, float] = {}
        tenant_busy: Dict[Tuple[str, str], float] = {}
        for role in ctx.roles:
            server = state.server_of[role]
            tenant = ctx.tenant_of_app.get(role.app, "")
            for row in ctx.role_rows[role]:
                if state.device_of[(role, row.actor)] == "nic":
                    load = row.rate_per_us \
                        * ctx.nic_us[(row.server, row.actor)]
                    nic_busy[server] = nic_busy.get(server, 0.0) + load
                    if tenant in ctx.tenant_nic_share:
                        key = (server, tenant)
                        tenant_busy[key] = tenant_busy.get(key, 0.0) + load
        for row in ctx.static_rows:
            if row.device == "nic":
                nic_busy[row.server] = nic_busy.get(row.server, 0.0) \
                    + row.rate_per_us * ctx.nic_us[(row.server, row.actor)]
        over = sorted((s, "") for s, busy in nic_busy.items()
                      if busy / ctx.nic_cores[s] > NIC_UTIL_CAP)
        over += sorted(
            key for key, busy in tenant_busy.items()
            if busy / max(ctx.tenant_nic_share[key[1]]
                          * ctx.nic_cores[key[0]], 1e-9) > NIC_UTIL_CAP)
        if not over:
            return
        moved = False
        for server, tenant in over:
            candidates = []
            for role in ctx.roles:
                if state.server_of[role] != server:
                    continue
                if tenant and ctx.tenant_of_app.get(role.app, "") != tenant:
                    continue     # a tenant overrun only evicts its own
                for row in ctx.role_rows[role]:
                    if row.pinned \
                            or state.device_of[(role, row.actor)] != "nic":
                        continue
                    key = (row.server, row.actor)
                    ratio = ctx.host_us[key] / max(ctx.nic_us[key], 1e-9)
                    candidates.append((ratio, -row.load(), row.actor, role))
            if candidates:
                candidates.sort(key=lambda c: (c[0], c[1], c[2],
                                               c[3].app, c[3].shard,
                                               c[3].rank))
                _, _, actor, role = candidates[0]
                state.device_of[(role, actor)] = "host"
                moved = True
        if not moved:
            return


def _local_search(ctx: _Context, state: _State) -> float:
    """Hill-climb: device flips, leader rotations, cross-group swaps.
    Strict-improvement acceptance in a fixed order keeps it
    deterministic.  Returns the final objective."""
    best = _predict(ctx, state)
    for _ in range(_MAX_PASSES):
        improved = False

        for role in ctx.roles:
            for row in ctx.role_rows[role]:
                if row.pinned:
                    continue
                key = (role, row.actor)
                old = state.device_of[key]
                state.device_of[key] = "host" if old == "nic" else "nic"
                cand = _predict(ctx, state)
                if cand < best - _EPS:
                    best = cand
                    improved = True
                else:
                    state.device_of[key] = old

        apps = sorted({r.app for r in ctx.roles})
        for app in apps:
            shards = sorted({r.shard for r in ctx.roles if r.app == app})
            roles_of = {(r.shard, r.rank): r for r in ctx.roles
                        if r.app == app}
            # leader rotation within each group
            for shard in shards:
                ranks = sorted(rank for (s, rank) in roles_of if s == shard)
                lead = roles_of[(shard, 0)]
                for rank in ranks[1:]:
                    other = roles_of[(shard, rank)]
                    state.server_of[lead], state.server_of[other] = \
                        state.server_of[other], state.server_of[lead]
                    cand = _predict(ctx, state)
                    if cand < best - _EPS:
                        best = cand
                        improved = True
                    else:
                        state.server_of[lead], state.server_of[other] = \
                            state.server_of[other], state.server_of[lead]
            # server swaps across groups
            keys = sorted(roles_of)
            for i, ka in enumerate(keys):
                for kb in keys[i + 1:]:
                    if ka[0] == kb[0]:
                        continue        # same group: covered by rotation
                    ra, rb = roles_of[ka], roles_of[kb]
                    state.server_of[ra], state.server_of[rb] = \
                        state.server_of[rb], state.server_of[ra]
                    cand = _predict(ctx, state)
                    if cand < best - _EPS:
                        best = cand
                        improved = True
                    else:
                        state.server_of[ra], state.server_of[rb] = \
                            state.server_of[rb], state.server_of[ra]

        if not improved:
            break
    return best


def solve(profile: PlanProfile, spec: ScenarioSpec) -> PlacementSpec:
    """Compile one profile into a validated :class:`PlacementSpec`."""
    spec.validate()
    ctx = _build_context(profile, spec)
    state = _initial_state(ctx)
    _greedy_capacity_repair(ctx, state)
    objective = _local_search(ctx, state)

    assignments: List[ShardAssignment] = []
    apps = sorted({r.app for r in ctx.roles})
    for app in apps:
        shards = sorted({r.shard for r in ctx.roles if r.app == app})
        for shard in shards:
            members = sorted(
                (r for r in ctx.roles if r.app == app and r.shard == shard),
                key=lambda r: r.rank)
            assignments.append(ShardAssignment(
                app=app, shard=shard,
                servers=tuple(state.server_of[r] for r in members)))

    actors: List[ActorPlacement] = []
    for role in ctx.roles:
        server = state.server_of[role]
        for row in ctx.role_rows[role]:
            actors.append(ActorPlacement(
                server=server, actor=row.actor,
                device=state.device_of[(role, row.actor)]))
    actors.sort(key=lambda p: (p.server, p.actor))

    return PlacementSpec(
        scenario=spec.name,
        seed=spec.seed,
        profile_fingerprint=profile.fingerprint(),
        objective_p99_us=round(objective, 6),
        assignments=tuple(assignments),
        actors=tuple(actors),
    ).validate()
