"""Profile ingestion: run a scenario under the TracePlane and fold the
attribution the placement solver consumes.

A :class:`PlanProfile` is the planner's whole view of the world:

* per ``(server, actor)`` — measured request rate, mean service time,
  request bytes, the actor's device at measurement time, whether it is
  pinned (storage-backed actors must stay host-side, §4), and the
  actor's Table-3 workload characterization (IPC/MPKI) when it has one,
  so :func:`~repro.nic.cores.time_on_nic` / ``time_on_host`` can re-time
  it on any device;
* per pipeline stage — the TracePlane's p50/p99 table, including the
  ``channel`` stage whose mean is the measured host↔NIC ring-crossing
  cost a host placement pays per request.

Profiles are deterministic (the profiling run is an ordinary seeded
simulation) and fingerprint-stable, so the same scenario always produces
the same profile — and therefore, through the deterministic solver, the
same plan.
"""

from __future__ import annotations

import dataclasses
import json
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..scenario.build import build
from ..scenario.spec import ScenarioSpec

#: Default profiling window (µs of virtual time).
PROFILE_DURATION_US = 5_000.0


@dataclass(frozen=True)
class ActorProfile:
    """One actor's measured behaviour on one server."""

    server: str
    actor: str
    device: str                        # nic | host (at measurement time)
    pinned: bool
    rate_per_us: float                 # requests per µs over the window
    service_us: float                  # mean service time (EWMA µ)
    request_bytes: float
    #: Table-3 characterization when the actor carries a WorkloadProfile
    exec_us: float = 0.0
    ipc: float = 0.0
    mpki: float = 0.0

    def load(self) -> float:
        """Offered core-load (busy fraction) at the measured rate."""
        return self.rate_per_us * self.service_us


@dataclass(frozen=True)
class StageProfile:
    """One pipeline stage's latency distribution."""

    stage: str
    count: int
    p50_us: float
    p99_us: float
    mean_us: float


@dataclass(frozen=True)
class PlanProfile:
    """Everything the solver knows about one scenario."""

    scenario: str
    seed: int
    duration_us: float
    actors: Tuple[ActorProfile, ...] = ()
    stages: Tuple[StageProfile, ...] = ()

    def stage(self, name: str) -> Optional[StageProfile]:
        for st in self.stages:
            if st.stage == name:
                return st
        return None

    def crossing_us(self) -> float:
        """Measured host↔NIC ring-crossing cost per request (µs)."""
        st = self.stage("channel")
        return st.mean_us if st is not None else 1.0

    def tail_factor(self) -> float:
        """Measured p99/p50 inflation of the service stage — how much
        the tail stretches over the median under the profiled load."""
        st = self.stage("service")
        if st is None or st.p50_us <= 0:
            return 2.0
        return max(st.p99_us / st.p50_us, 1.0)

    def actors_on(self, server: str) -> List[ActorProfile]:
        return [a for a in self.actors if a.server == server]

    def fingerprint(self) -> str:
        """Content fingerprint (CRC over the rounded canonical form)."""
        text = json.dumps(to_dict(self), sort_keys=True,
                          separators=(",", ":"))
        return f"{zlib.crc32(text.encode()):08x}"


def to_dict(profile: PlanProfile) -> Dict[str, Any]:
    """Plain-data form; floats rounded so fingerprints stay stable."""
    def convert(obj):
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            return {f.name: convert(getattr(obj, f.name))
                    for f in dataclasses.fields(obj)}
        if isinstance(obj, (list, tuple)):
            return [convert(v) for v in obj]
        if isinstance(obj, float):
            return round(obj, 9)
        return obj
    return convert(profile)


def _profiling_spec(spec: ScenarioSpec,
                    duration_us: Optional[float]) -> ScenarioSpec:
    """The spec rewritten for one traced, serial profiling window."""
    obs = dataclasses.replace(spec.observability, trace=True)
    execution = dataclasses.replace(
        spec.execution, shards="none",
        fault_streams=spec.execution.resolved_fault_streams())
    out = dataclasses.replace(spec, observability=obs, execution=execution)
    if duration_us is not None:
        out = dataclasses.replace(out, duration_us=duration_us)
    return out


def profile_scenario(spec: ScenarioSpec,
                     duration_us: Optional[float] = None) -> PlanProfile:
    """Run one traced window of ``spec`` and fold the attribution.

    The profiling run is serial (tracing is not rack-shardable) and
    fault-free behaviour is whatever the spec declares — a plan made
    from a chaotic profile is planned *for* that chaos.
    """
    window = duration_us if duration_us is not None \
        else min(spec.duration_us, PROFILE_DURATION_US)
    scenario = build(_profiling_spec(spec, window))
    scenario.run(until=window)
    scenario.stop()

    rows: List[ActorProfile] = []
    for name in sorted(scenario.servers):
        runtime = scenario.servers[name].runtime
        table = getattr(runtime, "actors", None)
        if table is None:
            continue
        for actor in sorted(table, key=lambda a: a.name):
            wp = actor.profile
            rows.append(ActorProfile(
                server=name,
                actor=actor.name,
                device=actor.location.value,
                pinned=actor.pinned,
                rate_per_us=actor.requests_seen / window,
                service_us=actor.service.mu,
                request_bytes=actor.request_bytes_ewma,
                exec_us=wp.exec_us if wp is not None else 0.0,
                ipc=wp.ipc if wp is not None else 0.0,
                mpki=wp.mpki if wp is not None else 0.0,
            ))

    stages: List[StageProfile] = []
    plane = scenario.trace_plane
    if plane is not None:
        for stage, st in plane.stage_breakdown().items():
            stages.append(StageProfile(
                stage=stage, count=st.count, p50_us=st.p50_us,
                p99_us=st.p99_us, mean_us=st.mean_us))

    return PlanProfile(scenario=spec.name, seed=spec.seed,
                       duration_us=window, actors=tuple(rows),
                       stages=tuple(stages))
