"""PlanPlane: the profile-driven offload placement compiler.

The reactive DRR scheduler answers "where should this actor run *right
now*"; PlanPlane answers the Lemur question — "where should every actor
and shard run, fabric-wide, given what we measured" — ahead of time:

1. **profile** a scenario under the TracePlane
   (:func:`~repro.plan.profile.profile_scenario`),
2. **solve** placement with the calibrated device cost models
   (:func:`~repro.plan.solver.solve`),
3. **emit** a declarative :class:`~repro.plan.spec.PlacementSpec` and
4. **apply** it as a pure transform over the ScenarioSpec
   (:func:`~repro.plan.spec.apply_placement`) — planned scenarios build,
   run, replay, and sanitize like any other spec.

The whole pipeline is deterministic end to end, so plans are cacheable
through the content-addressed :class:`~repro.exec.cache.ResultCache`.
"""

from __future__ import annotations

from typing import Optional

from ..exec.cache import ResultCache
from ..scenario.spec import ScenarioSpec
from .profile import (ActorProfile, PlanProfile, StageProfile,
                      profile_scenario)
from .spec import (ActorPlacement, PlacementSpec, PlanError,
                   ShardAssignment, apply_placement, from_dict, from_file,
                   from_json, planned_app_kinds, to_dict, to_json)
from .solver import APP_ACTORS, HOST_UTIL_CAP, NIC_UTIL_CAP, solve

__all__ = [
    "ActorPlacement", "ActorProfile", "APP_ACTORS", "HOST_UTIL_CAP",
    "NIC_UTIL_CAP", "PlacementSpec", "PlanError", "PlanProfile",
    "ShardAssignment", "StageProfile", "apply_placement", "compute_plan",
    "from_dict", "from_file", "from_json", "plan_scenario",
    "planned_app_kinds", "profile_scenario", "solve", "to_dict", "to_json",
]


def compute_plan(spec: ScenarioSpec,
                 profile_duration_us: Optional[float] = None
                 ) -> PlacementSpec:
    """Profile ``spec`` and compile the placement (uncached)."""
    profile = profile_scenario(spec, profile_duration_us)
    return solve(profile, spec)


def plan_scenario(spec: ScenarioSpec,
                  profile_duration_us: Optional[float] = None,
                  cache: Optional[ResultCache] = None) -> PlacementSpec:
    """Like :func:`compute_plan`, memoized through ``cache`` when given.

    The cache key covers the spec content, the profiling window, and the
    package code fingerprint, so a stale planner never serves a stale
    plan.
    """
    kwargs = {"spec": spec, "profile_duration_us": profile_duration_us}
    if cache is None:
        return compute_plan(**kwargs)
    key = cache.key_for(compute_plan, kwargs)
    hit, value = cache.get(key)
    if hit:
        return value
    value = compute_plan(**kwargs)
    cache.put(key, value)
    return value
