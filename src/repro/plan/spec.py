"""PlacementSpec: a declarative placement plan over a ScenarioSpec.

A plan is the *output* of the placement compiler (:mod:`repro.plan.solver`)
and the *input* of :func:`apply_placement`, which rewrites a
:class:`~repro.scenario.spec.ScenarioSpec` so the planned placement is
what :func:`repro.scenario.build` assembles — no imperative steps, no
runtime hooks.  Like scenario specs, plans are plain frozen dataclasses:
JSON round-trippable with unknown-field rejection, ``validate()``-checked,
and fingerprint-stable across processes (the fingerprint is a CRC over
the canonical JSON form, so byte-identical plans hash identically and a
cached plan can be trusted by content).

Two decisions make up a plan:

* **shard assignment** — which replica group (and leader) each shard of
  each app lands on, expressed so that
  :meth:`~repro.scenario.spec.AppSpec.replica_groups`'s round-robin deal
  reproduces the planned groups exactly;
* **actor/device placement** — per ``server/actor``, whether the actor
  runs on the SmartNIC cores (``nic``) or the host (``host``).
"""

from __future__ import annotations

import dataclasses
import json
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from ..scenario.spec import AppSpec, ScenarioError, ScenarioSpec

PLAN_VERSION = 1

DEVICES = ("nic", "host")


class PlanError(ValueError):
    """A plan failed validation; ``problems`` lists every finding."""

    def __init__(self, problems: Sequence[str]):
        self.problems = list(problems)
        super().__init__("; ".join(self.problems))


@dataclass(frozen=True)
class ShardAssignment:
    """One shard's replica group, leader first."""

    app: str                           # app kind (rkv | dt | rta | ...)
    shard: int
    servers: Tuple[str, ...] = ()      # replica group; servers[0] leads


@dataclass(frozen=True)
class ActorPlacement:
    """One actor's device on one server."""

    server: str
    actor: str
    device: str                        # nic | host


@dataclass(frozen=True)
class PlacementSpec:
    """A whole fabric-wide placement, as data."""

    scenario: str                      # name of the scenario planned over
    seed: int = 42
    profile_fingerprint: str = ""      # fingerprint of the input profile
    objective_p99_us: float = 0.0      # solver's predicted p99
    assignments: Tuple[ShardAssignment, ...] = ()
    actors: Tuple[ActorPlacement, ...] = ()
    version: int = PLAN_VERSION

    # -- introspection --------------------------------------------------------
    def groups_for(self, app_kind: str) -> List[List[str]]:
        """Planned replica groups of one app, in shard order."""
        rows = sorted((a for a in self.assignments if a.app == app_kind),
                      key=lambda a: a.shard)
        return [list(a.servers) for a in rows]

    def device_of(self, server: str, actor: str) -> str:
        for p in self.actors:
            if p.server == server and p.actor == actor:
                return p.device
        return ""

    # -- validation -----------------------------------------------------------
    def validate(self) -> "PlacementSpec":
        """Raise :class:`PlanError` listing every problem found."""
        problems: List[str] = []
        if not self.scenario:
            problems.append("plan names no scenario")
        if self.version != PLAN_VERSION:
            problems.append(f"unknown plan version {self.version!r} "
                            f"(expected {PLAN_VERSION})")
        by_app: Dict[str, List[ShardAssignment]] = {}
        for a in self.assignments:
            by_app.setdefault(a.app, []).append(a)
            if not a.servers:
                problems.append(f"{a.app} shard {a.shard}: empty replica "
                                f"group")
            dupes = {s for s in a.servers if a.servers.count(s) > 1}
            if dupes:
                problems.append(f"{a.app} shard {a.shard}: duplicate "
                                f"servers {sorted(dupes)}")
        for app, rows in by_app.items():
            shards = sorted(a.shard for a in rows)
            if shards != list(range(len(rows))):
                problems.append(f"{app}: shard indices {shards} are not "
                                f"0..{len(rows) - 1}")
            placed = [s for a in rows for s in a.servers]
            dupes = {s for s in placed if placed.count(s) > 1}
            if dupes:
                problems.append(f"{app}: servers {sorted(dupes)} appear in "
                                f"more than one replica group")
        seen = set()
        for p in self.actors:
            if p.device not in DEVICES:
                problems.append(f"{p.server}/{p.actor}: unknown device "
                                f"{p.device!r} (have {DEVICES})")
            key = (p.server, p.actor)
            if key in seen:
                problems.append(f"{p.server}/{p.actor}: placed twice")
            seen.add(key)
        if self.objective_p99_us < 0:
            problems.append("objective_p99_us must be >= 0")
        if problems:
            raise PlanError(problems)
        return self

    # -- fingerprint ----------------------------------------------------------
    def fingerprint(self) -> str:
        """Content fingerprint: stable across processes and runs (a CRC
        over the canonical JSON form, like the scenario result digests)."""
        text = json.dumps(to_dict(self), sort_keys=True,
                          separators=(",", ":"))
        return f"{zlib.crc32(text.encode()):08x}"


# -- serialisation ------------------------------------------------------------

def to_dict(plan: PlacementSpec) -> Dict[str, Any]:
    """Plain-data form (JSON-ready; tuples become lists)."""
    def convert(obj):
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            out = {}
            for f in dataclasses.fields(obj):
                value = getattr(obj, f.name)
                if value == f.default and not isinstance(value, tuple):
                    if f.default is not dataclasses.MISSING:
                        continue
                out[f.name] = convert(value)
            return out
        if isinstance(obj, (list, tuple)):
            return [convert(v) for v in obj]
        return obj
    return convert(plan)


def from_dict(data: Dict[str, Any]) -> PlacementSpec:
    """Rebuild a plan from :func:`to_dict` output; unknown keys raise so
    typos do not silently no-op (the scenario-spec contract)."""
    def build(cls, payload):
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise PlanError(
                [f"{cls.__name__}: unknown field(s) {sorted(unknown)}"])
        return cls(**payload)

    assignments = tuple(
        build(ShardAssignment, {**a, "servers": tuple(a.get("servers", ()))})
        for a in data.get("assignments", []))
    actors = tuple(build(ActorPlacement, p) for p in data.get("actors", []))
    top = {k: v for k, v in data.items()
           if k not in ("assignments", "actors")}
    return build(PlacementSpec, {**top, "assignments": assignments,
                                 "actors": actors})


def to_json(plan: PlacementSpec, indent: int = 2) -> str:
    return json.dumps(to_dict(plan), indent=indent, sort_keys=False) + "\n"


def from_json(text: str) -> PlacementSpec:
    return from_dict(json.loads(text))


def from_file(path: str) -> PlacementSpec:
    with open(path, "r", encoding="utf-8") as fh:
        return from_json(fh.read())


# -- the transform ------------------------------------------------------------

def _dealt_servers(groups: List[List[str]]) -> List[str]:
    """Invert :meth:`AppSpec.replica_groups`'s round-robin deal: a server
    list whose ``servers[i::shards]`` slices reproduce ``groups``."""
    shards = len(groups)
    sizes = [len(g) for g in groups]
    total = sum(sizes)
    expected = [len(range(i, total, shards)) for i in range(shards)]
    if sizes != expected:
        raise PlanError(
            [f"replica group sizes {sizes} cannot come out of a "
             f"{shards}-way round-robin deal over {total} servers "
             f"(expected {expected})"])
    out: List[str] = [""] * total
    for g, group in enumerate(groups):
        for j, server in enumerate(group):
            out[g + shards * j] = server
    return out


def apply_placement(plan: PlacementSpec, spec: ScenarioSpec) -> ScenarioSpec:
    """Rewrite ``spec`` so building it realises ``plan``.

    * each planned app's ``servers`` list is re-dealt so the replica
      groups (and per-group leaders: always ``group[0]``) match the
      plan's shard assignments;
    * every planned ``server/actor`` device lands in the app's
      ``placement`` field, which :func:`repro.scenario.build` applies as
      a build-time pin (before any traffic, so determinism holds).

    Raises :class:`PlanError` when the plan does not fit the spec.
    """
    plan.validate()
    problems: List[str] = []
    if plan.scenario != spec.name:
        problems.append(f"plan is for scenario {plan.scenario!r}, "
                        f"not {spec.name!r}")
    known = set(spec.server_names())
    for a in plan.assignments:
        for server in a.servers:
            if server not in known:
                problems.append(f"{a.app} shard {a.shard}: unknown server "
                                f"{server!r}")
    for p in plan.actors:
        if p.server not in known:
            problems.append(f"actor placement {p.server}/{p.actor}: "
                            f"unknown server {p.server!r}")
    if problems:
        raise PlanError(problems)

    new_apps = []
    for app in spec.apps:
        groups = plan.groups_for(app.kind)
        if not groups:
            new_apps.append(app)
            continue
        old_groups = app.replica_groups(spec.server_names())
        if sorted(s for g in groups for s in g) \
                != sorted(s for g in old_groups for s in g):
            raise PlanError(
                [f"{app.kind}: planned groups place "
                 f"{sorted(s for g in groups for s in g)} but the spec "
                 f"deploys {sorted(s for g in old_groups for s in g)}"])
        pins = tuple(sorted(
            (f"{p.server}/{p.actor}", p.device)
            for p in plan.actors
            if any(p.server in g for g in groups)))
        new_apps.append(dataclasses.replace(
            app, servers=tuple(_dealt_servers(groups)), leader=None,
            placement=pins))
    return dataclasses.replace(spec, apps=tuple(new_apps))


def planned_app_kinds(spec: ScenarioSpec) -> List[AppSpec]:
    """The apps a planner can place (the three paper applications)."""
    return [a for a in spec.apps if a.kind in ("rkv", "dt", "rta")]
