"""Host server model: a pool of beefy cores executing charged jobs.

A :class:`HostCorePool` runs one worker process per core.  Work arrives as
:class:`Job` items carrying a CPU cost in microseconds and a completion
callback; each worker pulls from the shared run queue (host-side iPipe uses
a decentralized multi-queue with flow steering — approximated here by the
shared queue plus work stealing, which has the same throughput behaviour
and slightly better tail).

Utilization accounting drives the paper's headline metric: "host CPU cores
used" (Figure 13) is the sum of per-core busy fractions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from ..sim import Simulator, Store, Timeout, UtilizationTracker, spawn
from ..nic.specs import HostSpec


@dataclass
class Job:
    """A unit of host CPU work."""

    cost_us: float
    on_done: Optional[Callable[[], None]] = None
    tag: str = ""
    payload: Any = None
    enqueued_at: float = 0.0


class HostCorePool:
    """N host cores draining a shared job queue."""

    def __init__(self, sim: Simulator, spec: HostSpec,
                 cores: Optional[int] = None, name: str = "host"):
        self.sim = sim
        self.spec = spec
        self.name = name
        self.num_cores = cores if cores is not None else spec.cores
        self.queue = Store(sim)
        self.util: List[UtilizationTracker] = [
            UtilizationTracker() for _ in range(self.num_cores)
        ]
        self.completed = 0
        self.queue_delay_total = 0.0
        self._started = 0.0
        self._workers = [
            spawn(sim, self._worker(core), name=f"{name}-core{core}")
            for core in range(self.num_cores)
        ]

    def submit(self, job: Job) -> None:
        job.enqueued_at = self.sim.now
        self.queue.put_nowait(job)

    def submit_work(self, cost_us: float,
                    on_done: Optional[Callable[[], None]] = None,
                    tag: str = "") -> None:
        self.submit(Job(cost_us=cost_us, on_done=on_done, tag=tag))

    def _worker(self, core: int):
        while True:
            job = yield self.queue.get()
            self.queue_delay_total += self.sim.now - job.enqueued_at
            if job.cost_us > 0:
                yield Timeout(job.cost_us)
            self.util[core].add_busy(job.cost_us)
            self.completed += 1
            if job.on_done is not None:
                job.on_done()

    # -- metrics ------------------------------------------------------------
    def cores_used(self, elapsed_us: float) -> float:
        """Equivalent fully-busy host cores over the window."""
        return sum(u.utilization(elapsed_us) for u in self.util)

    def mean_queue_delay_us(self) -> float:
        return self.queue_delay_total / self.completed if self.completed else 0.0


class StorageService:
    """Persistent storage attached to the host (SSTables, coordinator log).

    Modelled as a single device with queued access: page-cache hits cost a
    memory copy, misses pay the device access time.  The LSM SSTable-read
    and compaction actors and the DT logging actor are pinned to the host
    because only the host reaches this device (§4).
    """

    def __init__(self, sim: Simulator, cache_hit_ratio: float = 0.98,
                 cache_hit_us: float = 3.0, miss_us: float = 140.0,
                 write_us_per_kb: float = 3.0):
        if not 0 <= cache_hit_ratio <= 1:
            raise ValueError("hit ratio must lie in [0, 1]")
        self.sim = sim
        self.cache_hit_ratio = cache_hit_ratio
        self.cache_hit_us = cache_hit_us
        self.miss_us = miss_us
        self.write_us_per_kb = write_us_per_kb
        self.reads = 0
        self.writes = 0
        self._toggle = 0.0

    def read_cost_us(self) -> float:
        """Deterministic interleave of hits/misses at the configured ratio."""
        self.reads += 1
        self._toggle += 1.0 - self.cache_hit_ratio
        if self._toggle >= 1.0 - 1e-9:
            self._toggle -= 1.0
            return self.miss_us
        return self.cache_hit_us

    def write_cost_us(self, nbytes: int) -> float:
        """Sequential append cost (log/SSTable flush)."""
        self.writes += 1
        return max(1.0, nbytes / 1024.0 * self.write_us_per_kb)


class HostMachine:
    """A server box: core pool + storage + (optionally) its SmartNIC."""

    def __init__(self, sim: Simulator, spec: HostSpec, name: str = "server",
                 cores: Optional[int] = None):
        self.sim = sim
        self.spec = spec
        self.name = name
        self.pool = HostCorePool(sim, spec, cores=cores, name=name)
        self.storage = StorageService(sim)
