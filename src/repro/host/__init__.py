"""Host server models: core pools, storage, kernel-bypass stack costs."""

from .machine import HostCorePool, HostMachine, Job, StorageService
from .stacks import DPDK_BATCH_DISCOUNT, POLL_COST_US, StackCosts, dpdk_stack, ipipe_host_stack

__all__ = [
    "HostCorePool",
    "HostMachine",
    "Job",
    "StorageService",
    "DPDK_BATCH_DISCOUNT",
    "POLL_COST_US",
    "StackCosts",
    "dpdk_stack",
    "ipipe_host_stack",
]
