"""Host-side networking stack cost models (DPDK and RDMA kernel-bypass).

The baseline systems the paper compares against (§5.1) are DPDK
implementations: the host core both runs the network stack and the
application handler.  We charge per-packet stack CPU costs consistent with
the Figure 6 send/recv latency curves, discounted for the batched
receive/transmit processing real DPDK poll-mode drivers do (a PMD
amortizes descriptor handling over bursts of ~32, so CPU occupancy per
packet is lower than one-shot latency).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nic.calibration import dpdk_recv_us, dpdk_send_us

#: Effective batching factor of a DPDK poll-mode driver burst loop.
DPDK_BATCH_DISCOUNT = 0.35
#: Per-poll cost of an idle rx-ring check (spent even with no traffic).
POLL_COST_US = 0.08


@dataclass(frozen=True)
class StackCosts:
    """Per-packet host CPU charges for a kernel-bypass stack."""

    rx_us_base: float
    rx_us_per_byte: float
    tx_us_base: float
    tx_us_per_byte: float

    def rx_cost(self, frame_bytes: int) -> float:
        return self.rx_us_base + self.rx_us_per_byte * frame_bytes

    def tx_cost(self, frame_bytes: int) -> float:
        return self.tx_us_base + self.tx_us_per_byte * frame_bytes

    def round_trip_cost(self, frame_bytes: int) -> float:
        return self.rx_cost(frame_bytes) + self.tx_cost(frame_bytes)


def dpdk_stack() -> StackCosts:
    """DPDK PMD: batched descriptor processing, per Figure 6 curves."""
    return StackCosts(
        rx_us_base=dpdk_recv_us(0) * DPDK_BATCH_DISCOUNT,
        rx_us_per_byte=9.0e-4 * DPDK_BATCH_DISCOUNT,
        tx_us_base=dpdk_send_us(0) * DPDK_BATCH_DISCOUNT,
        tx_us_per_byte=9.0e-4 * DPDK_BATCH_DISCOUNT,
    )


def ipipe_host_stack() -> StackCosts:
    """iPipe host runtime: polls message-ring channels instead of NIC
    descriptor rings.  The NIC did the raw packet processing, but the host
    still parses the iPipe message format and performs DMO address
    translation per message — per-message cost lands slightly above a
    batched DPDK PMD's per-packet cost, and together with the scheduler
    bookkeeping yields §5.5's ~11-12% extra CPU at equal throughput."""
    return StackCosts(
        rx_us_base=0.55,
        rx_us_per_byte=3.0e-4,
        tx_us_base=0.30,
        tx_us_per_byte=2.0e-4,
    )
