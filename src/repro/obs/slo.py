"""SLO objectives over PulsePlane samples: grammar + burn-rate alerting.

An SLO here is a latency-quantile objective — "``rkv p99 < 40us over
2ms``" — evaluated continuously against the windowed service histograms
the clients record (``svc.<name>.latency_us``).  Evaluation follows the
multi-window burn-rate pattern from SRE practice:

* every pulse sample is classified *bad* when the watched quantile is at
  or over the threshold (the empty-window sentinel counts as *good* —
  no traffic burns no budget);
* the **burn rate** of a window is ``bad_fraction / budget`` where
  ``budget`` is the allowed bad fraction (default 10%).  A burn rate of
  1.0 spends the error budget exactly as fast as allowed;
* a **breach** fires only when *both* the fast window (``window_us``)
  and the slow window (``slow_windows`` × fast) burn at or above
  ``burn_threshold`` — the fast window gives detection latency, the slow
  window immunity to one-sample blips;
* recovery is hysteretic: the evaluator leaves the breach state only
  after a *full fast window* of consecutive in-budget samples.

Breach/recovery transitions are emitted as ``slo.breach`` /
``slo.recover`` tracer instants and ``slo.breaches`` metrics, recorded
into the pulse store (``slo.<name>.*`` series), and re-derivable from
the stored history — which is exactly how the
:class:`~repro.check.monitors.PulseMonitor` proves the accounting is
conservative (every counted breach is backed by over-threshold burns).
"""

from __future__ import annotations

import re
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from .metrics import EMPTY_QUANTILE, no_data

#: Default error budget: fraction of samples allowed over threshold.
DEFAULT_BUDGET = 0.1
#: Default slow-window span, in fast windows.
DEFAULT_SLOW_WINDOWS = 4

_UNIT_US = {"us": 1.0, "ms": 1_000.0, "s": 1_000_000.0}

#: ``<service> p<pct> < <threshold><unit> over <window><unit> [windows]``
_SLO_RE = re.compile(
    r"^\s*(?P<service>[A-Za-z0-9_.:-]+)\s+p(?P<pct>\d+(?:\.\d+)?)\s*<\s*"
    r"(?P<threshold>\d+(?:\.\d+)?)\s*(?P<tunit>us|ms|s)\s+over\s+"
    r"(?P<window>\d+(?:\.\d+)?)\s*(?P<wunit>us|ms|s)\s*(?:windows?)?\s*$")


def parse_slo(text: str) -> Dict[str, object]:
    """Parse the compact SLO grammar into SLOSpec keyword arguments.

    >>> parse_slo("rkv p99 < 40us over 2ms")["threshold_us"]
    40.0
    """
    match = _SLO_RE.match(text)
    if match is None:
        raise ValueError(
            f"bad SLO {text!r}; expected "
            f"'<service> p<pct> < <threshold>{{us|ms|s}} "
            f"over <window>{{us|ms|s}}'")
    service = match.group("service")
    pct = float(match.group("pct"))
    threshold = float(match.group("threshold")) * _UNIT_US[match.group("tunit")]
    window = float(match.group("window")) * _UNIT_US[match.group("wunit")]
    return {
        "name": f"{service}-p{pct:g}",
        "service": service,
        "pct": pct,
        "threshold_us": threshold,
        "window_us": window,
    }


class SloEvaluator:
    """Evaluates one SLO against its service histogram every pulse."""

    def __init__(self, sim, store, name: str, metric: str,
                 threshold_us: float, pct: float = 99.0,
                 window_us: float = 2_000.0,
                 slow_windows: int = DEFAULT_SLOW_WINDOWS,
                 budget: float = DEFAULT_BUDGET,
                 burn_threshold: float = 1.0,
                 period_us: float = 500.0):
        if threshold_us <= 0:
            raise ValueError(f"slo {name}: threshold_us must be positive")
        if not 0.0 < budget <= 1.0:
            raise ValueError(f"slo {name}: budget must be in (0, 1]")
        self.sim = sim
        self.store = store
        self.name = name
        self.metric = metric
        self.pct = pct
        self.threshold_us = threshold_us
        self.window_us = window_us
        self.budget = budget
        self.burn_threshold = burn_threshold
        #: samples per fast window, and the slow multiple of it
        self.fast_n = max(int(round(window_us / period_us)), 1)
        self.slow_n = self.fast_n * max(int(slow_windows), 1)
        self._bad: Deque[int] = deque(maxlen=self.slow_n)
        self._ok_streak = 0
        self.in_breach = False
        self.breaches = 0
        self.recoveries = 0
        #: (t, "breach" | "recover", burn_fast, burn_slow) per transition.
        self.transitions: List[Tuple[float, str, float, float]] = []

    # -- burn math --------------------------------------------------------
    def _burn(self, n: int) -> float:
        if not self._bad:
            return 0.0
        window = list(self._bad)[-n:]
        return (sum(window) / len(window)) / self.budget

    # -- one evaluation tick ----------------------------------------------
    def evaluate(self, t: float) -> None:
        metrics = getattr(self.sim, "metrics", None)
        hist = metrics.get_histogram(self.metric) if metrics else None
        value = (EMPTY_QUANTILE if hist is None
                 else hist.percentile(self.pct, t))
        bad = (not no_data(value)) and value >= self.threshold_us
        self._bad.append(1 if bad else 0)
        self._ok_streak = 0 if bad else self._ok_streak + 1
        burn_fast = self._burn(self.fast_n)
        burn_slow = self._burn(self.slow_n)
        if (not self.in_breach and len(self._bad) >= self.fast_n
                and burn_fast >= self.burn_threshold
                and burn_slow >= self.burn_threshold):
            self.in_breach = True
            self.breaches += 1
            self.transitions.append((t, "breach", burn_fast, burn_slow))
            self._emit("slo.breach", t, value, burn_fast, burn_slow)
        elif self.in_breach and self._ok_streak >= self.fast_n:
            self.in_breach = False
            self.recoveries += 1
            self.transitions.append((t, "recover", burn_fast, burn_slow))
            self._emit("slo.recover", t, value, burn_fast, burn_slow)
        prefix = f"slo.{self.name}"
        self.store.record(t, f"{prefix}.value", value)
        self.store.record(t, f"{prefix}.burn_fast", burn_fast)
        self.store.record(t, f"{prefix}.burn_slow", burn_slow)
        self.store.record(t, f"{prefix}.breach",
                          1.0 if self.in_breach else 0.0)

    def _emit(self, kind: str, t: float, value: float,
              burn_fast: float, burn_slow: float) -> None:
        tracer = getattr(self.sim, "tracer", None)
        if tracer is not None:
            tracer.instant(f"{kind}:{self.name}", "slo", track="slo",
                           slo=self.name, metric=self.metric,
                           value=None if no_data(value) else value,
                           threshold_us=self.threshold_us,
                           burn_fast=burn_fast, burn_slow=burn_slow)
        metrics = getattr(self.sim, "metrics", None)
        if metrics is not None:
            metrics.counter(kind).inc(t)

    # -- reporting --------------------------------------------------------
    def report(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "metric": self.metric,
            "objective": (f"p{self.pct:g} < {self.threshold_us:g}us "
                          f"over {self.window_us:g}us"),
            "budget": self.budget,
            "burn_threshold": self.burn_threshold,
            "fast_samples": self.fast_n,
            "slow_samples": self.slow_n,
            "evaluations": len(self._bad),
            "in_breach": self.in_breach,
            "breaches": self.breaches,
            "recoveries": self.recoveries,
            "transitions": [
                {"t_us": round(t, 3), "kind": kind,
                 "burn_fast": round(bf, 4), "burn_slow": round(bs, 4)}
                for t, kind, bf, bs in self.transitions],
        }


def render_slo_report(reports: List[Dict[str, object]]) -> str:
    """Human-readable ``repro slo`` table."""
    if not reports:
        return "no SLOs declared"
    lines = []
    for rep in reports:
        state = "BREACH" if rep["in_breach"] else "ok"
        lines.append(
            f"[slo:{rep['name']}] {rep['objective']}  state={state}  "
            f"breaches={rep['breaches']} recoveries={rep['recoveries']} "
            f"(budget={rep['budget']:g}, fast={rep['fast_samples']} "
            f"slow={rep['slow_samples']} samples)")
        for tr in rep["transitions"]:
            lines.append(
                f"  {tr['kind']:>8s} @{tr['t_us']:12.1f}us "
                f"burn_fast={tr['burn_fast']:.2f} "
                f"burn_slow={tr['burn_slow']:.2f}")
    return "\n".join(lines)
