"""PulsePlane: continuous fleet telemetry on a virtual-time lattice.

TracePlane answers *post-hoc* questions; the PulsePlane lets the system
observe itself *while running*.  A periodic sampler scrapes gauges —
per-server NIC-core utilization, DRR queue depth, steering decision
rates, per-service latency quantiles out of the existing windowed
histograms — into an in-memory, fingerprint-stable time-series store
with ring-buffer retention.  On top of the store sit the
:class:`~repro.obs.slo.SloEvaluator`\\ s (multi-window burn-rate SLO
alerting) and the :class:`LoadFeed`, which publishes per-backend
utilization to the :class:`~repro.net.steering.Rebalancer` so migration
can be *load*-driven, not only outage-driven.

Zero virtual-time cost
----------------------

The engine calls ``sim.pulse.after_step(now)`` after every fired event
(one attribute read when no plane is installed, exactly like
``sim.tracer``/``sim.metrics``/``sim.checker``).  The sampler is *lazy*:
it takes one sample when virtual time first crosses a period boundary,
stamps it at the boundary, and jumps the lattice forward over idle gaps
in one step (the same idiom as ``Histogram._rotate``).  Crucially it
**schedules nothing** — a sampled run fires the exact same event
sequence as an unsampled one, which the determinism sanitizer's step
digests prove and the :class:`~repro.check.monitors.PulseMonitor`
enforces at runtime (``passive_schedules`` must stay 0).  The one
deliberate exception is the :class:`LoadFeed`: triggering a migration is
a *control action*, so feeds run after the passive bookkeeping and their
scheduling is attributed to the rebalancer, not the sampler.
"""

from __future__ import annotations

import json
import zlib
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from .metrics import EMPTY_QUANTILE, MetricsRegistry, no_data

#: Default sampling cadence (virtual µs) and per-series ring capacity.
DEFAULT_PERIOD_US = 500.0
DEFAULT_RETENTION = 4096


class Series:
    """One named time series: a ring buffer of ``(t_us, value)``."""

    __slots__ = ("name", "_points")

    def __init__(self, name: str, retention: int = DEFAULT_RETENTION):
        self.name = name
        self._points: Deque[Tuple[float, float]] = deque(
            maxlen=max(int(retention), 1))

    def append(self, t: float, value: float) -> None:
        self._points.append((t, value))

    def last(self) -> Optional[Tuple[float, float]]:
        return self._points[-1] if self._points else None

    def points(self) -> List[Tuple[float, float]]:
        return list(self._points)

    def values(self) -> List[float]:
        return [v for _, v in self._points]

    def __len__(self) -> int:
        return len(self._points)


class SeriesStore:
    """Named series directory with ring-buffer retention.

    Retention bounds memory for arbitrarily long runs; the fingerprint
    covers exactly the retained points, so two runs compare equal iff
    they retained identical telemetry.
    """

    def __init__(self, retention: int = DEFAULT_RETENTION):
        self.retention = retention
        self._series: Dict[str, Series] = {}

    def series(self, name: str) -> Series:
        s = self._series.get(name)
        if s is None:
            s = self._series[name] = Series(name, self.retention)
        return s

    def get(self, name: str) -> Optional[Series]:
        return self._series.get(name)

    def record(self, t: float, name: str, value: float) -> None:
        self.series(name).append(t, value)

    def names(self) -> List[str]:
        return sorted(self._series)

    def total_points(self) -> int:
        return sum(len(s) for s in self._series.values())

    def fingerprint(self) -> int:
        """CRC-32 over every retained point, in sorted series order.

        ``repr(float)`` is the shortest round-tripping decimal form in
        every supported CPython, so equal samples digest equally across
        processes; the NaN sentinel digests as ``'nan'``.
        """
        crc = 0
        for name in self.names():
            for t, v in self._series[name].points():
                crc = zlib.crc32(
                    f"{name}@{t!r}={v!r}\n".encode(), crc)
        return crc

    # -- export ----------------------------------------------------------
    def to_csv(self) -> str:
        """``series,t_us,value`` rows, series-sorted then time-ordered."""
        lines = ["series,t_us,value"]
        for name in self.names():
            for t, v in self._series[name].points():
                lines.append(f"{name},{t!r},{v!r}")
        return "\n".join(lines) + "\n"

    def to_chrome(self) -> Dict[str, object]:
        """Chrome ``trace_event`` counter tracks (Perfetto-loadable).

        Every series becomes a ``"ph": "C"`` counter under one ``pulse``
        process, alongside the span export from
        :func:`repro.obs.profiler.to_chrome_trace`; no-data sentinel
        points are omitted (Perfetto draws gaps, not zeros).
        """
        events: List[Dict[str, object]] = [{
            "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
            "args": {"name": "pulse"}}]
        for name in self.names():
            for t, v in self._series[name].points():
                if no_data(v):
                    continue
                events.append({"name": name, "ph": "C", "ts": t,
                               "pid": 0, "args": {"value": v}})
        return {"traceEvents": events, "displayTimeUnit": "ms",
                "otherData": {"clock": "virtual-us"}}


# -- probe factories ----------------------------------------------------------

def _peak_probe(trackers) -> Callable[[float], float]:
    """Peak per-tracker utilization over the elapsed sample period.

    Differences the cumulative busy time each
    :class:`~repro.sim.stats.UtilizationTracker` already accumulates, so
    the probe is read-only.  The *hottest* tracker is the signal, not
    the mean: a single pinned actor can saturate one core while the
    average across a 12-core NIC stays under 10% — and that hotspot is
    exactly what load-driven rebalancing must see.
    """
    trackers = list(trackers)
    prev = [0.0] * len(trackers)
    state = [0.0]               # previous boundary

    def probe(t: float) -> float:
        span = t - state[0]
        peak = 0.0
        for idx, u in enumerate(trackers):
            busy = u.busy_time
            if span > 0 and busy - prev[idx] > peak * span:
                peak = (busy - prev[idx]) / span
            prev[idx] = busy
        state[0] = t
        return min(max(peak, 0.0), 1.0)
    return probe


def nic_utilization_probe(nic) -> Callable[[float], float]:
    """Peak per-core NIC utilization (``SmartNic.charge_core`` charges)."""
    return _peak_probe(nic.core_util)


def host_utilization_probe(runtime) -> Callable[[float], float]:
    """Peak per-worker host utilization (``IPipeRuntime.host_util``)."""
    return _peak_probe(runtime.host_util)


def queue_depth_probe(scheduler) -> Callable[[float], float]:
    """Instantaneous NIC work backlog: TM queue + DRR runnable actors."""
    def probe(t: float) -> float:
        return float(len(scheduler.queue) + len(scheduler.drr_runnable))
    return probe


def counter_rate_probe(read_total: Callable[[], float]
                       ) -> Callable[[float], float]:
    """Per-second rate from a cumulative counter reader (e.g. steering
    decisions): delta over the elapsed sample period."""
    state = [0.0, 0.0]

    def probe(t: float) -> float:
        total = float(read_total())
        span = t - state[1]
        rate = (total - state[0]) / span * 1e6 if span > 0 else 0.0
        state[0], state[1] = total, t
        return rate
    return probe


def service_quantile_probe(metrics: MetricsRegistry, metric: str,
                           pct: float) -> Callable[[float], float]:
    """Windowed latency quantile of a service histogram; the empty-window
    sentinel (NaN) when nothing was recorded recently."""
    def probe(t: float) -> float:
        hist = metrics.get_histogram(metric)
        if hist is None:
            return EMPTY_QUANTILE
        return hist.percentile(pct, t)
    return probe


def tenant_utilization_probe(schedulers,
                             tenant: str) -> Callable[[float], float]:
    """One tenant's NIC compute rate over the elapsed sample period.

    Differences the cumulative ``tenant_busy_us`` ledger summed across
    the tenant's schedulers; the value is busy µs per elapsed µs, i.e.
    cores-worth of compute (can exceed 1.0 on a multi-core NIC)."""
    scheds = list(schedulers)
    state = [0.0, 0.0]          # previous busy total, previous boundary

    def probe(t: float) -> float:
        busy = sum(s.tenant_busy_us.get(tenant, 0.0) for s in scheds)
        span = t - state[1]
        rate = (busy - state[0]) / span if span > 0 else 0.0
        state[0], state[1] = busy, t
        return max(rate, 0.0)
    return probe


def tenant_steering_probe(controller,
                          services) -> Callable[[float], float]:
    """Per-second steering decision rate over one tenant's services.

    Scans the controller's decision ledger incrementally (the
    SteeringMonitor idiom) counting decisions whose service belongs to
    the tenant; read-only, never rescans history."""
    owned = frozenset(services)
    state = [0, 0.0, 0.0]       # ledger index, matched count, boundary

    def probe(t: float) -> float:
        decisions = controller.decisions
        idx = state[0]
        matched = 0
        while idx < len(decisions):
            if decisions[idx][1] in owned:
                matched += 1
            idx += 1
        state[0] = idx
        span = t - state[2]
        rate = matched / span * 1e6 if span > 0 else 0.0
        state[1] += matched
        state[2] = t
        return rate
    return probe


# -- the plane ----------------------------------------------------------------

class PulsePlane:
    """Installs the periodic sampler on a simulator (``sim.pulse``).

    Construction order matters exactly as for TracePlane/CheckPlane:
    build the plane before the components it watches, register probes
    with :meth:`add_probe` (or the ``watch_*`` helpers), then run.  When
    no :class:`~repro.obs.metrics.MetricsRegistry` is installed yet, the
    plane installs one — metric recording is passive, so this does not
    perturb the event schedule.
    """

    def __init__(self, sim, period_us: float = DEFAULT_PERIOD_US,
                 retention: int = DEFAULT_RETENTION):
        if period_us <= 0:
            raise ValueError(f"period_us must be positive: {period_us}")
        self.sim = sim
        self.period_us = float(period_us)
        self.store = SeriesStore(retention)
        self._probes: List[Tuple[str, Callable[[float], float]]] = []
        self._evaluators: List[object] = []
        self._feeds: List[object] = []
        self._next = self.period_us
        self.samples = 0
        self.first_sample_us: Optional[float] = None
        self.last_sample_us: Optional[float] = None
        #: times the *passive* sampling pass (probes + SLO evaluation)
        #: scheduled a simulator event — must stay 0; the PulseMonitor
        #: turns any increment into an invariant violation.
        self.passive_schedules = 0
        if getattr(sim, "metrics", None) is None:
            sim.metrics = MetricsRegistry(sim)
        sim.pulse = self

    def uninstall(self) -> None:
        if getattr(self.sim, "pulse", None) is self:
            self.sim.pulse = None

    # -- registration -----------------------------------------------------
    def add_probe(self, name: str,
                  fn: Callable[[float], float]) -> None:
        """Register a gauge probe; called once per sample with the
        boundary timestamp, must return a float and schedule nothing."""
        self._probes.append((name, fn))

    def add_evaluator(self, evaluator) -> None:
        """Attach an :class:`~repro.obs.slo.SloEvaluator` (evaluated
        every sample, after the probes recorded)."""
        self._evaluators.append(evaluator)

    def add_feed(self, feed) -> None:
        """Attach a control-side consumer (e.g. :class:`LoadFeed`); runs
        after the passive pass and *may* schedule events."""
        self._feeds.append(feed)

    # -- convenience wiring ----------------------------------------------
    def watch_server(self, name: str, nic=None, scheduler=None,
                     runtime=None) -> None:
        """Per-server gauges: ``nic.util.<name>``, ``nic.queue.<name>``,
        and ``host.util.<name>`` when the runtime has host workers."""
        if nic is not None:
            self.add_probe(f"nic.util.{name}", nic_utilization_probe(nic))
        if scheduler is not None:
            self.add_probe(f"nic.queue.{name}", queue_depth_probe(scheduler))
        if runtime is not None and getattr(runtime, "host_util", None):
            self.add_probe(f"host.util.{name}",
                           host_utilization_probe(runtime))

    def watch_steering(self, controller) -> None:
        """Fabric-wide steering decision rate: ``steer.rate``."""
        self.add_probe("steer.rate",
                       counter_rate_probe(lambda: controller.steered))

    def watch_service(self, service: str, pct: float = 99.0,
                      window_us: Optional[float] = None) -> None:
        """Per-service latency quantile: ``svc.<service>.p<pct>``.

        ``window_us`` sizes the backing histogram's sliding window (two
        windows deep) so the quantile tracks the SLO's evaluation
        horizon instead of the registry's default — stale congestion
        must age out at the SLO's cadence for recovery to be visible.
        """
        metric = f"svc.{service}.latency_us"
        if window_us is not None:
            self.sim.metrics.histogram(metric, window_us=window_us,
                                       windows=2)
        self.add_probe(f"svc.{service}.p{pct:g}",
                       service_quantile_probe(self.sim.metrics, metric, pct))

    def watch_tenant(self, tenant: str, schedulers=(), services=(),
                     controller=None, pct: float = 99.0,
                     window_us: Optional[float] = None) -> None:
        """Per-tenant gauges (docs/TENANCY.md): ``tenant.util.<t>`` from
        the schedulers' busy ledgers, ``tenant.steer.<t>`` over the
        tenant's services, and ``tenant.svc.<t>.<svc>.p<pct>`` — the
        same quantile :meth:`watch_service` exposes, re-registered under
        the tenant namespace so per-tenant SLOs and fleet SLOs never
        share a series."""
        if schedulers:
            self.add_probe(f"tenant.util.{tenant}",
                           tenant_utilization_probe(schedulers, tenant))
        if controller is not None and services:
            self.add_probe(f"tenant.steer.{tenant}",
                           tenant_steering_probe(controller, services))
        for service in services:
            metric = f"svc.{service}.latency_us"
            if window_us is not None:
                self.sim.metrics.histogram(metric, window_us=window_us,
                                           windows=2)
            self.add_probe(
                f"tenant.svc.{tenant}.{service}.p{pct:g}",
                service_quantile_probe(self.sim.metrics, metric, pct))

    # -- engine hook ------------------------------------------------------
    def after_step(self, now: float) -> None:
        """Called by the run loop after every fired event."""
        nxt = self._next
        if now < nxt:
            return
        period = self.period_us
        # sample once at the most recent boundary <= now; idle gaps jump
        # the lattice forward in one step (no per-period loop)
        boundary = nxt + int((now - nxt) // period) * period
        self._sample(boundary)
        self._next = boundary + period

    def _sample(self, t: float) -> None:
        sim = self.sim
        seq0 = sim._seq
        for name, fn in self._probes:
            self.store.record(t, name, fn(t))
        for evaluator in self._evaluators:
            evaluator.evaluate(t)
        if sim._seq != seq0:
            # a probe or evaluator scheduled an event: the zero-cost
            # contract is broken (PulseMonitor reports it)
            self.passive_schedules += 1
        for feed in self._feeds:
            feed.publish(t)
        self.samples += 1
        if self.first_sample_us is None:
            self.first_sample_us = t
        self.last_sample_us = t

    # -- reporting / export -----------------------------------------------
    def slo_report(self) -> List[Dict[str, object]]:
        return [ev.report() for ev in self._evaluators]

    def breaches(self) -> int:
        return sum(ev.breaches for ev in self._evaluators)

    def telemetry(self) -> Dict[str, object]:
        """Plain-data digest for replay fingerprints (ChaosReport)."""
        out: Dict[str, object] = {
            "samples": self.samples,
            "series": len(self.store.names()),
            "points": self.store.total_points(),
            "store_crc": self.store.fingerprint(),
            "passive_schedules": self.passive_schedules,
        }
        if self._evaluators:
            out["breaches"] = self.breaches()
            out["recoveries"] = sum(ev.recoveries
                                    for ev in self._evaluators)
            out["slo_transitions"] = tuple(
                (ev.name, round(t, 3), kind)
                for ev in self._evaluators
                for t, kind, _bf, _bs in ev.transitions)
        for feed in self._feeds:
            triggered = getattr(feed, "triggered", None)
            if triggered is not None:
                out["load_migrations"] = tuple(
                    (round(t, 3), home, dst) for t, home, dst in triggered)
        return out

    def export_csv(self, path: str) -> int:
        """Write the store as CSV; returns the number of data rows."""
        text = self.store.to_csv()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        return text.count("\n") - 1

    def export_chrome(self, path: str) -> int:
        """Write Perfetto counter tracks; returns the event count."""
        doc = self.store.to_chrome()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
        return len(doc["traceEvents"])


class LoadFeed:
    """Publishes per-server utilization samples to the Rebalancer.

    Closes the ROADMAP "load-driven rebalancing" item: each pulse, every
    server's utilization — the *max* of its latest ``nic.util.<server>``
    and ``host.util.<server>`` gauges, i.e. its hottest execution
    resource — is handed to
    :meth:`repro.net.steering.Rebalancer.on_load_sample`, which owns the
    hysteresis + cooldown policy and may launch a live migration of the
    hottest sustained backend.  The feed itself is a dumb adapter — the
    *decision* lives with the steering layer, the *measurement* here.
    """

    def __init__(self, pulse: PulsePlane, rebalancer,
                 prefixes: Tuple[str, ...] = ("nic.util.", "host.util.")):
        self.pulse = pulse
        self.rebalancer = rebalancer
        self.prefixes = prefixes
        self.published = 0
        #: (t, home, dst) per migration this feed triggered.
        self.triggered: List[Tuple[float, str, str]] = []
        pulse.add_feed(self)

    def publish(self, t: float) -> None:
        store = self.pulse.store
        utils: Dict[str, float] = {}
        for name in store.names():
            prefix = next((p for p in self.prefixes
                           if name.startswith(p)), None)
            if prefix is None:
                continue
            point = store.get(name).last()
            if point is not None and point[0] == t:
                server = name[len(prefix):]
                utils[server] = max(utils.get(server, 0.0), point[1])
        if not utils:
            return
        self.published += 1
        move = self.rebalancer.on_load_sample(t, utils)
        if move is not None:
            self.triggered.append((t, move[0], move[1]))
            store.record(t, "load.migrations", float(len(self.triggered)))
