"""Virtual-time profiler: fold spans into attribution tables and export
Chrome ``trace_event`` JSON (loadable in Perfetto / chrome://tracing).

The fold answers the §5-style questions the aggregate snapshots cannot:
how many microseconds did requests spend waiting in the shared queue vs
being served, per actor, per core, per stage — and the export lets you
*see* one request's path across nodes on a common virtual-time axis.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..sim import percentile
from .trace import Span

#: Stage ordering for reports (unknown categories sort after these).
STAGE_ORDER = ("ingress", "link", "sched.wait", "service", "forward",
               "accel", "channel", "channel.retx", "host", "migration")


def _stage_rank(cat: str) -> Tuple[int, str]:
    try:
        return (STAGE_ORDER.index(cat), cat)
    except ValueError:
        return (len(STAGE_ORDER), cat)


@dataclass
class StageStats:
    """Latency distribution of one pipeline stage."""

    stage: str
    count: int = 0
    total_us: float = 0.0
    durations: List[float] = field(default_factory=list)

    @property
    def mean_us(self) -> float:
        return self.total_us / self.count if self.count else 0.0

    def p(self, pct: float) -> float:
        return percentile(self.durations, pct) if self.durations else 0.0

    @property
    def p50_us(self) -> float:
        return self.p(50)

    @property
    def p99_us(self) -> float:
        return self.p(99)

    def as_dict(self) -> Dict[str, float]:
        return {"count": self.count, "total_us": self.total_us,
                "mean_us": self.mean_us, "p50_us": self.p50_us,
                "p99_us": self.p99_us}


def stage_breakdown(spans: Iterable[Span]) -> Dict[str, StageStats]:
    """Per-stage (span category) latency distribution."""
    stages: Dict[str, StageStats] = {}
    for span in spans:
        if span.end_us is None:
            continue
        st = stages.get(span.cat)
        if st is None:
            st = stages[span.cat] = StageStats(span.cat)
        dur = span.end_us - span.start_us
        st.count += 1
        st.total_us += dur
        st.durations.append(dur)
    return dict(sorted(stages.items(), key=lambda kv: _stage_rank(kv[0])))


def fold(spans: Iterable[Span],
         by: Sequence[str] = ("node", "cat", "actor")) -> List[Dict[str, Any]]:
    """Aggregate span time by a grouping key — the "flame" fold.

    ``by`` names span fields (``node``, ``cat``, ``name``, ``track``) or
    attribute keys (``actor``, ``core``, ``group`` …).  Returns rows with
    the key values plus ``count``, ``total_us``, ``mean_us``, sorted by
    descending total time.
    """
    groups: Dict[Tuple, Dict[str, Any]] = {}
    for span in spans:
        if span.end_us is None:
            continue
        key = []
        for dim in by:
            if dim in ("node", "cat", "name", "track"):
                key.append(getattr(span, dim))
            else:
                key.append(span.attrs.get(dim, "") if span.attrs else "")
        key = tuple(key)
        row = groups.get(key)
        if row is None:
            row = groups[key] = dict(zip(by, key))
            row["count"] = 0
            row["total_us"] = 0.0
        row["count"] += 1
        row["total_us"] += span.end_us - span.start_us
    rows = list(groups.values())
    for row in rows:
        row["mean_us"] = row["total_us"] / row["count"]
    rows.sort(key=lambda r: -r["total_us"])
    return rows


def actor_attribution(spans: Iterable[Span]) -> List[Dict[str, Any]]:
    """Per ``(node, actor)`` service-time attribution — the placement
    planner's input table (:mod:`repro.plan`).

    Only ``service`` spans count (queueing and transport belong to the
    stage table, not to the actor): rows carry ``node``, ``actor``,
    ``count``, ``total_us``, ``mean_us``, sorted by descending total.
    """
    rows = fold((s for s in spans if s.cat == "service"),
                by=("node", "actor"))
    return [r for r in rows if r["actor"]]


def render_flame(rows: List[Dict[str, Any]], by: Sequence[str],
                 limit: int = 40, total_us: Optional[float] = None) -> str:
    """Terse terminal table of a fold — ``repro top``'s output."""
    if not rows:
        return "(no spans recorded)"
    if total_us is None:
        total_us = sum(r["total_us"] for r in rows) or 1.0
    widths = [max(len(dim), *(len(str(r[dim])) for r in rows))
              for dim in by]
    header = "  ".join(dim.ljust(w) for dim, w in zip(by, widths))
    lines = [f"{header}  {'count':>8s} {'total(µs)':>12s} "
             f"{'mean(µs)':>9s} {'share':>6s}"]
    for row in rows[:limit]:
        key = "  ".join(str(row[dim]).ljust(w) for dim, w in zip(by, widths))
        share = row["total_us"] / total_us
        lines.append(f"{key}  {row['count']:>8d} {row['total_us']:>12.1f} "
                     f"{row['mean_us']:>9.2f} {share:>5.1%}")
    if len(rows) > limit:
        rest = sum(r["total_us"] for r in rows[limit:])
        lines.append(f"... {len(rows) - limit} more rows "
                     f"({rest:.1f}µs, {rest / total_us:.1%})")
    return "\n".join(lines)


def render_stages(stages: Dict[str, StageStats]) -> str:
    """Per-stage p50/p99 table for harness summaries."""
    if not stages:
        return "(no spans recorded)"
    width = max(len(s) for s in stages)
    lines = [f"{'stage'.ljust(width)}  {'count':>8s} {'p50(µs)':>9s} "
             f"{'p99(µs)':>9s} {'mean(µs)':>9s} {'total(µs)':>12s}"]
    for name, st in stages.items():
        lines.append(f"{name.ljust(width)}  {st.count:>8d} {st.p50_us:>9.2f} "
                     f"{st.p99_us:>9.2f} {st.mean_us:>9.2f} "
                     f"{st.total_us:>12.1f}")
    return "\n".join(lines)


# -- Chrome trace_event export -------------------------------------------------
def to_chrome_trace(spans: Iterable[Span]) -> Dict[str, Any]:
    """Chrome ``trace_event`` JSON object (Perfetto-loadable).

    Nodes map to processes, per-node tracks (core, host worker, wire,
    ring) to threads; every span becomes a complete ("X") event carrying
    its trace id and attributes in ``args`` so Perfetto's query/filter
    UI can follow one request across processes.
    """
    pids: Dict[str, int] = {}
    tids: Dict[Tuple[str, str], int] = {}
    events: List[Dict[str, Any]] = []

    def pid_of(node: str) -> int:
        node = node or "sim"
        if node not in pids:
            pids[node] = len(pids) + 1
            events.append({
                "name": "process_name", "ph": "M", "pid": pids[node],
                "tid": 0, "args": {"name": node}})
        return pids[node]

    def tid_of(node: str, track: str) -> int:
        key = (node or "sim", track or "main")
        if key not in tids:
            tids[key] = len(tids) + 1
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid_of(key[0]),
                "tid": tids[key], "args": {"name": key[1]}})
        return tids[key]

    for span in spans:
        if span.end_us is None:
            continue
        args: Dict[str, Any] = {"trace_id": span.trace_id,
                                "span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.attrs:
            for k, v in span.attrs.items():
                if isinstance(v, (str, int, float, bool)) or v is None:
                    args[k] = v
                else:
                    args[k] = repr(v)
        events.append({
            "name": span.name,
            "cat": span.cat or "span",
            "ph": "X",
            "ts": span.start_us,
            "dur": max(span.end_us - span.start_us, 0.001),
            "pid": pid_of(span.node),
            "tid": tid_of(span.node, span.track),
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"clock": "virtual-us"}}


def write_chrome_trace(spans: Iterable[Span], path: str) -> int:
    """Serialize to ``path``; returns the number of events written."""
    doc = to_chrome_trace(spans)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])
