"""Windowed metrics over virtual time: counters, gauges, histograms.

The registry complements tracing: spans answer "where did *this*
request's microseconds go", metrics answer "what is the p99 queue wait
*right now*".  Histograms are log-linear (HDR-style): every power-of-two
range is split into ``sub`` linear sub-buckets, bounding the relative
quantile error at ``1/(2·sub)`` (≈3% at the default 16) with O(1)
recording and a few hundred integer slots — no sample retention.

Windowing rotates the bucket array every ``window_us`` of virtual time;
queries merge the live window with up to ``windows-1`` closed ones, so a
percentile reflects the recent past rather than the whole run.  All-time
buckets are kept alongside for end-of-run reporting.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

#: Default sliding-window span (virtual µs) and window count.
DEFAULT_WINDOW_US = 10_000.0
DEFAULT_WINDOWS = 6

#: Sentinel returned by quantile queries over an empty (or fully
#: expired) window.  0.0 is a legal latency, so "no data" must be
#: distinguishable from "very fast": NaN propagates through arithmetic,
#: compares False against every threshold, and is detected with
#: :func:`no_data`.
EMPTY_QUANTILE = float("nan")


def no_data(value: float) -> bool:
    """True when a quantile query returned the empty-window sentinel."""
    return isinstance(value, float) and math.isnan(value)


def _bucket_index(value: float, sub: int) -> int:
    """Log-linear bucket index for a non-negative value."""
    if value < 1.0:
        # sub-microsecond values share one linear region: [0, 1) split
        # into ``sub`` buckets, below the log-linear lattice
        return int(value * sub)
    mantissa, exponent = math.frexp(value)     # value = mantissa * 2**exp
    # mantissa ∈ [0.5, 1): linear position within the octave
    offset = int((mantissa - 0.5) * 2.0 * sub)
    return exponent * sub + min(offset, sub - 1)


def _bucket_value(index: int, sub: int) -> float:
    """Representative (midpoint) value of a bucket."""
    if index < sub:
        return (index + 0.5) / sub
    exponent, offset = divmod(index, sub)
    lo = math.ldexp(0.5 * (1.0 + offset / sub), exponent)
    hi = math.ldexp(0.5 * (1.0 + (offset + 1) / sub), exponent)
    return (lo + hi) / 2.0


class Histogram:
    """Log-linear histogram with sliding virtual-time windows."""

    def __init__(self, name: str = "", sub: int = 16,
                 window_us: float = DEFAULT_WINDOW_US,
                 windows: int = DEFAULT_WINDOWS):
        self.name = name
        self.sub = sub
        self.window_us = window_us
        self.max_windows = windows
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0
        self._all: Dict[int, int] = {}
        self._live: Dict[int, int] = {}
        self._live_start = 0.0
        #: closed windows, oldest first: (window_start, buckets)
        self._closed: Deque[Tuple[float, Dict[int, int]]] = deque(
            maxlen=max(windows - 1, 1))

    def record(self, now: float, value: float) -> None:
        if value < 0.0:
            value = 0.0
        self._rotate(now)
        idx = _bucket_index(value, self.sub)
        self._all[idx] = self._all.get(idx, 0) + 1
        self._live[idx] = self._live.get(idx, 0) + 1
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value

    def _rotate(self, now: float) -> None:
        gap = now - self._live_start
        if gap < self.window_us:
            return
        # close the live window under its original start, then jump the
        # lattice forward in one step — empty intermediate windows carry
        # no counts, so there is nothing to materialize
        if self._live:
            self._closed.append((self._live_start, self._live))
            self._live = {}
        self._live_start += int(gap // self.window_us) * self.window_us

    # -- queries -------------------------------------------------------------
    def _merged(self, now: Optional[float]) -> Dict[int, int]:
        if now is None:
            return self._all
        self._rotate(now)
        horizon = now - self.window_us * self.max_windows
        merged = dict(self._live)
        for start, buckets in self._closed:
            if start + self.window_us <= horizon:
                continue
            for idx, n in buckets.items():
                merged[idx] = merged.get(idx, 0) + n
        return merged

    def percentile(self, pct: float, now: Optional[float] = None) -> float:
        """Quantile estimate; ``now`` restricts to the sliding window,
        ``None`` queries the whole run.

        A query over zero samples — a histogram nothing was recorded
        into, or a window whose contents have all expired — returns
        :data:`EMPTY_QUANTILE` (NaN), never a stale or fabricated 0.0.
        """
        buckets = self._merged(now)
        total = sum(buckets.values())
        if total == 0:
            return EMPTY_QUANTILE
        rank = max(int(math.ceil(pct / 100.0 * total)), 1)
        seen = 0
        for idx in sorted(buckets):
            seen += buckets[idx]
            if seen >= rank:
                return _bucket_value(idx, self.sub)
        return _bucket_value(max(buckets), self.sub)

    def window_count(self, now: float) -> int:
        return sum(self._merged(now).values())

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p90(self) -> float:
        return self.percentile(90)

    @property
    def p99(self) -> float:
        return self.percentile(99)


class Counter:
    """Monotonic counter with per-window rate support."""

    def __init__(self, name: str = "", window_us: float = DEFAULT_WINDOW_US):
        self.name = name
        self.window_us = window_us
        self.value = 0
        self._window_value = 0
        self._window_start = 0.0

    def inc(self, now: float, amount: int = 1) -> None:
        self._roll(now)
        self.value += amount
        self._window_value += amount

    def _roll(self, now: float) -> None:
        if now - self._window_start >= self.window_us:
            self._window_value = 0
            self._window_start = now

    def rate_per_us(self, now: float) -> float:
        self._roll(now)
        span = max(now - self._window_start, 1e-9)
        return self._window_value / span


class Gauge:
    """Last-write-wins scalar with its update time."""

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0.0
        self.updated_at = 0.0

    def set(self, now: float, value: float) -> None:
        self.value = value
        self.updated_at = now


class MetricsRegistry:
    """Named metric directory shared by the runtime and harnesses.

    Installed on the simulator as ``sim.metrics`` by
    :class:`~repro.obs.plane.TracePlane`; instrumentation sites look it
    up with ``getattr(sim, "metrics", None)`` so an uninstrumented run
    pays nothing.
    """

    def __init__(self, sim=None, window_us: float = DEFAULT_WINDOW_US,
                 windows: int = DEFAULT_WINDOWS):
        self.sim = sim
        self.window_us = window_us
        self.windows = windows
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _now(self, now: Optional[float]) -> float:
        if now is not None:
            return now
        return self.sim.now if self.sim is not None else 0.0

    # -- access (create on first use) ---------------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name, self.window_us)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, window_us: Optional[float] = None,
                  windows: Optional[int] = None) -> Histogram:
        """The named histogram, created on first use.  The optional
        window overrides apply only at creation — declare a non-default
        window (e.g. an SLO's evaluation window) before traffic records
        into the metric."""
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(
                name, window_us=window_us or self.window_us,
                windows=windows or self.windows)
        return h

    def get_histogram(self, name: str) -> Optional[Histogram]:
        """The named histogram, or None — without creating it (readers
        like the PulsePlane probes must not materialise metrics)."""
        return self._histograms.get(name)

    # -- convenience recorders ----------------------------------------------
    def inc(self, name: str, amount: int = 1,
            now: Optional[float] = None) -> None:
        self.counter(name).inc(self._now(now), amount)

    def observe(self, name: str, value: float,
                now: Optional[float] = None) -> None:
        self.histogram(name).record(self._now(now), value)

    def set_gauge(self, name: str, value: float,
                  now: Optional[float] = None) -> None:
        self.gauge(name).set(self._now(now), value)

    # -- reporting ------------------------------------------------------------
    def names(self) -> List[str]:
        return sorted({*self._counters, *self._gauges, *self._histograms})

    def snapshot(self, now: Optional[float] = None) -> Dict[str, Dict[str, float]]:
        """One flat report: counters, gauges, and histogram quantiles.

        Histogram quantiles are windowed when ``now`` is given (the usual
        operator view), all-time when ``None``.
        """
        out: Dict[str, Dict[str, float]] = {}
        for name, c in sorted(self._counters.items()):
            out[name] = {"type": "counter", "value": c.value}
        for name, g in sorted(self._gauges.items()):
            out[name] = {"type": "gauge", "value": g.value,
                         "updated_at": g.updated_at}
        for name, h in sorted(self._histograms.items()):
            # empty/expired windows surface as None (JSON null), never as
            # the in-band NaN sentinel or a fake 0.0
            quantiles = {p: h.percentile(p, now) for p in (50, 90, 99)}
            out[name] = {
                "type": "histogram",
                "count": h.count,
                "mean": h.mean,
                "p50": None if no_data(quantiles[50]) else quantiles[50],
                "p90": None if no_data(quantiles[90]) else quantiles[90],
                "p99": None if no_data(quantiles[99]) else quantiles[99],
                "max": h.max_value,
            }
        return out
