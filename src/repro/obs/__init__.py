"""TracePlane: distributed tracing, windowed metrics, virtual-time profiling."""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .plane import TracePlane
from .profiler import (
    StageStats,
    fold,
    render_flame,
    render_stages,
    stage_breakdown,
    to_chrome_trace,
    write_chrome_trace,
)
from .trace import Span, SpanContext, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TracePlane",
    "StageStats",
    "fold",
    "render_flame",
    "render_stages",
    "stage_breakdown",
    "to_chrome_trace",
    "write_chrome_trace",
    "Span",
    "SpanContext",
    "Tracer",
]
