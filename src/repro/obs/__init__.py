"""Observability: tracing, windowed metrics, profiling, and the
PulsePlane's continuous telemetry + SLO burn-rate alerting."""

from .metrics import (
    Counter,
    EMPTY_QUANTILE,
    Gauge,
    Histogram,
    MetricsRegistry,
    no_data,
)
from .plane import TracePlane
from .pulse import LoadFeed, PulsePlane, Series, SeriesStore
from .slo import SloEvaluator, parse_slo, render_slo_report
from .profiler import (
    StageStats,
    fold,
    render_flame,
    render_stages,
    stage_breakdown,
    to_chrome_trace,
    write_chrome_trace,
)
from .trace import Span, SpanContext, Tracer

__all__ = [
    "Counter",
    "EMPTY_QUANTILE",
    "Gauge",
    "Histogram",
    "LoadFeed",
    "MetricsRegistry",
    "PulsePlane",
    "Series",
    "SeriesStore",
    "SloEvaluator",
    "TracePlane",
    "no_data",
    "parse_slo",
    "render_slo_report",
    "StageStats",
    "fold",
    "render_flame",
    "render_stages",
    "stage_breakdown",
    "to_chrome_trace",
    "write_chrome_trace",
    "Span",
    "SpanContext",
    "Tracer",
]
