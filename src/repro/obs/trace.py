"""Distributed tracing over virtual time.

A *trace* follows one request through the dataplane: wire → NIC ingress →
scheduler queue → actor handler → host↔NIC channel → host worker → reply.
Each hop contributes a :class:`Span` — a named, categorized interval of
virtual time with free-form attributes.  Spans sharing a ``trace_id``
belong to the same request, no matter which node (or side of the PCIe
bus) recorded them; the context rides in ``Message.meta["trace"]`` /
``Packet.meta["trace"]`` so it survives channel crossings, retransmits,
and cross-node Paxos/RDMA hops.

Two recording styles:

* **live spans** (:meth:`Tracer.start_span` … :meth:`Tracer.end`) for
  intervals that enclose other instrumentation — handler execution wraps
  accelerator invocations, so the accelerator span can name its parent;
* **retrospective spans** (:meth:`Tracer.record_span`) for intervals
  whose bounds are only known after the fact — queue wait is recorded in
  one call at service start, a link span at transmit time (its delivery
  instant is already computed).

Parenthood is only asserted where true interval containment holds (child
⊆ parent); cross-stage causality within a trace is carried by the shared
``trace_id`` plus virtual-time ordering.

The tracer is installed on the simulator (``sim.tracer``) by
:class:`~repro.obs.plane.TracePlane`; instrumentation sites use::

    tracer = getattr(self.sim, "tracer", None)
    if tracer is not None:
        ...

so a run without a TracePlane — or with a disabled one — pays a single
attribute lookup per event and allocates nothing.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

#: Trace context as carried in message/packet metadata.
SpanContext = Tuple[int, int]          # (trace_id, span_id)

_trace_ids = itertools.count(1)
_span_ids = itertools.count(1)


class Span:
    """One named interval of virtual time within a trace."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "cat",
                 "start_us", "end_us", "node", "track", "attrs")

    def __init__(self, trace_id: int, span_id: int, parent_id: Optional[int],
                 name: str, cat: str, start_us: float,
                 node: str = "", track: str = "",
                 attrs: Optional[Dict[str, Any]] = None):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.cat = cat
        self.start_us = start_us
        self.end_us: Optional[float] = None
        self.node = node
        self.track = track
        self.attrs = attrs or {}

    @property
    def ctx(self) -> SpanContext:
        return (self.trace_id, self.span_id)

    @property
    def duration_us(self) -> float:
        return (self.end_us - self.start_us) if self.end_us is not None else 0.0

    @property
    def closed(self) -> bool:
        return self.end_us is not None

    def __repr__(self) -> str:
        end = f"{self.end_us:.2f}" if self.end_us is not None else "open"
        return (f"Span({self.cat}:{self.name} trace={self.trace_id} "
                f"[{self.start_us:.2f}, {end}]µs @{self.node}/{self.track})")


class Tracer:
    """Collects spans against a simulator's virtual clock.

    Finished spans land in :attr:`spans`, a bounded deque — when
    ``max_spans`` is exceeded the oldest spans are evicted and counted in
    :attr:`dropped` (long soak runs must not grow without bound).
    """

    def __init__(self, sim, max_spans: int = 200_000):
        self.sim = sim
        self.spans: Deque[Span] = deque(maxlen=max_spans)
        self._open: Dict[int, Span] = {}
        self.dropped = 0
        self.started = 0

    # -- recording -----------------------------------------------------------
    def new_trace(self) -> int:
        return next(_trace_ids)

    def start_span(self, name: str, cat: str,
                   trace: Optional[SpanContext] = None,
                   parent: Optional[Span] = None,
                   node: str = "", track: str = "",
                   **attrs: Any) -> Span:
        """Open a live span; close it with :meth:`end`.

        ``trace`` is the propagated context (the new span joins that
        trace); ``parent`` asserts strict interval containment and must be
        a span that encloses this one.  With neither, a fresh trace
        starts here.
        """
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        elif trace is not None:
            trace_id, parent_id = trace[0], None
        else:
            trace_id, parent_id = next(_trace_ids), None
        span = Span(trace_id, next(_span_ids), parent_id, name, cat,
                    self.sim.now, node=node, track=track, attrs=attrs or None)
        self._open[span.span_id] = span
        self.started += 1
        return span

    def end(self, span: Span) -> Span:
        """Close a live span at the current virtual time."""
        if span.end_us is None:
            span.end_us = self.sim.now
            self._open.pop(span.span_id, None)
            self._store(span)
        return span

    def record_span(self, name: str, cat: str,
                    start_us: float, end_us: float,
                    trace: Optional[SpanContext] = None,
                    parent: Optional[Span] = None,
                    node: str = "", track: str = "",
                    **attrs: Any) -> Span:
        """Record an already-finished interval in one call."""
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        elif trace is not None:
            trace_id, parent_id = trace[0], None
        else:
            trace_id, parent_id = next(_trace_ids), None
        span = Span(trace_id, next(_span_ids), parent_id, name, cat,
                    start_us, node=node, track=track, attrs=attrs or None)
        span.end_us = end_us
        self.started += 1
        self._store(span)
        return span

    def instant(self, name: str, cat: str,
                trace: Optional[SpanContext] = None,
                node: str = "", track: str = "", **attrs: Any) -> Span:
        """A zero-duration marker event."""
        return self.record_span(name, cat, self.sim.now, self.sim.now,
                                trace=trace, node=node, track=track, **attrs)

    def _store(self, span: Span) -> None:
        if (self.spans.maxlen is not None
                and len(self.spans) == self.spans.maxlen):
            self.dropped += 1
        self.spans.append(span)

    # -- introspection -------------------------------------------------------
    @property
    def open_spans(self) -> List[Span]:
        """Live spans not yet closed (should be empty after a drained run)."""
        return list(self._open.values())

    def close_all(self) -> int:
        """Close any still-open spans at the current time (end-of-run
        flush before export); returns how many were force-closed."""
        leftovers = list(self._open.values())
        for span in leftovers:
            self.end(span)
        return len(leftovers)

    def traces(self) -> Dict[int, List[Span]]:
        """Finished spans grouped by trace id, in start order."""
        grouped: Dict[int, List[Span]] = {}
        for span in self.spans:
            grouped.setdefault(span.trace_id, []).append(span)
        for spans in grouped.values():
            spans.sort(key=lambda s: (s.start_us, s.span_id))
        return grouped
