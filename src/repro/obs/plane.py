"""TracePlane: one object that turns a simulation observable.

Construct it against a :class:`~repro.sim.Simulator` *before* the
runtimes you want instrumented start executing::

    bed = make_testbed(seed=42)
    plane = TracePlane(bed.sim)            # tracing + metrics on
    ... build servers, run ...
    print(plane.render_stages())           # per-stage p50/p99
    plane.export_chrome("trace.json")      # open in Perfetto

Installation is a pair of simulator attributes (``sim.tracer``,
``sim.metrics``) that every instrumentation site in the dataplane checks
with ``getattr(sim, "...", None)`` — so a simulation without a TracePlane
(or with ``enabled=False``) runs the exact seed code path plus one failed
attribute lookup per event.  Tracing never charges virtual time: two runs
with the same seeds produce identical results traced or not.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from .metrics import DEFAULT_WINDOW_US, DEFAULT_WINDOWS, MetricsRegistry
from .profiler import (
    fold,
    render_flame,
    render_stages,
    stage_breakdown,
    write_chrome_trace,
)
from .trace import Tracer


class TracePlane:
    """Owns the tracer + metrics registry for one simulation."""

    def __init__(self, sim, enabled: bool = True,
                 max_spans: int = 200_000,
                 window_us: float = DEFAULT_WINDOW_US,
                 windows: int = DEFAULT_WINDOWS):
        self.sim = sim
        self.enabled = enabled
        self.tracer: Optional[Tracer] = None
        self.metrics: Optional[MetricsRegistry] = None
        if enabled:
            self.tracer = Tracer(sim, max_spans=max_spans)
            self.metrics = MetricsRegistry(sim, window_us=window_us,
                                           windows=windows)
            sim.tracer = self.tracer
            sim.metrics = self.metrics

    def uninstall(self) -> None:
        """Detach from the simulator (spans already recorded are kept)."""
        if getattr(self.sim, "tracer", None) is self.tracer:
            self.sim.tracer = None
        if getattr(self.sim, "metrics", None) is self.metrics:
            self.sim.metrics = None

    # -- analysis ------------------------------------------------------------
    @property
    def spans(self):
        return self.tracer.spans if self.tracer is not None else ()

    def stage_breakdown(self) -> Dict[str, Any]:
        """Per-stage latency stats, ``{cat: StageStats}``."""
        return stage_breakdown(self.spans)

    def stage_report(self) -> Dict[str, Dict[str, float]]:
        """JSON-friendly per-stage p50/p99 table."""
        return {name: st.as_dict()
                for name, st in self.stage_breakdown().items()}

    def render_stages(self) -> str:
        return render_stages(self.stage_breakdown())

    def flame(self, by: Sequence[str] = ("node", "cat", "actor"),
              limit: int = 40) -> str:
        """The ``repro top`` table: span time folded by ``by``."""
        return render_flame(fold(self.spans, by=by), by=by, limit=limit)

    def export_chrome(self, path: str) -> int:
        """Write Chrome trace_event JSON; returns the event count."""
        if self.tracer is not None:
            self.tracer.close_all()
        return write_chrome_trace(self.spans, path)

    def violations(self):
        """Spans recorded by CheckPlane invariant monitors (category
        ``check.violation``) — one instant span per violation."""
        return [span for span in self.spans if span.cat == "check.violation"]

    def metrics_snapshot(self, windowed: bool = True) -> Dict[str, Dict[str, float]]:
        if self.metrics is None:
            return {}
        now = self.sim.now if windowed else None
        return self.metrics.snapshot(now)
