"""Workload generators matching the paper's evaluation setup (§5.1).

* **RKV** — <key, value> pairs: 16B keys, 95% read / 5% write, zipf(0.99)
  over 1M keys; value size grows with the packet size.
* **DT** — multi-key read-write transactions: two reads and one write per
  request (the FaSST-style mix [29]).
* **RTA** — tweet-like tuples from a synthetic Twitter stream; the number
  of tuples per request varies with the packet size.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..sim import Rng, ZipfGenerator

KEY_SPACE = 1_000_000
KEY_BYTES = 16
READ_FRACTION = 0.95
ZIPF_THETA = 0.99


def _key_string(index: int) -> str:
    return f"key{index:0{KEY_BYTES - 3}d}"


def value_bytes_for_packet(packet_size: int) -> int:
    """Value payload available in a request frame after headers/keys."""
    return max(8, packet_size - 64 - KEY_BYTES)


class KvWorkload:
    """The RKV request stream: 95/5 read/write, zipf keys."""

    def __init__(self, packet_size: int = 512, seed: int = 11,
                 key_space: int = KEY_SPACE,
                 read_fraction: float = READ_FRACTION):
        self.rng = Rng(seed)
        self.zipf = ZipfGenerator(key_space, theta=ZIPF_THETA,
                                  rng=self.rng.fork(1))
        self.packet_size = packet_size
        self.read_fraction = read_fraction
        self.value_bytes = value_bytes_for_packet(packet_size)
        self.reads = 0
        self.writes = 0

    def next_request(self, _i: int = 0) -> Dict:
        key = _key_string(self.zipf.draw())
        if self.rng.random() < self.read_fraction:
            self.reads += 1
            return {"kind": "rkv-get", "key": key}
        self.writes += 1
        return {"kind": "rkv-put", "key": key,
                "value": bytes(self.value_bytes)}


class TxnWorkload:
    """The DT request stream: 2 reads + 1 write per transaction."""

    def __init__(self, packet_size: int = 512, seed: int = 13,
                 key_space: int = KEY_SPACE, reads_per_txn: int = 2,
                 writes_per_txn: int = 1):
        self.rng = Rng(seed)
        self.zipf = ZipfGenerator(key_space, theta=ZIPF_THETA,
                                  rng=self.rng.fork(2))
        self.packet_size = packet_size
        self.reads_per_txn = reads_per_txn
        self.writes_per_txn = writes_per_txn
        self.value_bytes = value_bytes_for_packet(packet_size)

    def next_request(self, _i: int = 0) -> Dict:
        keys = set()
        while len(keys) < self.reads_per_txn + self.writes_per_txn:
            keys.add(_key_string(self.zipf.draw()))
        keys = sorted(keys)
        reads = keys[: self.reads_per_txn]
        writes = {k: bytes(self.value_bytes)
                  for k in keys[self.reads_per_txn:]}
        return {"kind": "dt-txn", "reads": reads, "writes": writes}


#: Vocabulary for the synthetic Twitter stream (the paper replays a SNAP
#: Twitter dataset [35]; we generate a zipf-popular hashtag mix).
_HASHTAGS = [f"#tag{i}" for i in range(64)]
_WORDS = ["the", "quick", "brown", "fox", "http", "lol", "RT", "breaking",
          "news", "game", "score", "live"]


class TwitterWorkload:
    """The RTA tuple stream: tweets with zipf-distributed hashtags."""

    def __init__(self, packet_size: int = 512, seed: int = 17,
                 tuple_bytes: int = 48):
        self.rng = Rng(seed)
        self.zipf = ZipfGenerator(len(_HASHTAGS), theta=0.9,
                                  rng=self.rng.fork(3))
        self.packet_size = packet_size
        self.tuples_per_request = max(1, (packet_size - 64) // tuple_bytes)

    def next_tuple(self) -> str:
        words = [str(self.rng.choice(_WORDS)) for _ in range(3)]
        if self.rng.random() < 0.6:
            words.append(_HASHTAGS[self.zipf.draw()])
        return " ".join(words)

    def next_request(self, _i: int = 0) -> Dict:
        return {"kind": "rta-tuple",
                "tuples": [self.next_tuple()
                           for _ in range(self.tuples_per_request)]}


def payload_factory(workload) -> Callable[[int], Dict]:
    """Adapt a workload to the pktgen payload-factory interface."""
    return workload.next_request
