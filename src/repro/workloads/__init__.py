"""Workload generators shared by the experiment harnesses."""

from .generators import (
    KEY_SPACE,
    KvWorkload,
    TwitterWorkload,
    TxnWorkload,
    payload_factory,
    value_bytes_for_packet,
)

__all__ = [
    "KEY_SPACE",
    "KvWorkload",
    "TwitterWorkload",
    "TxnWorkload",
    "payload_factory",
    "value_bytes_for_packet",
]
