"""Hash-table key-value cache (Table 3: "KV cache", per KV-Direct [37]).

Supports read/write/delete with LRU eviction under a byte budget — the
NIC-resident cache tier of an in-memory KV store.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional


class KvCache:
    """LRU-evicting hash table with byte-budget accounting."""

    def __init__(self, capacity_bytes: int = 1 << 20):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.used_bytes = 0
        self._table: "OrderedDict[bytes, bytes]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def _entry_size(key: bytes, value: bytes) -> int:
        return len(key) + len(value) + 32  # struct overhead

    def read(self, key: bytes) -> Optional[bytes]:
        value = self._table.get(key)
        if value is None:
            self.misses += 1
            return None
        self._table.move_to_end(key)
        self.hits += 1
        return value

    def write(self, key: bytes, value: bytes) -> None:
        if key in self._table:
            self.used_bytes -= self._entry_size(key, self._table[key])
            del self._table[key]
        entry = self._entry_size(key, value)
        while self.used_bytes + entry > self.capacity_bytes and self._table:
            old_key, old_val = self._table.popitem(last=False)
            self.used_bytes -= self._entry_size(old_key, old_val)
            self.evictions += 1
        if entry > self.capacity_bytes:
            raise ValueError("entry larger than the whole cache")
        self._table[key] = value
        self.used_bytes += entry

    def delete(self, key: bytes) -> bool:
        value = self._table.pop(key, None)
        if value is None:
            return False
        self.used_bytes -= self._entry_size(key, value)
        return True

    def __len__(self) -> int:
        return len(self._table)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
