"""Software TCAM with wildcard rule matching (Table 3: "Firewall").

A ternary content-addressable memory emulated in software: rules are
(value, mask, priority, action) over packet 5-tuple fields; lookup
returns the highest-priority matching rule.  Used both by the Table-3
microbenchmark and the §5.7 firewall network function (8K rules).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

#: Field layout of the matched key: (src_ip, dst_ip, src_port, dst_port,
#: proto) packed into a single 104-bit integer.
FIELD_BITS = (32, 32, 16, 16, 8)
KEY_BITS = sum(FIELD_BITS)


def pack_key(src_ip: int, dst_ip: int, src_port: int, dst_port: int,
             proto: int) -> int:
    """Pack a 5-tuple into the TCAM's key integer."""
    key = 0
    for value, bits in zip((src_ip, dst_ip, src_port, dst_port, proto),
                           FIELD_BITS):
        key = (key << bits) | (value & ((1 << bits) - 1))
    return key


def field_mask(wildcard_fields: Tuple[bool, ...]) -> int:
    """Mask with all-ones for exact fields, zeros for wildcarded ones."""
    mask = 0
    for wildcard, bits in zip(wildcard_fields, FIELD_BITS):
        chunk = 0 if wildcard else (1 << bits) - 1
        mask = (mask << bits) | chunk
    return mask


@dataclass(frozen=True)
class TcamRule:
    value: int
    mask: int
    priority: int
    action: str

    def matches(self, key: int) -> bool:
        return (key & self.mask) == (self.value & self.mask)


class SoftwareTcam:
    """Priority-ordered linear-match TCAM (what a wimpy core actually runs).

    Rules are kept sorted by descending priority so the first hit wins,
    exactly like hardware TCAM priority encoding.
    """

    def __init__(self):
        self._rules: List[TcamRule] = []
        self.lookups = 0
        self.rule_probes = 0

    def install(self, rule: TcamRule) -> None:
        self._rules.append(rule)
        self._rules.sort(key=lambda r: -r.priority)

    def install_many(self, rules) -> None:
        self._rules.extend(rules)
        self._rules.sort(key=lambda r: -r.priority)

    def remove(self, rule: TcamRule) -> None:
        self._rules.remove(rule)

    def lookup(self, key: int) -> Optional[TcamRule]:
        """First (highest-priority) matching rule, or None."""
        self.lookups += 1
        for rule in self._rules:
            self.rule_probes += 1
            if rule.matches(key):
                return rule
        return None

    def __len__(self) -> int:
        return len(self._rules)
