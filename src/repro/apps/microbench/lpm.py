"""Binary-trie longest-prefix-match router (Table 3: "Router", per NBA [32])."""

from __future__ import annotations

from typing import Optional


class _TrieNode:
    __slots__ = ("children", "next_hop")

    def __init__(self):
        self.children = [None, None]
        self.next_hop: Optional[str] = None


class LpmRouter:
    """IPv4 longest-prefix-match over a binary trie."""

    def __init__(self):
        self._root = _TrieNode()
        self.routes = 0
        self.lookups = 0
        self.node_visits = 0

    def add_route(self, prefix: int, prefix_len: int, next_hop: str) -> None:
        """Install ``prefix/prefix_len`` → next_hop."""
        if not 0 <= prefix_len <= 32:
            raise ValueError("prefix length must be 0..32")
        node = self._root
        for depth in range(prefix_len):
            bit = (prefix >> (31 - depth)) & 1
            if node.children[bit] is None:
                node.children[bit] = _TrieNode()
            node = node.children[bit]
        node.next_hop = next_hop
        self.routes += 1

    def lookup(self, address: int) -> Optional[str]:
        """Longest matching prefix's next hop, or None (no default route)."""
        self.lookups += 1
        node = self._root
        best = node.next_hop
        for depth in range(32):
            bit = (address >> (31 - depth)) & 1
            node = node.children[bit]
            if node is None:
                break
            self.node_visits += 1
            if node.next_hop is not None:
                best = node.next_hop
        return best


def ip(a: int, b: int, c: int, d: int) -> int:
    """Dotted-quad helper: ip(10, 0, 0, 1)."""
    return (a << 24) | (b << 16) | (c << 8) | d
