"""Count-min sketch flow monitor (Table 3: "Flow monitor", 2-D array).

The in-network flow monitoring workload of Sharma et al. [57]: every
packet updates a count-min sketch keyed by its flow 5-tuple; queries
return a (one-sided) frequency estimate.
"""

from __future__ import annotations

import zlib
from typing import Hashable, List


class CountMinSketch:
    """A width x depth counter array with pairwise-independent row hashes."""

    def __init__(self, width: int = 2048, depth: int = 4):
        if width <= 0 or depth <= 0:
            raise ValueError("width and depth must be positive")
        self.width = width
        self.depth = depth
        self.rows: List[List[int]] = [[0] * width for _ in range(depth)]
        self.updates = 0

    def _index(self, row: int, key: Hashable) -> int:
        blob = f"{row}:{key}".encode()
        return zlib.crc32(blob) % self.width

    def update(self, key: Hashable, count: int = 1) -> None:
        """Record ``count`` occurrences of ``key``."""
        for row in range(self.depth):
            self.rows[row][self._index(row, key)] += count
        self.updates += 1

    def estimate(self, key: Hashable) -> int:
        """Point query: an estimate that never undercounts."""
        return min(self.rows[row][self._index(row, key)]
                   for row in range(self.depth))

    def heavy_hitters(self, keys, threshold: int):
        """Filter candidate keys whose estimate reaches the threshold."""
        return [k for k in keys if self.estimate(k) >= threshold]

    @property
    def memory_accesses_per_update(self) -> int:
        """Accesses per update, for the microarchitectural cost model."""
        return 2 * self.depth  # read + write one counter per row
