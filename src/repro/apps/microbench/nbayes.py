"""Naive Bayes flow classifier (Table 3: "Flow classifier" [40]).

Multinomial naive Bayes over discretized packet features (sizes,
inter-arrival buckets, port classes).  Heavily memory-bound on the 2-D
likelihood arrays — the paper's highest-MPKI workload (15.2).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence


class NaiveBayesClassifier:
    """Categorical naive Bayes with Laplace smoothing."""

    def __init__(self, classes: Sequence[str], feature_cardinalities: Sequence[int]):
        if not classes:
            raise ValueError("need at least one class")
        self.classes = list(classes)
        self.cardinalities = list(feature_cardinalities)
        #: counts[class][feature][value]
        self.counts: Dict[str, List[List[int]]] = {
            c: [[0] * card for card in self.cardinalities] for c in self.classes
        }
        self.class_counts: Dict[str, int] = {c: 0 for c in self.classes}
        self.trained = 0
        self.classified = 0

    def _check(self, features: Sequence[int]) -> None:
        if len(features) != len(self.cardinalities):
            raise ValueError("feature vector has wrong arity")
        for value, card in zip(features, self.cardinalities):
            if not 0 <= value < card:
                raise ValueError(f"feature value {value} out of range 0..{card - 1}")

    def train(self, features: Sequence[int], label: str) -> None:
        self._check(features)
        table = self.counts[label]
        for f_idx, value in enumerate(features):
            table[f_idx][value] += 1
        self.class_counts[label] += 1
        self.trained += 1

    def log_posterior(self, features: Sequence[int], label: str) -> float:
        """Unnormalized log posterior with Laplace(1) smoothing."""
        total = sum(self.class_counts.values())
        prior = (self.class_counts[label] + 1) / (total + len(self.classes))
        logp = math.log(prior)
        table = self.counts[label]
        n_label = self.class_counts[label]
        for f_idx, value in enumerate(features):
            card = self.cardinalities[f_idx]
            logp += math.log((table[f_idx][value] + 1) / (n_label + card))
        return logp

    def classify(self, features: Sequence[int]) -> str:
        """Most probable class for the feature vector."""
        self._check(features)
        self.classified += 1
        return max(self.classes,
                   key=lambda c: self.log_posterior(features, c))


def packet_features(size: int, gap_us: float, dst_port: int) -> List[int]:
    """Discretize a packet into the classifier's feature space:
    8 size buckets, 8 inter-arrival buckets, 4 port classes."""
    size_bucket = min(size // 192, 7)
    gap_bucket = min(int(math.log2(gap_us + 1)), 7)
    if dst_port in (80, 443):
        port_class = 0
    elif dst_port < 1024:
        port_class = 1
    elif dst_port < 32768:
        port_class = 2
    else:
        port_class = 3
    return [size_bucket, gap_bucket, port_class]


FEATURE_CARDINALITIES = (8, 8, 4)
