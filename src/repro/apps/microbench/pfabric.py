"""pFabric packet scheduler on a binary search tree (Table 3 [2]).

pFabric schedules the packet whose flow has the smallest remaining size
(SRPT at the packet level).  The priority structure is an explicit BST
keyed on remaining-flow-size — matching the Table-3 "BST tree" data
structure and its memory-bound behaviour (MPKI 4.9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class QueuedPacket:
    flow_id: int
    remaining_bytes: int
    payload: object = None
    seq: int = 0


class _BstNode:
    __slots__ = ("key", "packets", "left", "right")

    def __init__(self, key: int):
        self.key = key
        self.packets: List[QueuedPacket] = []
        self.left: Optional["_BstNode"] = None
        self.right: Optional["_BstNode"] = None


class PFabricScheduler:
    """Enqueue packets with their flow's remaining size; dequeue SRPT-first."""

    def __init__(self):
        self._root: Optional[_BstNode] = None
        self._size = 0
        self._seq = 0
        self.node_visits = 0

    def __len__(self) -> int:
        return self._size

    def enqueue(self, packet: QueuedPacket) -> None:
        self._seq += 1
        packet.seq = self._seq
        if self._root is None:
            self._root = _BstNode(packet.remaining_bytes)
            self._root.packets.append(packet)
        else:
            node = self._root
            while True:
                self.node_visits += 1
                if packet.remaining_bytes == node.key:
                    node.packets.append(packet)
                    break
                side = "left" if packet.remaining_bytes < node.key else "right"
                child = getattr(node, side)
                if child is None:
                    child = _BstNode(packet.remaining_bytes)
                    child.packets.append(packet)
                    setattr(node, side, child)
                    break
                node = child
        self._size += 1

    def dequeue(self) -> Optional[QueuedPacket]:
        """Pop the packet of the flow with the smallest remaining size;
        FIFO within a flow size (earliest seq first)."""
        if self._root is None:
            return None
        parent, node = None, self._root
        while node.left is not None:
            self.node_visits += 1
            parent, node = node, node.left
        packet = min(node.packets, key=lambda p: p.seq)
        node.packets.remove(packet)
        if not node.packets:
            # splice the (left-less) minimum node out
            if parent is None:
                self._root = node.right
            else:
                parent.left = node.right
        self._size -= 1
        return packet

    def peek_min_key(self) -> Optional[int]:
        node = self._root
        if node is None:
            return None
        while node.left is not None:
            node = node.left
        return node.key
