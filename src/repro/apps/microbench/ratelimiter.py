"""Leaky-bucket rate limiter (Table 3: "Rate limiter", FIFO, per ClickNP).

Per-flow leaky buckets: a packet is admitted when its flow's bucket has
room; the bucket drains at the configured rate as virtual time advances.
"""

from __future__ import annotations

from typing import Dict, Hashable


class LeakyBucket:
    """One flow's bucket: level drains at ``rate`` bytes/µs."""

    __slots__ = ("capacity", "rate", "level", "last_update")

    def __init__(self, capacity_bytes: float, rate_bytes_per_us: float):
        self.capacity = capacity_bytes
        self.rate = rate_bytes_per_us
        self.level = 0.0
        self.last_update = 0.0

    def _drain(self, now: float) -> None:
        elapsed = max(now - self.last_update, 0.0)
        self.level = max(0.0, self.level - elapsed * self.rate)
        self.last_update = now

    def offer(self, nbytes: int, now: float) -> bool:
        """True if the packet fits (and is charged), False to drop."""
        self._drain(now)
        if self.level + nbytes > self.capacity:
            return False
        self.level += nbytes
        return True


class RateLimiter:
    """Per-flow leaky-bucket policer."""

    def __init__(self, rate_bytes_per_us: float = 1250.0,
                 burst_bytes: float = 15_000.0):
        if rate_bytes_per_us <= 0 or burst_bytes <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = rate_bytes_per_us
        self.burst = burst_bytes
        self._buckets: Dict[Hashable, LeakyBucket] = {}
        self.admitted = 0
        self.dropped = 0

    def admit(self, flow: Hashable, nbytes: int, now: float) -> bool:
        bucket = self._buckets.get(flow)
        if bucket is None:
            bucket = LeakyBucket(self.burst, self.rate)
            bucket.last_update = now
            self._buckets[flow] = bucket
        ok = bucket.offer(nbytes, now)
        if ok:
            self.admitted += 1
        else:
            self.dropped += 1
        return ok

    def flows(self) -> int:
        return len(self._buckets)
