"""Maglev consistent-hashing load balancer (Table 3: "Load balancer" [18]).

Implements Google's Maglev permutation-table construction: each backend
generates a permutation of table slots from two hashes; slots are filled
round-robin so every backend owns an almost-equal share, and backend
failures only remap the failed backend's slots.
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Sequence


def _hash(name: str, salt: str) -> int:
    return zlib.crc32(f"{salt}:{name}".encode()) & 0x7FFFFFFF


class MaglevTable:
    """The Maglev lookup table over a set of backends."""

    #: Maglev uses a prime table size; 65537 in the paper, smaller here by
    #: default to keep construction fast in tests.
    def __init__(self, backends: Sequence[str], table_size: int = 2039):
        if table_size < 2:
            raise ValueError("table size must be >= 2")
        self.table_size = table_size
        self.backends: List[str] = list(backends)
        self.lookup_table: List[Optional[str]] = [None] * table_size
        if self.backends:
            self._populate()

    def _permutation(self, backend: str) -> List[int]:
        offset = _hash(backend, "offset") % self.table_size
        skip = _hash(backend, "skip") % (self.table_size - 1) + 1
        return [(offset + j * skip) % self.table_size
                for j in range(self.table_size)]

    def _populate(self) -> None:
        permutations = {b: self._permutation(b) for b in self.backends}
        next_idx = {b: 0 for b in self.backends}
        table: List[Optional[str]] = [None] * self.table_size
        filled = 0
        while filled < self.table_size:
            for backend in self.backends:
                perm = permutations[backend]
                idx = next_idx[backend]
                while idx < self.table_size and table[perm[idx]] is not None:
                    idx += 1
                if idx >= self.table_size:
                    next_idx[backend] = idx
                    continue
                table[perm[idx]] = backend
                next_idx[backend] = idx + 1
                filled += 1
                if filled == self.table_size:
                    break
        self.lookup_table = table

    def pick(self, flow_key: str) -> str:
        """Backend for a flow (consistent across table rebuilds)."""
        if not self.backends:
            raise RuntimeError("no backends")
        return self.lookup_table[_hash(flow_key, "flow") % self.table_size]

    def remove_backend(self, backend: str) -> None:
        self.backends.remove(backend)
        if self.backends:
            self._populate()
        else:
            self.lookup_table = [None] * self.table_size

    def add_backend(self, backend: str) -> None:
        self.backends.append(backend)
        self._populate()

    def share(self, backend: str) -> float:
        """Fraction of table slots owned by a backend."""
        return sum(1 for b in self.lookup_table if b == backend) / self.table_size
