"""Maglev consistent-hashing load balancer (Table 3: "Load balancer" [18]).

The table implementation graduated into the fabric steering layer —
see :mod:`repro.net.steering` — and is re-exported here so the
microbench keeps its historical import path.
"""

from __future__ import annotations

from ...net.steering import MaglevTable, _hash

__all__ = ["MaglevTable", "_hash"]
