"""Table 3 microbenchmark suite: the 11 representative offloaded workloads.

Each workload is a real data-structure implementation; its timing on a
given device comes from the :mod:`repro.nic.cores` cost model using the
paper's measured (exec latency, IPC, MPKI) triples.
"""

from .sketch import CountMinSketch
from .kvcache import KvCache
from .topranker import TopRanker
from .ratelimiter import LeakyBucket, RateLimiter
from .tcam import SoftwareTcam, TcamRule, field_mask, pack_key
from .lpm import LpmRouter, ip
from .maglev import MaglevTable
from .pfabric import PFabricScheduler, QueuedPacket
from .nbayes import FEATURE_CARDINALITIES, NaiveBayesClassifier, packet_features
from .chainrep import ReplicationChain

#: Workload name (Table 3) → implementing class.
WORKLOAD_IMPLEMENTATIONS = {
    "flow_monitor": CountMinSketch,
    "kv_cache": KvCache,
    "top_ranker": TopRanker,
    "rate_limiter": RateLimiter,
    "firewall": SoftwareTcam,
    "router": LpmRouter,
    "load_balancer": MaglevTable,
    "packet_scheduler": PFabricScheduler,
    "flow_classifier": NaiveBayesClassifier,
    "packet_replication": ReplicationChain,
}

__all__ = [
    "CountMinSketch",
    "KvCache",
    "TopRanker",
    "LeakyBucket",
    "RateLimiter",
    "SoftwareTcam",
    "TcamRule",
    "field_mask",
    "pack_key",
    "LpmRouter",
    "ip",
    "MaglevTable",
    "PFabricScheduler",
    "QueuedPacket",
    "FEATURE_CARDINALITIES",
    "NaiveBayesClassifier",
    "packet_features",
    "ReplicationChain",
    "WORKLOAD_IMPLEMENTATIONS",
]
