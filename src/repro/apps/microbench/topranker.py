"""Quicksort top-N ranker (Table 3: "Top ranker", 1-D array, per Floem [53]).

Sorts a batch of (item, count) tuples by count and emits the top N —
the ranking worker of the real-time analytics pipeline.  Quicksort is
implemented explicitly (not via ``sorted``) because the workload *is* the
sort: the cost model charges by comparison/swap counts.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

Tuple2 = Tuple[object, int]


class TopRanker:
    """Batch quicksort ranker with instrumentation counters."""

    def __init__(self, n: int = 10):
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = n
        self.comparisons = 0
        self.swaps = 0

    def rank(self, tuples: Sequence[Tuple2]) -> List[Tuple2]:
        """Return the top-n tuples by descending count."""
        data = list(tuples)
        self._quicksort(data, 0, len(data) - 1)
        return data[: self.n]

    def merge(self, *ranked_lists: Sequence[Tuple2]) -> List[Tuple2]:
        """Aggregate ranker: merge per-worker top-n lists into a global one.

        The same item can appear in several workers' snapshots — keep the
        highest count per item before ranking.
        """
        best = {}
        for lst in ranked_lists:
            for item, count in lst:
                if item not in best or count > best[item]:
                    best[item] = count
        merged: List[Tuple2] = list(best.items())
        self._quicksort(merged, 0, len(merged) - 1)
        return merged[: self.n]

    # -- explicit quicksort (descending by count) ------------------------
    def _quicksort(self, data: List[Tuple2], lo: int, hi: int) -> None:
        while lo < hi:
            p = self._partition(data, lo, hi)
            # recurse on the smaller side to bound stack depth
            if p - lo < hi - p:
                self._quicksort(data, lo, p - 1)
                lo = p + 1
            else:
                self._quicksort(data, p + 1, hi)
                hi = p - 1

    def _partition(self, data: List[Tuple2], lo: int, hi: int) -> int:
        mid = (lo + hi) // 2
        # median-of-three pivot
        for a, b in ((lo, mid), (lo, hi), (mid, hi)):
            self.comparisons += 1
            if data[a][1] < data[b][1]:
                data[a], data[b] = data[b], data[a]
                self.swaps += 1
        pivot = data[mid][1]
        data[mid], data[hi] = data[hi], data[mid]
        store = lo
        for i in range(lo, hi):
            self.comparisons += 1
            if data[i][1] > pivot:
                data[i], data[store] = data[store], data[i]
                self.swaps += 1
                store += 1
        data[store], data[hi] = data[hi], data[store]
        return store
