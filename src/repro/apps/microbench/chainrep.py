"""Chain replication (Table 3: "Packet replication", linked list, per
Hyperloop [31]).

A write enters at the chain head, propagates node-to-node down a linked
list of replicas, and is acknowledged from the tail.  Reads are served at
the tail (the linearizability point of chain replication).
"""

from __future__ import annotations

from typing import Dict, List, Optional


class _ChainNode:
    __slots__ = ("name", "store", "next")

    def __init__(self, name: str):
        self.name = name
        self.store: Dict[str, str] = {}
        self.next: Optional["_ChainNode"] = None


class ReplicationChain:
    """An in-memory model of a chain-replicated store."""

    def __init__(self, replicas: List[str]):
        if not replicas:
            raise ValueError("chain needs at least one replica")
        self._nodes = [_ChainNode(name) for name in replicas]
        for a, b in zip(self._nodes, self._nodes[1:]):
            a.next = b
        self.head = self._nodes[0]
        self.tail = self._nodes[-1]
        self.hops = 0
        self.writes = 0
        self.reads = 0

    def write(self, key: str, value: str) -> int:
        """Propagate a write down the chain; returns the hop count."""
        node: Optional[_ChainNode] = self.head
        hops = 0
        while node is not None:
            node.store[key] = value
            hops += 1
            node = node.next
        self.hops += hops
        self.writes += 1
        return hops

    def read(self, key: str) -> Optional[str]:
        """Read from the tail (committed data only)."""
        self.reads += 1
        return self.tail.store.get(key)

    def fail_node(self, name: str) -> None:
        """Remove a replica and splice the chain around it."""
        if len(self._nodes) == 1:
            raise RuntimeError("cannot fail the last replica")
        idx = next(i for i, n in enumerate(self._nodes) if n.name == name)
        failed = self._nodes.pop(idx)
        if idx > 0:
            self._nodes[idx - 1].next = failed.next
        self.head = self._nodes[0]
        self.tail = self._nodes[-1]
        self.tail.next = None

    def consistent(self, key: str) -> bool:
        """All live replicas agree on the key (true after quiescence)."""
        values = {n.store.get(key) for n in self._nodes}
        return len(values) == 1

    def __len__(self) -> int:
        return len(self._nodes)
