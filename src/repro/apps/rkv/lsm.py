"""Log-structured merge tree: Memtable + levelled SSTables (§4).

The shape follows LevelDB/Bigtable as the paper describes: writes
accumulate in a skip-list Memtable; a full Memtable is frozen and flushed
to a level-0 SSTable (minor compaction); levels have exponentially
growing size limits and are merged upward (major compaction); deletions
are tombstones dropped at the bottom level; reads check Memtable →
immutable Memtable → L0 (newest first) → L1..Ln.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Level size limits grow 10x per level (LevelDB's growth factor).
LEVEL_GROWTH = 10
DEFAULT_L0_LIMIT = 4            # L0 is limited by table count, not bytes


@dataclass
class SSTable:
    """An immutable sorted run: parallel key/value arrays."""

    keys: List[str]
    values: List[Optional[bytes]]      # None marks a tombstone
    sequence: int                      # creation order, newer = larger

    @property
    def min_key(self) -> str:
        return self.keys[0]

    @property
    def max_key(self) -> str:
        return self.keys[-1]

    @property
    def byte_size(self) -> int:
        return sum(len(k) + (len(v) if v else 0) + 16
                   for k, v in zip(self.keys, self.values))

    def get(self, key: str) -> Tuple[bool, Optional[bytes]]:
        """(found, value); value None with found=True means tombstone."""
        idx = bisect.bisect_left(self.keys, key)
        if idx < len(self.keys) and self.keys[idx] == key:
            return True, self.values[idx]
        return False, None

    def overlaps(self, other: "SSTable") -> bool:
        return not (self.max_key < other.min_key or other.max_key < self.min_key)


@dataclass
class LsmStats:
    flushes: int = 0
    minor_compactions: int = 0
    major_compactions: int = 0
    tombstones_dropped: int = 0
    bytes_written: int = 0


class LsmTree:
    """The persistent half of the store: levelled SSTables.

    The Memtable lives with the Memtable *actor* (as a DMO skip list);
    this class receives frozen, sorted runs from it and owns levels 0..n.
    """

    def __init__(self, l0_table_limit: int = DEFAULT_L0_LIMIT,
                 l1_byte_limit: int = 1 << 20, max_levels: int = 5):
        self.l0_table_limit = l0_table_limit
        self.l1_byte_limit = l1_byte_limit
        self.max_levels = max_levels
        self.levels: List[List[SSTable]] = [[] for _ in range(max_levels)]
        self._sequence = 0
        self.stats = LsmStats()

    # -- ingestion -----------------------------------------------------------
    def flush_run(self, items: List[Tuple[str, Optional[bytes], bool]]) -> SSTable:
        """Minor compaction: a frozen Memtable becomes a level-0 SSTable."""
        keys: List[str] = []
        values: List[Optional[bytes]] = []
        for key, value, deleted in items:
            keys.append(key)
            values.append(None if deleted else value)
        self._sequence += 1
        table = SSTable(keys=keys, values=values, sequence=self._sequence)
        self.levels[0].append(table)
        self.stats.flushes += 1
        self.stats.minor_compactions += 1
        self.stats.bytes_written += table.byte_size
        return table

    # -- reads ------------------------------------------------------------------
    def get(self, key: str) -> Tuple[bool, Optional[bytes]]:
        """Search L0 newest-first, then L1..Ln."""
        for table in sorted(self.levels[0], key=lambda t: -t.sequence):
            found, value = table.get(key)
            if found:
                return True, value
        for level in self.levels[1:]:
            for table in level:
                if table.keys and table.min_key <= key <= table.max_key:
                    found, value = table.get(key)
                    if found:
                        return True, value
        return False, None

    # -- compaction ----------------------------------------------------------------
    def needs_compaction(self) -> Optional[int]:
        """The lowest level over its limit, or None."""
        if len(self.levels[0]) > self.l0_table_limit:
            return 0
        limit = self.l1_byte_limit
        for lvl in range(1, self.max_levels - 1):
            if self.level_bytes(lvl) > limit:
                return lvl
            limit *= LEVEL_GROWTH
        return None

    def level_bytes(self, level: int) -> int:
        return sum(t.byte_size for t in self.levels[level])

    def compact(self, level: int) -> None:
        """Major compaction: merge ``level`` into ``level + 1``."""
        if level >= self.max_levels - 1:
            return
        upper = self.levels[level]
        lower = self.levels[level + 1]
        if not upper:
            return
        merged_sources = sorted(upper, key=lambda t: -t.sequence)
        # pull in every overlapping lower-level table
        overlapping = [t for t in lower
                       if any(t.overlaps(u) for u in upper)]
        keep = [t for t in lower if t not in overlapping]
        merged_sources.extend(sorted(overlapping, key=lambda t: -t.sequence))

        latest: Dict[str, Optional[bytes]] = {}
        for table in merged_sources:               # newest first
            for k, v in zip(table.keys, table.values):
                if k not in latest:
                    latest[k] = v
        bottom = (level + 1 == self.max_levels - 1)
        keys_sorted = sorted(latest)
        out_keys: List[str] = []
        out_values: List[Optional[bytes]] = []
        for k in keys_sorted:
            v = latest[k]
            if v is None and bottom:
                self.stats.tombstones_dropped += 1
                continue                            # drop tombstone at bottom
            out_keys.append(k)
            out_values.append(v)
        self.levels[level] = []
        new_lower = list(keep)
        if out_keys:
            self._sequence += 1
            table = SSTable(keys=out_keys, values=out_values,
                            sequence=self._sequence)
            new_lower.append(table)
            self.stats.bytes_written += table.byte_size
        self.levels[level + 1] = new_lower
        self.stats.major_compactions += 1

    def compact_until_stable(self, max_rounds: int = 16) -> None:
        for _ in range(max_rounds):
            level = self.needs_compaction()
            if level is None:
                return
            self.compact(level)

    # -- introspection ----------------------------------------------------------------
    def total_tables(self) -> int:
        return sum(len(level) for level in self.levels)

    def all_keys(self) -> List[str]:
        seen: Dict[str, Optional[bytes]] = {}
        for level_idx, level in enumerate(self.levels):
            for table in sorted(level, key=lambda t: -t.sequence):
                for k, v in zip(table.keys, table.values):
                    if k not in seen:
                        seen[k] = v
        return sorted(k for k, v in seen.items() if v is not None)
