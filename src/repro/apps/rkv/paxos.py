"""Multi-Paxos replicated log (§4, Lamport's "Paxos made simple" [34]).

Each replica keeps an ordered log of instances.  A distinguished leader
receives client commands and, in the common case, commits an instance
with a single round of ACCEPT messages followed by a LEARN round.  On
leader failure, a replica runs the two-phase ballot protocol (PREPARE /
PROMISE), adopting any values already accepted so agreed instances are
never lost, then fills log gaps.

The implementation is transport-agnostic: ``send(dst, message)`` is a
callback, so the same state machine runs over direct calls in unit tests
and over iPipe actors/network packets in the full system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

SendFn = Callable[[str, "PaxosMessage"], None]
CommitFn = Callable[[int, Any], None]


@dataclass
class PaxosMessage:
    kind: str                  # prepare | promise | accept | accepted | learn | nack
    sender: str
    instance: int = -1
    ballot: Tuple[int, str] = (0, "")
    value: Any = None
    #: PROMISE piggybacks previously accepted (ballot, value) per instance.
    accepted: Dict[int, Tuple[Tuple[int, str], Any]] = field(default_factory=dict)
    first_unchosen: int = 0


@dataclass
class LogEntry:
    promised: Tuple[int, str] = (0, "")
    accepted_ballot: Optional[Tuple[int, str]] = None
    accepted_value: Any = None
    committed: bool = False
    value: Any = None


class MultiPaxosNode:
    """One replica of the replicated state machine."""

    def __init__(self, name: str, peers: List[str], send: SendFn,
                 on_commit: Optional[CommitFn] = None,
                 initial_leader: Optional[str] = None):
        if name in peers:
            raise ValueError("peers must exclude self")
        self.name = name
        self.peers = list(peers)
        self.send = send
        self.on_commit = on_commit
        self.log: Dict[int, LogEntry] = {}
        self.next_instance = 0
        self.next_to_apply = 0
        self.ballot: Tuple[int, str] = (0, initial_leader or "")
        self.leader: Optional[str] = initial_leader
        self._accept_votes: Dict[int, Set[str]] = {}
        self._promise_votes: Dict[Tuple[int, str], Dict[str, PaxosMessage]] = {}
        self._pending_client: List[Any] = []
        self.committed_count = 0
        self.messages_sent = 0
        #: correctness hook (repro.check.PaxosMonitor): notified at every
        #: local commit so conflicting chosen values are caught at the
        #: committing call site, not at the next periodic scan.
        self.checker = None

    # -- helpers ---------------------------------------------------------------
    @property
    def cluster_size(self) -> int:
        return len(self.peers) + 1

    @property
    def quorum(self) -> int:
        return self.cluster_size // 2 + 1

    @property
    def is_leader(self) -> bool:
        return self.leader == self.name

    def _entry(self, instance: int) -> LogEntry:
        if instance not in self.log:
            self.log[instance] = LogEntry()
        return self.log[instance]

    def _broadcast(self, msg: PaxosMessage) -> None:
        for peer in self.peers:
            self.messages_sent += 1
            self.send(peer, msg)

    # -- client path (leader) ------------------------------------------------------
    def client_request(self, command: Any) -> Optional[int]:
        """Propose a command.  Returns the chosen instance (leader only)."""
        if not self.is_leader:
            self._pending_client.append(command)
            return None
        instance = self.next_instance
        self.next_instance += 1
        entry = self._entry(instance)
        entry.accepted_ballot = self.ballot
        entry.accepted_value = command
        self._accept_votes[instance] = {self.name}
        self._broadcast(PaxosMessage(
            kind="accept", sender=self.name, instance=instance,
            ballot=self.ballot, value=command))
        self._maybe_choose(instance)
        return instance

    # -- message handling --------------------------------------------------------------
    def handle(self, msg: PaxosMessage) -> None:
        handler = getattr(self, f"_on_{msg.kind}", None)
        if handler is None:
            raise ValueError(f"unknown paxos message kind {msg.kind!r}")
        handler(msg)

    def _on_accept(self, msg: PaxosMessage) -> None:
        entry = self._entry(msg.instance)
        # A PROMISE covers every instance from first_unchosen on, including
        # ones with no log entry yet — so the floor is the max of the
        # per-instance promise and the node-wide promised ballot.
        if msg.ballot >= max(entry.promised, self.ballot):
            entry.promised = msg.ballot
            entry.accepted_ballot = msg.ballot
            entry.accepted_value = msg.value
            self.leader = msg.ballot[1] or msg.sender
            self.messages_sent += 1
            self.send(msg.sender, PaxosMessage(
                kind="accepted", sender=self.name, instance=msg.instance,
                ballot=msg.ballot))
        else:
            self.messages_sent += 1
            self.send(msg.sender, PaxosMessage(
                kind="nack", sender=self.name, instance=msg.instance,
                ballot=entry.promised))

    def _on_accepted(self, msg: PaxosMessage) -> None:
        if msg.ballot != self.ballot:
            return
        votes = self._accept_votes.setdefault(msg.instance, {self.name})
        votes.add(msg.sender)
        self._maybe_choose(msg.instance)

    def _maybe_choose(self, instance: int) -> None:
        votes = self._accept_votes.get(instance, set())
        entry = self._entry(instance)
        if len(votes) >= self.quorum and not entry.committed:
            self._commit(instance, entry.accepted_value)
            self._broadcast(PaxosMessage(
                kind="learn", sender=self.name, instance=instance,
                ballot=self.ballot, value=entry.accepted_value))

    def re_propose_stalled(self) -> int:
        """Leader repair: re-broadcast ACCEPTs for uncommitted instances.

        Message loss can strand an instance below quorum forever, which
        stalls the contiguous apply loop (and every later instance with
        it).  Re-proposing the already-accepted value under the same
        ballot is idempotent — acceptors that already voted simply vote
        again — so a periodic repair tick restores liveness without
        touching safety.  Returns the number of instances re-proposed."""
        if not self.is_leader:
            return 0
        repaired = 0
        for instance in range(self.next_to_apply, self.next_instance):
            entry = self._entry(instance)
            if entry.committed or entry.accepted_value is None:
                continue
            self._accept_votes.setdefault(instance, {self.name})
            self._broadcast(PaxosMessage(
                kind="accept", sender=self.name, instance=instance,
                ballot=self.ballot, value=entry.accepted_value))
            repaired += 1
        return repaired

    def _on_learn(self, msg: PaxosMessage) -> None:
        entry = self._entry(msg.instance)
        if not entry.committed:
            self._commit(msg.instance, msg.value)
        self.leader = msg.ballot[1] or msg.sender

    def _commit(self, instance: int, value: Any) -> None:
        entry = self._entry(instance)
        entry.committed = True
        entry.value = value
        self.committed_count += 1
        if self.checker is not None:
            self.checker.note_commit(self.name, instance, value)
        self.next_instance = max(self.next_instance, instance + 1)
        # apply contiguous committed prefix in order
        while True:
            nxt = self.log.get(self.next_to_apply)
            if nxt is None or not nxt.committed:
                break
            if self.on_commit is not None:
                self.on_commit(self.next_to_apply, nxt.value)
            self.next_to_apply += 1

    # -- leader election (two-phase) ----------------------------------------------------
    def start_election(self) -> None:
        """Run phase 1 with a higher ballot to become leader."""
        self.ballot = (self.ballot[0] + 1, self.name)
        self._promise_votes[self.ballot] = {}
        self._broadcast(PaxosMessage(
            kind="prepare", sender=self.name, ballot=self.ballot,
            first_unchosen=self.next_to_apply))
        # self-promise
        self._record_promise(PaxosMessage(
            kind="promise", sender=self.name, ballot=self.ballot,
            accepted=self._accepted_since(self.next_to_apply)))

    def _accepted_since(self, start: int) -> Dict[int, Tuple[Tuple[int, str], Any]]:
        out = {}
        for instance, entry in self.log.items():
            if instance >= start and entry.accepted_ballot is not None:
                out[instance] = (entry.accepted_ballot, entry.accepted_value)
        return out

    def _on_prepare(self, msg: PaxosMessage) -> None:
        # promise only for ballots above anything promised on any instance
        current_max = max([self.ballot]
                          + [e.promised for e in self.log.values()])
        if msg.ballot > current_max or (msg.ballot == self.ballot
                                        and msg.ballot[1] == msg.sender):
            self.ballot = msg.ballot
            # Promising a foreign ballot dethrones us: only the ballot's
            # owner may propose under it.
            self.leader = msg.ballot[1] or msg.sender
            for entry in self.log.values():
                entry.promised = max(entry.promised, msg.ballot)
            self.messages_sent += 1
            self.send(msg.sender, PaxosMessage(
                kind="promise", sender=self.name, ballot=msg.ballot,
                accepted=self._accepted_since(msg.first_unchosen)))
        else:
            self.messages_sent += 1
            self.send(msg.sender, PaxosMessage(
                kind="nack", sender=self.name, ballot=current_max))

    def _on_promise(self, msg: PaxosMessage) -> None:
        self._record_promise(msg)

    def _record_promise(self, msg: PaxosMessage) -> None:
        votes = self._promise_votes.get(msg.ballot)
        if votes is None or msg.ballot != self.ballot:
            return
        votes[msg.sender] = msg
        if len(votes) >= self.quorum and self.leader != self.name:
            self.leader = self.name
            # adopt the highest-ballot accepted value per instance
            adopted: Dict[int, Tuple[Tuple[int, str], Any]] = {}
            for promise in votes.values():
                for instance, (ballot, value) in promise.accepted.items():
                    if instance not in adopted or ballot > adopted[instance][0]:
                        adopted[instance] = (ballot, value)
            for instance, (_ballot, value) in sorted(adopted.items()):
                entry = self._entry(instance)
                if entry.committed:
                    continue
                entry.accepted_ballot = self.ballot
                entry.accepted_value = value
                self._accept_votes[instance] = {self.name}
                self._broadcast(PaxosMessage(
                    kind="accept", sender=self.name, instance=instance,
                    ballot=self.ballot, value=value))
                self.next_instance = max(self.next_instance, instance + 1)
            # drain queued client commands now that we lead
            pending, self._pending_client = self._pending_client, []
            for command in pending:
                self.client_request(command)

    def _on_nack(self, msg: PaxosMessage) -> None:
        if msg.ballot > self.ballot:
            self.leader = msg.ballot[1] or None
