"""DMO-backed skip list Memtable (Figure 12-b).

A traditional skip-list node holds a key string, a value pointer and a
forward-pointer array.  Built over distributed memory objects, the value
and the forwards become *object IDs*: dereferencing goes through the DMO
table, which is exactly the indirection that lets iPipe relocate the
whole structure between NIC and host during migration without rewriting
the nodes.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ...core.dmo import DmoManager
from ...sim import Rng

MAX_LEVEL = 8
#: Skip lists promote with p = 1/2.
PROMOTE_P = 0.5

#: Sentinel object id meaning "no node".
NIL = 0


class DmoSkipList:
    """An ordered map whose every node/value is a distributed memory object."""

    def __init__(self, dmo: DmoManager, owner: str, rng: Optional[Rng] = None):
        self.dmo = dmo
        self.owner = owner
        self.rng = rng or Rng(17)
        self.length = 0
        self.byte_size = 0
        # head node: no key, max-level forwards
        self._head_id = self._new_node(key=None, value_obj=NIL,
                                       level=MAX_LEVEL)

    # -- node helpers (each node is one DMO) --------------------------------
    def _new_node(self, key: Optional[str], value_obj: int, level: int) -> int:
        node = {
            "key": key,
            "value_obj": value_obj,
            "forwards": [NIL] * level,
            "deleted": False,
        }
        size = 64 + (len(key) if key else 0) + 8 * level
        obj = self.dmo.malloc(self.owner, size, data=node)
        return obj.object_id

    def _node(self, object_id: int) -> dict:
        return self.dmo.read(self.owner, object_id)

    def _random_level(self) -> int:
        level = 1
        while level < MAX_LEVEL and self.rng.random() < PROMOTE_P:
            level += 1
        return level

    # -- operations -----------------------------------------------------------
    def insert(self, key: str, value: bytes) -> None:
        """Insert or overwrite.  Deletions are insertions of a marker."""
        update: List[int] = [self._head_id] * MAX_LEVEL
        node_id = self._head_id
        node = self._node(node_id)
        for level in range(MAX_LEVEL - 1, -1, -1):
            while True:
                nxt = node["forwards"][level] if level < len(node["forwards"]) else NIL
                if nxt == NIL:
                    break
                nxt_node = self._node(nxt)
                if nxt_node["key"] is not None and nxt_node["key"] < key:
                    node_id, node = nxt, nxt_node
                else:
                    break
            update[level] = node_id

        candidate = node["forwards"][0] if node["forwards"] else NIL
        if candidate != NIL:
            cand_node = self._node(candidate)
            if cand_node["key"] == key:
                # overwrite: free old value object, attach new one
                if cand_node["value_obj"] != NIL:
                    old = self.dmo.read(self.owner, cand_node["value_obj"])
                    self.byte_size -= len(old) if old else 0
                    self.dmo.free(self.owner, cand_node["value_obj"])
                value_obj = self.dmo.malloc(self.owner, len(value), data=value)
                cand_node["value_obj"] = value_obj.object_id
                cand_node["deleted"] = False
                self.dmo.write(self.owner, candidate, cand_node)
                self.byte_size += len(value)
                return

        level = self._random_level()
        value_obj = self.dmo.malloc(self.owner, len(value), data=value)
        new_id = self._new_node(key, value_obj.object_id, level)
        new_node = self._node(new_id)
        for lvl in range(level):
            prev = self._node(update[lvl])
            new_node["forwards"][lvl] = prev["forwards"][lvl]
            prev["forwards"][lvl] = new_id
            self.dmo.write(self.owner, update[lvl], prev)
        self.dmo.write(self.owner, new_id, new_node)
        self.length += 1
        self.byte_size += len(key) + len(value) + 64

    def delete(self, key: str) -> None:
        """LSM-style deletion: insert a tombstone marker."""
        found = self._find(key)
        if found is None:
            # tombstone for a key that may exist in lower levels
            self.insert(key, b"")
            found = self._find_node_id(key)
            node = self._node(found)
            node["deleted"] = True
            self.dmo.write(self.owner, found, node)
            return
        node_id = self._find_node_id(key)
        node = self._node(node_id)
        node["deleted"] = True
        self.dmo.write(self.owner, node_id, node)

    def get(self, key: str) -> Optional[bytes]:
        """Value for the key; None if absent or tombstoned."""
        node_id = self._find_node_id(key)
        if node_id is None:
            return None
        node = self._node(node_id)
        if node["deleted"]:
            return None
        if node["value_obj"] == NIL:
            return None
        return self.dmo.read(self.owner, node["value_obj"])

    def is_tombstoned(self, key: str) -> bool:
        node_id = self._find_node_id(key)
        if node_id is None:
            return False
        return self._node(node_id)["deleted"]

    def _find_node_id(self, key: str) -> Optional[int]:
        node = self._node(self._head_id)
        for level in range(MAX_LEVEL - 1, -1, -1):
            while True:
                nxt = node["forwards"][level] if level < len(node["forwards"]) else NIL
                if nxt == NIL:
                    break
                nxt_node = self._node(nxt)
                if nxt_node["key"] is not None and nxt_node["key"] < key:
                    node = nxt_node
                else:
                    break
        candidate = node["forwards"][0] if node["forwards"] else NIL
        if candidate == NIL:
            return None
        cand = self._node(candidate)
        return candidate if cand["key"] == key else None

    def _find(self, key: str) -> Optional[bytes]:
        return self.get(key)

    def items(self) -> Iterator[Tuple[str, Optional[bytes], bool]]:
        """Ordered (key, value, deleted) triples — the flush iterator."""
        node = self._node(self._head_id)
        nxt = node["forwards"][0] if node["forwards"] else NIL
        while nxt != NIL:
            node = self._node(nxt)
            value = (self.dmo.read(self.owner, node["value_obj"])
                     if node["value_obj"] != NIL else None)
            yield node["key"], value, node["deleted"]
            nxt = node["forwards"][0]

    def __len__(self) -> int:
        return self.length
