"""Replicated key-value store: Multi-Paxos + LSM tree over iPipe actors."""

from .skiplist import DmoSkipList
from .lsm import LsmTree, SSTable
from .paxos import LogEntry, MultiPaxosNode, PaxosMessage
from .actors import RkvNode, RkvStorage

__all__ = [
    "DmoSkipList",
    "LsmTree",
    "SSTable",
    "LogEntry",
    "MultiPaxosNode",
    "PaxosMessage",
    "RkvNode",
    "RkvStorage",
]
