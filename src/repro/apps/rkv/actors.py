"""The replicated key-value store as iPipe actors (§4).

Four actor kinds per shard:

* **consensus** (NIC) — receives client writes, runs Multi-Paxos with the
  peer replicas' consensus actors, and forwards committed commands to the
  Memtable actor during the commit phase.
* **memtable** (NIC) — the DMO skip-list Memtable: applies committed
  writes/deletes, serves fast reads, freezes itself into an immutable run
  when full (minor compaction) and messages the compaction actor.
* **sst_read** (host, pinned) — serves reads that miss the Memtable from
  the levelled SSTables (persistent storage).
* **compaction** (host, pinned) — ingests frozen runs and performs
  minor/major compactions.

The SSTables live in :class:`RkvStorage` — the on-disk state both
host-side actors reach through the storage service (disk is shared
infrastructure, not actor state; the actors' *private* state is their
DMOs and Python-side indexes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ...core import Actor, Location, Message, MigrationState
from ...nic.cores import WorkloadProfile
from .lsm import LsmTree
from .paxos import MultiPaxosNode, PaxosMessage
from .skiplist import DmoSkipList

#: Handler cost profiles (NIC-reference µs, IPC, MPKI), consistent with
#: Table 3's measured range: replication-style consensus work ≈ 1.9µs,
#: skip-list ops ≈ the KV-cache row, storage-backed ops dominated by I/O.
CONSENSUS_PROFILE = WorkloadProfile("rkv_consensus", 1.9, 1.4, 0.6)
MEMTABLE_PROFILE = WorkloadProfile("rkv_memtable", 4.0, 1.2, 0.9)
SSTREAD_PROFILE = WorkloadProfile("rkv_sstread", 8.0, 0.8, 4.0)
COMPACTION_PROFILE = WorkloadProfile("rkv_compaction", 400.0, 0.6, 8.0)

DEFAULT_MEMTABLE_LIMIT = 4 * 1024 * 1024


@dataclass
class RkvStorage:
    """Host-persistent state shared by the storage-backed actors."""

    lsm: LsmTree = field(default_factory=LsmTree)


class RkvNode:
    """Wires the four RKV actors into one server's iPipe runtime."""

    def __init__(self, runtime, peer_nodes: List[str],
                 initial_leader: Optional[str] = None,
                 memtable_limit: int = DEFAULT_MEMTABLE_LIMIT):
        self.runtime = runtime
        self.node = runtime.node_name
        self.peers = peer_nodes
        self.storage = RkvStorage()
        self.memtable_limit = memtable_limit
        self._frozen_runs: Dict[int, List] = {}
        self._next_run = 0
        self._pending_replies: Dict[int, Message] = {}
        self.replies_sent = 0
        self.reads_served_memtable = 0
        self.reads_served_sstable = 0
        self.not_found = 0

        self.paxos = MultiPaxosNode(
            name=self.node, peers=peer_nodes,
            send=self._paxos_send,
            on_commit=self._on_commit,
            initial_leader=initial_leader or self.node)
        self._paxos_ctx = None

        self.consensus = Actor("consensus", self._consensus_handler,
                               profile=CONSENSUS_PROFILE, concurrent=True)
        self.memtable_actor = Actor("memtable", self._memtable_handler,
                                    profile=MEMTABLE_PROFILE, concurrent=True,
                                    state_bytes=4 * memtable_limit)
        self.sst_read = Actor("sst_read", self._sst_read_handler,
                              profile=SSTREAD_PROFILE,
                              location=Location.HOST, pinned=True,
                              concurrent=True)
        self.compaction = Actor("compaction", self._compaction_handler,
                                profile=COMPACTION_PROFILE,
                                location=Location.HOST, pinned=True)
        runtime.register_actor(self.consensus,
                               steering_keys=["consensus", "rkv-put", "rkv-del"])
        runtime.register_actor(self.memtable_actor,
                               steering_keys=["memtable", "rkv-get"])
        runtime.register_actor(self.sst_read, steering_keys=["sst_read"])
        runtime.register_actor(self.compaction, steering_keys=["compaction"])
        self.memtable = DmoSkipList(runtime.dmo, "memtable")

    def prefill(self, n_keys: int, value_bytes: int) -> None:
        """Load the hottest ``n_keys`` into the memtable (warm steady
        state: under zipf(0.99) the freshly-written hot keys are memtable
        resident; the paper measures warmed-up systems)."""
        value = bytes(value_bytes)
        for i in range(n_keys):
            self.memtable.insert(f"key{i:013d}", value)
        # prefill is warm state, not traffic: don't let it trigger a flush
        self.memtable.byte_size = min(self.memtable.byte_size,
                                      self.memtable_limit // 2)

    # -- cross-rack migration hooks (SteerPlane) -------------------------------
    #: steering keys each actor re-registers with after a move.
    STEERING_KEYS = {
        "consensus": ["consensus", "rkv-put", "rkv-del"],
        "memtable": ["memtable", "rkv-get"],
        "sst_read": ["sst_read"],
        "compaction": ["compaction"],
    }

    def detach(self) -> Dict:
        """Checkpoint for a cross-rack move: the memtable contents.

        The LSM/SSTable state, frozen runs, Paxos log and reply map all
        live on this object and travel with it; only the DMO-resident
        skip list needs re-materialising on the destination runtime.
        """
        return {"memtable": list(self.memtable.items()),
                "bytes": self.memtable.byte_size}

    def attach(self, runtime, state: Dict) -> None:
        """Restore this node's four actors onto a new server's runtime."""
        self.runtime = runtime
        self.node = runtime.node_name
        # the old ExecutionContext points at the abandoned runtime
        self._paxos_ctx = None
        for actor in (self.consensus, self.memtable_actor,
                      self.sst_read, self.compaction):
            actor.deregistered = False
            actor.migration_state = MigrationState.RUNNING
            actor._locked_by = None
            actor.is_drr = False
            actor.deficit = 0.0
            runtime.register_actor(
                actor, steering_keys=self.STEERING_KEYS[actor.name])
        self.memtable = DmoSkipList(runtime.dmo, "memtable")
        for key, value, deleted in state.get("memtable", []):
            if deleted:
                self.memtable.delete(key)
            else:
                self.memtable.insert(key, value)

    # -- paxos transport --------------------------------------------------------
    def _paxos_send(self, peer: str, pmsg: PaxosMessage) -> None:
        ctx = self._paxos_ctx
        if ctx is None:
            return
        ctx.send_remote(peer, "consensus", kind="paxos", payload=pmsg, size=128)

    def _on_commit(self, instance: int, command) -> None:
        """RSM apply: hand the committed command to the Memtable actor."""
        ctx = self._paxos_ctx
        if ctx is None:
            return
        reply_to = self._pending_replies.pop(instance, None)
        ctx.send("memtable", kind="apply",
                 payload={"command": command,
                          "reply_to": reply_to},
                 size=64 + len(command.get("value", b"") or b""))

    # -- consensus actor -----------------------------------------------------------
    def _consensus_handler(self, actor: Actor, msg: Message, ctx):
        self._paxos_ctx = ctx
        yield ctx.compute(profile=CONSENSUS_PROFILE)
        if msg.kind == "paxos":
            self.paxos.handle(msg.payload)
        elif msg.kind == "paxos-tick":
            # liveness repair under lossy fabric: re-propose instances
            # stranded below quorum (see MultiPaxosNode.re_propose_stalled)
            self.paxos.re_propose_stalled()
        else:  # client write/delete
            command = dict(msg.payload)
            command["op"] = "del" if msg.kind == "rkv-del" else "put"
            # register the reply *before* proposing: a single-replica
            # group (quorum 1) commits synchronously inside
            # client_request, and _on_commit must find the client packet
            expected = self.paxos.next_instance
            if msg.packet is not None:
                self._pending_replies[expected] = msg
            instance = self.paxos.client_request(command)
            if instance is None and msg.packet is not None:
                self._pending_replies.pop(expected, None)

    # -- memtable actor ---------------------------------------------------------------
    def _memtable_handler(self, actor: Actor, msg: Message, ctx):
        self._paxos_ctx = self._paxos_ctx or ctx
        yield ctx.compute(profile=MEMTABLE_PROFILE)
        if msg.kind == "apply":
            command = msg.payload["command"]
            if command["op"] == "del":
                self.memtable.delete(command["key"])
            else:
                self.memtable.insert(command["key"], command["value"])
            reply_to = msg.payload.get("reply_to")
            if reply_to is not None:
                ctx.reply(reply_to, payload={"status": "ok"}, size=64)
                self.replies_sent += 1
            if self.memtable.byte_size > self.memtable_limit:
                self._freeze(ctx)
        elif msg.kind == "rkv-get":
            key = msg.payload["key"]
            value = self.memtable.get(key)
            if value is not None or self.memtable.is_tombstoned(key):
                self.reads_served_memtable += 1
                ctx.reply(msg, payload={"status": "ok", "value": value},
                          size=64 + len(value or b""))
                self.replies_sent += 1
                return
            for run_id in sorted(self._frozen_runs, reverse=True):
                for k, v, deleted in self._frozen_runs[run_id]:
                    if k == key:
                        self.reads_served_memtable += 1
                        ctx.reply(msg, payload={
                            "status": "ok",
                            "value": None if deleted else v,
                        }, size=64 + len(v or b""))
                        self.replies_sent += 1
                        return
            ctx.send("sst_read", kind="get", payload=msg.payload,
                     size=msg.size, packet=msg.packet)
        elif msg.kind == "flush_done":
            self._frozen_runs.pop(msg.payload["run_id"], None)

    def _freeze(self, ctx) -> None:
        """Minor compaction: freeze the Memtable and ship it to the host."""
        items = list(self.memtable.items())
        run_id = self._next_run
        self._next_run += 1
        self._frozen_runs[run_id] = items
        size = self.memtable.byte_size
        # reclaim every skip-list DMO before building the fresh memtable —
        # the frozen items were copied out above
        dmo = self.runtime.dmo
        for table in dmo.tables.values():
            for obj in list(table.owned_by("memtable")):
                dmo.free("memtable", obj.object_id)
        self.memtable = DmoSkipList(dmo, "memtable")
        ctx.send("compaction", kind="flush",
                 payload={"run_id": run_id, "items": items}, size=size)

    # -- sst_read actor (host) ----------------------------------------------------------
    def _sst_read_handler(self, actor: Actor, msg: Message, ctx):
        yield ctx.compute(profile=SSTREAD_PROFILE)
        yield from ctx.storage_read()
        key = msg.payload["key"]
        found, value = self.storage.lsm.get(key)
        if found and value is not None:
            self.reads_served_sstable += 1
            status = "ok"
        else:
            self.not_found += 1
            status = "not_found"
            value = None
        if msg.packet is not None:
            ctx.reply(msg, payload={"status": status, "value": value},
                      size=64 + len(value or b""))
            self.replies_sent += 1

    # -- compaction actor (host) ------------------------------------------------------------
    def _compaction_handler(self, actor: Actor, msg: Message, ctx):
        if msg.kind != "flush":
            return
        items = msg.payload["items"]
        run_bytes = sum(len(k) + len(v or b"") for k, v, _ in items)
        yield ctx.compute(profile=COMPACTION_PROFILE,
                          scale=max(len(items), 1) / 1000.0)
        yield from ctx.storage_write(run_bytes)
        self.storage.lsm.flush_run(items)
        while True:
            level = self.storage.lsm.needs_compaction()
            if level is None:
                break
            yield ctx.compute(profile=COMPACTION_PROFILE)
            yield from ctx.storage_write(self.storage.lsm.level_bytes(level))
            self.storage.lsm.compact(level)
        ctx.send("memtable", kind="flush_done",
                 payload={"run_id": msg.payload["run_id"]}, size=64)
