"""Firewall network function (§5.7): software TCAM with wildcard rules.

The paper evaluates an 8K-rule firewall on the LiquidIOII: per-packet
5-tuple lookup against priority-ordered wildcard rules, allow/deny
actions, with processing latency 3.65–19.41µs depending on load.
"""

from __future__ import annotations

from typing import List, Optional

from ...core import Actor, Message
from ...nic.cores import WorkloadProfile
from ...sim import Rng
from ..microbench.tcam import SoftwareTcam, TcamRule, field_mask, pack_key

FIREWALL_PROFILE = WorkloadProfile("firewall", 3.7, 1.3, 1.6)


def generate_ruleset(count: int = 8192, rng: Optional[Rng] = None,
                     allow_fraction: float = 0.5) -> List[TcamRule]:
    """A synthetic wildcard ruleset of the paper's size (8K rules)."""
    rng = rng or Rng(1234)
    rules = []
    wildcard_shapes = [
        (False, True, True, False, False),   # src ip + dst port + proto
        (True, False, True, True, False),    # dst ip + proto
        (False, False, True, True, True),    # src/dst ip pair
        (True, True, True, False, False),    # dst port + proto
    ]
    for i in range(count):
        shape = wildcard_shapes[i % len(wildcard_shapes)]
        value = pack_key(
            rng.randint(0, (1 << 32) - 1), rng.randint(0, (1 << 32) - 1),
            rng.randint(0, 65535), rng.randint(0, 65535),
            rng.choice([6, 17]))
        action = "allow" if rng.random() < allow_fraction else "deny"
        rules.append(TcamRule(value=value, mask=field_mask(shape),
                              priority=count - i, action=action))
    return rules


class Firewall:
    """The NF datapath object: classify → allow/deny counters."""

    def __init__(self, rules: List[TcamRule], default_action: str = "deny"):
        self.tcam = SoftwareTcam()
        self.tcam.install_many(rules)
        self.default_action = default_action
        self.allowed = 0
        self.denied = 0

    def process(self, src_ip: int, dst_ip: int, src_port: int,
                dst_port: int, proto: int) -> str:
        key = pack_key(src_ip, dst_ip, src_port, dst_port, proto)
        rule = self.tcam.lookup(key)
        action = rule.action if rule is not None else self.default_action
        if action == "allow":
            self.allowed += 1
        else:
            self.denied += 1
        return action


class FirewallNode:
    """Firewall as a single iPipe actor on the NIC."""

    def __init__(self, runtime, rules: Optional[List[TcamRule]] = None):
        self.runtime = runtime
        self.firewall = Firewall(rules if rules is not None
                                 else generate_ruleset())
        self.actor = Actor("firewall", self._handler,
                           profile=FIREWALL_PROFILE, concurrent=True)
        runtime.register_actor(self.actor, steering_keys=["firewall", "fw-pkt"])

    def _handler(self, actor: Actor, msg: Message, ctx):
        # per-rule probing cost scales with how deep the match lands; the
        # Table-3 profile is the average for the 8K ruleset
        yield ctx.compute(profile=FIREWALL_PROFILE)
        five_tuple = msg.payload
        action = self.firewall.process(
            five_tuple["src_ip"], five_tuple["dst_ip"],
            five_tuple["src_port"], five_tuple["dst_port"],
            five_tuple["proto"])
        if msg.packet is not None:
            if action == "allow":
                ctx.reply(msg, payload={"action": action}, size=msg.size)
            else:
                ctx.reply(msg, payload={"action": action}, size=64)
