"""IPsec gateway network function (§5.7).

ESP tunnel-mode datapath: AES-256-CTR encryption + SHA-1 (HMAC)
authentication, both executed on the SmartNIC's crypto engines.  The
functional path really encrypts (a software CTR construction over
SHA-256 keystream blocks — the bytes round-trip correctly), while the
virtual-time cost comes from the accelerator models, which is what makes
the NIC competitive with FPGA implementations (8.6/22.9 Gbps on the
10/25GbE cards for 1KB packets).
"""

from __future__ import annotations

import hashlib
import hmac
import struct
from dataclasses import dataclass
from typing import Optional

from ...core import Actor, Message
from ...nic.cores import WorkloadProfile

IPSEC_PROFILE = WorkloadProfile("ipsec", 2.5, 1.1, 0.9)

ESP_HEADER_BYTES = 8      # SPI + sequence
ESP_IV_BYTES = 16
ESP_ICV_BYTES = 12        # truncated HMAC-SHA1


def _keystream(key: bytes, iv: bytes, length: int) -> bytes:
    """CTR keystream from a hash-based PRF (stand-in for the AES engine —
    the accelerator model charges the real AES cost)."""
    blocks = []
    counter = 0
    while sum(len(b) for b in blocks) < length:
        blocks.append(hashlib.sha256(key + iv + struct.pack(">Q", counter)).digest())
        counter += 1
    return b"".join(blocks)[:length]


@dataclass
class EspPacket:
    spi: int
    sequence: int
    iv: bytes
    ciphertext: bytes
    icv: bytes

    @property
    def wire_bytes(self) -> int:
        return (ESP_HEADER_BYTES + len(self.iv) + len(self.ciphertext)
                + len(self.icv))


class IpsecGateway:
    """Encapsulate/decapsulate ESP with authenticated encryption."""

    def __init__(self, key: bytes = b"\x01" * 32, auth_key: bytes = b"\x02" * 20,
                 spi: int = 0x1001):
        if len(key) != 32:
            raise ValueError("AES-256 key must be 32 bytes")
        self.key = key
        self.auth_key = auth_key
        self.spi = spi
        self.sequence = 0
        self.encapsulated = 0
        self.decapsulated = 0
        self.auth_failures = 0
        self.replay_drops = 0
        self._highest_seen = 0

    def _icv(self, header: bytes, iv: bytes, ciphertext: bytes) -> bytes:
        mac = hmac.new(self.auth_key, header + iv + ciphertext, hashlib.sha1)
        return mac.digest()[:ESP_ICV_BYTES]

    def encapsulate(self, plaintext: bytes) -> EspPacket:
        self.sequence += 1
        iv = hashlib.sha256(struct.pack(">QI", self.sequence, self.spi)).digest()[:ESP_IV_BYTES]
        stream = _keystream(self.key, iv, len(plaintext))
        ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
        header = struct.pack(">II", self.spi, self.sequence)
        icv = self._icv(header, iv, ciphertext)
        self.encapsulated += 1
        return EspPacket(spi=self.spi, sequence=self.sequence, iv=iv,
                         ciphertext=ciphertext, icv=icv)

    def decapsulate(self, packet: EspPacket) -> Optional[bytes]:
        """Plaintext, or None on authentication failure / replay."""
        header = struct.pack(">II", packet.spi, packet.sequence)
        expected = self._icv(header, packet.iv, packet.ciphertext)
        if not hmac.compare_digest(expected, packet.icv):
            self.auth_failures += 1
            return None
        if packet.sequence <= self._highest_seen:
            self.replay_drops += 1
            return None
        self._highest_seen = packet.sequence
        stream = _keystream(self.key, packet.iv, len(packet.ciphertext))
        self.decapsulated += 1
        return bytes(c ^ s for c, s in zip(packet.ciphertext, stream))


class IpsecNode:
    """IPsec gateway as an iPipe actor using the AES + SHA-1 engines."""

    def __init__(self, runtime):
        self.runtime = runtime
        self.gateway = IpsecGateway()
        self.actor = Actor("ipsec", self._handler, profile=IPSEC_PROFILE,
                           concurrent=True)
        runtime.register_actor(self.actor, steering_keys=["ipsec", "esp-pkt"])

    def _handler(self, actor: Actor, msg: Message, ctx):
        nbytes = max(len(msg.payload.get("data", b"")), 64)
        yield ctx.compute(profile=IPSEC_PROFILE)
        # crypto engines, batched (implication I4)
        yield from ctx.accelerator("aes", nbytes=nbytes, batch=8)
        yield from ctx.accelerator("sha1", nbytes=nbytes, batch=8)
        if msg.kind == "decap":
            plaintext = self.gateway.decapsulate(msg.payload["esp"])
            if msg.packet is not None:
                ctx.reply(msg, payload={"data": plaintext},
                          size=len(plaintext or b"") + 64)
        else:
            esp = self.gateway.encapsulate(msg.payload["data"])
            if msg.packet is not None:
                ctx.reply(msg, payload={"esp": esp}, size=esp.wire_bytes + 40)
