"""Network functions on iPipe (§5.7): firewall and IPsec gateway."""

from .firewall import Firewall, FirewallNode, generate_ruleset
from .ipsec import EspPacket, IpsecGateway, IpsecNode

__all__ = [
    "Firewall",
    "FirewallNode",
    "generate_ruleset",
    "EspPacket",
    "IpsecGateway",
    "IpsecNode",
]
