"""Pattern-matching filter (§4, per Russ Cox's regexp articles [15]).

A Thompson-construction NFA regex engine supporting the subset the
FlexStorm filter needs: literals, ``.``, character classes ``[abc]`` /
``[a-z]``, alternation ``|``, grouping ``(...)`` and the ``* + ?``
quantifiers.  Simulation of the NFA is the classic lock-step set-of-states
walk — linear time, no backtracking blowup — which is why it suits a
wimpy NIC core.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Set, Tuple

EPSILON = None


class _State:
    _ids = 0

    def __init__(self):
        _State._ids += 1
        self.state_id = _State._ids
        #: list of (predicate, next_state); predicate None = epsilon
        self.edges: List[Tuple[Optional[object], "_State"]] = []
        self.accepting = False


class _Fragment:
    def __init__(self, start: _State, outs: List[_State]):
        self.start = start
        self.outs = outs


class RegexError(ValueError):
    """Malformed pattern."""


class _Parser:
    """Recursive-descent parser building the NFA via Thompson construction."""

    def __init__(self, pattern: str):
        self.pattern = pattern
        self.pos = 0

    def parse(self) -> _Fragment:
        frag = self._alternation()
        if self.pos != len(self.pattern):
            raise RegexError(f"unexpected {self.pattern[self.pos]!r} at {self.pos}")
        return frag

    # grammar: alternation := concat ('|' concat)*
    def _alternation(self) -> _Fragment:
        frag = self._concat()
        while self._peek() == "|":
            self.pos += 1
            right = self._concat()
            start = _State()
            start.edges.append((EPSILON, frag.start))
            start.edges.append((EPSILON, right.start))
            frag = _Fragment(start, frag.outs + right.outs)
        return frag

    def _concat(self) -> _Fragment:
        frags: List[_Fragment] = []
        while self._peek() not in (None, "|", ")"):
            frags.append(self._quantified())
        if not frags:
            state = _State()
            return _Fragment(state, [state])
        result = frags[0]
        for nxt in frags[1:]:
            for out in result.outs:
                out.edges.append((EPSILON, nxt.start))
            result = _Fragment(result.start, nxt.outs)
        return result

    def _quantified(self) -> _Fragment:
        frag = self._atom()
        quant = self._peek()
        if quant == "*":
            self.pos += 1
            start = _State()
            start.edges.append((EPSILON, frag.start))
            for out in frag.outs:
                out.edges.append((EPSILON, start))
            return _Fragment(start, [start])
        if quant == "+":
            self.pos += 1
            loop = _State()
            loop.edges.append((EPSILON, frag.start))
            for out in frag.outs:
                out.edges.append((EPSILON, loop))
            return _Fragment(frag.start, [loop])
        if quant == "?":
            self.pos += 1
            start = _State()
            start.edges.append((EPSILON, frag.start))
            return _Fragment(start, frag.outs + [start])
        return frag

    def _atom(self) -> _Fragment:
        ch = self._peek()
        if ch == "(":
            self.pos += 1
            frag = self._alternation()
            if self._peek() != ")":
                raise RegexError("unbalanced parenthesis")
            self.pos += 1
            return frag
        if ch == "[":
            return self._char_class()
        if ch == ".":
            self.pos += 1
            return self._edge(lambda c: True)
        if ch == "\\":
            self.pos += 1
            literal = self._peek()
            if literal is None:
                raise RegexError("dangling escape")
            self.pos += 1
            return self._edge(lambda c, l=literal: c == l)
        if ch in ("*", "+", "?"):
            raise RegexError(f"quantifier {ch!r} with nothing to repeat")
        self.pos += 1
        return self._edge(lambda c, l=ch: c == l)

    def _char_class(self) -> _Fragment:
        self.pos += 1  # consume '['
        negate = self._peek() == "^"
        if negate:
            self.pos += 1
        allowed: Set[str] = set()
        ranges: List[Tuple[str, str]] = []
        while self._peek() not in (None, "]"):
            start = self.pattern[self.pos]
            self.pos += 1
            if self._peek() == "-" and self.pos + 1 < len(self.pattern) \
                    and self.pattern[self.pos + 1] != "]":
                self.pos += 1
                end = self.pattern[self.pos]
                self.pos += 1
                ranges.append((start, end))
            else:
                allowed.add(start)
        if self._peek() != "]":
            raise RegexError("unterminated character class")
        self.pos += 1

        def predicate(c, allowed=frozenset(allowed), ranges=tuple(ranges),
                      negate=negate):
            hit = c in allowed or any(lo <= c <= hi for lo, hi in ranges)
            return hit != negate

        return self._edge(predicate)

    def _edge(self, predicate) -> _Fragment:
        start = _State()
        end = _State()
        start.edges.append((predicate, end))
        return _Fragment(start, [end])

    def _peek(self) -> Optional[str]:
        return self.pattern[self.pos] if self.pos < len(self.pattern) else None


class Regex:
    """A compiled pattern; ``search`` finds a match anywhere in the text."""

    def __init__(self, pattern: str):
        self.pattern = pattern
        frag = _Parser(pattern).parse()
        accept = _State()
        accept.accepting = True
        for out in frag.outs:
            out.edges.append((EPSILON, accept))
        self.start = frag.start

    @staticmethod
    def _closure(states: Set[_State]) -> FrozenSet[_State]:
        stack = list(states)
        seen = set(states)
        while stack:
            state = stack.pop()
            for predicate, nxt in state.edges:
                if predicate is EPSILON and nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return frozenset(seen)

    def match_here(self, text: str) -> bool:
        """Anchored match: does a prefix of ``text`` match the pattern?"""
        current = self._closure({self.start})
        if any(s.accepting for s in current):
            return True
        for ch in text:
            nxt: Set[_State] = set()
            for state in current:
                for predicate, target in state.edges:
                    if predicate is not EPSILON and predicate(ch):
                        nxt.add(target)
            if not nxt:
                return False
            current = self._closure(nxt)
            if any(s.accepting for s in current):
                return True
        return False

    def search(self, text: str) -> bool:
        """Unanchored match anywhere in the text."""
        for start in range(len(text) + 1):
            if self.match_here(text[start:]):
                return True
        return False


class PatternFilter:
    """The FlexStorm filter worker: drop tuples matching no pattern."""

    def __init__(self, patterns: List[str]):
        self.regexes = [Regex(p) for p in patterns]
        self.passed = 0
        self.discarded = 0

    def interesting(self, text: str) -> bool:
        if any(regex.search(text) for regex in self.regexes):
            self.passed += 1
            return True
        self.discarded += 1
        return False
