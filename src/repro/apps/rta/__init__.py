"""Real-time analytics engine: filter → counter → ranker pipeline."""

from .filter import PatternFilter, Regex, RegexError
from .counter import CounterWorker, SlidingWindowCounter
from .actors import DEFAULT_PATTERNS, RtaWorkerNode

__all__ = [
    "PatternFilter",
    "Regex",
    "RegexError",
    "CounterWorker",
    "SlidingWindowCounter",
    "DEFAULT_PATTERNS",
    "RtaWorkerNode",
]
