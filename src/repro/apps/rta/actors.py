"""Real-time analytics engine as iPipe actors (§4, extending FlexStorm).

Each worker server runs the three-stage pipeline: **filter** (pattern
matching, stateless) → **counter** (sliding window, software-managed
cache) → **ranker** (quicksort top-n, one consolidated DMO).  A topology
mapping table tells every worker where the next stage lives; per-worker
rankers emit their top-n to the aggregated ranker node.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...core import Actor, Location, Message
from ...nic.cores import WorkloadProfile
from ..microbench.topranker import TopRanker
from .counter import CounterWorker
from .filter import PatternFilter

FILTER_PROFILE = WorkloadProfile("rta_filter", 2.0, 1.3, 0.7)
COUNTER_PROFILE = WorkloadProfile("rta_counter", 3.2, 1.4, 0.8)
RANKER_PROFILE = WorkloadProfile("rta_ranker", 34.0, 1.7, 0.1)

DEFAULT_PATTERNS = ["#[a-z]+", "http", "RT"]


class RtaWorkerNode:
    """One analytics worker: filter → counter → ranker actors.

    ``topology`` maps stage name → node that runs the *next* stage; the
    aggregated ranker runs on ``aggregate_node`` (possibly this node).
    """

    def __init__(self, runtime, aggregate_node: Optional[str] = None,
                 patterns: Optional[List[str]] = None, top_n: int = 10,
                 emit_every_us: float = 1_000.0):
        self.runtime = runtime
        self.node = runtime.node_name
        self.aggregate_node = aggregate_node or self.node
        self.topology: Dict[str, str] = {
            "filter": self.node,        # counter is local
            "counter": self.node,       # ranker is local
            "ranker": self.aggregate_node,
        }
        self.filter = PatternFilter(patterns or DEFAULT_PATTERNS)
        self.counter = CounterWorker(emit_every_us=emit_every_us)
        self.ranker = TopRanker(n=top_n)
        self.top: List = []
        self.tuples_in = 0
        self.replies_sent = 0

        self.filter_actor = Actor("filter", self._filter_handler,
                                  profile=FILTER_PROFILE, concurrent=True)
        # counter/ranker state mutations happen atomically after the cost
        # yield, so both actors can serve requests on multiple cores (§3.1:
        # concurrency control is the application's responsibility)
        self.counter_actor = Actor("counter", self._counter_handler,
                                   profile=COUNTER_PROFILE, concurrent=True)
        self.ranker_actor = Actor("ranker", self._ranker_handler,
                                  profile=RANKER_PROFILE, concurrent=True)
        runtime.register_actor(self.filter_actor,
                               steering_keys=["filter", "rta-tuple"])
        runtime.register_actor(self.counter_actor, steering_keys=["counter"])
        runtime.register_actor(self.ranker_actor, steering_keys=["ranker"])
        #: consolidated top-n DMO (one object, §4)
        self.top_dmo = runtime.dmo.malloc("ranker", 4096, data=[])

    # -- filter ---------------------------------------------------------------
    def _filter_handler(self, actor: Actor, msg: Message, ctx):
        yield ctx.compute(profile=FILTER_PROFILE)
        tuples = msg.payload.get("tuples", [])
        self.tuples_in += len(tuples)
        interesting = [t for t in tuples if self.filter.interesting(t)]
        if interesting:
            ctx.send("counter", kind="tuples",
                     payload={"tuples": interesting}, size=msg.size,
                     packet=msg.packet)
        elif msg.packet is not None:
            ctx.reply(msg, payload={"status": "filtered"}, size=64)
            self.replies_sent += 1

    # -- counter ----------------------------------------------------------------
    def _counter_handler(self, actor: Actor, msg: Message, ctx):
        yield ctx.compute(profile=COUNTER_PROFILE)
        emit = False
        for item in msg.payload["tuples"]:
            emit = self.counter.observe(item, ctx.sim.now) or emit
        if emit:
            top_tuples = self.counter.emit(ctx.sim.now)
            target_node = self.topology["ranker"]
            if target_node == self.node:
                ctx.send("ranker", kind="rank",
                         payload={"tuples": top_tuples}, size=256)
            else:
                ctx.send_remote(target_node, "ranker", kind="rank",
                                payload={"tuples": top_tuples}, size=256)
        if msg.packet is not None:
            ctx.reply(msg, payload={"status": "counted"}, size=64)
            self.replies_sent += 1

    # -- ranker --------------------------------------------------------------------
    def _ranker_handler(self, actor: Actor, msg: Message, ctx):
        yield ctx.compute(profile=RANKER_PROFILE)
        tuples = msg.payload["tuples"]
        current = self.runtime.dmo.read("ranker", self.top_dmo.object_id) or []
        merged = self.ranker.merge(current, tuples)
        self.runtime.dmo.write("ranker", self.top_dmo.object_id, merged)
        self.top = merged
