"""Sliding-window counter worker (§4).

Counts tuple occurrences over a sliding time window (ring of sub-window
buckets) and periodically emits (item, windowed-count) tuples downstream
to the ranker.  Backed by a software-managed cache of per-item counts,
matching the paper's description of the counter actor.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple


class SlidingWindowCounter:
    """Ring-buffer sliding window: ``slots`` sub-windows of ``slot_us``."""

    def __init__(self, window_us: float = 10_000.0, slots: int = 10):
        if slots <= 0 or window_us <= 0:
            raise ValueError("window and slots must be positive")
        self.slot_us = window_us / slots
        self.slots = slots
        self._ring: List[Dict[str, int]] = [defaultdict(int) for _ in range(slots)]
        self._slot_start = 0.0
        self._current = 0
        self.observed = 0

    def _advance(self, now: float) -> None:
        while now - self._slot_start >= self.slot_us:
            self._slot_start += self.slot_us
            self._current = (self._current + 1) % self.slots
            self._ring[self._current] = defaultdict(int)

    def observe(self, item: str, now: float, count: int = 1) -> None:
        self._advance(now)
        self._ring[self._current][item] += count
        self.observed += 1

    def count(self, item: str, now: float) -> int:
        self._advance(now)
        return sum(slot.get(item, 0) for slot in self._ring)

    def snapshot(self, now: float) -> List[Tuple[str, int]]:
        """All (item, windowed count) pairs — the periodic emission."""
        self._advance(now)
        totals: Dict[str, int] = defaultdict(int)
        for slot in self._ring:
            for item, count in slot.items():
                totals[item] += count
        return sorted(totals.items(), key=lambda kv: -kv[1])


class CounterWorker:
    """The counter actor's logic: observe, emit every ``emit_every_us``."""

    def __init__(self, window_us: float = 10_000.0,
                 emit_every_us: float = 1_000.0):
        self.window = SlidingWindowCounter(window_us=window_us)
        self.emit_every_us = emit_every_us
        self._last_emit = 0.0
        self.emissions = 0

    def observe(self, item: str, now: float) -> bool:
        """Record the tuple; True when it is time to emit downstream."""
        self.window.observe(item, now)
        if now - self._last_emit >= self.emit_every_us:
            self._last_emit = now
            self.emissions += 1
            return True
        return False

    def emit(self, now: float, limit: int = 32) -> List[Tuple[str, int]]:
        return self.window.snapshot(now)[:limit]
