"""Distributed transactions: OCC + two-phase commit over iPipe actors."""

from .hashtable import Entry, ExtensibleHashTable
from .log import CoordinatorLog, LogSegment
from .occ import LogRecord, TxnCoordinator, TxnMessage, TxnParticipant
from .actors import DtCoordinatorNode, DtParticipantNode

__all__ = [
    "Entry",
    "ExtensibleHashTable",
    "CoordinatorLog",
    "LogSegment",
    "LogRecord",
    "TxnCoordinator",
    "TxnMessage",
    "TxnParticipant",
    "DtCoordinatorNode",
    "DtParticipantNode",
]
