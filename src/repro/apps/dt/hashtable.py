"""Extensible hash table data store (§4, per uthash [22]).

The participants' data store: versioned, lockable entries in a hash table
that doubles its bucket directory when load grows (extensible hashing).
Versions drive OCC validation; locks are per-key write locks held between
phase 1 and commit/abort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass
class Entry:
    key: str
    value: bytes
    version: int = 1
    locked_by: Optional[str] = None


class ExtensibleHashTable:
    """Bucketed hash table with directory doubling at load factor 4."""

    LOAD_FACTOR = 4

    def __init__(self, initial_buckets: int = 8):
        if initial_buckets <= 0 or initial_buckets & (initial_buckets - 1):
            raise ValueError("bucket count must be a positive power of two")
        self._buckets: List[List[Entry]] = [[] for _ in range(initial_buckets)]
        self._count = 0
        self.resizes = 0

    def _bucket(self, key: str) -> List[Entry]:
        return self._buckets[hash(key) & (len(self._buckets) - 1)]

    def _find(self, key: str) -> Optional[Entry]:
        for entry in self._bucket(key):
            if entry.key == key:
                return entry
        return None

    def _maybe_grow(self) -> None:
        if self._count <= len(self._buckets) * self.LOAD_FACTOR:
            return
        old = [e for bucket in self._buckets for e in bucket]
        self._buckets = [[] for _ in range(len(self._buckets) * 2)]
        for entry in old:
            self._bucket(entry.key).append(entry)
        self.resizes += 1

    # -- plain store operations --------------------------------------------
    def get(self, key: str) -> Optional[Tuple[bytes, int]]:
        """(value, version) or None."""
        entry = self._find(key)
        return (entry.value, entry.version) if entry else None

    def put(self, key: str, value: bytes) -> int:
        """Unconditional write; returns the new version."""
        entry = self._find(key)
        if entry is None:
            self._bucket(key).append(Entry(key=key, value=value))
            self._count += 1
            self._maybe_grow()
            return 1
        entry.value = value
        entry.version += 1
        return entry.version

    # -- transactional operations ---------------------------------------------
    def is_locked(self, key: str) -> bool:
        entry = self._find(key)
        return entry is not None and entry.locked_by is not None

    def try_lock(self, key: str, owner: str) -> bool:
        """Acquire the write lock; creates a placeholder entry if absent."""
        entry = self._find(key)
        if entry is None:
            entry = Entry(key=key, value=b"", version=0)
            self._bucket(key).append(entry)
            self._count += 1
            self._maybe_grow()
        if entry.locked_by is not None and entry.locked_by != owner:
            return False
        entry.locked_by = owner
        return True

    def unlock(self, key: str, owner: str) -> None:
        entry = self._find(key)
        if entry is not None and entry.locked_by == owner:
            entry.locked_by = None

    def commit_write(self, key: str, value: bytes, owner: str) -> int:
        """Apply a prepared write and release the lock."""
        entry = self._find(key)
        if entry is None or entry.locked_by != owner:
            raise RuntimeError(f"commit without lock on {key!r}")
        entry.value = value
        entry.version += 1
        entry.locked_by = None
        return entry.version

    def __len__(self) -> int:
        return self._count

    @property
    def buckets(self) -> int:
        return len(self._buckets)
