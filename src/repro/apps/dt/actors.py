"""Distributed transactions as iPipe actors (§4).

* **coordinator** (NIC) — receives client transactions and runs the OCC +
  2PC protocol against the participant actors on other servers; appends
  commit records to its coordinator-log DMO and checkpoints sealed
  segments to the host logging actor.
* **participant** (NIC) — one partition of the extensible-hashtable data
  store, executing read/lock, validate, commit, and abort.
* **logger** (host, pinned) — persists sealed log segments (it must reach
  storage, §4).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...core import Actor, Location, Message
from ...nic.cores import WorkloadProfile
from .hashtable import ExtensibleHashTable
from .log import CoordinatorLog, LogSegment
from .occ import TxnCoordinator, TxnMessage, TxnParticipant

COORD_PROFILE = WorkloadProfile("dt_coordinator", 2.4, 1.3, 0.8)
PART_PROFILE = WorkloadProfile("dt_participant", 2.0, 1.2, 0.9)
LOGGER_PROFILE = WorkloadProfile("dt_logger", 30.0, 0.7, 5.0)


class DtCoordinatorNode:
    """Coordinator-side wiring for one server."""

    def __init__(self, runtime, participant_nodes: List[str],
                 log_segment_bytes: int = 64 * 1024):
        self.runtime = runtime
        self.node = runtime.node_name
        self.participant_nodes = list(participant_nodes)
        self._pending: Dict[int, Message] = {}
        self._ctx = None
        self.replies_sent = 0

        self.log = CoordinatorLog(segment_limit_bytes=log_segment_bytes,
                                  on_checkpoint=self._checkpoint)
        self.coordinator = TxnCoordinator(
            name=self.node, participants=participant_nodes,
            send=self._send_to_participant,
            log_append=self.log.append)
        self.coordinator_actor = Actor(
            "coordinator", self._coordinator_handler,
            profile=COORD_PROFILE, concurrent=True)
        self.logger_actor = Actor(
            "txn_logger", self._logger_handler, profile=LOGGER_PROFILE,
            location=Location.HOST, pinned=True)
        runtime.register_actor(self.coordinator_actor,
                               steering_keys=["coordinator", "dt-txn"])
        runtime.register_actor(self.logger_actor, steering_keys=["txn_logger"])

    def _send_to_participant(self, node: str, tmsg: TxnMessage) -> None:
        if self._ctx is None:
            return
        size = 96 + sum(len(v) for v in tmsg.writes.values())
        self._ctx.send_remote(node, "participant", kind="txn",
                              payload=tmsg, size=size)

    def _checkpoint(self, segment: LogSegment) -> None:
        if self._ctx is None:
            return
        self._ctx.send("txn_logger", kind="checkpoint",
                       payload={"records": len(segment.records)},
                       size=segment.byte_size)

    def _coordinator_handler(self, actor: Actor, msg: Message, ctx):
        self._ctx = ctx
        yield ctx.compute(profile=COORD_PROFILE)
        if msg.kind == "txn":
            self.coordinator.handle(msg.payload)
        else:  # client transaction: {"reads": [...], "writes": {...}}
            reads = msg.payload.get("reads", [])
            writes = msg.payload.get("writes", {})
            client_msg = msg

            def on_done(committed: bool, values, m=client_msg):
                if m.packet is not None and self._ctx is not None:
                    self._ctx.reply(m, payload={
                        "status": "committed" if committed else "aborted",
                        "values": values,
                    }, size=96)
                    self.replies_sent += 1

            self.coordinator.begin(reads, writes, on_done)

    def _logger_handler(self, actor: Actor, msg: Message, ctx):
        yield ctx.compute(profile=LOGGER_PROFILE)
        yield from ctx.storage_write(msg.size)


class DtParticipantNode:
    """Participant-side wiring for one server."""

    def __init__(self, runtime,
                 store: Optional[ExtensibleHashTable] = None):
        self.runtime = runtime
        self.node = runtime.node_name
        self._ctx = None
        self.participant = TxnParticipant(
            name=self.node, send=self._send_to_coordinator, store=store)
        self.participant_actor = Actor(
            "participant", self._participant_handler,
            profile=PART_PROFILE, concurrent=True)
        runtime.register_actor(self.participant_actor,
                               steering_keys=["participant"])

    def _send_to_coordinator(self, node: str, tmsg: TxnMessage) -> None:
        if self._ctx is None:
            return
        size = 96 + sum(len(v or b"") + 8 for v, _ in tmsg.values.values())
        self._ctx.send_remote(node, "coordinator", kind="txn",
                              payload=tmsg, size=size)

    def _participant_handler(self, actor: Actor, msg: Message, ctx):
        self._ctx = ctx
        yield ctx.compute(profile=PART_PROFILE)
        tmsg: TxnMessage = msg.payload
        # replies go back to the coordinator that sent this message
        self.participant.send = lambda _node, reply: self._reply(
            msg.source or tmsg.sender, reply)
        self.participant.handle(tmsg)

    def _reply(self, node: str, tmsg: TxnMessage) -> None:
        if self._ctx is None:
            return
        size = 96 + sum(len(v or b"") + 8 for v, _ in tmsg.values.values())
        self._ctx.send_remote(node, "coordinator", kind="txn",
                              payload=tmsg, size=size)
