"""Coordinator log (§4, per Stamos & Cristian [60]).

The commit-point record store.  The active segment is a DMO on the NIC;
when it reaches its storage limit the coordinator actor migrates the log
object to the host and messages the logging actor to checkpoint it to
persistent storage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .occ import LogRecord


@dataclass
class LogSegment:
    records: List[LogRecord] = field(default_factory=list)
    byte_size: int = 0

    def append(self, record: LogRecord) -> None:
        self.records.append(record)
        self.byte_size += record.byte_size


class CoordinatorLog:
    """Segmented append-only log with a checkpoint callback."""

    def __init__(self, segment_limit_bytes: int = 64 * 1024,
                 on_checkpoint=None):
        if segment_limit_bytes <= 0:
            raise ValueError("segment limit must be positive")
        self.segment_limit = segment_limit_bytes
        self.on_checkpoint = on_checkpoint
        self.active = LogSegment()
        self.checkpointed_segments = 0
        self.records_total = 0

    def append(self, record: LogRecord) -> None:
        self.active.append(record)
        self.records_total += 1
        if self.active.byte_size >= self.segment_limit:
            self.checkpoint()

    def checkpoint(self) -> Optional[LogSegment]:
        """Seal the active segment and hand it to the checkpoint hook."""
        if not self.active.records:
            return None
        sealed, self.active = self.active, LogSegment()
        self.checkpointed_segments += 1
        if self.on_checkpoint is not None:
            self.on_checkpoint(sealed)
        return sealed

    def find(self, txn_id: int) -> Optional[LogRecord]:
        """Recovery lookup in the active segment."""
        for record in reversed(self.active.records):
            if record.txn_id == txn_id:
                return record
        return None
