"""Optimistic concurrency control + two-phase commit (§4, per FaSST [29]).

Message-driven coordinator/participant state machines:

* **Phase 1 (read & lock)** — the coordinator reads the read-set keys and
  locks the write-set keys; any key already locked aborts the transaction.
* **Phase 2 (validation)** — a second read of the read set; a changed
  version or a lock aborts.
* **Phase 3 (log)** — the coordinator appends key/value/version info to
  its coordinator log.  This is the commit point.
* **Phase 4 (commit)** — commit messages update the write-set keys, bump
  versions, release locks; acks complete the transaction.

Like the Paxos module, transport is a callback so the same code runs
under unit tests and over iPipe actors.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from .hashtable import ExtensibleHashTable

SendFn = Callable[[str, "TxnMessage"], None]
_txn_ids = itertools.count(1)


@dataclass
class TxnMessage:
    kind: str                   # read_lock | read_lock_reply | validate |
                                # validate_reply | commit | commit_ack | abort
    txn_id: int
    sender: str
    reads: List[str] = field(default_factory=list)
    writes: Dict[str, bytes] = field(default_factory=dict)
    values: Dict[str, Tuple[Optional[bytes], int]] = field(default_factory=dict)
    ok: bool = True


@dataclass
class LogRecord:
    """A coordinator-log entry: the commit-point record (§4 phase 3)."""

    txn_id: int
    writes: Dict[str, bytes]
    read_versions: Dict[str, int]

    @property
    def byte_size(self) -> int:
        return 32 + sum(len(k) + len(v) + 8 for k, v in self.writes.items())


@dataclass
class _TxnState:
    txn_id: int
    reads: List[str]
    writes: Dict[str, bytes]
    on_done: Callable[[bool, Dict[str, Optional[bytes]]], None]
    phase: int = 1
    participants: Set[str] = field(default_factory=set)
    pending: Set[str] = field(default_factory=set)
    values: Dict[str, Optional[bytes]] = field(default_factory=dict)
    versions: Dict[str, int] = field(default_factory=dict)
    aborted: bool = False


class TxnCoordinator:
    """Runs OCC + 2PC against a set of participant nodes.

    ``owner_of(key)`` maps keys to participant names (static partitioning
    by hash in the full system).  ``log_append(record)`` is the phase-3
    hook — in the actor system it writes the coordinator-log DMO and may
    trigger a checkpoint to the host logging actor.
    """

    def __init__(self, name: str, participants: List[str], send: SendFn,
                 log_append: Optional[Callable[[LogRecord], None]] = None,
                 owner_of: Optional[Callable[[str], str]] = None):
        if not participants:
            raise ValueError("need at least one participant")
        self.name = name
        self.participants = list(participants)
        self.send = send
        self.log_append = log_append
        self.owner_of = owner_of or (
            lambda key: self.participants[hash(key) % len(self.participants)])
        self._txns: Dict[int, _TxnState] = {}
        self.committed = 0
        self.aborted = 0
        self.response_cache: Dict[int, Tuple[bool, Dict[str, Optional[bytes]]]] = {}

    # -- client API ---------------------------------------------------------------
    def begin(self, reads: List[str], writes: Dict[str, bytes],
              on_done: Callable[[bool, Dict[str, Optional[bytes]]], None]) -> int:
        """Start a transaction; ``on_done(committed, read_values)`` fires
        at completion.  Returns the transaction id."""
        txn_id = next(_txn_ids)
        state = _TxnState(txn_id=txn_id, reads=list(reads),
                          writes=dict(writes), on_done=on_done)
        self._txns[txn_id] = state
        by_node: Dict[str, TxnMessage] = {}
        for key in state.reads:
            node = self.owner_of(key)
            by_node.setdefault(node, TxnMessage(
                "read_lock", txn_id, self.name)).reads.append(key)
        for key, value in state.writes.items():
            node = self.owner_of(key)
            by_node.setdefault(node, TxnMessage(
                "read_lock", txn_id, self.name)).writes[key] = value
        state.participants = set(by_node)
        state.pending = set(by_node)
        if not by_node:
            # empty transaction: nothing to read or lock — commit point is
            # still the log append, then complete immediately
            self._log_and_commit(state)
            return txn_id
        for node, msg in by_node.items():
            self.send(node, msg)
        return txn_id

    # -- participant replies ---------------------------------------------------------
    def handle(self, msg: TxnMessage) -> None:
        state = self._txns.get(msg.txn_id)
        if state is None:
            return
        if msg.kind == "read_lock_reply":
            self._on_read_lock_reply(state, msg)
        elif msg.kind == "validate_reply":
            self._on_validate_reply(state, msg)
        elif msg.kind == "commit_ack":
            self._on_commit_ack(state, msg)
        else:
            raise ValueError(f"coordinator got unexpected {msg.kind!r}")

    def _on_read_lock_reply(self, state: _TxnState, msg: TxnMessage) -> None:
        if state.phase != 1:
            return
        if not msg.ok:
            self._abort(state)
            return
        for key, (value, version) in msg.values.items():
            state.values[key] = value
            state.versions[key] = version
        state.pending.discard(msg.sender)
        if state.pending:
            return
        # Phase 2: validate the read set
        state.phase = 2
        read_nodes: Dict[str, TxnMessage] = {}
        for key in state.reads:
            node = self.owner_of(key)
            read_nodes.setdefault(node, TxnMessage(
                "validate", state.txn_id, self.name)).reads.append(key)
        if not read_nodes:       # write-only transaction skips validation
            self._log_and_commit(state)
            return
        state.pending = set(read_nodes)
        for node, vmsg in read_nodes.items():
            self.send(node, vmsg)

    def _on_validate_reply(self, state: _TxnState, msg: TxnMessage) -> None:
        if state.phase != 2:
            return
        if not msg.ok:
            self._abort(state)
            return
        for key, (_value, version) in msg.values.items():
            if state.versions.get(key) != version:
                self._abort(state)
                return
        state.pending.discard(msg.sender)
        if not state.pending:
            self._log_and_commit(state)

    def _log_and_commit(self, state: _TxnState) -> None:
        # Phase 3: log — the commit point.
        state.phase = 3
        record = LogRecord(
            txn_id=state.txn_id, writes=dict(state.writes),
            read_versions={k: state.versions.get(k, 0) for k in state.reads})
        if self.log_append is not None:
            self.log_append(record)
        # Phase 4: commit to the write-set owners.
        state.phase = 4
        write_nodes: Dict[str, TxnMessage] = {}
        for key, value in state.writes.items():
            node = self.owner_of(key)
            write_nodes.setdefault(node, TxnMessage(
                "commit", state.txn_id, self.name)).writes[key] = value
        if not write_nodes:      # read-only transaction
            self._finish(state, committed=True)
            return
        state.pending = set(write_nodes)
        for node, cmsg in write_nodes.items():
            self.send(node, cmsg)

    def _on_commit_ack(self, state: _TxnState, msg: TxnMessage) -> None:
        if state.phase != 4:
            return
        state.pending.discard(msg.sender)
        if not state.pending:
            self._finish(state, committed=True)

    def _abort(self, state: _TxnState) -> None:
        if state.aborted:
            return
        state.aborted = True
        for node in state.participants:
            self.send(node, TxnMessage("abort", state.txn_id, self.name,
                                       writes=dict(state.writes)))
        self._finish(state, committed=False)

    def _finish(self, state: _TxnState, committed: bool) -> None:
        self._txns.pop(state.txn_id, None)
        if committed:
            self.committed += 1
        else:
            self.aborted += 1
        self.response_cache[state.txn_id] = (committed, dict(state.values))
        state.on_done(committed, dict(state.values))


class TxnParticipant:
    """One partition of the data store, executing the participant side."""

    def __init__(self, name: str, send: SendFn,
                 store: Optional[ExtensibleHashTable] = None):
        self.name = name
        self.send = send
        self.store = store or ExtensibleHashTable()
        self.lock_conflicts = 0
        #: Abort tombstones: an ABORT can overtake this txn's still-in-flight
        #: READ_LOCK (message reordering); locking for a known-aborted txn
        #: would leak the locks forever, so remember aborted ids.
        self._aborted: set = set()

    def handle(self, msg: TxnMessage) -> None:
        handler = getattr(self, f"_on_{msg.kind}", None)
        if handler is None:
            raise ValueError(f"participant got unexpected {msg.kind!r}")
        handler(msg)

    def _owner(self, msg: TxnMessage) -> str:
        return f"txn-{msg.txn_id}"

    def _on_read_lock(self, msg: TxnMessage) -> None:
        owner = self._owner(msg)
        if msg.txn_id in self._aborted:
            self.send(msg.sender, TxnMessage(
                "read_lock_reply", msg.txn_id, self.name, ok=False))
            return
        # abort if any requested key is already locked (phase 1 rule)
        conflict = any(self.store.is_locked(k) for k in msg.reads)
        if not conflict:
            for key in msg.writes:
                if not self.store.try_lock(key, owner):
                    conflict = True
                    break
        if conflict:
            self.lock_conflicts += 1
            for key in msg.writes:
                self.store.unlock(key, owner)
            self.send(msg.sender, TxnMessage(
                "read_lock_reply", msg.txn_id, self.name, ok=False))
            return
        values = {}
        for key in msg.reads:
            got = self.store.get(key)
            values[key] = got if got is not None else (None, 0)
        self.send(msg.sender, TxnMessage(
            "read_lock_reply", msg.txn_id, self.name, values=values, ok=True))

    def _on_validate(self, msg: TxnMessage) -> None:
        values = {}
        ok = True
        for key in msg.reads:
            if self.store.is_locked(key):
                ok = False
            got = self.store.get(key)
            values[key] = got if got is not None else (None, 0)
        self.send(msg.sender, TxnMessage(
            "validate_reply", msg.txn_id, self.name, values=values, ok=ok))

    def _on_commit(self, msg: TxnMessage) -> None:
        owner = self._owner(msg)
        for key, value in msg.writes.items():
            self.store.commit_write(key, value, owner)
        self.send(msg.sender, TxnMessage("commit_ack", msg.txn_id, self.name))

    def _on_abort(self, msg: TxnMessage) -> None:
        owner = self._owner(msg)
        self._aborted.add(msg.txn_id)
        for key in msg.writes:
            self.store.unlock(key, owner)
