"""iPipe reproduction: actor-based SmartNIC offload framework (SIGCOMM'19).

Subpackages
-----------
``repro.sim``      discrete-event simulation kernel (µs virtual time)
``repro.net``      packets, links, ToR switch, traffic generators
``repro.nic``      SmartNIC hardware models calibrated to the paper's §2
``repro.host``     host server models and kernel-bypass stack costs
``repro.core``     the iPipe framework: actors, hybrid scheduler, DMO,
                   migration, host<->NIC channels, isolation
``repro.apps``     the paper's applications: replicated KV store (Multi-
                   Paxos + LSM), distributed transactions (OCC+2PC),
                   real-time analytics, and network functions
``repro.baselines`` DPDK host-only and Floem-style comparison systems
``repro.workloads`` request/trace generators shared by the benchmarks
``repro.experiments`` one harness per paper table/figure
"""

__version__ = "1.0.0"
