"""Discrete-event simulation engine.

The engine maintains virtual time in microseconds and a binary heap of
pending events.  Everything in the reproduction — NIC cores, DMA engines,
links, host threads — is either a scheduled callback or a generator-based
:class:`~repro.sim.process.Process` driven by this engine.

The kernel is deliberately small: a time source, an event heap, and a run
loop.  Determinism is guaranteed by breaking ties on (time, sequence
number), so two runs with the same seeds produce identical traces.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

#: Virtual time is expressed in microseconds throughout the code base.
MICROSECOND = 1.0
MILLISECOND = 1_000.0
SECOND = 1_000_000.0


class SimulationError(RuntimeError):
    """Raised for illegal interactions with the simulation kernel."""


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> handle = sim.call_at(5.0, fired.append, "a")
    >>> _ = sim.call_in(1.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: List[Tuple[float, int, "EventHandle"]] = []
        self._seq: int = 0
        self._running = False
        #: observability hooks, set by repro.obs.TracePlane.  Components
        #: check these per event and do nothing while they are None, so
        #: an uninstrumented run costs one attribute read per check.
        self.tracer = None
        self.metrics = None

    @property
    def now(self) -> float:
        """Current virtual time in microseconds."""
        return self._now

    def call_at(self, when: float, fn: Callable[..., Any], *args: Any) -> "EventHandle":
        """Schedule ``fn(*args)`` at absolute virtual time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {when} < now {self._now}"
            )
        handle = EventHandle(when, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, handle))
        return handle

    def call_in(self, delay: float, fn: Callable[..., Any], *args: Any) -> "EventHandle":
        """Schedule ``fn(*args)`` after ``delay`` microseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, fn, *args)

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event heap.

        Runs until the heap is empty, or until virtual time would pass
        ``until`` (in which case time is advanced exactly to ``until``).
        Returns the final virtual time.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            while self._heap:
                when, _seq, handle = self._heap[0]
                if until is not None and when > until:
                    self._now = until
                    return self._now
                heapq.heappop(self._heap)
                if handle.cancelled:
                    continue
                self._now = when
                handle.fire()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
        return self._now

    def step(self) -> bool:
        """Execute a single event.  Returns False when nothing is pending."""
        while self._heap:
            when, _seq, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = when
            handle.fire()
            return True
        return False

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for _, _, h in self._heap if not h.cancelled)


class EventHandle:
    """A scheduled callback that can be cancelled before it fires."""

    __slots__ = ("when", "_fn", "_args", "cancelled", "fired")

    def __init__(self, when: float, fn: Callable[..., Any], args: Tuple[Any, ...]):
        self.when = when
        self._fn = fn
        self._args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        self.cancelled = True

    def fire(self) -> None:
        if not self.cancelled:
            self.fired = True
            self._fn(*self._args)

    def __lt__(self, other: "EventHandle") -> bool:  # heap tiebreak safety
        return id(self) < id(other)
