"""Discrete-event simulation engine.

The engine maintains virtual time in microseconds and a binary heap of
pending events.  Everything in the reproduction — NIC cores, DMA engines,
links, host threads — is either a scheduled callback or a generator-based
:class:`~repro.sim.process.Process` driven by this engine.

The kernel is deliberately small: a time source, an event queue, and a
run loop.  Determinism is guaranteed by breaking ties on (time, sequence
number), so two runs with the same seeds produce identical traces.

Fast path
---------

Five optimisations keep the kernel out of the profile at sweep scale
(see ``docs/PERFORMANCE.md``):

* :meth:`Simulator.post` / :meth:`Simulator.post_at` schedule a bare
  ``(when, seq, fn, args)`` heap entry with no :class:`EventHandle` at
  all — the right call for the vast majority of events (process resumes,
  timeouts, packet deliveries) that are never cancelled and whose handle
  the caller would discard;
* ``pending()`` reads a live-event counter maintained on push/fire/cancel
  instead of scanning the heap (the seed kernel was O(n) per call);
* cancelled events stay in the queue as *tombstones* (lazy cancel) but
  the queue is compacted in place once more than half of it is dead,
  bounding memory in cancellation-heavy workloads (watchdogs, closed-loop
  timeouts);
* fired :class:`EventHandle` objects can be recycled through a free list
  when — and only when — the run loop holds the sole remaining reference
  (checked via ``sys.getrefcount``).  Pooling is **off by default**:
  on chain-shaped workloads the refcount guard plus pool bookkeeping
  costs more than CPython's own allocator (BENCH_sweep.json measured
  0.90M ev/s pooled vs 1.35M unpooled on the ``call_in`` chain), so the
  pool is now opt-in for handle-churn shapes where it measures faster;
* once more than :data:`_WHEEL_THRESHOLD` events are live, the binary
  heap is upgraded in place to a two-level **calendar wheel**
  (:class:`_EventWheel`): O(1) amortised insert into time buckets
  instead of an O(log n) sift, with the active bucket sorted lazily.
  The upgrade is one-way, automatic (``queue="auto"``), and provably
  order-preserving — pop order is exactly the global (when, seq) order,
  so digests and fingerprints are unchanged.  Sparse horizons never
  reach the threshold and stay on the heap (``queue="heap"`` pins the
  heap for benchmarking).

Raw ``post`` entries and handle entries share one queue and one sequence
counter, so interleaving the two APIs preserves the global (time, seq)
tie-break order exactly.
"""

from __future__ import annotations

import heapq
import sys
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Virtual time is expressed in microseconds throughout the code base.
MICROSECOND = 1.0
MILLISECOND = 1_000.0
SECOND = 1_000_000.0

#: Compaction triggers once the queue holds at least this many tombstones
#: *and* they outnumber the live entries (dead fraction > 50%).
_COMPACT_MIN_DEAD = 64

#: Upper bound on the handle free list; beyond this, fired handles are
#: simply released to the garbage collector.
_POOL_CAP = 4096

#: In ``queue="auto"`` mode the heap upgrades to the calendar wheel once
#: this many events are live.  Below the threshold the heap's O(log n)
#: sift is cheap and the wheel's bucket bookkeeping is pure overhead;
#: above it (dense fleet/fabric scenarios) bucketed insert wins.
_WHEEL_THRESHOLD = 4096

#: Bucket sizing target at upgrade time: width is chosen so a bucket
#: holds roughly this many entries of the converted snapshot.
_WHEEL_PER_BUCKET = 16.0


class SimulationError(RuntimeError):
    """Raised for illegal interactions with the simulation kernel."""


class _EventWheel:
    """Two-level calendar queue for dense event horizons.

    Entries are the engine's raw heap tuples — ``(when, seq, fn, args)``
    or ``(when, seq, handle)`` — filed into dict buckets keyed by
    ``int(when / width)``.  Bucket keys live in a small heap; the active
    (earliest) bucket is sorted lazily on activation and consumed
    through an index pointer, and entries that land *in* the active
    bucket go to a side heap consulted on every peek/pop.

    Because ``int(when / width)`` is monotonic in ``when`` and ``seq``
    is unique (tuple comparison never reaches the third element), the
    pop order is exactly the global ``(when, seq)`` heap order — the
    wheel is a drop-in replacement, not an approximation.

    A bounded ``run(until=...)`` may return with the active bucket
    half-consumed; a later ``post_at`` can then file an entry into an
    *earlier* bucket than the active one.  ``_head`` detects that
    (``keys[0] < cur_key``), re-files the active remainder, and
    re-activates from the key heap, so cross-run pushes stay ordered.
    """

    __slots__ = ("width", "buckets", "keys", "cur", "idx", "extra",
                 "cur_key")

    def __init__(self, entries: List[Tuple], now: float):
        times = sorted(entry[0] for entry in entries)
        if times:
            # Robust span: ignore the farthest 10% so a handful of
            # far-future watchdogs cannot inflate the bucket width
            # until every near-term event collapses into one bucket.
            span = times[(9 * len(times)) // 10] - times[0]
        else:
            span = 0.0
        width = span / max(len(entries) / _WHEEL_PER_BUCKET, 1.0)
        self.width = width if width > 0.0 else 1.0
        self.buckets: Dict[int, List[Tuple]] = {}
        self.keys: List[int] = []
        self.cur: List[Optional[Tuple]] = []
        self.idx = 0
        self.extra: List[Tuple] = []
        self.cur_key = -1   # sentinel: times >= 0 so real keys are >= 0
        for entry in entries:
            self.push(entry)

    def push(self, entry: Tuple) -> None:
        key = int(entry[0] / self.width)
        if key == self.cur_key:
            heapq.heappush(self.extra, entry)
            return
        bucket = self.buckets.get(key)
        if bucket is None:
            self.buckets[key] = [entry]
            heapq.heappush(self.keys, key)
        else:
            bucket.append(entry)

    def _activate(self) -> None:
        key = heapq.heappop(self.keys)
        bucket = self.buckets.pop(key)
        bucket.sort()
        self.cur = bucket
        self.idx = 0
        self.cur_key = key

    def _demote(self) -> None:
        """Re-file the active bucket's remainder; an earlier bucket
        appeared (possible only via ``post_at`` between bounded runs)."""
        rest = [entry for entry in self.cur[self.idx:]]
        rest.extend(self.extra)
        self.extra = []
        if rest:
            bucket = self.buckets.get(self.cur_key)
            if bucket is None:
                self.buckets[self.cur_key] = rest
                heapq.heappush(self.keys, self.cur_key)
            else:
                bucket.extend(rest)
        self.cur = []
        self.idx = 0
        self.cur_key = -1

    def _head(self) -> Optional[Tuple]:
        """Earliest entry without removing it (tombstones included)."""
        while True:
            if self.keys and self.keys[0] < self.cur_key:
                self._demote()
                continue
            if self.idx < len(self.cur):
                cur_head = self.cur[self.idx]
                if self.extra and self.extra[0] < cur_head:
                    return self.extra[0]
                return cur_head
            if self.extra:
                return self.extra[0]
            if not self.keys:
                return None
            self._activate()

    def peek(self) -> Optional[float]:
        """Earliest queued timestamp (tombstones included), or None."""
        entry = self._head()
        return entry[0] if entry is not None else None

    def pop(self) -> Tuple:
        """Remove and return the earliest entry (callers peek first)."""
        entry = self._head()
        if entry is None:
            raise IndexError("pop from an empty event wheel")
        if self.idx < len(self.cur) and self.cur[self.idx] is entry:
            self.cur[self.idx] = None
            self.idx += 1
            return entry
        return heapq.heappop(self.extra)

    def compact(self) -> None:
        """Drop cancelled tombstones from every bucket, in place."""
        def live(entries: List[Tuple]) -> List[Tuple]:
            return [entry for entry in entries
                    if len(entry) == 4 or not entry[2].cancelled]

        self.cur = live(self.cur[self.idx:])   # suffix stays sorted
        self.idx = 0
        self.extra = live(self.extra)
        heapq.heapify(self.extra)
        buckets: Dict[int, List[Tuple]] = {}
        for key, entries in self.buckets.items():
            kept = live(entries)
            if kept:
                buckets[key] = kept
        self.buckets = buckets
        self.keys = list(buckets)
        heapq.heapify(self.keys)


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> handle = sim.call_at(5.0, fired.append, "a")
    >>> _ = sim.call_in(1.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']

    ``pooling=True`` enables the :class:`EventHandle` free list.  It is
    off by default: the refcount guard + pool bookkeeping loses to fresh
    allocation on chain-shaped ``call_in`` workloads (see the pooled vs
    unpooled rows in BENCH_sweep.json and docs/PERFORMANCE.md).

    ``queue`` selects the event-queue strategy: ``"auto"`` (default)
    starts on the binary heap and upgrades one-way to the calendar
    wheel once :data:`_WHEEL_THRESHOLD` events are live; ``"heap"``
    pins the heap (used by benchmarks to price the wheel).
    """

    def __init__(self, pooling: bool = False, queue: str = "auto") -> None:
        if queue not in ("auto", "heap"):
            raise SimulationError(f"unknown queue mode: {queue!r}")
        self._now: float = 0.0
        self._heap: List[Tuple] = []
        self._wheel: Optional[_EventWheel] = None
        self._auto = queue == "auto"
        self._seq: int = 0
        self._running = False
        self._live: int = 0      # scheduled, not yet fired or cancelled
        self._dead: int = 0      # cancelled tombstones still in the queue
        self._pool: List["EventHandle"] = []
        self._pooling = pooling
        #: observability hooks, set by repro.obs.TracePlane.  Components
        #: check these per event and do nothing while they are None, so
        #: an uninstrumented run costs one attribute read per check.
        self.tracer = None
        self.metrics = None
        #: correctness hook, set by repro.check.CheckPlane.  The kernel
        #: calls ``checker.on_schedule(when, seq, fn)`` when an event is
        #: pushed and ``checker.after_step(when, seq, fn)`` after each
        #: fired callback — the determinism sanitizer's step digest and
        #: the invariant monitors both hang off this.  While None (the
        #: default) the run loop pays one attribute read per event.
        self.checker = None
        #: periodic-sampling hook, set by repro.obs.pulse.PulsePlane.
        #: The run loop calls ``pulse.after_step(now)`` after each fired
        #: callback; the plane samples lazily when virtual time crosses a
        #: period boundary.  Sampling is passive — it schedules nothing —
        #: so instrumented and uninstrumented runs fire the exact same
        #: event sequence (the sanitizer digests prove it).
        self.pulse = None

    @property
    def now(self) -> float:
        """Current virtual time in microseconds."""
        return self._now

    # -- fast path: handle-free scheduling -----------------------------
    def post_at(self, when: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` at ``when`` with no cancellation handle.

        Roughly twice as fast as :meth:`call_at`; use it whenever the
        event is never cancelled and the handle would be discarded.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {when} < now {self._now}"
            )
        self._seq += 1
        self._live += 1
        wheel = self._wheel
        if wheel is not None:
            wheel.push((when, self._seq, fn, args))
        else:
            heapq.heappush(self._heap, (when, self._seq, fn, args))
            if self._live > _WHEEL_THRESHOLD and self._auto:
                self._upgrade()
        chk = self.checker
        if chk is not None:
            chk.on_schedule(when, self._seq, fn)

    def post(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` after ``delay`` µs; no handle (fast path)."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self.post_at(self._now + delay, fn, *args)

    # -- cancellable scheduling ----------------------------------------
    def call_at(self, when: float, fn: Callable[..., Any], *args: Any) -> "EventHandle":
        """Schedule ``fn(*args)`` at absolute virtual time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {when} < now {self._now}"
            )
        pool = self._pool
        if pool:
            handle = pool.pop()
            handle.when = when
            handle._fn = fn
            handle._args = args
            handle.cancelled = False
            handle.fired = False
        else:
            handle = EventHandle(when, fn, args)
            handle._sim = self
        self._seq += 1
        self._live += 1
        wheel = self._wheel
        if wheel is not None:
            wheel.push((when, self._seq, handle))
        else:
            heapq.heappush(self._heap, (when, self._seq, handle))
            if self._live > _WHEEL_THRESHOLD and self._auto:
                self._upgrade()
        chk = self.checker
        if chk is not None:
            chk.on_schedule(when, self._seq, fn)
        return handle

    def call_in(self, delay: float, fn: Callable[..., Any], *args: Any) -> "EventHandle":
        """Schedule ``fn(*args)`` after ``delay`` microseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, fn, *args)

    def _upgrade(self) -> None:
        """One-way switch from the binary heap to the calendar wheel.

        Entries move verbatim; the wheel pops in (when, seq) order, so
        the switch is invisible to the event schedule (same callbacks,
        same timestamps, same digests).  The heap list is emptied *in
        place*: the run loop's local alias drains and falls through to
        the wheel loop on its next dispatch.
        """
        entries = self._heap[:]
        del self._heap[:]
        self._wheel = _EventWheel(entries, self._now)

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the earliest queued entry, or None when empty.

        Cancelled tombstones are counted — the result is a conservative
        lower bound on the next *live* event, which is exactly what the
        shard executor's lookahead computation needs.
        """
        wheel = self._wheel
        if wheel is not None:
            return wheel.peek()
        heap = self._heap
        return heap[0][0] if heap else None

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event queue.

        Runs until the queue is empty, or until virtual time would pass
        ``until`` (in which case time is advanced exactly to ``until``).
        Returns the final virtual time.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        bounded = until is not None
        try:
            while True:
                if self._wheel is None:
                    if self._drain_heap(until, bounded):
                        break
                    # a callback crossed the wheel threshold: the heap
                    # was emptied in place, continue on the wheel
                    continue
                self._drain_wheel(until, bounded)
                break
            if bounded and until > self._now:
                self._now = until
                pl = self.pulse
                if pl is not None:
                    pl.after_step(until)
        finally:
            self._running = False
        return self._now

    def _drain_heap(self, until: Optional[float], bounded: bool) -> bool:
        """Heap-mode run loop.  Returns True when done (queue empty or
        time bound reached), False when an upgrade emptied the heap and
        the dispatcher should continue on the wheel."""
        # _compact() mutates self._heap in place, so these aliases stay
        # valid across a compaction triggered from inside a callback.
        heap = self._heap
        pool = self._pool
        pooling = self._pooling
        pop = heapq.heappop
        getrefcount = sys.getrefcount
        while heap:
            if bounded and heap[0][0] > until:
                return True
            item = pop(heap)
            if len(item) == 4:          # raw post(): (when, seq, fn, args)
                self._now = item[0]
                self._live -= 1
                item[2](*item[3])
                chk = self.checker
                if chk is not None:
                    chk.after_step(item[0], item[1], item[2])
                pl = self.pulse
                if pl is not None:
                    pl.after_step(self._now)
                continue
            handle = item[2]
            if handle.cancelled:
                self._dead -= 1
                handle._fn = None
                handle._args = ()
                continue
            self._now = item[0]
            seq = item[1]
            item = None     # drop the tuple's handle ref for the
            self._live -= 1  # refcount check below
            handle.fired = True
            handle._fn(*handle._args)
            # The checker sees the bound fn, never the handle: an
            # extra handle reference would defeat the refcount guard.
            chk = self.checker
            if chk is not None:
                chk.after_step(self._now, seq, handle._fn)
            pl = self.pulse
            if pl is not None:
                pl.after_step(self._now)
            # Recycle only when the loop holds the sole reference
            # (local var + getrefcount argument == 2): a handle the
            # caller kept must never be reused for a new event.
            if pooling and getrefcount(handle) == 2 and len(pool) < _POOL_CAP:
                handle._fn = None
                handle._args = ()
                pool.append(handle)
        return self._wheel is None

    def _drain_wheel(self, until: Optional[float], bounded: bool) -> None:
        """Wheel-mode run loop; same event semantics as the heap loop."""
        wheel = self._wheel
        pool = self._pool
        pooling = self._pooling
        getrefcount = sys.getrefcount
        peek = wheel.peek
        pop = wheel.pop
        while True:
            head = peek()
            if head is None:
                return
            if bounded and head > until:
                return
            item = pop()
            if len(item) == 4:          # raw post(): (when, seq, fn, args)
                self._now = item[0]
                self._live -= 1
                item[2](*item[3])
                chk = self.checker
                if chk is not None:
                    chk.after_step(item[0], item[1], item[2])
                pl = self.pulse
                if pl is not None:
                    pl.after_step(self._now)
                continue
            handle = item[2]
            if handle.cancelled:
                self._dead -= 1
                handle._fn = None
                handle._args = ()
                continue
            self._now = item[0]
            seq = item[1]
            item = None     # drop the tuple's handle ref for the
            self._live -= 1  # refcount check below
            handle.fired = True
            handle._fn(*handle._args)
            chk = self.checker
            if chk is not None:
                chk.after_step(self._now, seq, handle._fn)
            pl = self.pulse
            if pl is not None:
                pl.after_step(self._now)
            if pooling and getrefcount(handle) == 2 and len(pool) < _POOL_CAP:
                handle._fn = None
                handle._args = ()
                pool.append(handle)

    def step(self) -> bool:
        """Execute a single event.  Returns False when nothing is pending."""
        if self._wheel is not None:
            return self._step_wheel()
        while self._heap:
            item = heapq.heappop(self._heap)
            if len(item) == 4:
                self._now = item[0]
                self._live -= 1
                item[2](*item[3])
                chk = self.checker
                if chk is not None:
                    chk.after_step(item[0], item[1], item[2])
                pl = self.pulse
                if pl is not None:
                    pl.after_step(self._now)
                return True
            handle = item[2]
            if handle.cancelled:
                self._dead -= 1
                continue
            self._now = item[0]
            self._live -= 1
            handle.fire()
            chk = self.checker
            if chk is not None:
                chk.after_step(item[0], item[1], handle._fn)
            pl = self.pulse
            if pl is not None:
                pl.after_step(self._now)
            return True
        return False

    def _step_wheel(self) -> bool:
        """Single-event execution on the calendar wheel."""
        wheel = self._wheel
        while wheel.peek() is not None:
            item = wheel.pop()
            if len(item) == 4:
                self._now = item[0]
                self._live -= 1
                item[2](*item[3])
                chk = self.checker
                if chk is not None:
                    chk.after_step(item[0], item[1], item[2])
                pl = self.pulse
                if pl is not None:
                    pl.after_step(self._now)
                return True
            handle = item[2]
            if handle.cancelled:
                self._dead -= 1
                continue
            self._now = item[0]
            self._live -= 1
            handle.fire()
            chk = self.checker
            if chk is not None:
                chk.after_step(item[0], item[1], handle._fn)
            pl = self.pulse
            if pl is not None:
                pl.after_step(self._now)
            return True
        return False

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return self._live

    # -- lazy-cancel bookkeeping ---------------------------------------
    def _note_cancel(self) -> None:
        """Called by :meth:`EventHandle.cancel`; maybe compact the queue."""
        self._live -= 1
        self._dead += 1
        if self._dead < _COMPACT_MIN_DEAD:
            return
        total = (self._live + self._dead if self._wheel is not None
                 else len(self._heap))
        if self._dead * 2 > total:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled tombstones and re-heapify/re-file, in place."""
        wheel = self._wheel
        if wheel is not None:
            wheel.compact()
        else:
            self._heap[:] = [entry for entry in self._heap
                             if len(entry) == 4 or not entry[2].cancelled]
            heapq.heapify(self._heap)
        self._dead = 0


class EventHandle:
    """A scheduled callback that can be cancelled before it fires."""

    __slots__ = ("when", "_fn", "_args", "cancelled", "fired", "_sim")

    def __init__(self, when: float, fn: Callable[..., Any], args: Tuple[Any, ...]):
        self.when = when
        self._fn = fn
        self._args = args
        self.cancelled = False
        self.fired = False
        self._sim: Optional[Simulator] = None

    def cancel(self) -> None:
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._note_cancel()

    def fire(self) -> None:
        if not self.cancelled:
            self.fired = True
            self._fn(*self._args)

    def __lt__(self, other: "EventHandle") -> bool:  # heap tiebreak safety
        return id(self) < id(other)
