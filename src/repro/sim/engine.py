"""Discrete-event simulation engine.

The engine maintains virtual time in microseconds and a binary heap of
pending events.  Everything in the reproduction — NIC cores, DMA engines,
links, host threads — is either a scheduled callback or a generator-based
:class:`~repro.sim.process.Process` driven by this engine.

The kernel is deliberately small: a time source, an event heap, and a run
loop.  Determinism is guaranteed by breaking ties on (time, sequence
number), so two runs with the same seeds produce identical traces.

Fast path
---------

Four optimisations keep the kernel out of the profile at sweep scale
(see ``docs/PERFORMANCE.md``):

* :meth:`Simulator.post` / :meth:`Simulator.post_at` schedule a bare
  ``(when, seq, fn, args)`` heap entry with no :class:`EventHandle` at
  all — the right call for the vast majority of events (process resumes,
  timeouts, packet deliveries) that are never cancelled and whose handle
  the caller would discard;
* ``pending()`` reads a live-event counter maintained on push/fire/cancel
  instead of scanning the heap (the seed kernel was O(n) per call);
* cancelled events stay in the heap as *tombstones* (lazy cancel) but the
  heap is compacted in place once more than half of it is dead, bounding
  memory in cancellation-heavy workloads (watchdogs, closed-loop
  timeouts);
* fired :class:`EventHandle` objects are recycled through a free list
  when — and only when — the run loop holds the sole remaining reference
  (checked via ``sys.getrefcount``), so a handle the caller kept is
  never reused for a different event.

Raw ``post`` entries and handle entries share one heap and one sequence
counter, so interleaving the two APIs preserves the global (time, seq)
tie-break order exactly.
"""

from __future__ import annotations

import heapq
import sys
from typing import Any, Callable, List, Optional, Tuple

#: Virtual time is expressed in microseconds throughout the code base.
MICROSECOND = 1.0
MILLISECOND = 1_000.0
SECOND = 1_000_000.0

#: Compaction triggers once the heap holds at least this many tombstones
#: *and* they outnumber the live entries (dead fraction > 50%).
_COMPACT_MIN_DEAD = 64

#: Upper bound on the handle free list; beyond this, fired handles are
#: simply released to the garbage collector.
_POOL_CAP = 4096


class SimulationError(RuntimeError):
    """Raised for illegal interactions with the simulation kernel."""


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> handle = sim.call_at(5.0, fired.append, "a")
    >>> _ = sim.call_in(1.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']

    ``pooling=False`` disables the :class:`EventHandle` free list (every
    ``call_at`` allocates a fresh handle, as the seed kernel did) — used
    by the throughput benchmarks to price the pool.
    """

    def __init__(self, pooling: bool = True) -> None:
        self._now: float = 0.0
        self._heap: List[Tuple] = []
        self._seq: int = 0
        self._running = False
        self._live: int = 0      # scheduled, not yet fired or cancelled
        self._dead: int = 0      # cancelled tombstones still in the heap
        self._pool: List["EventHandle"] = []
        self._pooling = pooling
        #: observability hooks, set by repro.obs.TracePlane.  Components
        #: check these per event and do nothing while they are None, so
        #: an uninstrumented run costs one attribute read per check.
        self.tracer = None
        self.metrics = None
        #: correctness hook, set by repro.check.CheckPlane.  The kernel
        #: calls ``checker.on_schedule(when, seq, fn)`` when an event is
        #: pushed and ``checker.after_step(when, seq, fn)`` after each
        #: fired callback — the determinism sanitizer's step digest and
        #: the invariant monitors both hang off this.  While None (the
        #: default) the run loop pays one attribute read per event.
        self.checker = None
        #: periodic-sampling hook, set by repro.obs.pulse.PulsePlane.
        #: The run loop calls ``pulse.after_step(now)`` after each fired
        #: callback; the plane samples lazily when virtual time crosses a
        #: period boundary.  Sampling is passive — it schedules nothing —
        #: so instrumented and uninstrumented runs fire the exact same
        #: event sequence (the sanitizer digests prove it).
        self.pulse = None

    @property
    def now(self) -> float:
        """Current virtual time in microseconds."""
        return self._now

    # -- fast path: handle-free scheduling -----------------------------
    def post_at(self, when: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` at ``when`` with no cancellation handle.

        Roughly twice as fast as :meth:`call_at`; use it whenever the
        event is never cancelled and the handle would be discarded.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {when} < now {self._now}"
            )
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, (when, self._seq, fn, args))
        chk = self.checker
        if chk is not None:
            chk.on_schedule(when, self._seq, fn)

    def post(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` after ``delay`` µs; no handle (fast path)."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self.post_at(self._now + delay, fn, *args)

    # -- cancellable scheduling ----------------------------------------
    def call_at(self, when: float, fn: Callable[..., Any], *args: Any) -> "EventHandle":
        """Schedule ``fn(*args)`` at absolute virtual time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {when} < now {self._now}"
            )
        pool = self._pool
        if pool:
            handle = pool.pop()
            handle.when = when
            handle._fn = fn
            handle._args = args
            handle.cancelled = False
            handle.fired = False
        else:
            handle = EventHandle(when, fn, args)
            handle._sim = self
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, (when, self._seq, handle))
        chk = self.checker
        if chk is not None:
            chk.on_schedule(when, self._seq, fn)
        return handle

    def call_in(self, delay: float, fn: Callable[..., Any], *args: Any) -> "EventHandle":
        """Schedule ``fn(*args)`` after ``delay`` microseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, fn, *args)

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event heap.

        Runs until the heap is empty, or until virtual time would pass
        ``until`` (in which case time is advanced exactly to ``until``).
        Returns the final virtual time.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        # _compact() mutates self._heap in place, so these aliases stay
        # valid across a compaction triggered from inside a callback.
        heap = self._heap
        pool = self._pool
        pooling = self._pooling
        pop = heapq.heappop
        getrefcount = sys.getrefcount
        bounded = until is not None
        try:
            while heap:
                if bounded and heap[0][0] > until:
                    self._now = until
                    pl = self.pulse
                    if pl is not None:
                        pl.after_step(until)
                    return self._now
                item = pop(heap)
                if len(item) == 4:          # raw post(): (when, seq, fn, args)
                    self._now = item[0]
                    self._live -= 1
                    item[2](*item[3])
                    chk = self.checker
                    if chk is not None:
                        chk.after_step(item[0], item[1], item[2])
                    pl = self.pulse
                    if pl is not None:
                        pl.after_step(self._now)
                    continue
                handle = item[2]
                if handle.cancelled:
                    self._dead -= 1
                    handle._fn = None
                    handle._args = ()
                    continue
                self._now = item[0]
                seq = item[1]
                item = None     # drop the tuple's handle ref for the
                self._live -= 1  # refcount check below
                handle.fired = True
                handle._fn(*handle._args)
                # The checker sees the bound fn, never the handle: an
                # extra handle reference would defeat the refcount guard.
                chk = self.checker
                if chk is not None:
                    chk.after_step(self._now, seq, handle._fn)
                pl = self.pulse
                if pl is not None:
                    pl.after_step(self._now)
                # Recycle only when the loop holds the sole reference
                # (local var + getrefcount argument == 2): a handle the
                # caller kept must never be reused for a new event.
                if pooling and getrefcount(handle) == 2 and len(pool) < _POOL_CAP:
                    handle._fn = None
                    handle._args = ()
                    pool.append(handle)
            if bounded and until > self._now:
                self._now = until
                pl = self.pulse
                if pl is not None:
                    pl.after_step(until)
        finally:
            self._running = False
        return self._now

    def step(self) -> bool:
        """Execute a single event.  Returns False when nothing is pending."""
        while self._heap:
            item = heapq.heappop(self._heap)
            if len(item) == 4:
                self._now = item[0]
                self._live -= 1
                item[2](*item[3])
                chk = self.checker
                if chk is not None:
                    chk.after_step(item[0], item[1], item[2])
                pl = self.pulse
                if pl is not None:
                    pl.after_step(self._now)
                return True
            handle = item[2]
            if handle.cancelled:
                self._dead -= 1
                continue
            self._now = item[0]
            self._live -= 1
            handle.fire()
            chk = self.checker
            if chk is not None:
                chk.after_step(item[0], item[1], handle._fn)
            pl = self.pulse
            if pl is not None:
                pl.after_step(self._now)
            return True
        return False

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return self._live

    # -- lazy-cancel bookkeeping ---------------------------------------
    def _note_cancel(self) -> None:
        """Called by :meth:`EventHandle.cancel`; maybe compact the heap."""
        self._live -= 1
        self._dead += 1
        if self._dead >= _COMPACT_MIN_DEAD and self._dead * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled tombstones and re-heapify, in place."""
        self._heap[:] = [entry for entry in self._heap
                         if len(entry) == 4 or not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._dead = 0


class EventHandle:
    """A scheduled callback that can be cancelled before it fires."""

    __slots__ = ("when", "_fn", "_args", "cancelled", "fired", "_sim")

    def __init__(self, when: float, fn: Callable[..., Any], args: Tuple[Any, ...]):
        self.when = when
        self._fn = fn
        self._args = args
        self.cancelled = False
        self.fired = False
        self._sim: Optional[Simulator] = None

    def cancel(self) -> None:
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._note_cancel()

    def fire(self) -> None:
        if not self.cancelled:
            self.fired = True
            self._fn(*self._args)

    def __lt__(self, other: "EventHandle") -> bool:  # heap tiebreak safety
        return id(self) < id(other)
