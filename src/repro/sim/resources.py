"""Blocking queues and capacity resources for simulation processes.

These mirror the hardware abstractions the paper relies on:

* :class:`Store` — an unbounded (or bounded) FIFO; the shared work queue a
  hardware traffic manager exposes to NIC cores is a ``Store``.
* :class:`Resource` — counted capacity with FIFO waiters (e.g. DMA engine
  channels, accelerator units).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from .engine import SimulationError, Simulator
from .process import Command, Process


class StoreGet(Command):
    __slots__ = ("store",)

    def __init__(self, store: "Store"):
        self.store = store

    def subscribe(self, process: Process) -> None:
        self.store._register_get(process)


class StorePut(Command):
    __slots__ = ("store", "item")

    def __init__(self, store: "Store", item: Any):
        self.store = store
        self.item = item

    def subscribe(self, process: Process) -> None:
        self.store._register_put(process, self.item)


class Store:
    """FIFO queue with blocking ``get`` and optionally-blocking ``put``.

    ``capacity=None`` means unbounded — puts never block (and may be done
    synchronously from callbacks via :meth:`put_nowait`).
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Process] = deque()
        self._putters: Deque[tuple] = deque()

    def __len__(self) -> int:
        return len(self.items)

    # -- process-facing commands ---------------------------------------
    def get(self) -> StoreGet:
        return StoreGet(self)

    def put(self, item: Any) -> StorePut:
        return StorePut(self, item)

    # -- callback-facing immediate operations --------------------------
    def put_nowait(self, item: Any) -> None:
        """Insert an item immediately; raises if the store is full."""
        if self.capacity is not None and len(self.items) >= self.capacity:
            raise SimulationError("store full")
        self.items.append(item)
        self._dispatch()

    def try_get_nowait(self) -> Any:
        """Pop an item if one is present, else return ``None``."""
        if self.items:
            item = self.items.popleft()
            self._admit_putter()
            return item
        return None

    # -- internals ------------------------------------------------------
    def _register_get(self, process: Process) -> None:
        self._getters.append(process)
        self._dispatch()

    def _register_put(self, process: Process, item: Any) -> None:
        if self.capacity is None or len(self.items) < self.capacity:
            self.items.append(item)
            self.sim.post(0.0, process._resume, None)
            self._dispatch()
        else:
            self._putters.append((process, item))

    def _dispatch(self) -> None:
        while self.items and self._getters:
            process = self._getters.popleft()
            item = self.items.popleft()
            self.sim.post(0.0, process._resume, item)
            self._admit_putter()

    def _admit_putter(self) -> None:
        if self._putters and (
            self.capacity is None or len(self.items) < self.capacity
        ):
            process, item = self._putters.popleft()
            self.items.append(item)
            self.sim.post(0.0, process._resume, None)


class ResourceAcquire(Command):
    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        self.resource = resource

    def subscribe(self, process: Process) -> None:
        self.resource._register(process)


class Resource:
    """Counted capacity with FIFO granting.

    Usage inside a process::

        yield resource.acquire()
        try:
            yield Timeout(cost)
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity <= 0:
            raise SimulationError("resource capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Process] = deque()

    def acquire(self) -> ResourceAcquire:
        return ResourceAcquire(self)

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError("release without acquire")
        self.in_use -= 1
        if self._waiters:
            process = self._waiters.popleft()
            self.in_use += 1
            self.sim.post(0.0, process._resume, None)

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def _register(self, process: Process) -> None:
        if self.in_use < self.capacity:
            self.in_use += 1
            self.sim.post(0.0, process._resume, None)
        else:
            self._waiters.append(process)
