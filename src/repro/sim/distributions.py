"""Seeded random distributions used by workload generators.

All randomness in the reproduction flows through :class:`Rng` so every
experiment is reproducible from its seed.  The distributions mirror those
the paper's evaluation uses: Poisson arrivals (§5.4), zipf-distributed keys
with skew 0.99 over 1M keys (§5.1), and exponential / bimodal-2 service
times for the scheduler study (§5.4).
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence

#: Process-global count of draws taken through any :class:`Rng`.  This is
#: the "RNG-stream position" the determinism sanitizer folds into its
#: per-step digest (see ``repro.check.sanitizer``): two replays that drew
#: a different number of seeded variates by the same event index diverge
#: here even when the event timing happens to coincide.  The counter only
#: ever increases; consumers record deltas from a session baseline.
_draws = 0


def rng_draw_count() -> int:
    """Total :class:`Rng` draws taken in this process so far."""
    return _draws


class Rng:
    """A named, seeded random stream."""

    def __init__(self, seed: int = 42):
        self.seed = seed
        self._random = random.Random(seed)

    def fork(self, salt: int) -> "Rng":
        """Derive an independent stream (e.g. one per client)."""
        return Rng(hash((self.seed, salt)) & 0x7FFFFFFF)

    # -- basic draws -----------------------------------------------------
    def uniform(self, lo: float, hi: float) -> float:
        global _draws
        _draws += 1
        return self._random.uniform(lo, hi)

    def randint(self, lo: int, hi: int) -> int:
        global _draws
        _draws += 1
        return self._random.randint(lo, hi)

    def choice(self, seq: Sequence) -> object:
        global _draws
        _draws += 1
        return seq[self._random.randrange(len(seq))]

    def random(self) -> float:
        global _draws
        _draws += 1
        return self._random.random()

    def bytes(self, n: int) -> bytes:
        global _draws
        _draws += 1
        return bytes(self._random.getrandbits(8) for _ in range(n))

    def shuffle(self, seq: List) -> None:
        global _draws
        _draws += 1
        self._random.shuffle(seq)

    # -- interarrival / service time distributions ------------------------
    def exponential(self, mean: float) -> float:
        """Exponential draw; ``mean`` in the caller's unit (µs here)."""
        global _draws
        _draws += 1
        return self._random.expovariate(1.0 / mean)

    def poisson_interarrival(self, rate_per_us: float) -> float:
        """Interarrival gap for a Poisson process with the given rate."""
        global _draws
        _draws += 1
        return self._random.expovariate(rate_per_us)

    def bimodal(self, low: float, high: float, p_high: float = 0.1) -> float:
        """Bimodal-2 service time: ``low`` w.p. 1-p_high, ``high`` otherwise.

        The paper's high-dispersion workload (§5.4) uses b1/b2 pairs such as
        35µs/60µs — modelled as a two-point distribution.
        """
        global _draws
        _draws += 1
        return high if self._random.random() < p_high else low

    def lognormal(self, mean: float, sigma: float = 0.5) -> float:
        """Log-normal with the requested arithmetic mean."""
        global _draws
        _draws += 1
        mu = math.log(mean) - sigma * sigma / 2.0
        return self._random.lognormvariate(mu, sigma)


class ZipfGenerator:
    """Zipf-distributed integers in [0, n) with parameter ``theta``.

    Uses the standard inverse-CDF rejection method of Gray et al. (the same
    construction YCSB uses), which makes draws O(1) after O(n)-free setup —
    important because the paper's keyspace is 1M keys.
    """

    def __init__(self, n: int, theta: float = 0.99, rng: Rng = None):
        if n <= 0:
            raise ValueError("n must be positive")
        if not 0 < theta < 1:
            raise ValueError("theta must lie in (0, 1)")
        self.n = n
        self.theta = theta
        self.rng = rng or Rng(7)
        self._alpha = 1.0 / (1.0 - theta)
        self._zetan = self._zeta(n, theta)
        self._eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (
            1.0 - self._zeta(2, theta) / self._zetan
        )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        # Direct sum for small n; integral approximation for large n keeps
        # setup fast while staying within ~0.1% of the true value.
        if n <= 10_000:
            return sum(1.0 / (i ** theta) for i in range(1, n + 1))
        head = sum(1.0 / (i ** theta) for i in range(1, 10_001))
        tail = ((n ** (1 - theta)) - (10_000 ** (1 - theta))) / (1 - theta)
        return head + tail

    def draw(self) -> int:
        u = self.rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * (self._eta * u - self._eta + 1) ** self._alpha)


def percentile(samples: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile, p in [0, 100]."""
    if not samples:
        raise ValueError("no samples")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    # lo + frac*(hi-lo) is exact when both endpoints are equal, unlike the
    # symmetric weighted form, which can round just outside [lo, hi].
    return ordered[lo] + frac * (ordered[hi] - ordered[lo])
