"""Measurement utilities: EWMA trackers, latency recorders, utilization.

The iPipe runtime's bookkeeping (§3.2.3) tracks per-actor request latency
``µ``, its standard deviation ``σ``, and uses ``µ + 3σ`` as the tail
estimate, all maintained as exponentially weighted moving averages.  The
classes here implement exactly that, plus the plain collectors the
experiment harnesses use to report means and true percentiles.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from .distributions import percentile


class Ewma:
    """Exponentially weighted moving average of a scalar."""

    def __init__(self, alpha: float = 0.1):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must lie in (0, 1]")
        self.alpha = alpha
        self.value: Optional[float] = None

    def update(self, sample: float) -> float:
        if self.value is None:
            self.value = sample
        else:
            self.value += self.alpha * (sample - self.value)
        return self.value

    def get(self, default: float = 0.0) -> float:
        return self.value if self.value is not None else default


class LatencyTracker:
    """EWMA mean/std latency tracker with the paper's µ+3σ tail estimate."""

    def __init__(self, alpha: float = 0.1):
        self.mean = Ewma(alpha)
        self.var = Ewma(alpha)
        self.count = 0

    def record(self, sample: float) -> None:
        self.count += 1
        prev_mean = self.mean.get(sample)
        self.mean.update(sample)
        self.var.update((sample - prev_mean) ** 2)

    @property
    def mu(self) -> float:
        return self.mean.get()

    @property
    def sigma(self) -> float:
        return math.sqrt(max(self.var.get(), 0.0))

    @property
    def tail(self) -> float:
        """The paper's approximate P99: µ + 3σ."""
        return self.mu + 3.0 * self.sigma

    @property
    def dispersion(self) -> float:
        """Dispersion measure used to pick downgrade victims (§3.2.2)."""
        return self.tail


class LatencyRecorder:
    """Exact sample collector for experiment reporting."""

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: List[float] = []

    def record(self, sample: float) -> None:
        self.samples.append(sample)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    def p(self, pct: float) -> float:
        if not self.samples:
            return 0.0
        return percentile(self.samples, pct)

    @property
    def p50(self) -> float:
        return self.p(50)

    @property
    def p99(self) -> float:
        return self.p(99)

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0


class UtilizationTracker:
    """Accumulates busy time for a core; reports utilization over a window."""

    def __init__(self) -> None:
        self.busy_time = 0.0
        self._window_start = 0.0
        self._window_busy = 0.0
        self.ewma = Ewma(alpha=0.3)

    def add_busy(self, duration: float) -> None:
        self.busy_time += duration
        self._window_busy += duration

    def roll_window(self, now: float) -> float:
        """Close the measurement window at ``now`` and return utilization."""
        span = now - self._window_start
        util = (self._window_busy / span) if span > 0 else 0.0
        util = min(util, 1.0)
        self.ewma.update(util)
        self._window_start = now
        self._window_busy = 0.0
        return util

    def utilization(self, elapsed: float) -> float:
        return min(self.busy_time / elapsed, 1.0) if elapsed > 0 else 0.0


class Counter:
    """Named monotonically increasing counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)
