"""Discrete-event simulation kernel (virtual time in microseconds)."""

from .engine import MICROSECOND, MILLISECOND, SECOND, EventHandle, SimulationError, Simulator
from .process import Process, Signal, Timeout, all_of, spawn
from .resources import Resource, Store
from .distributions import Rng, ZipfGenerator, percentile, rng_draw_count
from .faults import FaultKind, FaultPlane, FaultSnapshot, FaultSpec, RecoveryPolicy
from .stats import Counter, Ewma, LatencyRecorder, LatencyTracker, UtilizationTracker

__all__ = [
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "EventHandle",
    "SimulationError",
    "Simulator",
    "Process",
    "Signal",
    "Timeout",
    "all_of",
    "spawn",
    "Resource",
    "Store",
    "Rng",
    "FaultKind",
    "FaultPlane",
    "FaultSnapshot",
    "FaultSpec",
    "RecoveryPolicy",
    "ZipfGenerator",
    "percentile",
    "rng_draw_count",
    "Counter",
    "Ewma",
    "LatencyRecorder",
    "LatencyTracker",
    "UtilizationTracker",
]
