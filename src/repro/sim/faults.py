"""FaultPlane: deterministic fault injection for the NIC/host dataplane.

The runtime detects datapath failures (ring checksums, the DoS watchdog,
quota enforcement) but testing those paths used to rely on monkeypatching
``Channel.nic_send`` and friends.  The FaultPlane replaces that with a
first-class, *seeded* injector that the simulation components consult at
well-defined points:

* ``Link.transmit``       → frame loss / corruption on the wire
* ``Ring.produce``        → torn DMA writes (checksum mismatch on arrival)
* ``Ring.poll``           → consumer-side ring stalls (PCIe hiccups)
* ``NicScheduler``        → NIC core stalls and permanent core failures
* ``IPipeRuntime``        → actor crashes

Faults are declared as :class:`FaultSpec` records and can trigger three
ways, all deterministic for a given seed and event order:

* **stochastic** — ``probability`` per matching event, drawn from a
  per-spec forked :class:`~repro.sim.distributions.Rng` stream;
* **counted** — ``every_nth`` matching event;
* **scheduled** — explicit ``at_us`` times, or a ``period_us`` train
  inside ``[start_us, stop_us)`` (scheduled kinds only).

Every injection is appended to :attr:`FaultPlane.schedule_log` as a
``(time, kind, target)`` tuple, so two runs with the same seed can be
compared for byte-identical fault schedules (deterministic replay).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Tuple

from .distributions import Rng
from .engine import Simulator


class FaultKind:
    """String constants naming every injectable fault."""

    LINK_LOSS = "link_loss"        # frame dropped on the wire
    LINK_CORRUPT = "link_corrupt"  # frame FCS-corrupted, discarded by the MAC
    DMA_TORN = "dma_torn"          # torn DMA write: ring checksum mismatch
    RING_STALL = "ring_stall"      # consumer side of a ring freezes
    CORE_STALL = "core_stall"      # one NIC core stops scheduling temporarily
    CORE_FAIL = "core_fail"        # one NIC core fails permanently
    ACTOR_CRASH = "actor_crash"    # an actor process dies (DMO state survives)
    RACK_DOWN = "rack_down"        # whole rack dark: every server link + ToR


#: kinds decided per matching datapath event (probability / every_nth)
EVENT_KINDS = frozenset({
    FaultKind.LINK_LOSS, FaultKind.LINK_CORRUPT, FaultKind.DMA_TORN,
})
#: kinds fired at explicit virtual times (at_us / period_us)
SCHEDULED_KINDS = frozenset({
    FaultKind.RING_STALL, FaultKind.CORE_STALL, FaultKind.CORE_FAIL,
    FaultKind.ACTOR_CRASH,
})
#: kinds that expand over a whole rack of the wired fabric
RACK_KINDS = frozenset({FaultKind.RACK_DOWN})
ALL_KINDS = EVENT_KINDS | SCHEDULED_KINDS | RACK_KINDS

#: safety valve for unbounded period_us trains
_MAX_PERIODIC_FIRES = 100_000


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: what to break, where, and when.

    ``target`` is an fnmatch pattern matched against the component name
    (link name, ring name, actor name) — except for core faults, where it
    is the core id as a string.  ``node`` restricts scheduled faults to
    one runtime (``None`` = every wired runtime).
    """

    kind: str
    target: str = "*"
    node: Optional[str] = None
    #: stochastic trigger: inject with this probability per matching event
    probability: float = 0.0
    #: counted trigger: inject on every Nth matching event (0 = disabled)
    every_nth: int = 0
    #: scheduled trigger: explicit virtual times in µs
    at_us: Tuple[float, ...] = ()
    #: scheduled trigger: fire every period_us within [start_us, stop_us)
    period_us: float = 0.0
    start_us: float = 0.0
    stop_us: float = float("inf")
    #: for stalls: how long the component stays frozen
    duration_us: float = 0.0
    #: cap on total injections from this spec (None = unlimited)
    max_count: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.every_nth < 0:
            raise ValueError("every_nth must be >= 0")
        if self.kind in RACK_KINDS:
            if self.probability or self.every_nth:
                raise ValueError(
                    f"{self.kind} is scheduled; use at_us, not "
                    f"probability/every_nth")
            if not self.at_us and self.period_us <= 0.0:
                raise ValueError(f"{self.kind} needs at_us or period_us")
            if self.duration_us <= 0.0:
                raise ValueError(f"{self.kind} needs duration_us > 0")
            if (self.period_us > 0.0 and self.stop_us == float("inf")
                    and self.max_count is None):
                raise ValueError(
                    "periodic faults need stop_us or max_count (unbounded)")
        elif self.kind in EVENT_KINDS:
            if self.at_us or self.period_us:
                raise ValueError(
                    f"{self.kind} triggers per event; use probability or "
                    f"every_nth, not at_us/period_us")
            if self.probability == 0.0 and self.every_nth == 0:
                raise ValueError(
                    f"{self.kind} needs probability or every_nth")
        else:
            if self.probability or self.every_nth:
                raise ValueError(
                    f"{self.kind} is scheduled; use at_us or period_us")
            if not self.at_us and self.period_us <= 0.0:
                raise ValueError(f"{self.kind} needs at_us or period_us")
            if (self.period_us > 0.0 and self.stop_us == float("inf")
                    and self.max_count is None):
                raise ValueError(
                    "periodic faults need stop_us or max_count (unbounded)")

    def fire_times(self) -> List[float]:
        """Virtual times at which a scheduled spec fires (sorted)."""
        times = [t for t in self.at_us if self.start_us <= t < self.stop_us]
        if self.period_us > 0.0:
            cap = self.max_count if self.max_count is not None \
                else _MAX_PERIODIC_FIRES
            t = self.start_us
            while t < self.stop_us and len(times) < cap + len(self.at_us):
                times.append(t)
                t += self.period_us
        return sorted(times)


@dataclass
class FaultSnapshot:
    """Telemetry roll-up of everything the FaultPlane injected."""

    injected: Dict[str, int] = field(default_factory=dict)
    schedule_len: int = 0

    @property
    def total(self) -> int:
        return sum(self.injected.values())


class FaultPlane:
    """Seeded fault injector consulted by wired dataplane components.

    Wiring is explicit: call :meth:`wire_link` / :meth:`wire_network` for
    the fabric and :meth:`wire_runtime` (or the finer-grained
    :meth:`wire_channel` / :meth:`wire_dma`) per server.  Add every
    :class:`FaultSpec` *before* wiring runtimes so scheduled faults arm
    correctly; event-triggered specs may be added at any time.
    """

    def __init__(self, sim: Simulator, seed: int = 42,
                 specs: Optional[List[FaultSpec]] = None,
                 component_streams: bool = False):
        self.sim = sim
        self.seed = seed
        self.specs: List[FaultSpec] = []
        self._rngs: List[Rng] = []
        self._matched: List[int] = []      # matching events seen, per spec
        self._injections: List[int] = []   # faults injected, per spec
        #: per-(spec, component) streams: the stochastic/counted decision
        #: for an event depends only on (seed, spec, component, match
        #: ordinal on that component) — not on the global interleaving of
        #: matches across components.  This makes event-fault schedules
        #: decomposition-stable, which is what lets the rack-sharded
        #: executor reproduce the serial schedule exactly (each shard
        #: sees only its own components, in the same per-component
        #: order).  Off by default: the shared-stream mode is pinned by
        #: existing golden fault schedules.
        self._component_streams = component_streams
        self._component_rngs: Dict[Tuple[int, str], Rng] = {}
        self._component_matched: Dict[Tuple[int, str], int] = {}
        self.counts: Dict[str, int] = {}
        #: deterministic-replay record: (time_us, kind, component)
        self.schedule_log: List[Tuple[float, str, str]] = []
        self._runtimes: List[object] = []
        self._links: List[object] = []
        self._rings: List[object] = []
        #: callbacks invoked with ("down"|"up", rack_name) on rack events
        self.rack_listeners: List = []
        self._network = None
        self._armed_rack_specs: set = set()
        for spec in specs or []:
            self.add(spec)

    # -- spec management ------------------------------------------------------
    def add(self, spec: FaultSpec) -> FaultSpec:
        """Register a spec; scheduled kinds arm against wired runtimes."""
        idx = len(self.specs)
        self.specs.append(spec)
        # one independent stream per spec: draws stay aligned no matter
        # how many other specs are consulted in between.  crc32 (not
        # hash()) so the derived seed is stable across processes.
        salt = zlib.crc32(f"fault-{idx}-{spec.kind}".encode())
        self._rngs.append(Rng((self.seed * 1_000_003 + salt) & 0x7FFFFFFF))
        self._matched.append(0)
        self._injections.append(0)
        if spec.kind in SCHEDULED_KINDS:
            for runtime in self._runtimes:
                self._arm_spec(idx, runtime)
        if spec.kind in RACK_KINDS and self._network is not None:
            self._arm_rack_spec(idx)
        return spec

    def _exhausted(self, idx: int) -> bool:
        cap = self.specs[idx].max_count
        return cap is not None and self._injections[idx] >= cap

    def _record(self, idx: int, kind: str, component: str) -> None:
        self._injections[idx] += 1
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.schedule_log.append((round(self.sim.now, 6), kind, component))

    def _decide(self, idx: int, component: Optional[str] = None) -> bool:
        """Event-trigger decision for spec ``idx`` (already matched)."""
        if self._exhausted(idx):
            return False
        spec = self.specs[idx]
        if self._component_streams and component is not None:
            key = (idx, component)
            matched = self._component_matched.get(key, 0) + 1
            self._component_matched[key] = matched
            if spec.every_nth and matched % spec.every_nth == 0:
                return True
            if spec.probability > 0.0:
                rng = self._component_rngs.get(key)
                if rng is None:
                    salt = zlib.crc32(
                        f"fault-{idx}-{spec.kind}-{component}".encode())
                    rng = Rng((self.seed * 1_000_003 + salt) & 0x7FFFFFFF)
                    self._component_rngs[key] = rng
                return rng.random() < spec.probability
            return False
        self._matched[idx] += 1
        if spec.every_nth and self._matched[idx] % spec.every_nth == 0:
            return True
        if spec.probability > 0.0:
            return self._rngs[idx].random() < spec.probability
        return False

    def _event_fault(self, kind: str, component: str) -> bool:
        window_ok = False
        for idx, spec in enumerate(self.specs):
            if spec.kind != kind:
                continue
            if not (spec.start_us <= self.sim.now < spec.stop_us):
                continue
            if not fnmatchcase(component, spec.target):
                continue
            if self._decide(idx, component):
                self._record(idx, kind, component)
                window_ok = True
        return window_ok

    # -- datapath decision points --------------------------------------------
    def frame_fate(self, link_name: str, packet) -> Optional[str]:
        """Consulted by ``Link.transmit``: None, ``"drop"`` or ``"corrupt"``."""
        if self._event_fault(FaultKind.LINK_LOSS, link_name):
            return "drop"
        if self._event_fault(FaultKind.LINK_CORRUPT, link_name):
            return "corrupt"
        return None

    def tear_write(self, ring_name: str) -> bool:
        """Consulted by ``Ring.produce``: corrupt this slot's checksum?"""
        return self._event_fault(FaultKind.DMA_TORN, ring_name)

    # -- wiring ---------------------------------------------------------------
    def wire_link(self, link) -> None:
        link.fault_plane = self
        self._links.append(link)

    def wire_network(self, network) -> None:
        """Wire every link of the fabric currently attached: node
        uplinks, ToR downlinks, and (multi-rack) the ToR↔spine pairs.
        Also arms any rack-level specs against the fabric topology."""
        self._network = network
        for idx, spec in enumerate(self.specs):
            if spec.kind in RACK_KINDS:
                self._arm_rack_spec(idx)
        if hasattr(network, "links"):
            for link in network.links():
                self.wire_link(link)
            return
        for link in network._uplinks.values():
            self.wire_link(link)
        for link in network.switch._egress.values():
            self.wire_link(link)

    def wire_dma(self, dma) -> None:
        dma.fault_plane = self

    def wire_channel(self, channel) -> None:
        for ring in (channel.to_host, channel.to_nic):
            ring.fault_plane = self
            self._rings.append(ring)
        self.wire_dma(channel.to_host.dma)

    def wire_runtime(self, runtime) -> None:
        """Wire a server runtime: channel rings + scheduled-fault arming."""
        self._runtimes.append(runtime)
        runtime.fault_plane = self
        self.wire_channel(runtime.channel)
        for idx, spec in enumerate(self.specs):
            if spec.kind in SCHEDULED_KINDS:
                self._arm_spec(idx, runtime)

    # -- scheduled faults -----------------------------------------------------
    def _arm_spec(self, idx: int, runtime) -> None:
        spec = self.specs[idx]
        if spec.node is not None and spec.node != runtime.node_name:
            return
        for when in spec.fire_times():
            self.sim.call_at(max(when, self.sim.now), self._fire, idx, runtime)

    def _fire(self, idx: int, runtime) -> None:
        if self._exhausted(idx):
            return
        spec = self.specs[idx]
        kind = spec.kind
        if kind == FaultKind.CORE_FAIL:
            core = int(spec.target)
            if runtime.nic_scheduler.fail_core(core):
                self._record(idx, kind, f"{runtime.node_name}.core{core}")
        elif kind == FaultKind.CORE_STALL:
            core = int(spec.target)
            if runtime.nic_scheduler.stall_core(core, spec.duration_us):
                self._record(idx, kind, f"{runtime.node_name}.core{core}")
        elif kind == FaultKind.ACTOR_CRASH:
            if runtime.crash_actor(spec.target):
                self._record(
                    idx, kind, f"{runtime.node_name}.{spec.target}")
        elif kind == FaultKind.RING_STALL:
            for ring in (runtime.channel.to_host, runtime.channel.to_nic):
                if fnmatchcase(ring.name, spec.target):
                    ring.stall(spec.duration_us)
                    self._record(idx, kind, ring.name)

    # -- rack-level faults ----------------------------------------------------
    def rack_down(self, name: str, at_us: float,
                  duration_us: float) -> FaultSpec:
        """Kill a whole rack: every server link + the ToR uplink go dark
        for ``duration_us`` starting at ``at_us`` (one declaration)."""
        return self.add(FaultSpec(kind=FaultKind.RACK_DOWN, target=name,
                                  at_us=(at_us,), duration_us=duration_us))

    def rack_schedule(self) -> List[Tuple[str, float, float]]:
        """Planned rack outages as ``(rack, at_us, duration_us)``, sorted."""
        outages = []
        for spec in self.specs:
            if spec.kind in RACK_KINDS:
                for when in spec.fire_times():
                    outages.append((spec.target, when, spec.duration_us))
        return sorted(outages, key=lambda entry: (entry[1], entry[0]))

    def _arm_rack_spec(self, idx: int) -> None:
        if idx in self._armed_rack_specs:
            return
        self._armed_rack_specs.add(idx)
        # Only the fabric that owns the rack schedules the outage: a
        # rack-sharded run wires one FaultPlane per shard against a
        # single-rack fabric, and the non-owner shards must not emit
        # phantom _fire_rack events (the merged event digest would
        # diverge from the serial run).  The global fabric owns every
        # declared rack, so this gate is a no-op for serial runs.
        switches = getattr(self._network, "switches", None)
        if switches is not None and self.specs[idx].target not in switches:
            return
        for when in self.specs[idx].fire_times():
            self.sim.call_at(max(when, self.sim.now), self._fire_rack, idx)

    def _rack_links(self, rack: str) -> List:
        """Every link touching a rack: node up/downlinks + spine pair."""
        network = self._network
        links = []
        node_rack = getattr(network, "_node_rack", {})
        for name in sorted(n for n, r in node_rack.items() if r == rack):
            links.append(network._uplinks[name])
        tor = getattr(network, "switches", {}).get(rack)
        if tor is not None:
            for name in sorted(tor._egress):
                links.append(tor._egress[name])
            if tor.uplink is not None:
                links.append(tor.uplink)
        spine = getattr(network, "spine", None)
        if spine is not None and rack in spine._egress:
            links.append(spine._egress[rack])
        return links

    def _fire_rack(self, idx: int) -> None:
        """Expand one rack outage into per-link total-loss windows."""
        if self._exhausted(idx) or self._network is None:
            return
        spec = self.specs[idx]
        rack = spec.target
        stop = self.sim.now + spec.duration_us
        for link in self._rack_links(rack):
            self.add(FaultSpec(kind=FaultKind.LINK_LOSS, target=link.name,
                               probability=1.0, start_us=self.sim.now,
                               stop_us=stop))
        self._record(idx, FaultKind.RACK_DOWN, rack)
        for listener in list(self.rack_listeners):
            listener("down", rack)
        self.sim.call_at(stop, self._rack_restore, rack)

    def _rack_restore(self, rack: str) -> None:
        """The outage window expired: log the return and notify."""
        self.schedule_log.append(
            (round(self.sim.now, 6), "rack_up", rack))
        for listener in list(self.rack_listeners):
            listener("up", rack)

    # -- telemetry ------------------------------------------------------------
    def snapshot(self) -> FaultSnapshot:
        return FaultSnapshot(injected=dict(self.counts),
                             schedule_len=len(self.schedule_log))


@dataclass
class RecoveryPolicy:
    """How the runtime restarts crashed / watchdog-killed actors.

    Restarts reuse the migration machinery: messages arriving while the
    actor is down are buffered (phase-1 style) and re-forwarded on
    restart (phase-4 style); the actor's DMO region is never torn down,
    so the restarted actor resumes from DMO-recovered state.
    """

    restart_delay_us: float = 50.0
    backoff_factor: float = 2.0
    restart_crashed: bool = True
    restart_killed: bool = True
    max_restarts: int = 16
