"""Generator-based processes on top of the event engine.

A process is a Python generator that yields *commands*:

* ``Timeout(dt)`` — sleep for ``dt`` microseconds of virtual time.
* ``Waitable``   — any object with ``add_waiter(process)`` semantics
  (:class:`Signal`, a :class:`Process` join, store get/put operations from
  :mod:`repro.sim.resources`).

The yielded waitable resumes the process with ``.send(value)`` once it
completes, mirroring how firmware threads block on hardware queues.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, List, Optional

from .engine import SimulationError, Simulator


class Command:
    """Base class for things a process may yield."""

    def subscribe(self, process: "Process") -> None:
        raise NotImplementedError


class Timeout(Command):
    """Sleep for a fixed amount of virtual time."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = delay
        self.value = value

    def subscribe(self, process: "Process") -> None:
        process.sim.post(self.delay, process._resume, self.value)


class Signal(Command):
    """A one-shot level-triggered event.

    Processes yielding an un-triggered signal block until ``trigger`` is
    called; yielding an already-triggered signal resumes on the next event
    cycle (same virtual time).
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self._waiters: List[Callable[[Any], None]] = []

    def trigger(self, value: Any = None) -> None:
        if self.triggered:
            raise SimulationError("signal already triggered")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for resume in waiters:
            self.sim.post(0.0, resume, value)

    def subscribe(self, process: "Process") -> None:
        if self.triggered:
            process.sim.post(0.0, process._resume, self.value)
        else:
            self._waiters.append(process._resume)


class Process(Command):
    """Drives a generator coroutine against the simulator clock.

    Yield a :class:`Process` from another process to *join* it (block until
    it returns).  The ``StopIteration`` value becomes the join value.
    """

    _ids = 0

    def __init__(self, sim: Simulator, gen: Generator[Command, Any, Any],
                 name: Optional[str] = None):
        Process._ids += 1
        self.sim = sim
        self.gen = gen
        self.name = name or f"process-{Process._ids}"
        self.alive = True
        self.result: Any = None
        self._joiners: List[Callable[[Any], None]] = []
        sim.post(0.0, self._resume, None)

    # -- Command protocol: joining ------------------------------------
    def subscribe(self, process: "Process") -> None:
        if not self.alive:
            process.sim.post(0.0, process._resume, self.result)
        else:
            self._joiners.append(process._resume)

    # -- driver --------------------------------------------------------
    def _resume(self, value: Any) -> None:
        if not self.alive:
            return
        try:
            command = self.gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        if not isinstance(command, Command):
            raise SimulationError(
                f"{self.name} yielded {command!r}, expected a Command"
            )
        command.subscribe(self)

    def _finish(self, result: Any) -> None:
        self.alive = False
        self.result = result
        joiners, self._joiners = self._joiners, []
        for resume in joiners:
            self.sim.post(0.0, resume, result)

    def kill(self) -> None:
        """Terminate the process without resuming it again."""
        if self.alive:
            self.gen.close()
            self._finish(None)


def spawn(sim: Simulator, gen: Generator[Command, Any, Any],
          name: Optional[str] = None) -> Process:
    """Convenience wrapper to start a process."""
    return Process(sim, gen, name=name)


def all_of(sim: Simulator, processes: Iterable[Process]) -> Signal:
    """A signal that triggers once every given process has finished."""
    processes = list(processes)
    done = Signal(sim)
    remaining = [len(processes)]
    if not processes:
        done.trigger([])
        return done
    results: List[Any] = [None] * len(processes)

    def _collect(index: int, value: Any) -> None:
        results[index] = value
        remaining[0] -= 1
        if remaining[0] == 0:
            done.trigger(results)

    for i, proc in enumerate(processes):
        if not proc.alive:
            _collect(i, proc.result)
        else:
            proc._joiners.append(lambda value, i=i: _collect(i, value))
    return done
