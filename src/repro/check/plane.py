"""CheckPlane: one object that turns a simulation self-checking.

Construct it against a :class:`~repro.sim.Simulator` *before* the
runtimes you want monitored, exactly like
:class:`~repro.obs.plane.TracePlane`::

    sim = Simulator()
    plane = CheckPlane(sim)                # monitors on, strict
    runtime = IPipeRuntime(sim, ...)       # auto-registers its monitors
    sim.run()
    assert not plane.violations

Installation is one simulator attribute (``sim.checker``) the engine
checks per event; without a CheckPlane a run pays a single attribute
read per event and nothing else.  Monitors never charge virtual time,
so checked and unchecked runs produce identical results.

Violations carry the active trace context when a tracer is installed
(the enclosing handler span for synchronous Paxos checks, the most
recent open span otherwise), emit a ``check.violation`` instant span
and a ``check.violations`` metric, and — in strict mode (default) —
raise :class:`~repro.check.monitors.InvariantViolation` at the point
of detection.

The same object is the engine-side channel of the determinism
sanitizer: when constructed with a ``recorder``
(:class:`~repro.check.sanitizer.StepRecorder`), every schedule and
every fired event is forwarded into the rolling step digest.
"""

from __future__ import annotations

from typing import List, Optional

from .monitors import (
    ChannelMonitor,
    DmoMonitor,
    InvariantViolation,
    PaxosMonitor,
    PlanMonitor,
    PulseMonitor,
    RingMonitor,
    SchedulerMonitor,
    SteeringMonitor,
    TenantMonitor,
    Violation,
)

#: Default monitor sweep period, in engine events.  Monitors are
#: incremental-cost observers; every-event checking is only worth it in
#: targeted tests (pass ``every=1``).
DEFAULT_EVERY = 256


class CheckPlane:
    """Owns the invariant monitors (and optional sanitizer channel) for
    one simulator."""

    def __init__(self, sim, every: int = DEFAULT_EVERY, strict: bool = True,
                 recorder=None, sim_index: int = 0, monitors: bool = True):
        self.sim = sim
        self.every = max(int(every), 1)
        self.strict = strict
        self.recorder = recorder
        self.sim_index = sim_index
        self.monitors_enabled = monitors
        self.monitors: List = []
        self.violations: List[Violation] = []
        self._disabled: set = set()
        self._tick = self.every
        self._paxos: Optional[PaxosMonitor] = None
        self._steering: Optional[SteeringMonitor] = None
        self._pulse: Optional[PulseMonitor] = None
        self._plan: Optional[PlanMonitor] = None
        self._tenancy: Optional[TenantMonitor] = None
        sim.checker = self

    def uninstall(self) -> None:
        """Detach from the simulator (recorded violations are kept)."""
        if getattr(self.sim, "checker", None) is self:
            self.sim.checker = None

    # -- engine hook (called by Simulator.run/step) -----------------------
    def on_schedule(self, when: float, seq: int, fn) -> None:
        rec = self.recorder
        if rec is not None:
            rec.on_schedule(self.sim_index, self.sim._running, when, seq, fn)

    def after_step(self, when: float, seq: int, fn) -> None:
        rec = self.recorder
        if rec is not None:
            rec.after_step(self.sim_index, when, seq, fn)
        if self.monitors and self.monitors_enabled:
            self._tick -= 1
            if self._tick <= 0:
                self._tick = self.every
                self.check_now()

    # -- monitor management ----------------------------------------------
    def add_monitor(self, monitor) -> None:
        self.monitors.append(monitor)

    def enable(self, name: str) -> None:
        """Re-enable a monitor family by name (e.g. ``"scheduler"``)."""
        self._disabled.discard(name)

    def disable(self, name: str) -> None:
        """Toggle off every monitor with this name."""
        self._disabled.add(name)

    def wire_runtime(self, runtime) -> None:
        """Attach the full monitor set for one IPipeRuntime.

        Called automatically from ``IPipeRuntime.__init__`` when the
        runtime's simulator already carries this CheckPlane.
        """
        if not self.monitors_enabled:
            return
        self.add_monitor(SchedulerMonitor(runtime.nic_scheduler))
        self.add_monitor(DmoMonitor(runtime.dmo,
                                    component=runtime.node_name))
        self.add_monitor(RingMonitor(runtime.channel.to_host))
        self.add_monitor(RingMonitor(runtime.channel.to_nic))
        if runtime.rchannel is not None:
            self.add_monitor(ChannelMonitor(runtime.rchannel))

    def watch_paxos(self, group: str, *nodes) -> PaxosMonitor:
        """Watch a Paxos replica group for conflicting chosen values."""
        if self._paxos is None:
            self._paxos = PaxosMonitor(plane=self)
            self.add_monitor(self._paxos)
        for node in nodes:
            self._paxos.watch(group, node)
        return self._paxos

    def watch_steering(self, controller) -> SteeringMonitor:
        """Watch a SteeringController for ownership/affinity/exactly-once
        violations (one monitor per plane; repeat calls return it)."""
        if self._steering is None:
            self._steering = SteeringMonitor(controller)
            self.add_monitor(self._steering)
        return self._steering

    def watch_plan(self, server: str, runtime, placements) -> PlanMonitor:
        """Watch one runtime's planned actor placement (one monitor per
        plane; repeat calls register more runtimes on it)."""
        if self._plan is None:
            self._plan = PlanMonitor()
            self.add_monitor(self._plan)
        self._plan.watch(server, runtime, placements)
        return self._plan

    def watch_tenancy(self, server: str, runtime) -> TenantMonitor:
        """Watch one runtime's tenant ledgers (one monitor per plane;
        repeat calls register more runtimes on it)."""
        if self._tenancy is None:
            self._tenancy = TenantMonitor()
            self.add_monitor(self._tenancy)
        self._tenancy.watch(server, runtime)
        return self._tenancy

    def watch_pulse(self, pulse) -> PulseMonitor:
        """Watch a PulsePlane for passivity/lattice/accounting violations
        (one monitor per plane; repeat calls return it)."""
        if self._pulse is None:
            self._pulse = PulseMonitor(pulse)
            self.add_monitor(self._pulse)
        return self._pulse

    # -- checking ---------------------------------------------------------
    def check_now(self) -> None:
        """Run every enabled monitor once, immediately."""
        now = self.sim.now
        for monitor in self.monitors:
            if monitor.name in self._disabled:
                continue
            for message in monitor.check(now):
                self.report(monitor, message)

    def report(self, monitor, message: str, component: str = "") -> None:
        """Record one violation (and raise it when strict)."""
        trace_ctx = None
        tracer = getattr(self.sim, "tracer", None)
        if tracer is not None:
            open_spans = tracer.open_spans
            if open_spans:
                trace_ctx = open_spans[-1].ctx
        violation = Violation(
            monitor=monitor.name,
            component=component or getattr(monitor, "component", ""),
            message=message,
            time_us=self.sim.now,
            trace=trace_ctx,
        )
        self.violations.append(violation)
        if tracer is not None:
            tracer.instant(f"violation:{monitor.name}", "check.violation",
                           trace=trace_ctx, node=violation.component,
                           track="check", monitor=monitor.name,
                           message=message)
        metrics = getattr(self.sim, "metrics", None)
        if metrics is not None:
            metrics.counter("check.violations").inc(self.sim.now)
        if self.strict:
            raise InvariantViolation(violation)
