"""Determinism sanitizer: replay a run and localize the first divergence.

The repo's core claim is that calibrated DES runs are bit-identical
across replays (docs/PERFORMANCE.md).  Fingerprint tests prove the
*results* match; this module finds the *source* when they don't.

Mechanism
---------

:class:`SanitizerSession` is a context manager that instruments every
:class:`~repro.sim.Simulator` constructed inside it (experiments build
their simulators internally, so the session patches the constructor
rather than requiring one to be passed in).  Each fired event appends to
a rolling CRC-32 digest over::

    (sim index, event time, sequence number, callback id, RNG position)

where the callback id is the callback's ``module:qualname`` (stable
across replays, unlike object ids) and the RNG position is the count of
:class:`~repro.sim.Rng` draws since the session started.  Because the
digest is rolling, the per-step digest list has the prefix property:
two replays agree up to exactly the first divergent event, so
:func:`first_divergence` finds it by binary search and the report names
the offending callback, its scheduling parent, and any hazards recorded
during the run.

Two hazard guards run alongside the digest:

* **wall-clock / module-random guards** — ``time.time`` (and friends)
  and the module-level ``random`` functions are wrapped for the duration
  of the session; a call made while any instrumented simulator is
  running is recorded as a :class:`Hazard` and attributed to the event
  executing at that step.  Seeded ``random.Random`` instances (what
  :class:`~repro.sim.Rng` wraps) are untouched.
* **tie guard** — when one event schedules two or more events for the
  same timestamp with the same callback on the same receiver, their
  relative order is fixed only by insertion order (the (time, seq)
  tie-break).  That is deterministic *within* a process but fragile
  under refactoring — typically it means iteration over an unordered
  container chose the order — so the pair is recorded as a
  :class:`TieWarning` (advisory, not a failure; the static
  ``repro lint`` rule bans the unordered sources themselves).

:func:`replay_check` packages the whole protocol: run a callable N
times under fresh sessions and compare the digests.
"""

from __future__ import annotations

import functools
import random as _random
import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Tuple
from zlib import crc32

from ..sim.distributions import rng_draw_count
from ..sim.engine import Simulator
from .monitors import Violation
from .plane import DEFAULT_EVERY, CheckPlane


def callback_id(fn: Any) -> str:
    """Stable identity for an event callback: ``module:qualname``.

    Bound methods, plain functions, closures and ``functools.partial``
    wrappers all resolve to names that survive a replay; object ids and
    memory addresses never enter the digest.
    """
    while isinstance(fn, functools.partial):
        fn = fn.func
    qual = getattr(fn, "__qualname__", None)
    if qual is None:                       # callable object
        qual = type(fn).__qualname__
        mod = type(fn).__module__ or ""
    else:
        mod = getattr(fn, "__module__", "") or ""
    return f"{mod}:{qual}"


def _receiver_key(fn: Any) -> int:
    """Within-run identity of the callback's receiver (for tie grouping
    only — never part of the digest)."""
    while isinstance(fn, functools.partial):
        fn = fn.func
    target = getattr(fn, "__self__", None)
    return id(target) if target is not None else id(fn)


class StepRecord(NamedTuple):
    """What the digest saw for one fired event."""

    sim: int
    when: float
    seq: int
    callback: str
    rng_pos: int
    #: callback id of the event that scheduled this one ("<setup>" for
    #: events posted before the run loop started)
    parent: str


@dataclass
class Hazard:
    """A nondeterminism hazard observed inside simulation context."""

    kind: str                  # "wall-clock" | "module-random"
    detail: str                # e.g. "time.time", "random.random"
    step: int                  # event index during which the call happened
    sim_time: float
    callback: Optional[str] = None   # filled in when the step completes

    def __str__(self) -> str:
        who = self.callback or "<unattributed>"
        return (f"{self.kind} hazard: {self.detail}() called at "
                f"t={self.sim_time:.2f}µs (step {self.step}) inside {who}")


@dataclass
class TieWarning:
    """Same-timestamp siblings whose order is fixed only by insertion."""

    when: float
    callback: str
    scheduled_by: str
    step: int

    def __str__(self) -> str:
        return (f"insertion-order tie: {self.scheduled_by} scheduled "
                f">=2 events for t={self.when:.2f}µs on the same receiver "
                f"({self.callback}); their order rests on the seq "
                f"tie-break alone")


class StepRecorder:
    """Accumulates the rolling digest (and optionally full records) for
    every simulator in one sanitizer session."""

    def __init__(self, keep_records: bool = True):
        self.digest = 0
        self.hashes: List[int] = []
        self.keep_records = keep_records
        self.records: List[StepRecord] = []
        self.hazards: List[Hazard] = []
        self.ties: List[TieWarning] = []
        self._rng_base = rng_draw_count()
        self._parents: Dict[Tuple[int, int], str] = {}
        #: schedules made during the currently-executing event, awaiting
        #: parent attribution: (sim, when, seq, callback id, receiver)
        self._pending: List[Tuple[int, float, int, str, int]] = []

    @property
    def steps(self) -> int:
        return len(self.hashes)

    def on_schedule(self, sim_index: int, running: bool, when: float,
                    seq: int, fn: Any) -> None:
        if not running:
            # posted from setup code, before any event executes
            if self.keep_records:
                self._parents[(sim_index, seq)] = "<setup>"
            return
        self._pending.append(
            (sim_index, when, seq, callback_id(fn), _receiver_key(fn)))

    def after_step(self, sim_index: int, when: float, seq: int,
                   fn: Any) -> None:
        cb = callback_id(fn)
        pos = rng_draw_count() - self._rng_base
        step = len(self.hashes)
        self.digest = crc32(
            f"{sim_index}|{when!r}|{seq}|{cb}|{pos}".encode(),
            self.digest) & 0xFFFFFFFF
        self.hashes.append(self.digest)
        if self.keep_records:
            parent = self._parents.pop((sim_index, seq), "<unknown>")
            self.records.append(
                StepRecord(sim_index, when, seq, cb, pos, parent))
        if self._pending:
            # attribute this step's schedules, and flag insertion-order
            # ties among them (same time + callback + receiver)
            seen: Dict[Tuple[int, float, str, int], int] = {}
            for (s_sim, s_when, s_seq, s_cb, s_recv) in self._pending:
                if self.keep_records:
                    self._parents[(s_sim, s_seq)] = cb
                key = (s_sim, s_when, s_cb, s_recv)
                count = seen.get(key, 0) + 1
                seen[key] = count
                if count == 2:
                    self.ties.append(TieWarning(
                        when=s_when, callback=s_cb, scheduled_by=cb,
                        step=step))
            self._pending.clear()
        for hazard in self.hazards:
            if hazard.callback is None and hazard.step == step:
                hazard.callback = cb

    def note_hazard(self, kind: str, detail: str, sim_time: float) -> None:
        self.hazards.append(Hazard(kind=kind, detail=detail,
                                   step=len(self.hashes),
                                   sim_time=sim_time))


#: Wall-clock entry points guarded during a session.  ``perf_counter``
#: is deliberately absent: it is the sanctioned benchmarking clock
#: (allowlisted in exec/) and never a virtual-time input.
_WALL_CLOCK_FNS = ("time", "time_ns", "monotonic", "monotonic_ns")

#: Module-level random functions guarded during a session (all drive the
#: hidden, globally-shared generator; seeded Random instances do not).
_MODULE_RANDOM_FNS = (
    "random", "uniform", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "expovariate", "gauss", "normalvariate",
    "lognormvariate", "betavariate", "triangular", "getrandbits",
)


class SanitizerSession:
    """Instrument every Simulator constructed inside a ``with`` block.

    Not reentrant.  Restores ``Simulator.__init__`` and the guarded
    ``time``/``random`` module functions on exit, even on error.
    """

    def __init__(self, keep_records: bool = True,
                 guard_hazards: bool = True, monitors: bool = False,
                 strict: bool = False, every: int = 256):
        self.recorder = StepRecorder(keep_records=keep_records)
        self.guard_hazards = guard_hazards
        self.monitors = monitors
        self.strict = strict
        self.every = every
        self.planes: List[CheckPlane] = []
        self.sims: List[Simulator] = []
        self._saved_init: Optional[Callable] = None
        self._saved_guards: List[Tuple[Any, str, Any]] = []
        self._active = False

    # -- context management ----------------------------------------------
    def __enter__(self) -> "SanitizerSession":
        if self._active:
            raise RuntimeError("SanitizerSession is not reentrant")
        self._active = True
        session = self
        saved_init = Simulator.__init__
        self._saved_init = saved_init

        @functools.wraps(saved_init)
        def instrumented_init(sim, *args, **kwargs):
            saved_init(sim, *args, **kwargs)
            index = len(session.sims)
            session.sims.append(sim)
            session.planes.append(CheckPlane(
                sim, every=session.every, strict=session.strict,
                recorder=session.recorder, sim_index=index,
                monitors=session.monitors))

        Simulator.__init__ = instrumented_init
        if self.guard_hazards:
            self._install_guards()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._saved_init is not None:
            Simulator.__init__ = self._saved_init
            self._saved_init = None
        self._remove_guards()
        for plane in self.planes:
            plane.uninstall()
        self._active = False
        return False

    # -- hazard guards ----------------------------------------------------
    def _in_sim_context(self) -> bool:
        return any(sim._running for sim in self.sims)

    def _sim_now(self) -> float:
        return max((sim._now for sim in self.sims if sim._running),
                   default=0.0)

    def _guard(self, module, name: str, kind: str) -> None:
        real = getattr(module, name, None)
        if real is None:
            return
        session = self
        detail = f"{module.__name__}.{name}"

        @functools.wraps(real)
        def guarded(*args, **kwargs):
            if session._in_sim_context():
                session.recorder.note_hazard(kind, detail,
                                             session._sim_now())
            return real(*args, **kwargs)

        self._saved_guards.append((module, name, real))
        setattr(module, name, guarded)

    def _install_guards(self) -> None:
        for name in _WALL_CLOCK_FNS:
            self._guard(_time, name, "wall-clock")
        for name in _MODULE_RANDOM_FNS:
            self._guard(_random, name, "module-random")

    def _remove_guards(self) -> None:
        while self._saved_guards:
            module, name, real = self._saved_guards.pop()
            setattr(module, name, real)


def first_divergence(a: List[int], b: List[int]) -> int:
    """Index of the first differing rolling digest (binary search).

    Rolling digests have the prefix property — once two replays diverge
    they never re-agree — so equality at index ``m`` means the first
    divergence lies strictly after ``m``.  Returns ``min(len(a),
    len(b))`` when one list is a prefix of the other.
    """
    lo, hi = 0, min(len(a), len(b))
    while lo < hi:
        mid = (lo + hi) // 2
        if a[mid] == b[mid]:
            lo = mid + 1
        else:
            hi = mid
    return lo


@dataclass
class CheckResult:
    """Outcome of an N-replay determinism check."""

    replays: int
    steps: List[int]
    digests: List[int]
    divergent_step: Optional[int] = None
    divergent_replay: Optional[int] = None
    expected: Optional[StepRecord] = None
    actual: Optional[StepRecord] = None
    hazards: List[Hazard] = field(default_factory=list)
    ties: List[TieWarning] = field(default_factory=list)
    #: invariant-monitor violations (only populated when ``replay_check``
    #: ran with ``monitors=True``)
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every replay produced an identical event stream and
        no nondeterminism hazard or invariant violation was observed."""
        return (self.divergent_step is None and not self.hazards
                and not self.violations)

    @property
    def deterministic(self) -> bool:
        return self.divergent_step is None

    def describe(self) -> str:
        lines = [
            f"replays: {self.replays}  "
            f"steps: {'/'.join(str(s) for s in self.steps)}  "
            f"digests: {'/'.join(f'{d:08x}' for d in self.digests)}"
        ]
        if self.divergent_step is None:
            lines.append("determinism: OK (all replays bit-identical)")
        else:
            lines.append(
                f"determinism: FAILED — replay {self.divergent_replay} "
                f"diverged from replay 0 at event {self.divergent_step}")
            if self.expected is not None:
                lines.append(
                    f"  replay 0 event {self.divergent_step}: "
                    f"t={self.expected.when:.3f}µs seq={self.expected.seq} "
                    f"cb={self.expected.callback} "
                    f"rng_pos={self.expected.rng_pos} "
                    f"(scheduled by {self.expected.parent})")
            if self.actual is not None:
                lines.append(
                    f"  replay {self.divergent_replay} event "
                    f"{self.divergent_step}: "
                    f"t={self.actual.when:.3f}µs seq={self.actual.seq} "
                    f"cb={self.actual.callback} "
                    f"rng_pos={self.actual.rng_pos} "
                    f"(scheduled by {self.actual.parent})")
            if self.expected is not None and self.actual is None:
                lines.append(
                    f"  replay {self.divergent_replay} ended before "
                    f"event {self.divergent_step}")
        if self.violations:
            lines.append(f"invariant violations: {len(self.violations)}")
            for violation in self.violations[:10]:
                lines.append(f"  [{violation.monitor}] "
                             f"{violation.component or '-'}: "
                             f"{violation.message} "
                             f"(t={violation.time_us:.2f}µs)")
            if len(self.violations) > 10:
                lines.append(f"  ... {len(self.violations) - 10} more")
        if self.hazards:
            lines.append(f"hazards: {len(self.hazards)}")
            for hazard in self.hazards[:10]:
                lines.append(f"  {hazard}")
            if len(self.hazards) > 10:
                lines.append(f"  ... {len(self.hazards) - 10} more")
        if self.ties:
            lines.append(
                f"tie warnings (advisory): {len(self.ties)} "
                f"same-timestamp sibling group(s)")
            for tie in self.ties[:5]:
                lines.append(f"  {tie}")
            if len(self.ties) > 5:
                lines.append(f"  ... {len(self.ties) - 5} more")
        return "\n".join(lines)


def replay_check(run_fn: Callable[[], Any], replays: int = 2,
                 keep_records: bool = True,
                 guard_hazards: bool = True,
                 monitors: bool = False,
                 every: int = DEFAULT_EVERY) -> CheckResult:
    """Run ``run_fn`` N times under fresh sanitizer sessions and compare.

    ``run_fn`` must be self-contained (build its own simulators and
    seeds); anything it constructs inside the call is instrumented.
    With ``monitors=True`` the runtime invariant monitors also sweep
    every ``every`` events (non-strict: violations are collected on the
    result instead of raised).  Returns a :class:`CheckResult`;
    ``result.ok`` is False when any replay's event stream diverged from
    the first, a hazard fired, or a monitor reported a violation.
    """
    if replays < 2:
        raise ValueError("need at least 2 replays to compare")
    recorders: List[StepRecorder] = []
    violations: List[Violation] = []
    for _ in range(replays):
        with SanitizerSession(keep_records=keep_records,
                              guard_hazards=guard_hazards,
                              monitors=monitors, strict=False,
                              every=every) as session:
            run_fn()
        recorders.append(session.recorder)
        for plane in session.planes:
            violations.extend(plane.violations)
    base = recorders[0]
    result = CheckResult(
        replays=replays,
        steps=[rec.steps for rec in recorders],
        digests=[rec.digest for rec in recorders],
        hazards=[hz for rec in recorders for hz in rec.hazards],
        ties=list(base.ties),
        violations=violations,
    )
    for index, rec in enumerate(recorders[1:], start=1):
        if rec.digest == base.digest and rec.steps == base.steps:
            continue
        step = first_divergence(base.hashes, rec.hashes)
        result.divergent_step = step
        result.divergent_replay = index
        if keep_records:
            if step < len(base.records):
                result.expected = base.records[step]
            if step < len(rec.records):
                result.actual = rec.records[step]
        break
    return result
