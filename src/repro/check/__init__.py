"""CheckPlane: determinism sanitizer, invariant monitors, lint gate.

Three tools that keep the reproduction honest (see ``docs/CHECKING.md``):

* :func:`replay_check` / :class:`SanitizerSession` — replay a run and
  binary-search to the first divergent event;
* :class:`CheckPlane` + the monitors in :mod:`repro.check.monitors` —
  zero-virtual-time runtime invariant checking on the engine tick;
* :func:`lint_tree` — the ``repro lint`` static pass over ``src/repro``.
"""

from .equiv import (
    canonical_digest,
    canonical_events,
    session_digest,
)
from .lint import RULES, LintFinding, lint_file, lint_source, lint_tree
from .monitors import (
    ChannelMonitor,
    DmoMonitor,
    InvariantViolation,
    PaxosMonitor,
    PlanMonitor,
    PulseMonitor,
    RingMonitor,
    SchedulerMonitor,
    SteeringMonitor,
    TenantMonitor,
    Violation,
)
from .plane import CheckPlane
from .sanitizer import (
    CheckResult,
    Hazard,
    SanitizerSession,
    StepRecord,
    StepRecorder,
    TieWarning,
    callback_id,
    first_divergence,
    replay_check,
)

__all__ = [
    "CheckPlane",
    "CheckResult",
    "ChannelMonitor",
    "canonical_digest",
    "canonical_events",
    "session_digest",
    "DmoMonitor",
    "Hazard",
    "InvariantViolation",
    "LintFinding",
    "PaxosMonitor",
    "PlanMonitor",
    "PulseMonitor",
    "RingMonitor",
    "RULES",
    "SanitizerSession",
    "SchedulerMonitor",
    "SteeringMonitor",
    "StepRecord",
    "StepRecorder",
    "TenantMonitor",
    "TieWarning",
    "Violation",
    "callback_id",
    "first_divergence",
    "lint_file",
    "lint_source",
    "lint_tree",
    "replay_check",
]
